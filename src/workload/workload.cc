#include "workload/workload.h"

#include <algorithm>
#include <cstdio>

#include "exec/executor.h"

namespace lpce::wk {

qry::Query QueryGenerator::Generate(int num_joins) {
  const db::Catalog& cat = db_->catalog();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    qry::Query query;
    // Grow a random connected subtree of the FK graph.
    std::vector<bool> used(cat.num_tables(), false);
    const int32_t start =
        static_cast<int32_t>(rng_.Uniform(static_cast<uint64_t>(cat.num_tables())));
    query.tables.push_back(start);
    used[start] = true;
    while (query.num_joins() < num_joins) {
      // Frontier: edges with exactly one endpoint inside.
      std::vector<const db::JoinEdgeDef*> frontier;
      for (const auto& edge : cat.join_edges()) {
        const bool l = used[edge.left.table];
        const bool r = used[edge.right.table];
        if (l != r) frontier.push_back(&edge);
      }
      if (frontier.empty()) break;
      const db::JoinEdgeDef* pick = frontier[rng_.Uniform(frontier.size())];
      const int32_t next = used[pick->left.table] ? pick->right.table
                                                  : pick->left.table;
      query.tables.push_back(next);
      used[next] = true;
      query.joins.push_back({pick->left, pick->right});
    }
    if (query.num_joins() != num_joins) continue;  // graph exhausted; retry

    // Predicates: operand values are sampled from live rows so that
    // selectivities spread over the full range. Column choice is biased
    // toward non-key attribute columns — their values are correlated across
    // tables (as on real IMDB), which is exactly where independence-based
    // estimators break (paper Sec. 7.1).
    for (int32_t table_id : query.tables) {
      if (!rng_.Bernoulli(options_.predicate_prob)) continue;
      const db::Table& table = db_->table(table_id);
      if (table.num_rows() == 0) continue;
      // Key columns of this table (id + any FK participating in an edge).
      auto is_key_column = [&](int32_t c) {
        if (c == 0) return true;  // the id primary key
        for (const auto& edge : cat.join_edges()) {
          if ((edge.left.table == table_id && edge.left.column == c) ||
              (edge.right.table == table_id && edge.right.column == c)) {
            return true;
          }
        }
        return false;
      };
      int32_t col = static_cast<int32_t>(rng_.Uniform(table.num_columns()));
      if (is_key_column(col) && rng_.Bernoulli(0.85)) {
        // Re-draw among non-key columns when any exist.
        std::vector<int32_t> attrs;
        for (int32_t c = 0; c < static_cast<int32_t>(table.num_columns()); ++c) {
          if (!is_key_column(c)) attrs.push_back(c);
        }
        if (!attrs.empty()) col = attrs[rng_.Uniform(attrs.size())];
      }
      const int64_t value =
          table.at(rng_.Uniform(table.num_rows()), static_cast<size_t>(col));
      // Range predicates dominate (as in the JOB-light style workloads);
      // equality and inequality appear with lower probability.
      qry::CmpOp op;
      const double roll = rng_.UniformDouble();
      if (roll < 0.25) {
        op = qry::CmpOp::kLt;
      } else if (roll < 0.5) {
        op = qry::CmpOp::kGt;
      } else if (roll < 0.65) {
        op = qry::CmpOp::kLe;
      } else if (roll < 0.8) {
        op = qry::CmpOp::kGe;
      } else if (roll < 0.93) {
        op = qry::CmpOp::kEq;
      } else {
        op = qry::CmpOp::kNe;
      }
      query.predicates.push_back({{table_id, col}, op, value});
    }

    // Validation: bounded canonical-plan intermediates (always) and a
    // non-empty final result (test workloads).
    LabeledQuery probe;
    probe.query = query;
    if (!TryLabelQuery(*db_, &probe, options_.max_node_rows)) continue;
    if (options_.require_nonempty && probe.FinalCard() == 0) continue;
    if (options_.validate_all_subsets && options_.max_node_rows > 0) {
      bool ok = true;
      for (qry::RelSet rels = 1; rels <= query.AllRels() && ok; ++rels) {
        if (!query.IsConnected(rels) || qry::PopCount(rels) < 2) continue;
        if (probe.true_cards.count(rels) > 0) continue;  // already bounded
        LabeledQuery sub;
        sub.query = qry::BuildSubQuery(query, rels);
        if (!TryLabelQuery(*db_, &sub, options_.max_node_rows)) ok = false;
      }
      if (!ok) continue;
    }
    return query;
  }
  LPCE_CHECK_MSG(false, "query generation exhausted attempts");
  return {};
}

std::vector<LabeledQuery> QueryGenerator::GenerateLabeled(int count, int min_joins,
                                                          int max_joins) {
  std::vector<LabeledQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    LabeledQuery labeled;
    const int joins =
        static_cast<int>(rng_.UniformInt(min_joins, max_joins));
    labeled.query = Generate(joins);
    LabelQuery(*db_, &labeled);
    out.push_back(std::move(labeled));
  }
  return out;
}

void LabelQuery(const db::Database& database, LabeledQuery* out) {
  const bool ok = TryLabelQuery(database, out, /*max_node_rows=*/0);
  LPCE_CHECK(ok);
}

bool TryLabelQuery(const db::Database& database, LabeledQuery* out,
                   size_t max_node_rows) {
  auto plan = exec::BuildCanonicalHashPlan(out->query);
  exec::Executor executor(&database, &out->query);
  exec::Executor::Options options;
  options.max_node_rows = max_node_rows;
  exec::Executor::RunResult run = executor.Run(plan.get(), options);
  if (run.aborted) return false;
  std::vector<const exec::PlanNode*> nodes;
  exec::PostOrderPlan(plan.get(), &nodes);
  for (const exec::PlanNode* node : nodes) {
    out->true_cards[node->rels] = node->actual_card;
  }
  return true;
}

uint64_t MaxCardinality(const std::vector<LabeledQuery>& workload) {
  uint64_t max_card = 1;
  for (const auto& q : workload) {
    for (const auto& [rels, card] : q.true_cards) {
      max_card = std::max(max_card, card);
    }
  }
  return max_card;
}

namespace {

void WriteU64(std::FILE* f, uint64_t v) { std::fwrite(&v, sizeof(v), 1, f); }
void WriteI64(std::FILE* f, int64_t v) { std::fwrite(&v, sizeof(v), 1, f); }
void WriteI32(std::FILE* f, int32_t v) { std::fwrite(&v, sizeof(v), 1, f); }

bool ReadU64(std::FILE* f, uint64_t* v) { return std::fread(v, sizeof(*v), 1, f) == 1; }
bool ReadI64(std::FILE* f, int64_t* v) { return std::fread(v, sizeof(*v), 1, f) == 1; }
bool ReadI32(std::FILE* f, int32_t* v) { return std::fread(v, sizeof(*v), 1, f) == 1; }

constexpr uint64_t kMagic = 0x4C50434557514C44ull;  // "LPCEWQLD"

}  // namespace

Status SaveWorkload(const std::vector<LabeledQuery>& workload,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  WriteU64(f, kMagic);
  WriteU64(f, workload.size());
  for (const auto& labeled : workload) {
    const qry::Query& q = labeled.query;
    WriteU64(f, q.tables.size());
    for (int32_t t : q.tables) WriteI32(f, t);
    WriteU64(f, q.joins.size());
    for (const auto& j : q.joins) {
      WriteI32(f, j.left.table);
      WriteI32(f, j.left.column);
      WriteI32(f, j.right.table);
      WriteI32(f, j.right.column);
    }
    WriteU64(f, q.predicates.size());
    for (const auto& p : q.predicates) {
      WriteI32(f, p.col.table);
      WriteI32(f, p.col.column);
      WriteI32(f, static_cast<int32_t>(p.op));
      WriteI64(f, p.value);
    }
    WriteU64(f, labeled.true_cards.size());
    for (const auto& [rels, card] : labeled.true_cards) {
      WriteU64(f, rels);
      WriteU64(f, card);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

Status LoadWorkload(const std::string& path, std::vector<LabeledQuery>* workload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot read " + path);
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::IoError(std::string(what) + ": " + path);
  };
  uint64_t magic = 0, count = 0;
  if (!ReadU64(f, &magic) || magic != kMagic) return fail("bad magic");
  if (!ReadU64(f, &count) || count > 10'000'000) return fail("bad count");
  workload->clear();
  workload->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LabeledQuery labeled;
    qry::Query& q = labeled.query;
    uint64_t n = 0;
    if (!ReadU64(f, &n) || n > 64) return fail("bad table count");
    q.tables.resize(n);
    for (auto& t : q.tables) {
      if (!ReadI32(f, &t)) return fail("truncated tables");
    }
    if (!ReadU64(f, &n) || n > 64) return fail("bad join count");
    q.joins.resize(n);
    for (auto& j : q.joins) {
      if (!ReadI32(f, &j.left.table) || !ReadI32(f, &j.left.column) ||
          !ReadI32(f, &j.right.table) || !ReadI32(f, &j.right.column)) {
        return fail("truncated joins");
      }
    }
    if (!ReadU64(f, &n) || n > 128) return fail("bad predicate count");
    q.predicates.resize(n);
    for (auto& p : q.predicates) {
      int32_t op = 0;
      if (!ReadI32(f, &p.col.table) || !ReadI32(f, &p.col.column) ||
          !ReadI32(f, &op) || !ReadI64(f, &p.value)) {
        return fail("truncated predicates");
      }
      p.op = static_cast<qry::CmpOp>(op);
    }
    if (!ReadU64(f, &n) || n > 4096) return fail("bad label count");
    for (uint64_t k = 0; k < n; ++k) {
      uint64_t rels = 0, card = 0;
      if (!ReadU64(f, &rels) || !ReadU64(f, &card)) return fail("truncated labels");
      labeled.true_cards[static_cast<qry::RelSet>(rels)] = card;
    }
    workload->push_back(std::move(labeled));
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace lpce::wk
