// Workload generation and true-cardinality labeling.
//
// Queries are random connected subtrees of the schema's FK join graph with a
// target number of joins, plus per-table filter predicates whose operands
// are drawn from the live data (paper Sec. 7.1, following Kipf et al.).
// Labels are collected by executing the canonical plan and recording the
// actual cardinality of every plan node — the supervision the node-wise
// loss (Eq. 3) needs.
#ifndef LPCE_WORKLOAD_WORKLOAD_H_
#define LPCE_WORKLOAD_WORKLOAD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "query/query.h"
#include "storage/database.h"

namespace lpce::wk {

/// A query plus the true cardinality of every canonical-tree node subset.
struct LabeledQuery {
  qry::Query query;
  std::unordered_map<qry::RelSet, uint64_t> true_cards;

  uint64_t FinalCard() const {
    auto it = true_cards.find(query.AllRels());
    return it == true_cards.end() ? 0 : it->second;
  }
};

struct GeneratorOptions {
  uint64_t seed = 7;
  double predicate_prob = 0.85;  // chance each table gets one predicate
  /// Re-draw a query whose final result is empty (used for test sets, where
  /// empty results make end-to-end comparisons degenerate).
  bool require_nonempty = false;
  /// Re-draw a query if any canonical-plan node exceeds this many rows — an
  /// in-memory materializing executor needs bounded intermediates (0 = off).
  size_t max_node_rows = 4'000'000;
  /// Additionally verify EVERY connected subset stays under max_node_rows,
  /// so that any join order a (mis-)optimizer picks is executable. Used for
  /// the end-to-end test workloads; more expensive to generate.
  bool validate_all_subsets = false;
  int max_attempts = 400;
};

class QueryGenerator {
 public:
  QueryGenerator(const db::Database* database, GeneratorOptions options)
      : db_(database), options_(options), rng_(options.seed) {}

  /// Generates one query with exactly `num_joins` joins (num_joins + 1
  /// tables). Labels are NOT collected (see LabelQuery).
  qry::Query Generate(int num_joins);

  /// Generates and labels `count` queries with joins drawn uniformly from
  /// [min_joins, max_joins].
  std::vector<LabeledQuery> GenerateLabeled(int count, int min_joins, int max_joins);

 private:
  const db::Database* db_;
  GeneratorOptions options_;
  Rng rng_;
};

/// Executes the canonical hash plan and records every node's actual
/// cardinality into `out->true_cards`.
void LabelQuery(const db::Database& database, LabeledQuery* out);

/// As LabelQuery, but aborts (returning false) if any plan node would
/// materialize more than `max_node_rows` rows (0 = unlimited).
bool TryLabelQuery(const db::Database& database, LabeledQuery* out,
                   size_t max_node_rows);

/// Largest final cardinality across a workload (the normalization constant
/// for the models' sigmoid output, paper Sec. 4.2).
uint64_t MaxCardinality(const std::vector<LabeledQuery>& workload);

/// Binary (de)serialization of labeled workloads for the bench cache.
Status SaveWorkload(const std::vector<LabeledQuery>& workload,
                    const std::string& path);
Status LoadWorkload(const std::string& path, std::vector<LabeledQuery>* workload);

}  // namespace lpce::wk

#endif  // LPCE_WORKLOAD_WORKLOAD_H_
