#include "lpce/lpce_r.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/profiler.h"
#include "common/timer.h"
#include "nn/kernels.h"

namespace lpce::model {

LpceR::LpceR(const FeatureEncoder* encoder, TreeModelConfig base_config,
             RefinerMode mode)
    : mode_(mode), encoder_(encoder) {
  TreeModelConfig content_cfg = base_config;
  content_cfg.with_child_cards = false;
  TreeModelConfig card_cfg = base_config;
  card_cfg.with_child_cards = true;
  card_cfg.seed = base_config.seed + 101;
  TreeModelConfig refine_cfg = content_cfg;
  refine_cfg.seed = base_config.seed + 202;

  cardinality_ = std::make_unique<TreeModel>(encoder, card_cfg);
  if (mode_ != RefinerMode::kSingle) {
    refine_ = std::make_unique<TreeModel>(encoder, refine_cfg);
  }
  if (mode_ == RefinerMode::kFull) {
    content_ = std::make_unique<TreeModel>(encoder, content_cfg);
    Rng rng(base_config.seed + 303);
    const size_t dim = static_cast<size_t>(base_config.dim);
    wa_ = nn::Linear(&connect_params_, "connect.wa", dim, dim, &rng);
    wb_ = nn::Linear(&connect_params_, "connect.wb", dim, dim, &rng);
    wab_ = nn::Linear(&connect_params_, "connect.wab", dim, dim, &rng);
  }
}

nn::Tensor LpceR::Connect(const nn::Tensor& c_content,
                          const nn::Tensor& c_card) const {
  // Eq. 6: learned merge weights, then a ReLU projection.
  nn::Tensor w_a = nn::Sigmoid(wa_.Forward(c_content));
  nn::Tensor w_b = nn::Sigmoid(wb_.Forward(c_card));
  nn::Tensor merged =
      nn::Add(nn::Mul(w_a, c_content), nn::Mul(w_b, c_card));
  return nn::Relu(wab_.Forward(merged));
}

nn::Tensor LpceR::EncodeExecuted(const qry::Query& query,
                                 const EstNode* executed) const {
  // The executed modules are frozen during refinement training and pure
  // feature extractors at inference: detach their outputs.
  nn::Tensor c_card =
      Detach(cardinality_->Forward(query, executed).back().c);
  switch (mode_) {
    case RefinerMode::kFull: {
      nn::Tensor c_content = Detach(content_->Forward(query, executed).back().c);
      return Connect(c_content, c_card);
    }
    case RefinerMode::kTwo:
    case RefinerMode::kSingle:
      return c_card;
  }
  return c_card;
}

double LpceR::EstimateTree(const qry::Query& query, const EstNode* tree) const {
  if (mode_ == RefinerMode::kSingle) {
    // One module does everything: executed nodes carry real cardinalities,
    // the rest run on the model's own estimates.
    auto outputs = cardinality_->Forward(query, tree, /*dynamic_child_cards=*/true);
    LPCE_CHECK(!outputs.empty());
    return cardinality_->YToCard(
        static_cast<double>(outputs.back().y->value().at(0, 0)));
  }
  return refine_->PredictCard(query, tree);
}

nn::Matrix LpceR::ConnectFast(const nn::Matrix& c_content,
                              const nn::Matrix& c_card) const {
  // Kernel-for-kernel mirror of the taped Connect (Eq. 6): Mul / Mul / Add
  // as three separate rounding passes, so the fast path is bit-identical to
  // the autograd path (a fused a*b + c*d expression could FMA-contract
  // differently under -ffast-math).
  namespace k = nn::kernels;
  nn::Matrix w_a = wa_.Apply(c_content);
  nn::SigmoidInPlace(&w_a);
  nn::Matrix w_b = wb_.Apply(c_card);
  nn::SigmoidInPlace(&w_b);
  k::MulInPlace(w_a.data(), c_content.data(), w_a.size());
  k::MulInPlace(w_b.data(), c_card.data(), w_b.size());
  nn::Matrix merged(1, c_content.cols());
  k::Add(w_a.data(), w_b.data(), merged.data(), merged.size());
  nn::Matrix out = wab_.Apply(merged);
  nn::ReluInPlace(&out);
  return out;
}

nn::Matrix LpceR::EncodeExecutedFast(const qry::Query& query,
                                     const EstNode* executed) const {
  nn::Matrix c_card = cardinality_->EncodeRootFast(query, executed);
  switch (mode_) {
    case RefinerMode::kFull: {
      nn::Matrix c_content = content_->EncodeRootFast(query, executed);
      return ConnectFast(c_content, c_card);
    }
    case RefinerMode::kTwo:
    case RefinerMode::kSingle:
      return c_card;
  }
  return c_card;
}

double LpceR::EstimateTreeFast(const qry::Query& query, const EstNode* tree) const {
  if (mode_ == RefinerMode::kSingle) {
    return cardinality_->PredictCardFast(query, tree,
                                         /*dynamic_child_cards=*/true);
  }
  return refine_->PredictCardFast(query, tree);
}

Status LpceR::Save(const std::string& prefix) const {
  LPCE_RETURN_IF_ERROR(cardinality_->params().SaveToFile(prefix + ".card.bin"));
  if (refine_ != nullptr) {
    LPCE_RETURN_IF_ERROR(refine_->params().SaveToFile(prefix + ".refine.bin"));
  }
  if (content_ != nullptr) {
    LPCE_RETURN_IF_ERROR(content_->params().SaveToFile(prefix + ".content.bin"));
    LPCE_RETURN_IF_ERROR(connect_params_.SaveToFile(prefix + ".connect.bin"));
  }
  return Status::Ok();
}

Status LpceR::Load(const std::string& prefix) {
  LPCE_RETURN_IF_ERROR(cardinality_->params().LoadFromFile(prefix + ".card.bin"));
  if (refine_ != nullptr) {
    LPCE_RETURN_IF_ERROR(refine_->params().LoadFromFile(prefix + ".refine.bin"));
  }
  if (content_ != nullptr) {
    LPCE_RETURN_IF_ERROR(content_->params().LoadFromFile(prefix + ".content.bin"));
    LPCE_RETURN_IF_ERROR(connect_params_.LoadFromFile(prefix + ".connect.bin"));
  }
  return Status::Ok();
}

namespace {

/// Deep copy of an estimation tree; the subtree covering `inject_rels`
/// (if non-zero) is replaced by an injected leaf carrying `injected_c`.
std::unique_ptr<EstNode> CloneWithInjection(const EstNode* node,
                                            qry::RelSet inject_rels,
                                            const nn::Tensor& injected_c) {
  auto copy = std::make_unique<EstNode>();
  copy->rels = node->rels;
  if (inject_rels != 0 && node->rels == inject_rels) {
    copy->injected_c = injected_c;
    copy->true_card = node->true_card;
    return copy;
  }
  copy->table_pos = node->table_pos;
  copy->join_idx = node->join_idx;
  copy->child_card_left = node->child_card_left;
  copy->child_card_right = node->child_card_right;
  copy->true_card = node->true_card;
  if (node->left != nullptr) {
    copy->left = CloneWithInjection(node->left.get(), inject_rels, injected_c);
  }
  if (node->right != nullptr) {
    copy->right = CloneWithInjection(node->right.get(), inject_rels, injected_c);
  }
  return copy;
}

void CollectSubtreeRoots(const EstNode* node, const EstNode* root,
                         std::vector<const EstNode*>* out) {
  if (node == nullptr) return;
  if (node != root) out->push_back(node);
  CollectSubtreeRoots(node->left.get(), root, out);
  CollectSubtreeRoots(node->right.get(), root, out);
}

}  // namespace

TrainStats TrainLpceR(LpceR* model, const db::Database& database,
                      const std::vector<wk::LabeledQuery>& train,
                      const LpceRTrainOptions& options) {
  LPCE_PROFILE_SCOPE("train.lpce_r");
  WallTimer total_timer;
  TrainStats stats;
  stats.model_tag = options.tag;
  // ---- Stage 1: pre-train the executed-sub-plan modules. ----------------
  if (model->mode() == RefinerMode::kFull) {
    if (options.pretrained_content != nullptr) {
      model->content().CopyParamsFrom(*options.pretrained_content);
    } else {
      TrainTreeModel(&model->content(), database, train, options.pretrain);
    }
  }
  TrainTreeModel(&model->cardinality(), database, train, options.pretrain);
  if (model->mode() == RefinerMode::kSingle) {
    // No refine module: the stage-2 report stays empty.
    stats.total_seconds = total_timer.ElapsedSeconds();
    RecordTrainStats(stats);
    return stats;
  }

  // Refine module starts from the content weights (Fig. 9) when available,
  // otherwise from its own LPCE-I-style pre-training.
  if (model->mode() == RefinerMode::kFull) {
    if (options.pretrained_content != nullptr) {
      model->refine().CopyParamsFrom(*options.pretrained_content);
    } else {
      model->refine().CopyParamsFrom(model->content());
    }
  } else {
    TrainTreeModel(&model->refine(), database, train, options.pretrain);
  }

  // ---- Stage 2: freeze content/cardinality, fine-tune refine (+connect). --
  nn::Adam refine_adam(&model->refine().params(), {.lr = options.lr});
  std::unique_ptr<nn::Adam> connect_adam;
  if (model->mode() == RefinerMode::kFull) {
    connect_adam =
        std::make_unique<nn::Adam>(&model->connect_params(),
                                   nn::Adam::Options{.lr = options.lr});
  }

  std::vector<std::unique_ptr<EstNode>> trees;
  trees.reserve(train.size());
  for (const auto& labeled : train) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    trees.push_back(MakeEstTree(labeled.query, logical.get(), database,
                                &labeled.true_cards));
  }

  Rng rng(options.seed);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options.refine_epochs; ++epoch) {
    LPCE_PROFILE_SCOPE("train.lpce_r_refine");
    WallTimer epoch_timer;
    rng.Shuffle(&order);
    int batch_count = 0;
    double epoch_loss = 0.0;
    int samples = 0;
    double grad_norm_sum = 0.0;
    int grad_norm_steps = 0;
    for (size_t idx : order) {
      const auto& labeled = train[idx];
      std::vector<const EstNode*> candidates;
      CollectSubtreeRoots(trees[idx].get(), trees[idx].get(), &candidates);
      if (candidates.empty()) continue;
      for (int k = 0; k < options.prefixes_per_query; ++k) {
        const EstNode* executed = candidates[rng.Uniform(candidates.size())];
        nn::Tensor c_ab = model->EncodeExecuted(labeled.query, executed);
        auto refine_tree = CloneWithInjection(trees[idx].get(), executed->rels, c_ab);
        auto outputs = model->refine().Forward(labeled.query, refine_tree.get());
        // Node-wise loss over the remaining (labeled) operators.
        nn::Tensor loss;
        int terms = 0;
        for (const auto& out : outputs) {
          if (out.node->true_card < 0.0) continue;
          nn::Matrix target(1, 1);
          target.at(0, 0) =
              static_cast<float>(model->CardToY(out.node->true_card));
          nn::Tensor term = nn::Abs(nn::Sub(out.y, nn::MakeTensor(target)));
          loss = loss == nullptr ? term : nn::Add(loss, term);
          ++terms;
        }
        if (loss == nullptr) continue;
        if (terms > 1) loss = nn::Scale(loss, 1.0f / static_cast<float>(terms));
        nn::Backward(loss);
        epoch_loss += loss->value().at(0, 0);
        ++samples;
        if (++batch_count >= options.batch_size) {
          const float scale = 1.0f / static_cast<float>(batch_count);
          model->refine().params().ScaleGrads(scale);
          grad_norm_sum +=
              static_cast<double>(model->refine().params().GradNorm());
          ++grad_norm_steps;
          model->refine().params().ClipGradNorm(options.grad_clip);
          refine_adam.Step();
          if (connect_adam != nullptr) {
            model->connect_params().ScaleGrads(scale);
            model->connect_params().ClipGradNorm(options.grad_clip);
            connect_adam->Step();
          }
          // The frozen modules accumulated nothing (their outputs are
          // detached), but clear defensively.
          model->cardinality().params().ZeroGrads();
          if (model->mode() == RefinerMode::kFull) {
            model->content().params().ZeroGrads();
          }
          batch_count = 0;
        }
      }
    }
    if (batch_count > 0) {
      refine_adam.Step();
      if (connect_adam != nullptr) connect_adam->Step();
    }
    EpochStats es;
    es.epoch = epoch;
    es.stage = "refine";
    es.train_loss = samples > 0 ? epoch_loss / samples : 0.0;
    es.samples = samples;
    es.wall_seconds = epoch_timer.ElapsedSeconds();
    es.examples_per_sec =
        es.wall_seconds > 0.0 ? samples / es.wall_seconds : 0.0;
    es.grad_norm =
        grad_norm_steps > 0 ? grad_norm_sum / grad_norm_steps : 0.0;
    stats.epochs.push_back(std::move(es));
    LPCE_LOG(Debug) << "lpce-r refine epoch " << epoch << " loss "
                    << es.train_loss;
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  RecordTrainStats(stats);
  return stats;
}

}  // namespace lpce::model
