// CardinalityEstimator adapters for the tree models: LPCE-I / TLSTM (plain
// tree-model estimators) and LPCE-R (progressive refinement with executed-
// sub-plan tracking).
#ifndef LPCE_LPCE_ESTIMATORS_H_
#define LPCE_LPCE_ESTIMATORS_H_

#include <map>
#include <memory>
#include <string>

#include "card/estimator.h"
#include "lpce/lpce_r.h"
#include "lpce/tree_model.h"

namespace lpce::model {

/// Estimates any connected subset by running a TreeModel over the subset's
/// canonical tree. Instantiates LPCE-I, TLSTM, and the LPCE-T/S/C/Q ablation
/// variants (the differences are in the model's config/training, not here).
class TreeModelEstimator : public card::CardinalityEstimator {
 public:
  TreeModelEstimator(std::string name, const TreeModel* model,
                     const db::Database* database)
      : name_(std::move(name)), model_(model), db_(database) {}

  std::string name() const override { return name_; }

  /// Batched preparation (paper Sec. 6.1): estimates every connected subset
  /// of the query in one pass, sharing the recurrent state of each subset's
  /// canonical-chain prefix — one cell step per subset instead of |S|.
  void PrepareQuery(const qry::Query& query) override;

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override;

 private:
  bool PreparedFor(const qry::Query& query) const;

  std::string name_;
  const TreeModel* model_;
  const db::Database* db_;

  // Batched-preparation cache (valid while the prepared query matches).
  bool prepared_ = false;
  std::vector<int32_t> prepared_tables_;
  size_t prepared_joins_ = 0;
  size_t prepared_predicates_ = 0;
  std::unordered_map<qry::RelSet, double> prepared_cards_;
};

/// LPCE-R: tracks the executed sub-plans reported via ObserveActual,
/// encodes them with the content/cardinality modules, and estimates
/// remaining subsets with the refine module (injected encodings).
class LpceREstimator : public card::CardinalityEstimator {
 public:
  LpceREstimator(const LpceR* model, const db::Database* database)
      : model_(model), db_(database) {}

  std::string name() const override {
    switch (model_->mode()) {
      case RefinerMode::kSingle:
        return "LPCE-R-Single";
      case RefinerMode::kTwo:
        return "LPCE-R-Two";
      default:
        return "LPCE-R";
    }
  }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override;

  /// Mirrors execution: finished nodes arrive in post-order; singleton sets
  /// become leaves, larger sets join two previously-observed roots.
  void ObserveActual(const qry::Query& query, qry::RelSet rels,
                     double actual) override;

  void ResetObservations() override {
    roots_.clear();
    encoding_cache_.clear();
  }

  bool SupportsRefinement() const override { return true; }

 private:
  /// Lazily computes/caches c_AB for an executed root.
  nn::Tensor EncodingFor(const qry::Query& query, qry::RelSet rels);

  const LpceR* model_;
  const db::Database* db_;
  // Maximal executed subtrees, keyed by their covered relation set.
  // std::map: deterministic iteration order.
  std::map<qry::RelSet, std::unique_ptr<EstNode>> roots_;
  std::map<qry::RelSet, nn::Tensor> encoding_cache_;
};

/// Deep copy of an estimation tree (no injection).
std::unique_ptr<EstNode> CloneEstTree(const EstNode* node);

}  // namespace lpce::model

#endif  // LPCE_LPCE_ESTIMATORS_H_
