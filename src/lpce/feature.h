// Feature encoding of plan-tree nodes (paper Fig. 5).
//
// Each node is encoded as [function | join condition | predicate]:
//  - function: one-hot over logical operators {scan, join} (cardinality is a
//    logical property, so physical operators are not encoded — Sec. 4.1);
//  - join condition: two-hot over the |C| catalog columns;
//  - predicate: column one-hot (|C|) + operator one-hot (6) + operand as a
//    min/max-normalized float.
#ifndef LPCE_LPCE_FEATURE_H_
#define LPCE_LPCE_FEATURE_H_

#include "nn/matrix.h"
#include "query/query.h"
#include "stats/column_stats.h"

namespace lpce::model {

class FeatureEncoder {
 public:
  FeatureEncoder(const db::Catalog* catalog, const stats::DatabaseStats* stats)
      : catalog_(catalog), stats_(stats) {}

  /// Width of the encoded feature vector.
  int dim() const { return 2 + 2 * catalog_->TotalColumns() + qry::kNumCmpOps + 1; }

  /// Encodes a scan leaf: its (at most one) predicate.
  nn::Matrix EncodeScan(const qry::Query& query, int table_pos) const;

  /// Encodes a join node: the two-hot join condition of edge `join_idx`.
  nn::Matrix EncodeJoin(const qry::Query& query, int join_idx) const;

  /// Zero-allocation variants for the batched inference fast path: write
  /// dim() floats into `out` (zeroed first). Values are identical to the
  /// Matrix-returning encoders — only stores, no arithmetic.
  void EncodeScanInto(const qry::Query& query, int table_pos, float* out) const;
  void EncodeJoinInto(const qry::Query& query, int join_idx, float* out) const;

  /// Normalizes an operand into [0,1] using the column's min/max statistics.
  float NormalizeOperand(db::ColRef col, int64_t value) const;

 private:
  const db::Catalog* catalog_;
  const stats::DatabaseStats* stats_;
};

}  // namespace lpce::model

#endif  // LPCE_LPCE_FEATURE_H_
