#include "lpce/tree_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/profiler.h"
#include "common/timer.h"

namespace lpce::model {

nn::Tensor Detach(const nn::Tensor& t) { return nn::MakeTensor(t->value()); }

namespace {

/// Applies a training config's matmul thread cap for the duration of a
/// training run, restoring the previous cap on exit.
class ScopedMatMulThreads {
 public:
  explicit ScopedMatMulThreads(int num_threads) : prev_(nn::MatMulThreads()) {
    nn::SetMatMulThreads(num_threads);
  }
  ~ScopedMatMulThreads() { nn::SetMatMulThreads(prev_); }

 private:
  int prev_;
};

}  // namespace

std::unique_ptr<EstNode> MakeEstTree(
    const qry::Query& query, const qry::LogicalNode* logical,
    const db::Database& database,
    const std::unordered_map<qry::RelSet, uint64_t>* labels) {
  auto node = std::make_unique<EstNode>();
  node->rels = logical->rels;
  if (labels != nullptr) {
    auto it = labels->find(logical->rels);
    if (it != labels->end()) node->true_card = static_cast<double>(it->second);
  }
  if (logical->is_leaf()) {
    node->table_pos = logical->table_pos;
    node->child_card_left = static_cast<double>(
        database.table(query.tables[logical->table_pos]).num_rows());
    node->child_card_right = 0.0;
    return node;
  }
  node->join_idx = logical->join_idx;
  node->left = MakeEstTree(query, logical->left.get(), database, labels);
  node->right = MakeEstTree(query, logical->right.get(), database, labels);
  node->child_card_left = node->left->true_card;
  node->child_card_right = node->right->true_card;
  return node;
}

TreeModel::TreeModel(const FeatureEncoder* encoder, TreeModelConfig config)
    : encoder_(encoder), config_(config) {
  LPCE_CHECK(config_.feature_dim == encoder->dim());
  Rng rng(config_.seed);
  const size_t in = static_cast<size_t>(input_dim());
  const size_t dim = static_cast<size_t>(config_.dim);
  embed_ = nn::Mlp2(&params_, "embed", in, static_cast<size_t>(config_.embed_hidden),
                    dim, &rng);
  if (config_.use_lstm) {
    lstm_ = nn::TreeLstmCell(&params_, "lstm", dim, &rng);
  } else {
    sru_ = nn::TreeSruCell(&params_, "sru", dim, &rng);
  }
  output_ = nn::Mlp2(&params_, "output", dim, static_cast<size_t>(config_.out_hidden),
                     1, &rng);
}

double TreeModel::CardToY(double card) const {
  const double y = std::log1p(std::max(0.0, card)) / config_.log_max_card;
  return std::clamp(y, 0.0, 1.0);
}

double TreeModel::YToCard(double y) const {
  return std::expm1(std::clamp(y, 0.0, 1.0) * config_.log_max_card);
}

void TreeModel::CopyParamsFrom(const TreeModel& other) {
  for (const auto& name : other.params().names()) {
    nn::Tensor src = other.params().Get(name);
    nn::Tensor dst = params_.Get(name);
    dst->mutable_value() = src->value();
  }
}

namespace {

struct ForwardState {
  nn::Tensor c;
  nn::Tensor h;
  double est_card = -1.0;  // running estimate (dynamic-cards mode)
};

}  // namespace

std::vector<TreeModel::NodeOutput> TreeModel::Forward(
    const qry::Query& query, const EstNode* root,
    bool dynamic_child_cards) const {
  LPCE_PROFILE_SCOPE("lpce.forward");
  std::vector<NodeOutput> outputs;
  // Recursive lambda returning the (c, h) state of each subtree.
  std::function<ForwardState(const EstNode*)> walk =
      [&](const EstNode* node) -> ForwardState {
    if (node->is_injected()) {
      // Executed sub-plan: its encoding replaces the child encoding
      // (paper Sec. 5.1, "efficient progressive refinement").
      return {node->injected_c, nullptr, node->true_card};
    }
    ForwardState left_state, right_state;
    if (node->left != nullptr) left_state = walk(node->left.get());
    if (node->right != nullptr) right_state = walk(node->right.get());

    LPCE_DCHECK(node->is_leaf() ? node->table_pos >= 0 : node->join_idx >= 0);
    nn::Matrix features = node->is_leaf()
                              ? encoder_->EncodeScan(query, node->table_pos)
                              : encoder_->EncodeJoin(query, node->join_idx);
    if (config_.with_child_cards) {
      double card_left = std::max(0.0, node->child_card_left);
      double card_right = std::max(0.0, node->child_card_right);
      if (dynamic_child_cards && !node->is_leaf()) {
        // Executed children keep their real cardinalities (true_card >= 0);
        // unexecuted ones fall back to the model's own running estimates.
        if (node->left->true_card < 0.0) {
          card_left = std::max(0.0, left_state.est_card);
        }
        if (node->right->true_card < 0.0) {
          card_right = std::max(0.0, right_state.est_card);
        }
      }
      nn::Matrix with_cards(1, features.cols() + 2);
      for (size_t j = 0; j < features.cols(); ++j) {
        with_cards.at(0, j) = features.at(0, j);
      }
      with_cards.at(0, features.cols()) = static_cast<float>(CardToY(card_left));
      with_cards.at(0, features.cols() + 1) =
          static_cast<float>(CardToY(card_right));
      features = std::move(with_cards);
    }
    nn::Tensor x = embed_.Forward(nn::MakeTensor(std::move(features)),
                                  nn::Mlp2::Activation::kRelu,
                                  nn::Mlp2::Activation::kRelu);
    nn::CellOutput cell;
    if (config_.use_lstm) {
      cell = lstm_.Step(x, left_state.c, left_state.h, right_state.c,
                        right_state.h);
    } else {
      cell = sru_.Step(x, left_state.c, right_state.c);
    }
    NodeOutput out;
    out.node = node;
    out.x = x;
    out.c = cell.c;
    out.h = cell.h;
    out.logit = output_.ForwardLogit(cell.h);
    out.y = nn::Sigmoid(out.logit);
    outputs.push_back(out);
    return {cell.c, cell.h,
            YToCard(static_cast<double>(out.y->value().at(0, 0)))};
  };
  walk(root);
  return outputs;
}

double TreeModel::PredictCard(const qry::Query& query, const EstNode* root) const {
  std::vector<NodeOutput> outputs = Forward(query, root);
  LPCE_CHECK(!outputs.empty());
  return YToCard(static_cast<double>(outputs.back().y->value().at(0, 0)));
}

namespace {

struct FastState {
  nn::Matrix c;
  nn::Matrix h;
  double est_card = -1.0;
  bool injected = false;
};

}  // namespace

// Shared inference walk: per-node estimates without building a graph.
// `sink` (nullable) collects (rels, card) for every non-injected node.
static FastState FastWalk(const TreeModel& model, const nn::Mlp2& embed,
                          const nn::TreeSruCell& sru, const nn::TreeLstmCell& lstm,
                          const FeatureEncoder& encoder,
                          const TreeModelConfig& config, const qry::Query& query,
                          const EstNode* node, bool dynamic_child_cards,
                          std::vector<std::pair<qry::RelSet, double>>* sink) {
  if (node->is_injected()) {
    FastState state;
    state.c = node->injected_c->value();
    state.est_card = node->true_card;
    state.injected = true;
    return state;
  }
  FastState left_state, right_state;
  if (node->left != nullptr) {
    left_state = FastWalk(model, embed, sru, lstm, encoder, config, query,
                          node->left.get(), dynamic_child_cards, sink);
  }
  if (node->right != nullptr) {
    right_state = FastWalk(model, embed, sru, lstm, encoder, config, query,
                           node->right.get(), dynamic_child_cards, sink);
  }
  LPCE_DCHECK(node->is_leaf() ? node->table_pos >= 0 : node->join_idx >= 0);
  nn::Matrix features = node->is_leaf() ? encoder.EncodeScan(query, node->table_pos)
                                        : encoder.EncodeJoin(query, node->join_idx);
  if (config.with_child_cards) {
    double card_left = std::max(0.0, node->child_card_left);
    double card_right = std::max(0.0, node->child_card_right);
    if (dynamic_child_cards && !node->is_leaf()) {
      if (node->left->true_card < 0.0) card_left = std::max(0.0, left_state.est_card);
      if (node->right->true_card < 0.0) {
        card_right = std::max(0.0, right_state.est_card);
      }
    }
    nn::Matrix with_cards(1, features.cols() + 2);
    for (size_t j = 0; j < features.cols(); ++j) {
      with_cards.at(0, j) = features.at(0, j);
    }
    with_cards.at(0, features.cols()) = static_cast<float>(model.CardToY(card_left));
    with_cards.at(0, features.cols() + 1) =
        static_cast<float>(model.CardToY(card_right));
    features = std::move(with_cards);
  }
  nn::Matrix x = embed.Apply(features, nn::Mlp2::Activation::kRelu,
                             nn::Mlp2::Activation::kRelu);
  FastState out;
  const nn::Matrix* cl = node->left != nullptr ? &left_state.c : nullptr;
  const nn::Matrix* cr = node->right != nullptr ? &right_state.c : nullptr;
  if (config.use_lstm) {
    // Injected leaves carry no h; pass null (zero) in that case.
    const nn::Matrix* hl =
        (node->left != nullptr && !left_state.injected) ? &left_state.h : nullptr;
    const nn::Matrix* hr =
        (node->right != nullptr && !right_state.injected) ? &right_state.h
                                                          : nullptr;
    nn::CellMatrixOutput cell = lstm.Apply(x, cl, hl, cr, hr);
    out.c = std::move(cell.c);
    out.h = std::move(cell.h);
  } else {
    nn::CellMatrixOutput cell = sru.Apply(x, cl, cr);
    out.c = std::move(cell.c);
    out.h = std::move(cell.h);
  }
  nn::Matrix y = model.OutputFast(out.h);
  out.est_card = model.YToCard(static_cast<double>(y.at(0, 0)));
  if (sink != nullptr) sink->emplace_back(node->rels, out.est_card);
  return out;
}

nn::Matrix TreeModel::OutputFast(const nn::Matrix& h) const {
  return output_.Apply(h, nn::Mlp2::Activation::kRelu,
                       nn::Mlp2::Activation::kSigmoid);
}

double TreeModel::PredictCardFast(const qry::Query& query, const EstNode* root,
                                  bool dynamic_child_cards) const {
  LPCE_PROFILE_SCOPE("lpce.predict_fast");
  FastState state = FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query,
                             root, dynamic_child_cards, nullptr);
  LPCE_CHECK_MSG(!state.injected, "cannot estimate a fully-injected tree");
  return state.est_card;
}

void TreeModel::PredictAllFast(
    const qry::Query& query, const EstNode* root,
    std::vector<std::pair<qry::RelSet, double>>* out) const {
  FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query, root,
           /*dynamic_child_cards=*/false, out);
}

TreeModel::FastNodeState TreeModel::LeafStateFast(const qry::Query& query,
                                                  int table_pos) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  nn::Matrix features = encoder_->EncodeScan(query, table_pos);
  nn::Matrix x = embed_.Apply(features, nn::Mlp2::Activation::kRelu,
                              nn::Mlp2::Activation::kRelu);
  nn::CellMatrixOutput cell = config_.use_lstm
                                  ? lstm_.Apply(x, nullptr, nullptr, nullptr,
                                                nullptr)
                                  : sru_.Apply(x, nullptr, nullptr);
  FastNodeState state;
  state.card = YToCard(static_cast<double>(OutputFast(cell.h).at(0, 0)));
  state.c = std::move(cell.c);
  state.h = std::move(cell.h);
  return state;
}

TreeModel::FastNodeState TreeModel::JoinStateFast(const qry::Query& query,
                                                  int join_idx,
                                                  const FastNodeState& left,
                                                  const FastNodeState& right) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  nn::Matrix features = encoder_->EncodeJoin(query, join_idx);
  nn::Matrix x = embed_.Apply(features, nn::Mlp2::Activation::kRelu,
                              nn::Mlp2::Activation::kRelu);
  nn::CellMatrixOutput cell =
      config_.use_lstm
          ? lstm_.Apply(x, &left.c, &left.h, &right.c, &right.h)
          : sru_.Apply(x, &left.c, &right.c);
  FastNodeState state;
  state.card = YToCard(static_cast<double>(OutputFast(cell.h).at(0, 0)));
  state.c = std::move(cell.c);
  state.h = std::move(cell.h);
  return state;
}

nn::Matrix TreeModel::EncodeRootFast(const qry::Query& query,
                                     const EstNode* root) const {
  FastState state = FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query,
                             root, /*dynamic_child_cards=*/false, nullptr);
  return state.c;
}

namespace {

/// Builds the (node- or query-wise) loss over one tree's outputs; returns
/// nullptr when no labeled node exists.
nn::Tensor TreeLoss(const TreeModel& model,
                    const std::vector<TreeModel::NodeOutput>& outputs,
                    bool node_wise) {
  nn::Tensor loss;
  int terms = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!node_wise && i + 1 != outputs.size()) continue;  // root only
    const TreeModel::NodeOutput& out = outputs[i];
    if (out.node->true_card < 0.0) continue;
    nn::Matrix target(1, 1);
    target.at(0, 0) = static_cast<float>(model.CardToY(out.node->true_card));
    nn::Tensor term = nn::Abs(nn::Sub(out.y, nn::MakeTensor(target)));
    loss = loss == nullptr ? term : nn::Add(loss, term);
    ++terms;
  }
  if (loss != nullptr && terms > 1) {
    loss = nn::Scale(loss, 1.0f / static_cast<float>(terms));
  }
  return loss;
}

}  // namespace

TrainStats TrainTreeModel(TreeModel* model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& train,
                          const TrainOptions& options) {
  LPCE_PROFILE_SCOPE("train.tree_model");
  WallTimer total_timer;
  TrainStats stats;
  stats.model_tag = options.tag;
  ScopedMatMulThreads thread_cap(options.num_threads);
  nn::Adam adam(&model->params(), {.lr = options.lr});
  Rng rng(options.seed);

  // Pre-build estimation trees once (they are immutable during training).
  std::vector<std::unique_ptr<EstNode>> trees;
  trees.reserve(train.size());
  for (const auto& labeled : train) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    trees.push_back(MakeEstTree(labeled.query, logical.get(), database,
                                &labeled.true_cards));
  }

  // Optional validation split: the tail of a seed-shuffled permutation.
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> validation;
  if (options.validation_fraction > 0.0 && train.size() >= 10) {
    rng.Shuffle(&order);
    const size_t held =
        std::max<size_t>(1, static_cast<size_t>(static_cast<double>(train.size()) *
                                                options.validation_fraction));
    validation.assign(order.end() - static_cast<long>(held), order.end());
    order.resize(order.size() - held);
  }
  // Validation pass: surrogate loss plus root q-error distribution against
  // the held-out queries' final cardinalities.
  struct ValMetrics {
    double loss = -1.0;
    double qerror_mean = -1.0;
    double qerror_median = -1.0;
    double qerror_p95 = -1.0;
  };
  auto validate = [&]() {
    ValMetrics val;
    double total = 0.0;
    int count = 0;
    std::vector<double> qerrors;
    qerrors.reserve(validation.size());
    for (size_t idx : validation) {
      auto outputs = model->Forward(train[idx].query, trees[idx].get());
      nn::Tensor loss = TreeLoss(*model, outputs, options.node_wise);
      if (loss == nullptr) continue;
      total += loss->value().at(0, 0);
      ++count;
      const double est = std::max(
          1.0, model->YToCard(
                   static_cast<double>(outputs.back().y->value().at(0, 0))));
      const double act =
          std::max(1.0, static_cast<double>(train[idx].FinalCard()));
      qerrors.push_back(est > act ? est / act : act / est);
    }
    val.loss = count > 0 ? total / count : 0.0;
    if (!qerrors.empty()) {
      std::sort(qerrors.begin(), qerrors.end());
      double sum = 0.0;
      for (double q : qerrors) sum += q;
      const size_t n = qerrors.size();
      val.qerror_mean = sum / static_cast<double>(n);
      val.qerror_median = qerrors[(n - 1) / 2];
      val.qerror_p95 =
          qerrors[std::min(n - 1, static_cast<size_t>(0.95 * (n - 1) + 0.5))];
    }
    return val;
  };

  double best_validation = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::unordered_map<std::string, nn::Matrix> best_params;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    LPCE_PROFILE_SCOPE("train.epoch");
    WallTimer epoch_timer;
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batch_count = 0;
    int samples = 0;
    double grad_norm_sum = 0.0;
    int grad_norm_steps = 0;
    for (size_t idx : order) {
      const auto& labeled = train[idx];
      auto outputs = model->Forward(labeled.query, trees[idx].get());
      nn::Tensor loss = TreeLoss(*model, outputs, options.node_wise);
      if (loss == nullptr) continue;
      nn::Backward(loss);
      epoch_loss += loss->value().at(0, 0);
      ++samples;
      if (++batch_count >= options.batch_size) {
        model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
        grad_norm_sum += static_cast<double>(model->params().GradNorm());
        ++grad_norm_steps;
        model->params().ClipGradNorm(options.grad_clip);
        adam.Step();
        batch_count = 0;
      }
    }
    if (batch_count > 0) {
      model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
      grad_norm_sum += static_cast<double>(model->params().GradNorm());
      ++grad_norm_steps;
      model->params().ClipGradNorm(options.grad_clip);
      adam.Step();
    }

    EpochStats es;
    es.epoch = epoch;
    es.stage = "train";
    es.train_loss = samples > 0 ? epoch_loss / samples : 0.0;
    es.samples = samples;
    es.wall_seconds = epoch_timer.ElapsedSeconds();
    es.examples_per_sec =
        es.wall_seconds > 0.0 ? samples / es.wall_seconds : 0.0;
    es.grad_norm =
        grad_norm_steps > 0 ? grad_norm_sum / grad_norm_steps : 0.0;
    LPCE_LOG(Debug) << "tree-model epoch " << epoch << " loss "
                    << es.train_loss;

    bool stop = false;
    if (!validation.empty()) {
      const ValMetrics val = validate();
      es.validation_loss = val.loss;
      es.val_qerror_mean = val.qerror_mean;
      es.val_qerror_median = val.qerror_median;
      es.val_qerror_p95 = val.qerror_p95;
      LPCE_LOG(Debug) << "tree-model epoch " << epoch << " validation "
                      << val.loss;
      if (val.loss < best_validation) {
        best_validation = val.loss;
        epochs_since_best = 0;
        es.is_best = true;
        stats.best_epoch = epoch;
        best_params.clear();
        for (const auto& name : model->params().names()) {
          best_params.emplace(name, model->params().Get(name)->value());
        }
      } else if (++epochs_since_best >= options.patience &&
                 options.patience > 0) {
        LPCE_LOG(Debug) << "early stop at epoch " << epoch;
        stats.early_stopped = true;
        stop = true;
      }
    }
    stats.epochs.push_back(std::move(es));
    if (stop) break;
  }
  // Restore the best-validation snapshot (Sec. 7.1's held-out 10%); the
  // returned stats point at that epoch, so final_train_loss() reflects the
  // parameters the caller actually gets.
  if (!best_params.empty()) {
    for (const auto& name : model->params().names()) {
      auto it = best_params.find(name);
      if (it != best_params.end()) {
        model->params().Get(name)->mutable_value() = it->second;
      }
    }
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  RecordTrainStats(stats);
  return stats;
}

TrainStats DistillTreeModel(TreeModel* student, const TreeModel& teacher,
                            const db::Database& database,
                            const std::vector<wk::LabeledQuery>& train,
                            const DistillOptions& options) {
  LPCE_PROFILE_SCOPE("train.distill");
  WallTimer total_timer;
  TrainStats stats;
  stats.model_tag = options.tag;
  ScopedMatMulThreads thread_cap(options.num_threads);
  // Projections p_e / p_s lift student embeddings/representations to the
  // teacher's width (Eq. 4). They live in their own store: training-only.
  Rng rng(options.seed);
  nn::ParamStore proj_store;
  nn::Linear pe(&proj_store, "pe", static_cast<size_t>(student->config().dim),
                static_cast<size_t>(teacher.config().dim), &rng);
  nn::Linear ps(&proj_store, "ps", static_cast<size_t>(student->config().dim),
                static_cast<size_t>(teacher.config().dim), &rng);

  nn::Adam student_adam(&student->params(), {.lr = options.lr});
  nn::Adam proj_adam(&proj_store, {.lr = options.lr});
  Rng order_rng(options.seed + 17);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::unique_ptr<EstNode>> trees;
  trees.reserve(train.size());
  for (const auto& labeled : train) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    trees.push_back(MakeEstTree(labeled.query, logical.get(), database,
                                &labeled.true_cards));
  }

  const int total_epochs = options.hint_epochs + options.predict_epochs;
  for (int epoch = 0; epoch < total_epochs; ++epoch) {
    LPCE_PROFILE_SCOPE("train.epoch");
    WallTimer epoch_timer;
    const bool hint_stage = epoch < options.hint_epochs;
    order_rng.Shuffle(&order);
    int batch_count = 0;
    double epoch_loss = 0.0;
    int samples = 0;
    double grad_norm_sum = 0.0;
    int grad_norm_steps = 0;
    for (size_t idx : order) {
      const auto& labeled = train[idx];
      auto teacher_out = teacher.Forward(labeled.query, trees[idx].get());
      auto student_out = student->Forward(labeled.query, trees[idx].get());
      LPCE_CHECK(teacher_out.size() == student_out.size());
      nn::Tensor loss;
      for (size_t i = 0; i < student_out.size(); ++i) {
        nn::Tensor term;
        if (hint_stage) {
          // Hint loss: match embed and representation through projections.
          nn::Tensor ex = nn::Abs(
              nn::Sub(Detach(teacher_out[i].x), pe.Forward(student_out[i].x)));
          nn::Tensor eh = nn::Abs(
              nn::Sub(Detach(teacher_out[i].h), ps.Forward(student_out[i].h)));
          term = nn::Add(nn::Sum(ex), nn::Sum(eh));
        } else {
          // Prediction loss: alpha * q + (1 - alpha) * |logit_t - logit_s|.
          const double true_card = student_out[i].node->true_card;
          nn::Tensor logit_term = nn::Abs(
              nn::Sub(Detach(teacher_out[i].logit), student_out[i].logit));
          term = nn::Scale(logit_term, 1.0f - options.alpha);
          if (true_card >= 0.0) {
            nn::Matrix target(1, 1);
            target.at(0, 0) = static_cast<float>(student->CardToY(true_card));
            nn::Tensor q = nn::Abs(nn::Sub(student_out[i].y, nn::MakeTensor(target)));
            term = nn::Add(term, nn::Scale(q, options.alpha));
          }
        }
        loss = loss == nullptr ? term : nn::Add(loss, term);
      }
      if (loss == nullptr) continue;
      loss = nn::Scale(loss, 1.0f / static_cast<float>(student_out.size()));
      nn::Backward(loss);
      epoch_loss += loss->value().at(0, 0);
      ++samples;
      if (++batch_count >= options.batch_size) {
        const float scale = 1.0f / static_cast<float>(batch_count);
        student->params().ScaleGrads(scale);
        grad_norm_sum += static_cast<double>(student->params().GradNorm());
        ++grad_norm_steps;
        student->params().ClipGradNorm(options.grad_clip);
        proj_store.ScaleGrads(scale);
        proj_store.ClipGradNorm(options.grad_clip);
        student_adam.Step();
        proj_adam.Step();
        batch_count = 0;
      }
    }
    if (batch_count > 0) {
      student_adam.Step();
      proj_adam.Step();
    }
    EpochStats es;
    es.epoch = epoch;
    es.stage = hint_stage ? "hint" : "predict";
    es.train_loss = samples > 0 ? epoch_loss / samples : 0.0;
    es.samples = samples;
    es.wall_seconds = epoch_timer.ElapsedSeconds();
    es.examples_per_sec =
        es.wall_seconds > 0.0 ? samples / es.wall_seconds : 0.0;
    es.grad_norm =
        grad_norm_steps > 0 ? grad_norm_sum / grad_norm_steps : 0.0;
    stats.epochs.push_back(std::move(es));
    LPCE_LOG(Debug) << "distill epoch " << epoch
                    << (hint_stage ? " (hint)" : " (predict)");
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  RecordTrainStats(stats);
  return stats;
}

double EvaluateRootQError(const TreeModel& model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& test) {
  double total = 0.0;
  int count = 0;
  for (const auto& labeled : test) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    auto tree = MakeEstTree(labeled.query, logical.get(), database,
                            &labeled.true_cards);
    const double est = model.PredictCard(labeled.query, tree.get());
    const double act = static_cast<double>(labeled.FinalCard());
    const double q = std::max(std::max(est, 1.0), std::max(act, 1.0)) /
                     std::min(std::max(est, 1.0), std::max(act, 1.0));
    total += q;
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace lpce::model
