#include "lpce/tree_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string_view>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/timer.h"
#include "nn/kernels.h"

namespace lpce::model {

nn::Tensor Detach(const nn::Tensor& t) { return nn::MakeTensor(t->value()); }

namespace {

/// Applies a training config's matmul thread cap for the duration of a
/// training run, restoring the previous cap on exit.
class ScopedMatMulThreads {
 public:
  explicit ScopedMatMulThreads(int num_threads) : prev_(nn::MatMulThreads()) {
    nn::SetMatMulThreads(num_threads);
  }
  ~ScopedMatMulThreads() { nn::SetMatMulThreads(prev_); }

 private:
  int prev_;
};

}  // namespace

std::unique_ptr<EstNode> MakeEstTree(
    const qry::Query& query, const qry::LogicalNode* logical,
    const db::Database& database,
    const std::unordered_map<qry::RelSet, uint64_t>* labels) {
  auto node = std::make_unique<EstNode>();
  node->rels = logical->rels;
  if (labels != nullptr) {
    auto it = labels->find(logical->rels);
    if (it != labels->end()) node->true_card = static_cast<double>(it->second);
  }
  if (logical->is_leaf()) {
    node->table_pos = logical->table_pos;
    node->child_card_left = static_cast<double>(
        database.table(query.tables[logical->table_pos]).num_rows());
    node->child_card_right = 0.0;
    return node;
  }
  node->join_idx = logical->join_idx;
  node->left = MakeEstTree(query, logical->left.get(), database, labels);
  node->right = MakeEstTree(query, logical->right.get(), database, labels);
  node->child_card_left = node->left->true_card;
  node->child_card_right = node->right->true_card;
  return node;
}

TreeModel::TreeModel(const FeatureEncoder* encoder, TreeModelConfig config)
    : encoder_(encoder), config_(config) {
  LPCE_CHECK(config_.feature_dim == encoder->dim());
  Rng rng(config_.seed);
  const size_t in = static_cast<size_t>(input_dim());
  const size_t dim = static_cast<size_t>(config_.dim);
  embed_ = nn::Mlp2(&params_, "embed", in, static_cast<size_t>(config_.embed_hidden),
                    dim, &rng);
  if (config_.use_lstm) {
    lstm_ = nn::TreeLstmCell(&params_, "lstm", dim, &rng);
  } else {
    sru_ = nn::TreeSruCell(&params_, "sru", dim, &rng);
  }
  output_ = nn::Mlp2(&params_, "output", dim, static_cast<size_t>(config_.out_hidden),
                     1, &rng);
}

double TreeModel::CardToY(double card) const {
  const double y = std::log1p(std::max(0.0, card)) / config_.log_max_card;
  return std::clamp(y, 0.0, 1.0);
}

double TreeModel::YToCard(double y) const {
  return std::expm1(std::clamp(y, 0.0, 1.0) * config_.log_max_card);
}

void TreeModel::CopyParamsFrom(const TreeModel& other) {
  for (const auto& name : other.params().names()) {
    nn::Tensor src = other.params().Get(name);
    nn::Tensor dst = params_.Get(name);
    dst->mutable_value() = src->value();
  }
}

namespace {

struct ForwardState {
  nn::Tensor c;
  nn::Tensor h;
  double est_card = -1.0;  // running estimate (dynamic-cards mode)
};

}  // namespace

nn::Matrix TreeModel::BuildFeatureCache(const qry::Query& query,
                                        const EstNode* root) const {
  // Post-order count of non-injected nodes, then one encoder row each.
  size_t count = 0;
  std::function<void(const EstNode*)> count_walk = [&](const EstNode* node) {
    if (node->is_injected()) return;
    if (node->left != nullptr) count_walk(node->left.get());
    if (node->right != nullptr) count_walk(node->right.get());
    ++count;
  };
  count_walk(root);
  nn::Matrix cache(count, static_cast<size_t>(config_.feature_dim));
  size_t row = 0;
  std::function<void(const EstNode*)> fill_walk = [&](const EstNode* node) {
    if (node->is_injected()) return;
    if (node->left != nullptr) fill_walk(node->left.get());
    if (node->right != nullptr) fill_walk(node->right.get());
    float* dst = cache.data() + row * cache.cols();
    if (node->is_leaf()) {
      encoder_->EncodeScanInto(query, node->table_pos, dst);
    } else {
      encoder_->EncodeJoinInto(query, node->join_idx, dst);
    }
    ++row;
  };
  fill_walk(root);
  return cache;
}

std::vector<TreeModel::NodeOutput> TreeModel::Forward(
    const qry::Query& query, const EstNode* root, bool dynamic_child_cards,
    const nn::Matrix* feature_cache) const {
  LPCE_PROFILE_SCOPE("lpce.forward");
  std::vector<NodeOutput> outputs;
  size_t cache_row = 0;
  // Recursive lambda returning the (c, h) state of each subtree.
  std::function<ForwardState(const EstNode*)> walk =
      [&](const EstNode* node) -> ForwardState {
    if (node->is_injected()) {
      // Executed sub-plan: its encoding replaces the child encoding
      // (paper Sec. 5.1, "efficient progressive refinement").
      return {node->injected_c, nullptr, node->true_card};
    }
    ForwardState left_state, right_state;
    if (node->left != nullptr) left_state = walk(node->left.get());
    if (node->right != nullptr) right_state = walk(node->right.get());

    LPCE_DCHECK(node->is_leaf() ? node->table_pos >= 0 : node->join_idx >= 0);
    nn::Matrix features(1, static_cast<size_t>(config_.feature_dim));
    if (feature_cache != nullptr) {
      // Cached rows are the encoder's exact stores: no arithmetic, so the
      // cached and uncached passes are bit-identical.
      LPCE_DCHECK(cache_row < feature_cache->rows());
      std::memcpy(features.data(),
                  feature_cache->data() + cache_row * feature_cache->cols(),
                  feature_cache->cols() * sizeof(float));
      ++cache_row;
    } else if (node->is_leaf()) {
      encoder_->EncodeScanInto(query, node->table_pos, features.data());
    } else {
      encoder_->EncodeJoinInto(query, node->join_idx, features.data());
    }
    if (config_.with_child_cards) {
      double card_left = std::max(0.0, node->child_card_left);
      double card_right = std::max(0.0, node->child_card_right);
      if (dynamic_child_cards && !node->is_leaf()) {
        // Executed children keep their real cardinalities (true_card >= 0);
        // unexecuted ones fall back to the model's own running estimates.
        if (node->left->true_card < 0.0) {
          card_left = std::max(0.0, left_state.est_card);
        }
        if (node->right->true_card < 0.0) {
          card_right = std::max(0.0, right_state.est_card);
        }
      }
      nn::Matrix with_cards(1, features.cols() + 2);
      for (size_t j = 0; j < features.cols(); ++j) {
        with_cards.at(0, j) = features.at(0, j);
      }
      with_cards.at(0, features.cols()) = static_cast<float>(CardToY(card_left));
      with_cards.at(0, features.cols() + 1) =
          static_cast<float>(CardToY(card_right));
      features = std::move(with_cards);
    }
    nn::Tensor x = embed_.Forward(nn::MakeTensor(std::move(features)),
                                  nn::Mlp2::Activation::kRelu,
                                  nn::Mlp2::Activation::kRelu);
    nn::CellOutput cell;
    if (config_.use_lstm) {
      cell = lstm_.Step(x, left_state.c, left_state.h, right_state.c,
                        right_state.h);
    } else {
      cell = sru_.Step(x, left_state.c, right_state.c);
    }
    NodeOutput out;
    out.node = node;
    out.x = x;
    out.c = cell.c;
    out.h = cell.h;
    out.logit = output_.ForwardLogit(cell.h);
    out.y = nn::Sigmoid(out.logit);
    outputs.push_back(out);
    return {cell.c, cell.h,
            YToCard(static_cast<double>(out.y->value().at(0, 0)))};
  };
  walk(root);
  return outputs;
}

double TreeModel::PredictCard(const qry::Query& query, const EstNode* root) const {
  std::vector<NodeOutput> outputs = Forward(query, root);
  LPCE_CHECK(!outputs.empty());
  return YToCard(static_cast<double>(outputs.back().y->value().at(0, 0)));
}

namespace {

struct FastState {
  nn::Matrix c;
  nn::Matrix h;
  double est_card = -1.0;
  bool injected = false;
};

}  // namespace

// Shared inference walk: per-node estimates without building a graph.
// `sink` (nullable) collects (rels, card) for every non-injected node.
static FastState FastWalk(const TreeModel& model, const nn::Mlp2& embed,
                          const nn::TreeSruCell& sru, const nn::TreeLstmCell& lstm,
                          const FeatureEncoder& encoder,
                          const TreeModelConfig& config, const qry::Query& query,
                          const EstNode* node, bool dynamic_child_cards,
                          std::vector<std::pair<qry::RelSet, double>>* sink) {
  if (node->is_injected()) {
    FastState state;
    state.c = node->injected_c->value();
    state.est_card = node->true_card;
    state.injected = true;
    return state;
  }
  FastState left_state, right_state;
  if (node->left != nullptr) {
    left_state = FastWalk(model, embed, sru, lstm, encoder, config, query,
                          node->left.get(), dynamic_child_cards, sink);
  }
  if (node->right != nullptr) {
    right_state = FastWalk(model, embed, sru, lstm, encoder, config, query,
                           node->right.get(), dynamic_child_cards, sink);
  }
  LPCE_DCHECK(node->is_leaf() ? node->table_pos >= 0 : node->join_idx >= 0);
  nn::Matrix features = node->is_leaf() ? encoder.EncodeScan(query, node->table_pos)
                                        : encoder.EncodeJoin(query, node->join_idx);
  if (config.with_child_cards) {
    double card_left = std::max(0.0, node->child_card_left);
    double card_right = std::max(0.0, node->child_card_right);
    if (dynamic_child_cards && !node->is_leaf()) {
      if (node->left->true_card < 0.0) card_left = std::max(0.0, left_state.est_card);
      if (node->right->true_card < 0.0) {
        card_right = std::max(0.0, right_state.est_card);
      }
    }
    nn::Matrix with_cards(1, features.cols() + 2);
    for (size_t j = 0; j < features.cols(); ++j) {
      with_cards.at(0, j) = features.at(0, j);
    }
    with_cards.at(0, features.cols()) = static_cast<float>(model.CardToY(card_left));
    with_cards.at(0, features.cols() + 1) =
        static_cast<float>(model.CardToY(card_right));
    features = std::move(with_cards);
  }
  nn::Matrix x = embed.Apply(features, nn::Mlp2::Activation::kRelu,
                             nn::Mlp2::Activation::kRelu);
  FastState out;
  const nn::Matrix* cl = node->left != nullptr ? &left_state.c : nullptr;
  const nn::Matrix* cr = node->right != nullptr ? &right_state.c : nullptr;
  if (config.use_lstm) {
    // Injected leaves carry no h; pass null (zero) in that case.
    const nn::Matrix* hl =
        (node->left != nullptr && !left_state.injected) ? &left_state.h : nullptr;
    const nn::Matrix* hr =
        (node->right != nullptr && !right_state.injected) ? &right_state.h
                                                          : nullptr;
    nn::CellMatrixOutput cell = lstm.Apply(x, cl, hl, cr, hr);
    out.c = std::move(cell.c);
    out.h = std::move(cell.h);
  } else {
    nn::CellMatrixOutput cell = sru.Apply(x, cl, cr);
    out.c = std::move(cell.c);
    out.h = std::move(cell.h);
  }
  nn::Matrix y = model.OutputFast(out.h);
  out.est_card = model.YToCard(static_cast<double>(y.at(0, 0)));
  if (sink != nullptr) sink->emplace_back(node->rels, out.est_card);
  return out;
}

nn::Matrix TreeModel::OutputFast(const nn::Matrix& h) const {
  return output_.Apply(h, nn::Mlp2::Activation::kRelu,
                       nn::Mlp2::Activation::kSigmoid);
}

namespace {
// -1 = follow the LPCE_INFER_BATCH environment knob; 0/1 = forced by
// SetBatchedInferEnabled (bench/test path comparison).
std::atomic<int> g_batched_infer_override{-1};
}  // namespace

bool TreeModel::BatchedInferEnabled() {
  const int forced = g_batched_infer_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool enabled = [] {
    const char* env = std::getenv("LPCE_INFER_BATCH");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return enabled;
}

void TreeModel::SetBatchedInferEnabled(bool enabled) {
  g_batched_infer_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

double TreeModel::PredictCardFast(const qry::Query& query, const EstNode* root,
                                  bool dynamic_child_cards) const {
  LPCE_PROFILE_SCOPE("lpce.predict_fast");
  LPCE_CHECK_MSG(!root->is_injected(), "cannot estimate a fully-injected tree");
  if (BatchedInferEnabled()) {
    return Infer(query, root, dynamic_child_cards).root_card;
  }
  FastState state = FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query,
                             root, dynamic_child_cards, nullptr);
  return state.est_card;
}

void TreeModel::PredictAllFast(
    const qry::Query& query, const EstNode* root,
    std::vector<std::pair<qry::RelSet, double>>* out) const {
  if (BatchedInferEnabled()) {
    Infer(query, root, /*dynamic_child_cards=*/false, out);
    return;
  }
  FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query, root,
           /*dynamic_child_cards=*/false, out);
}

TreeModel::FastNodeState TreeModel::LeafStateFast(const qry::Query& query,
                                                  int table_pos) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  nn::Matrix features = encoder_->EncodeScan(query, table_pos);
  nn::Matrix x = embed_.Apply(features, nn::Mlp2::Activation::kRelu,
                              nn::Mlp2::Activation::kRelu);
  nn::CellMatrixOutput cell = config_.use_lstm
                                  ? lstm_.Apply(x, nullptr, nullptr, nullptr,
                                                nullptr)
                                  : sru_.Apply(x, nullptr, nullptr);
  FastNodeState state;
  state.card = YToCard(static_cast<double>(OutputFast(cell.h).at(0, 0)));
  state.c = std::move(cell.c);
  state.h = std::move(cell.h);
  return state;
}

TreeModel::FastNodeState TreeModel::JoinStateFast(const qry::Query& query,
                                                  int join_idx,
                                                  const FastNodeState& left,
                                                  const FastNodeState& right) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  nn::Matrix features = encoder_->EncodeJoin(query, join_idx);
  nn::Matrix x = embed_.Apply(features, nn::Mlp2::Activation::kRelu,
                              nn::Mlp2::Activation::kRelu);
  nn::CellMatrixOutput cell =
      config_.use_lstm
          ? lstm_.Apply(x, &left.c, &left.h, &right.c, &right.h)
          : sru_.Apply(x, &left.c, &right.c);
  FastNodeState state;
  state.card = YToCard(static_cast<double>(OutputFast(cell.h).at(0, 0)));
  state.c = std::move(cell.c);
  state.h = std::move(cell.h);
  return state;
}

nn::Matrix TreeModel::EncodeRootFast(const qry::Query& query,
                                     const EstNode* root) const {
  if (BatchedInferEnabled() && !root->is_injected()) {
    InferResult res = Infer(query, root);
    nn::Matrix c(1, static_cast<size_t>(config_.dim));
    nn::kernels::Copy(res.root_c, c.data(), c.size());
    return c;
  }
  FastState state = FastWalk(*this, embed_, sru_, lstm_, *encoder_, config_, query,
                             root, /*dynamic_child_cards=*/false, nullptr);
  return state.c;
}

// ---------------------------------------------------------------------------
// Tape-free, level-batched inference (PR 4 tentpole).
//
// Trees are flattened once into a per-thread workspace; nodes are grouped by
// depth (children are always exactly one level deeper than their parent) and
// each depth runs embed / cell / output as single [N x d] matmuls, deepest
// level first. Every kernel invocation matches the taped Forward's per-node
// operation sequence — one rounding per element per autograd op — through the
// shared out-of-line kernels in nn/kernels.h, so outputs are bit-identical
// to Forward at any batch composition.
// ---------------------------------------------------------------------------

struct TreeModel::LevelBatch {
  size_t n = 0;
  /// [n x input_dim], filled by the caller before RunLevelBatch.
  float* x_in = nullptr;
  /// Per-row child states (null = absent child / no h). h_* are only read by
  /// the LSTM cell.
  const float* const* c_left = nullptr;
  const float* const* c_right = nullptr;
  const float* const* h_left = nullptr;
  const float* const* h_right = nullptr;
  // Outputs, arena-owned: [n x dim] encodings/representations and [n] ys.
  float* c = nullptr;
  float* h = nullptr;
  float* y = nullptr;
};

namespace {

/// Reusable per-thread scratch for the flatten + level loop. Vectors keep
/// their capacity across queries, so steady-state inference does not touch
/// the heap (the float intermediates live in the InferArena).
struct InferWorkspace {
  struct FlatNode {
    const EstNode* node = nullptr;
    int left = -1;
    int right = -1;
    int tree = 0;
    int depth = 0;
    bool injected = false;
  };
  std::vector<FlatNode> nodes;
  std::vector<int> roots;            // flat index of each tree's root
  std::vector<int> post_order;       // non-injected flat indices, per tree
  std::vector<size_t> tree_post_begin;
  std::vector<int> by_depth;         // flat indices grouped by depth
  std::vector<size_t> depth_begin;
  // Per-flat-node results.
  std::vector<const float*> c_of, h_of;
  std::vector<double> card_of;
  std::vector<float> y_of;
  // Per-level scratch.
  std::vector<int> rows;             // flat index per batch row
  std::vector<const float*> cl, cr, hl, hr;
  std::vector<int> gather;           // LSTM child-pass row gather
  std::vector<int> u_gather;         // LSTM rows with a non-zero child h-sum
  // Hoisted-path compute order: non-injected flat indices, deepest level
  // first, with per-level slice bounds.
  std::vector<int> comp_rows;
  std::vector<size_t> comp_begin;
  // DFS scratch.
  struct StackEntry {
    const EstNode* node;
    int depth;
    int parent;
    bool is_right;
  };
  std::vector<StackEntry> stack;
  std::vector<std::pair<int, int>> post_stack;  // (flat idx, visit stage)
};

InferWorkspace& TlsInferWorkspace() {
  thread_local InferWorkspace ws;
  return ws;
}

}  // namespace

/// Child-independent products for a batch of rows: the embedded features and
/// every W.x linear of the recurrent cell. Computing these once for a whole
/// multi-level batch (instead of once per level) streams each weight matrix
/// through cache a single time — at the typical 1-2 rows per level of a
/// left-deep plan, weight traffic, not arithmetic, dominates.
struct TreeModel::CellPre {
  float* x = nullptr;  // [n x d] embedded features, post-relu
  // SRU: x~, and the f/r gates (already sigmoided — elementwise, so the
  // activation is batch-composition-invariant).
  float* xt = nullptr;
  float* f = nullptr;
  float* r = nullptr;
  // LSTM: pre-activation x-side products (the gate sums need U.h first).
  float* wi_x = nullptr;
  float* wo_x = nullptr;
  float* wg_x = nullptr;
  float* wf_x = nullptr;
};

namespace {

/// y = x W + b over `rows` rows — Linear::Forward's exact kernel sequence.
float* LinearRows(const nn::Linear& l, const float* in, size_t rows, size_t id,
                  size_t od, nn::InferArena* arena) {
  namespace k = nn::kernels;
  float* out = arena->Alloc(rows * od);
  k::Gemm(in, rows, id, l.weight().data(), od, out);
  k::AddBiasRows(out, rows, od, l.bias().data());
  return out;
}

}  // namespace

TreeModel::CellPre TreeModel::RunCellPre(const float* x_in, size_t n,
                                         nn::InferArena* arena) const {
  namespace k = nn::kernels;
  const size_t in_dim = static_cast<size_t>(input_dim());
  const size_t d = static_cast<size_t>(config_.dim);
  const size_t eh = static_cast<size_t>(config_.embed_hidden);
  CellPre pre;

  // Embed module: relu(relu(x W1 + b1) W2 + b2), as Mlp2::Forward(kRelu,
  // kRelu) on the taped path. The first linear's input rows are encoder
  // features — a handful of one-hots in a sea of zeros — so it runs through
  // the zero-skip product, which is bit-identical to the dense kernel
  // (skipped terms contribute fma(0, w, acc) == acc; pinned bitwise by
  // tests/nn_kernels_test.cc).
  {
    LPCE_PROFILE_SCOPE("nn.infer.embed");
    float* h1 = arena->Alloc(n * eh);
    k::GemmZeroSkip(x_in, n, in_dim, embed_.l1().weight().data(), eh, h1);
    k::AddBiasRows(h1, n, eh, embed_.l1().bias().data());
    k::Relu(h1, n * eh);
    pre.x = LinearRows(embed_.l2(), h1, n, eh, d, arena);
    k::Relu(pre.x, n * d);
  }

  {
    LPCE_PROFILE_SCOPE("nn.infer.cell");
    if (!config_.use_lstm) {
      pre.xt = LinearRows(sru_.wx(), pre.x, n, d, d, arena);
      pre.f = LinearRows(sru_.wf(), pre.x, n, d, d, arena);
      k::Sigmoid(pre.f, n * d);
      pre.r = LinearRows(sru_.wr(), pre.x, n, d, d, arena);
      k::Sigmoid(pre.r, n * d);
    } else {
      pre.wi_x = LinearRows(lstm_.wi(), pre.x, n, d, d, arena);
      pre.wo_x = LinearRows(lstm_.wo(), pre.x, n, d, d, arena);
      pre.wg_x = LinearRows(lstm_.wg(), pre.x, n, d, d, arena);
      pre.wf_x = LinearRows(lstm_.wf(), pre.x, n, d, d, arena);
    }
  }
  return pre;
}

void TreeModel::RunCellLevel(const CellPre& pre, size_t row0, size_t n,
                             const float* const* c_left,
                             const float* const* c_right,
                             const float* const* h_left,
                             const float* const* h_right, float* c, float* h,
                             nn::InferArena* arena) const {
  namespace k = nn::kernels;
  const size_t d = static_cast<size_t>(config_.dim);
  LPCE_PROFILE_SCOPE("nn.infer.cell");
  const float* x = pre.x + row0 * d;
  if (!config_.use_lstm) {
    // Tree SRU (paper Eq. 1), mirroring TreeSruCell::Step op by op. All the
    // linears live in CellPre; only elementwise work remains per level.
    const float* xt = pre.xt + row0 * d;
    const float* f = pre.f + row0 * d;
    const float* r = pre.r + row0 * d;
    // child_sum rows: Add for two children (one rounding, as SumChildren's
    // Add), plain copy for one (Step reuses the child tensor unrounded),
    // zero for none.
    float* cs = arena->Alloc(n * d);
    for (size_t row = 0; row < n; ++row) {
      const float* l = c_left[row];
      const float* rgt = c_right[row];
      float* dst = cs + row * d;
      if (l != nullptr && rgt != nullptr) {
        k::Add(l, rgt, dst, d);
      } else if (l != nullptr) {
        k::Copy(l, dst, d);
      } else if (rgt != nullptr) {
        k::Copy(rgt, dst, d);
      } else {
        k::Zero(dst, d);
      }
    }
    // c = f (.) child_sum + (1 - f) (.) x~  — four kernel calls matching
    // Mul/OneMinus/Mul/Add on the taped path (no FMA fusion across ops).
    float* t1 = arena->Alloc(n * d);
    k::Mul(f, cs, t1, n * d);
    float* om = arena->Alloc(n * d);
    k::OneMinus(f, om, n * d);
    float* t2 = arena->Alloc(n * d);
    k::Mul(om, xt, t2, n * d);
    k::Add(t1, t2, c, n * d);
    // h = r (.) tanh(c) + (1 - r) (.) x
    float* tc = arena->Alloc(n * d);
    k::Tanh(c, tc, n * d);
    float* t3 = arena->Alloc(n * d);
    k::Mul(r, tc, t3, n * d);
    k::OneMinus(r, om, n * d);
    k::Mul(om, x, t2, n * d);
    k::Add(t3, t2, h, n * d);
  } else {
    // Binary child-sum tree LSTM, mirroring TreeLstmCell::Step.
    InferWorkspace& ws = TlsInferWorkspace();
    // Rows with a zero child h-sum (leaves, and joins whose children are
    // all injected) get U*0 + bias == exactly the bias row, so the three
    // U products run only on the gathered non-zero rows — bit-identical
    // to the full product and typically half the rows of a plan level.
    ws.u_gather.clear();
    for (size_t row = 0; row < n; ++row) {
      if (h_left[row] != nullptr || h_right[row] != nullptr) {
        ws.u_gather.push_back(static_cast<int>(row));
      }
    }
    const size_t nu = ws.u_gather.size();
    float* hsg = arena->Alloc(nu * d);
    for (size_t g = 0; g < nu; ++g) {
      const size_t row = static_cast<size_t>(ws.u_gather[g]);
      const float* l = h_left[row];
      const float* rgt = h_right[row];
      float* dst = hsg + g * d;
      if (l != nullptr && rgt != nullptr) {
        k::Add(l, rgt, dst, d);
      } else {
        k::Copy(l != nullptr ? l : rgt, dst, d);
      }
    }
    // U product over the gathered rows, scattered back with bias rows in
    // the skipped slots.
    auto u_linear = [&](const nn::Linear& l) {
      float* full = arena->Alloc(n * d);
      float* g_out = arena->Alloc(nu * d);
      if (nu > 0) {
        k::Gemm(hsg, nu, d, l.weight().data(), d, g_out);
        k::AddBiasRows(g_out, nu, d, l.bias().data());
      }
      size_t g = 0;
      for (size_t row = 0; row < n; ++row) {
        if (g < nu && ws.u_gather[g] == static_cast<int>(row)) {
          k::Copy(g_out + g * d, full + row * d, d);
          ++g;
        } else {
          k::Copy(l.bias().data(), full + row * d, d);
        }
      }
      return full;
    };
    float* ui_h = u_linear(lstm_.ui());
    float* gi = arena->Alloc(n * d);
    k::Add(pre.wi_x + row0 * d, ui_h, gi, n * d);
    k::Sigmoid(gi, n * d);
    float* uo_h = u_linear(lstm_.uo());
    float* go = arena->Alloc(n * d);
    k::Add(pre.wo_x + row0 * d, uo_h, go, n * d);
    k::Sigmoid(go, n * d);
    float* ug_h = u_linear(lstm_.ug());
    float* gg = arena->Alloc(n * d);
    k::Add(pre.wg_x + row0 * d, ug_h, gg, n * d);
    k::TanhInPlace(gg, n * d);
    k::Mul(gi, gg, c, n * d);
    // Forget-gate child terms. Both children's uf products run as ONE
    // gathered Gemm — all left-child rows first, then all right-child rows —
    // so the uf weight matrix streams through cache once per level instead
    // of twice. The per-row c updates are applied in that same order, which
    // is exactly Step's left-then-right addition order, and Gemm row
    // partitioning is bitwise-invariant, so the merge is bit-identical to
    // two separate passes.
    const float* wf_x = pre.wf_x + row0 * d;
    ws.gather.clear();  // encodes (row << 1) | is_right
    for (size_t row = 0; row < n; ++row) {
      if (c_left[row] != nullptr) {
        ws.gather.push_back(static_cast<int>(row << 1));
      }
    }
    for (size_t row = 0; row < n; ++row) {
      if (c_right[row] != nullptr) {
        ws.gather.push_back(static_cast<int>((row << 1) | 1));
      }
    }
    if (!ws.gather.empty()) {
      const size_t m = ws.gather.size();
      float* hg = arena->Alloc(m * d);
      for (size_t g = 0; g < m; ++g) {
        const size_t row = static_cast<size_t>(ws.gather[g]) >> 1;
        const float* ch =
            (ws.gather[g] & 1) ? h_right[row] : h_left[row];
        if (ch != nullptr) {
          k::Copy(ch, hg + g * d, d);
        } else {
          k::Zero(hg + g * d, d);  // injected child: Step passes ZeroVec
        }
      }
      float* uf_h = LinearRows(lstm_.uf(), hg, m, d, d, arena);
      float* fk = arena->Alloc(m * d);
      for (size_t g = 0; g < m; ++g) {
        const size_t row = static_cast<size_t>(ws.gather[g]) >> 1;
        k::Add(wf_x + row * d, uf_h + g * d, fk + g * d, d);
      }
      k::Sigmoid(fk, m * d);
      float* tmp = arena->Alloc(m * d);
      for (size_t g = 0; g < m; ++g) {
        const size_t row = static_cast<size_t>(ws.gather[g]) >> 1;
        const float* cc = (ws.gather[g] & 1) ? c_right[row] : c_left[row];
        k::Mul(fk + g * d, cc, tmp + g * d, d);
        k::AddInPlace(c + row * d, tmp + g * d, d);
      }
    }
    float* tc = arena->Alloc(n * d);
    k::Tanh(c, tc, n * d);
    k::Mul(go, tc, h, n * d);
  }
}

float* TreeModel::RunOutputHead(const float* h, size_t n,
                                nn::InferArena* arena) const {
  namespace k = nn::kernels;
  const size_t d = static_cast<size_t>(config_.dim);
  const size_t oh = static_cast<size_t>(config_.out_hidden);
  // Output module: sigmoid(relu(h W1 + b1) W2 + b2) — Mlp2::ForwardLogit
  // (inner kRelu) followed by the taped path's Sigmoid.
  LPCE_PROFILE_SCOPE("nn.infer.output");
  float* o1 = LinearRows(output_.l1(), h, n, d, oh, arena);
  k::Relu(o1, n * oh);
  float* logit = LinearRows(output_.l2(), o1, n, oh, 1, arena);
  k::Sigmoid(logit, n);
  return logit;
}

void TreeModel::RunLevelBatch(LevelBatch* b, nn::InferArena* arena) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const CellPre pre = RunCellPre(b->x_in, b->n, arena);
  float* c = arena->Alloc(b->n * d);
  float* h = arena->Alloc(b->n * d);
  RunCellLevel(pre, 0, b->n, b->c_left, b->c_right, b->h_left, b->h_right, c,
               h, arena);
  b->y = RunOutputHead(h, b->n, arena);
  b->c = c;
  b->h = h;
}

void TreeModel::InferManyImpl(
    const qry::Query* const* queries, const EstNode* const* roots,
    size_t num_trees, const nn::Matrix* const* caches,
    bool dynamic_child_cards,
    std::vector<std::vector<InferNodeOutput>>* outputs,
    std::vector<std::pair<qry::RelSet, double>>* sink,
    InferResult* root_result) const {
  LPCE_PROFILE_SCOPE("nn.infer.batch");
  static common::Counter* trees_total =
      common::MetricsRegistry::Global().counter("lpce.infer.trees_total");
  static common::Counter* nodes_total =
      common::MetricsRegistry::Global().counter("lpce.infer.nodes_total");
  static common::Counter* levels_total =
      common::MetricsRegistry::Global().counter("lpce.infer.levels_total");

  InferWorkspace& ws = TlsInferWorkspace();
  nn::InferArena& arena = nn::InferArena::ThreadLocal();
  arena.Reset();

  // ---- Flatten: pre-order DFS per tree, linking children by flat index. --
  ws.nodes.clear();
  ws.roots.clear();
  ws.post_order.clear();
  ws.tree_post_begin.clear();
  int max_depth = 0;
  for (size_t t = 0; t < num_trees; ++t) {
    ws.roots.push_back(static_cast<int>(ws.nodes.size()));
    ws.stack.clear();
    ws.stack.push_back({roots[t], 0, -1, false});
    while (!ws.stack.empty()) {
      const auto [est, depth, parent, is_right] = ws.stack.back();
      ws.stack.pop_back();
      const int idx = static_cast<int>(ws.nodes.size());
      ws.nodes.push_back({est, -1, -1, static_cast<int>(t), depth,
                          est->is_injected()});
      if (parent >= 0) {
        if (is_right) {
          ws.nodes[parent].right = idx;
        } else {
          ws.nodes[parent].left = idx;
        }
      }
      if (depth > max_depth) max_depth = depth;
      if (!est->is_injected()) {
        if (est->right != nullptr) {
          ws.stack.push_back({est->right.get(), depth + 1, idx, true});
        }
        if (est->left != nullptr) {
          ws.stack.push_back({est->left.get(), depth + 1, idx, false});
        }
      }
    }
  }
  const size_t total = ws.nodes.size();

  // Post-order (non-injected) per tree, for sink/output emission and the
  // feature-cache row indexing — both follow Forward's walk order.
  for (size_t t = 0; t < num_trees; ++t) {
    ws.tree_post_begin.push_back(ws.post_order.size());
    ws.post_stack.clear();
    ws.post_stack.emplace_back(ws.roots[t], 0);
    while (!ws.post_stack.empty()) {
      auto& [idx, stage] = ws.post_stack.back();
      const InferWorkspace::FlatNode& fn = ws.nodes[idx];
      if (fn.injected) {
        ws.post_stack.pop_back();
        continue;
      }
      if (stage == 0) {
        stage = 1;
        if (fn.left >= 0) ws.post_stack.emplace_back(fn.left, 0);
      } else if (stage == 1) {
        stage = 2;
        if (fn.right >= 0) ws.post_stack.emplace_back(fn.right, 0);
      } else {
        ws.post_order.push_back(idx);
        ws.post_stack.pop_back();
      }
    }
  }
  ws.tree_post_begin.push_back(ws.post_order.size());

  // ---- Group by depth (counting sort; order within a level is stable). ---
  ws.depth_begin.assign(static_cast<size_t>(max_depth) + 2, 0);
  for (const auto& fn : ws.nodes) ++ws.depth_begin[fn.depth + 1];
  for (size_t dpt = 1; dpt < ws.depth_begin.size(); ++dpt) {
    ws.depth_begin[dpt] += ws.depth_begin[dpt - 1];
  }
  ws.by_depth.resize(total);
  {
    // Reuse `rows` as the running cursor per depth.
    ws.rows.assign(static_cast<size_t>(max_depth) + 1, 0);
    for (size_t i = 0; i < total; ++i) {
      const int dpt = ws.nodes[i].depth;
      ws.by_depth[ws.depth_begin[dpt] + ws.rows[dpt]++] = static_cast<int>(i);
    }
  }

  // ---- Per-node result slots; injected leaves are filled directly. -------
  ws.c_of.assign(total, nullptr);
  ws.h_of.assign(total, nullptr);
  ws.card_of.assign(total, 0.0);
  ws.y_of.assign(total, 0.0f);
  for (size_t i = 0; i < total; ++i) {
    if (ws.nodes[i].injected) {
      ws.c_of[i] = ws.nodes[i].node->injected_c->value().data();
      ws.card_of[i] = ws.nodes[i].node->true_card;
    }
  }

  // Feature-cache cursors: caches are indexed by post-order row, so map each
  // flat node to its post-order position up front.
  // (Reuse y_of as float storage is not possible for ints; use a dedicated
  // pass over post_order instead when filling features below.)
  thread_local std::vector<int> cache_row_of;
  cache_row_of.assign(total, -1);
  if (caches != nullptr) {
    for (size_t t = 0; t < num_trees; ++t) {
      if (caches[t] == nullptr) continue;
      int row = 0;
      for (size_t p = ws.tree_post_begin[t]; p < ws.tree_post_begin[t + 1]; ++p) {
        cache_row_of[ws.post_order[p]] = row++;
      }
    }
  }

  const size_t in_dim = static_cast<size_t>(input_dim());
  const size_t d = static_cast<size_t>(config_.dim);
  size_t levels_run = 0;

  // Fills feature rows for `n` flat indices into `dst_base`. The dynamic
  // branch substitutes just-computed child cards (LPCE-R-Single), which is
  // only legal once the children's level has run.
  auto fill_features = [&](const int* row_idx, size_t n, float* dst_base) {
    LPCE_PROFILE_SCOPE("lpce.infer.features");
    for (size_t r = 0; r < n; ++r) {
      const int flat = row_idx[r];
      const InferWorkspace::FlatNode& fn = ws.nodes[flat];
      const EstNode* node = fn.node;
      const qry::Query& query = *queries[fn.tree];
      float* dst = dst_base + r * in_dim;
      const int crow = cache_row_of[flat];
      if (crow >= 0) {
        const nn::Matrix& cache = *caches[fn.tree];
        std::memcpy(dst, cache.data() + static_cast<size_t>(crow) * cache.cols(),
                    cache.cols() * sizeof(float));
      } else if (node->is_leaf()) {
        encoder_->EncodeScanInto(query, node->table_pos, dst);
      } else {
        encoder_->EncodeJoinInto(query, node->join_idx, dst);
      }
      if (config_.with_child_cards) {
        double card_left = std::max(0.0, node->child_card_left);
        double card_right = std::max(0.0, node->child_card_right);
        if (dynamic_child_cards && !node->is_leaf()) {
          // Children live one level deeper: already computed.
          if (node->left->true_card < 0.0) {
            card_left = std::max(0.0, ws.card_of[fn.left]);
          }
          if (node->right->true_card < 0.0) {
            card_right = std::max(0.0, ws.card_of[fn.right]);
          }
        }
        dst[in_dim - 2] = static_cast<float>(CardToY(card_left));
        dst[in_dim - 1] = static_cast<float>(CardToY(card_right));
      }
    }
  };

  if (!(config_.with_child_cards && dynamic_child_cards)) {
    // ---- Hoisted path (static features): embed, every W.x product, and the
    // output head run ONCE over all rows of all levels (and all trees), so
    // each weight matrix streams through cache once per batch instead of
    // once per level — at 1-2 rows per level of a left-deep plan the level
    // loop is weight-bandwidth-bound, not FLOP-bound. Only the
    // child-dependent cell work runs per level. Bit-identical to the
    // per-level path: Gemm row partitioning is bitwise-invariant (pinned by
    // nn_kernels_test) and every elementwise kernel is value-deterministic
    // per element.
    ws.comp_rows.clear();
    ws.comp_begin.clear();
    for (int depth = max_depth; depth >= 0; --depth) {
      const size_t begin = ws.comp_rows.size();
      for (size_t s = ws.depth_begin[depth]; s < ws.depth_begin[depth + 1];
           ++s) {
        const int idx = ws.by_depth[s];
        if (!ws.nodes[idx].injected) ws.comp_rows.push_back(idx);
      }
      if (ws.comp_rows.size() > begin) ws.comp_begin.push_back(begin);
    }
    ws.comp_begin.push_back(ws.comp_rows.size());
    const size_t num_rows = ws.comp_rows.size();
    levels_run = ws.comp_begin.size() - 1;

    float* x_in = arena.Alloc(num_rows * in_dim);
    fill_features(ws.comp_rows.data(), num_rows, x_in);
    const CellPre pre = RunCellPre(x_in, num_rows, &arena);
    float* c_all = arena.Alloc(num_rows * d);
    float* h_all = arena.Alloc(num_rows * d);
    for (size_t lvl = 0; lvl + 1 < ws.comp_begin.size(); ++lvl) {
      const size_t row0 = ws.comp_begin[lvl];
      const size_t n = ws.comp_begin[lvl + 1] - row0;
      ws.cl.clear();
      ws.cr.clear();
      ws.hl.clear();
      ws.hr.clear();
      for (size_t r = 0; r < n; ++r) {
        const InferWorkspace::FlatNode& fn = ws.nodes[ws.comp_rows[row0 + r]];
        ws.cl.push_back(fn.left >= 0 ? ws.c_of[fn.left] : nullptr);
        ws.cr.push_back(fn.right >= 0 ? ws.c_of[fn.right] : nullptr);
        ws.hl.push_back(fn.left >= 0 ? ws.h_of[fn.left] : nullptr);
        ws.hr.push_back(fn.right >= 0 ? ws.h_of[fn.right] : nullptr);
      }
      RunCellLevel(pre, row0, n, ws.cl.data(), ws.cr.data(), ws.hl.data(),
                   ws.hr.data(), c_all + row0 * d, h_all + row0 * d, &arena);
      for (size_t r = 0; r < n; ++r) {
        const int idx = ws.comp_rows[row0 + r];
        ws.c_of[idx] = c_all + (row0 + r) * d;
        ws.h_of[idx] = h_all + (row0 + r) * d;
      }
    }
    const float* y_all = RunOutputHead(h_all, num_rows, &arena);
    for (size_t r = 0; r < num_rows; ++r) {
      const int idx = ws.comp_rows[r];
      ws.y_of[idx] = y_all[r];
      ws.card_of[idx] = YToCard(static_cast<double>(y_all[r]));
    }
  } else {
    // ---- Dynamic-feature level loop: deepest first, so every child's card
    // is already refined when its parent's features are built. ----
    for (int depth = max_depth; depth >= 0; --depth) {
      ws.rows.clear();
      for (size_t s = ws.depth_begin[depth]; s < ws.depth_begin[depth + 1];
           ++s) {
        const int idx = ws.by_depth[s];
        if (!ws.nodes[idx].injected) ws.rows.push_back(idx);
      }
      if (ws.rows.empty()) continue;
      ++levels_run;
      const size_t n = ws.rows.size();

      LevelBatch batch;
      batch.n = n;
      batch.x_in = arena.Alloc(n * in_dim);
      fill_features(ws.rows.data(), n, batch.x_in);
      ws.cl.clear();
      ws.cr.clear();
      ws.hl.clear();
      ws.hr.clear();
      for (size_t r = 0; r < n; ++r) {
        const InferWorkspace::FlatNode& fn = ws.nodes[ws.rows[r]];
        ws.cl.push_back(fn.left >= 0 ? ws.c_of[fn.left] : nullptr);
        ws.cr.push_back(fn.right >= 0 ? ws.c_of[fn.right] : nullptr);
        ws.hl.push_back(fn.left >= 0 ? ws.h_of[fn.left] : nullptr);
        ws.hr.push_back(fn.right >= 0 ? ws.h_of[fn.right] : nullptr);
      }
      batch.c_left = ws.cl.data();
      batch.c_right = ws.cr.data();
      batch.h_left = ws.hl.data();
      batch.h_right = ws.hr.data();

      RunLevelBatch(&batch, &arena);

      for (size_t r = 0; r < n; ++r) {
        const int idx = ws.rows[r];
        ws.c_of[idx] = batch.c + r * d;
        ws.h_of[idx] = batch.h + r * d;
        ws.y_of[idx] = batch.y[r];
        ws.card_of[idx] = YToCard(static_cast<double>(batch.y[r]));
      }
    }
  }

  trees_total->Increment(num_trees);
  nodes_total->Increment(total);
  levels_total->Increment(levels_run);

  // ---- Emit results in Forward's post-order. -----------------------------
  if (outputs != nullptr) {
    outputs->resize(num_trees);
    for (size_t t = 0; t < num_trees; ++t) {
      auto& out = (*outputs)[t];
      out.clear();
      for (size_t p = ws.tree_post_begin[t]; p < ws.tree_post_begin[t + 1]; ++p) {
        const int idx = ws.post_order[p];
        out.push_back({ws.nodes[idx].node, ws.y_of[idx], ws.card_of[idx]});
      }
    }
  }
  if (sink != nullptr) {
    for (size_t t = 0; t < num_trees; ++t) {
      for (size_t p = ws.tree_post_begin[t]; p < ws.tree_post_begin[t + 1]; ++p) {
        const int idx = ws.post_order[p];
        sink->emplace_back(ws.nodes[idx].node->rels, ws.card_of[idx]);
      }
    }
  }
  if (root_result != nullptr) {
    const int root_idx = ws.roots.empty() ? -1 : ws.roots[0];
    LPCE_CHECK(root_idx >= 0);
    root_result->root_card = ws.card_of[root_idx];
    root_result->root_c = ws.c_of[root_idx];
    root_result->root_h = ws.h_of[root_idx];
  }
}

TreeModel::InferResult TreeModel::Infer(
    const qry::Query& query, const EstNode* root, bool dynamic_child_cards,
    std::vector<std::pair<qry::RelSet, double>>* sink,
    const nn::Matrix* feature_cache) const {
  const qry::Query* q = &query;
  const nn::Matrix* const cache_arr[1] = {feature_cache};
  InferResult result;
  InferManyImpl(&q, &root, 1, feature_cache != nullptr ? cache_arr : nullptr,
                dynamic_child_cards, nullptr, sink, &result);
  return result;
}

void TreeModel::InferTrees(
    const std::vector<std::pair<const qry::Query*, const EstNode*>>& trees,
    std::vector<std::vector<InferNodeOutput>>* outputs,
    bool dynamic_child_cards,
    const std::vector<const nn::Matrix*>* caches) const {
  if (trees.empty()) {
    if (outputs != nullptr) outputs->clear();
    return;
  }
  thread_local std::vector<const qry::Query*> queries;
  thread_local std::vector<const EstNode*> roots;
  queries.clear();
  roots.clear();
  for (const auto& [q, r] : trees) {
    queries.push_back(q);
    roots.push_back(r);
  }
  LPCE_CHECK(caches == nullptr || caches->size() == trees.size());
  InferManyImpl(queries.data(), roots.data(), trees.size(),
                caches != nullptr ? caches->data() : nullptr,
                dynamic_child_cards, outputs, nullptr, nullptr);
}

void TreeModel::LeafStatesFastBatch(const qry::Query& query,
                                    const std::vector<int>& positions,
                                    std::vector<RawState>* out) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  out->resize(positions.size());
  if (positions.empty()) return;
  LPCE_PROFILE_SCOPE("nn.infer.leaf_batch");
  nn::InferArena& arena = nn::InferArena::ThreadLocal();
  InferWorkspace& ws = TlsInferWorkspace();
  const size_t n = positions.size();
  const size_t in_dim = static_cast<size_t>(input_dim());
  const size_t d = static_cast<size_t>(config_.dim);
  LevelBatch batch;
  batch.n = n;
  batch.x_in = arena.Alloc(n * in_dim);
  for (size_t r = 0; r < n; ++r) {
    encoder_->EncodeScanInto(query, positions[r], batch.x_in + r * in_dim);
  }
  ws.cl.assign(n, nullptr);
  batch.c_left = batch.c_right = batch.h_left = batch.h_right = ws.cl.data();
  RunLevelBatch(&batch, &arena);
  for (size_t r = 0; r < n; ++r) {
    (*out)[r] = {batch.c + r * d, batch.h + r * d,
                 YToCard(static_cast<double>(batch.y[r]))};
  }
}

void TreeModel::JoinStatesFastBatch(const qry::Query& query,
                                    const std::vector<JoinStateRequest>& requests,
                                    std::vector<RawState>* out) const {
  LPCE_CHECK_MSG(!config_.with_child_cards,
                 "batched states need a content-style model");
  out->resize(requests.size());
  if (requests.empty()) return;
  LPCE_PROFILE_SCOPE("nn.infer.join_batch");
  nn::InferArena& arena = nn::InferArena::ThreadLocal();
  InferWorkspace& ws = TlsInferWorkspace();
  const size_t n = requests.size();
  const size_t in_dim = static_cast<size_t>(input_dim());
  const size_t d = static_cast<size_t>(config_.dim);
  LevelBatch batch;
  batch.n = n;
  batch.x_in = arena.Alloc(n * in_dim);
  ws.cl.clear();
  ws.cr.clear();
  ws.hl.clear();
  ws.hr.clear();
  for (size_t r = 0; r < n; ++r) {
    const JoinStateRequest& req = requests[r];
    encoder_->EncodeJoinInto(query, req.join_idx, batch.x_in + r * in_dim);
    ws.cl.push_back(req.left->c);
    ws.cr.push_back(req.right->c);
    ws.hl.push_back(req.left->h);
    ws.hr.push_back(req.right->h);
  }
  batch.c_left = ws.cl.data();
  batch.c_right = ws.cr.data();
  batch.h_left = ws.hl.data();
  batch.h_right = ws.hr.data();
  RunLevelBatch(&batch, &arena);
  for (size_t r = 0; r < n; ++r) {
    (*out)[r] = {batch.c + r * d, batch.h + r * d,
                 YToCard(static_cast<double>(batch.y[r]))};
  }
}

namespace {

/// Builds the (node- or query-wise) loss over one tree's outputs; returns
/// nullptr when no labeled node exists.
nn::Tensor TreeLoss(const TreeModel& model,
                    const std::vector<TreeModel::NodeOutput>& outputs,
                    bool node_wise) {
  nn::Tensor loss;
  int terms = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!node_wise && i + 1 != outputs.size()) continue;  // root only
    const TreeModel::NodeOutput& out = outputs[i];
    if (out.node->true_card < 0.0) continue;
    nn::Matrix target(1, 1);
    target.at(0, 0) = static_cast<float>(model.CardToY(out.node->true_card));
    nn::Tensor term = nn::Abs(nn::Sub(out.y, nn::MakeTensor(target)));
    loss = loss == nullptr ? term : nn::Add(loss, term);
    ++terms;
  }
  if (loss != nullptr && terms > 1) {
    loss = nn::Scale(loss, 1.0f / static_cast<float>(terms));
  }
  return loss;
}

/// Float replication of TreeLoss over batched inference outputs. The scalar
/// Sub/Add/Scale steps run through the same kernels as the 1-element tensor
/// ops (an inline accumulation loop could be reassociated under -ffast-math),
/// so the batched validation loss is bit-equal to the taped one.
float TreeLossFast(const TreeModel& model,
                   const std::vector<TreeModel::InferNodeOutput>& outputs,
                   bool node_wise, bool* has_loss) {
  namespace k = nn::kernels;
  float loss = 0.0f;
  int terms = 0;
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!node_wise && i + 1 != outputs.size()) continue;  // root only
    const TreeModel::InferNodeOutput& out = outputs[i];
    if (out.node->true_card < 0.0) continue;
    float diff = out.y;
    const float target = static_cast<float>(model.CardToY(out.node->true_card));
    k::AddScaledInPlace(&diff, &target, -1.0f, 1);  // nn::Sub's kernel
    float term = std::fabs(diff);
    if (terms == 0) {
      loss = term;
    } else {
      k::AddInPlace(&loss, &term, 1);
    }
    ++terms;
  }
  *has_loss = terms > 0;
  if (terms > 1) k::ScaleInPlace(&loss, 1.0f / static_cast<float>(terms), 1);
  return loss;
}

/// One feature cache per training tree, built once and reused every epoch
/// (and by both models of a distillation double-forward) instead of
/// re-running the encoder per node per pass.
std::vector<nn::Matrix> BuildFeatureCaches(
    const TreeModel& model, const std::vector<wk::LabeledQuery>& train,
    const std::vector<std::unique_ptr<EstNode>>& trees) {
  LPCE_PROFILE_SCOPE("train.feature_cache");
  std::vector<nn::Matrix> caches;
  caches.reserve(trees.size());
  for (size_t i = 0; i < trees.size(); ++i) {
    caches.push_back(model.BuildFeatureCache(train[i].query, trees[i].get()));
  }
  return caches;
}

}  // namespace

TrainStats TrainTreeModel(TreeModel* model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& train,
                          const TrainOptions& options) {
  LPCE_PROFILE_SCOPE("train.tree_model");
  WallTimer total_timer;
  TrainStats stats;
  stats.model_tag = options.tag;
  ScopedMatMulThreads thread_cap(options.num_threads);
  nn::Adam adam(&model->params(), {.lr = options.lr});
  Rng rng(options.seed);

  // Pre-build estimation trees once (they are immutable during training).
  std::vector<std::unique_ptr<EstNode>> trees;
  trees.reserve(train.size());
  for (const auto& labeled : train) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    trees.push_back(MakeEstTree(labeled.query, logical.get(), database,
                                &labeled.true_cards));
  }
  // Encode every node once; epochs (and the validation passes) reuse the
  // rows instead of re-featurizing the same immutable trees.
  const std::vector<nn::Matrix> fcaches = BuildFeatureCaches(*model, train, trees);

  // Optional validation split: the tail of a seed-shuffled permutation.
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> validation;
  if (options.validation_fraction > 0.0 && train.size() >= 10) {
    rng.Shuffle(&order);
    const size_t held =
        std::max<size_t>(1, static_cast<size_t>(static_cast<double>(train.size()) *
                                                options.validation_fraction));
    validation.assign(order.end() - static_cast<long>(held), order.end());
    order.resize(order.size() - held);
  }
  // Validation pass: surrogate loss plus root q-error distribution against
  // the held-out queries' final cardinalities.
  struct ValMetrics {
    double loss = -1.0;
    double qerror_mean = -1.0;
    double qerror_median = -1.0;
    double qerror_p95 = -1.0;
  };
  auto validate = [&]() {
    ValMetrics val;
    double total = 0.0;
    int count = 0;
    std::vector<double> qerrors;
    qerrors.reserve(validation.size());
    if (TreeModel::BatchedInferEnabled()) {
      // All validation trees run as one multi-tree level-batched pass; the
      // per-node ys (and hence losses and q-errors) are bit-equal to the
      // taped Forward's.
      std::vector<std::pair<const qry::Query*, const EstNode*>> vtrees;
      std::vector<const nn::Matrix*> vcaches;
      vtrees.reserve(validation.size());
      vcaches.reserve(validation.size());
      for (size_t idx : validation) {
        vtrees.emplace_back(&train[idx].query, trees[idx].get());
        vcaches.push_back(&fcaches[idx]);
      }
      std::vector<std::vector<TreeModel::InferNodeOutput>> vouts;
      model->InferTrees(vtrees, &vouts, /*dynamic_child_cards=*/false,
                        &vcaches);
      for (size_t v = 0; v < validation.size(); ++v) {
        bool has_loss = false;
        const float loss =
            TreeLossFast(*model, vouts[v], options.node_wise, &has_loss);
        if (!has_loss) continue;
        total += static_cast<double>(loss);
        ++count;
        const double est =
            std::max(1.0, model->YToCard(
                              static_cast<double>(vouts[v].back().y)));
        const double act = std::max(
            1.0, static_cast<double>(train[validation[v]].FinalCard()));
        qerrors.push_back(est > act ? est / act : act / est);
      }
    } else {
      for (size_t idx : validation) {
        auto outputs = model->Forward(train[idx].query, trees[idx].get(),
                                      /*dynamic_child_cards=*/false,
                                      &fcaches[idx]);
        nn::Tensor loss = TreeLoss(*model, outputs, options.node_wise);
        if (loss == nullptr) continue;
        total += loss->value().at(0, 0);
        ++count;
        const double est = std::max(
            1.0, model->YToCard(
                     static_cast<double>(outputs.back().y->value().at(0, 0))));
        const double act =
            std::max(1.0, static_cast<double>(train[idx].FinalCard()));
        qerrors.push_back(est > act ? est / act : act / est);
      }
    }
    val.loss = count > 0 ? total / count : 0.0;
    if (!qerrors.empty()) {
      std::sort(qerrors.begin(), qerrors.end());
      double sum = 0.0;
      for (double q : qerrors) sum += q;
      const size_t n = qerrors.size();
      val.qerror_mean = sum / static_cast<double>(n);
      val.qerror_median = qerrors[(n - 1) / 2];
      val.qerror_p95 =
          qerrors[std::min(n - 1, static_cast<size_t>(0.95 * (n - 1) + 0.5))];
    }
    return val;
  };

  double best_validation = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::unordered_map<std::string, nn::Matrix> best_params;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    LPCE_PROFILE_SCOPE("train.epoch");
    WallTimer epoch_timer;
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batch_count = 0;
    int samples = 0;
    double grad_norm_sum = 0.0;
    int grad_norm_steps = 0;
    for (size_t idx : order) {
      const auto& labeled = train[idx];
      auto outputs = model->Forward(labeled.query, trees[idx].get(),
                                    /*dynamic_child_cards=*/false,
                                    &fcaches[idx]);
      nn::Tensor loss = TreeLoss(*model, outputs, options.node_wise);
      if (loss == nullptr) continue;
      nn::Backward(loss);
      epoch_loss += loss->value().at(0, 0);
      ++samples;
      if (++batch_count >= options.batch_size) {
        model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
        grad_norm_sum += static_cast<double>(model->params().GradNorm());
        ++grad_norm_steps;
        model->params().ClipGradNorm(options.grad_clip);
        adam.Step();
        batch_count = 0;
      }
    }
    if (batch_count > 0) {
      model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
      grad_norm_sum += static_cast<double>(model->params().GradNorm());
      ++grad_norm_steps;
      model->params().ClipGradNorm(options.grad_clip);
      adam.Step();
    }

    EpochStats es;
    es.epoch = epoch;
    es.stage = "train";
    es.train_loss = samples > 0 ? epoch_loss / samples : 0.0;
    es.samples = samples;
    es.wall_seconds = epoch_timer.ElapsedSeconds();
    es.examples_per_sec =
        es.wall_seconds > 0.0 ? samples / es.wall_seconds : 0.0;
    es.grad_norm =
        grad_norm_steps > 0 ? grad_norm_sum / grad_norm_steps : 0.0;
    LPCE_LOG(Debug) << "tree-model epoch " << epoch << " loss "
                    << es.train_loss;

    bool stop = false;
    if (!validation.empty()) {
      const ValMetrics val = validate();
      es.validation_loss = val.loss;
      es.val_qerror_mean = val.qerror_mean;
      es.val_qerror_median = val.qerror_median;
      es.val_qerror_p95 = val.qerror_p95;
      LPCE_LOG(Debug) << "tree-model epoch " << epoch << " validation "
                      << val.loss;
      if (val.loss < best_validation) {
        best_validation = val.loss;
        epochs_since_best = 0;
        es.is_best = true;
        stats.best_epoch = epoch;
        best_params.clear();
        for (const auto& name : model->params().names()) {
          best_params.emplace(name, model->params().Get(name)->value());
        }
      } else if (++epochs_since_best >= options.patience &&
                 options.patience > 0) {
        LPCE_LOG(Debug) << "early stop at epoch " << epoch;
        stats.early_stopped = true;
        stop = true;
      }
    }
    stats.epochs.push_back(std::move(es));
    if (stop) break;
  }
  // Restore the best-validation snapshot (Sec. 7.1's held-out 10%); the
  // returned stats point at that epoch, so final_train_loss() reflects the
  // parameters the caller actually gets.
  if (!best_params.empty()) {
    for (const auto& name : model->params().names()) {
      auto it = best_params.find(name);
      if (it != best_params.end()) {
        model->params().Get(name)->mutable_value() = it->second;
      }
    }
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  RecordTrainStats(stats);
  return stats;
}

TrainStats DistillTreeModel(TreeModel* student, const TreeModel& teacher,
                            const db::Database& database,
                            const std::vector<wk::LabeledQuery>& train,
                            const DistillOptions& options) {
  LPCE_PROFILE_SCOPE("train.distill");
  WallTimer total_timer;
  TrainStats stats;
  stats.model_tag = options.tag;
  ScopedMatMulThreads thread_cap(options.num_threads);
  // Projections p_e / p_s lift student embeddings/representations to the
  // teacher's width (Eq. 4). They live in their own store: training-only.
  Rng rng(options.seed);
  nn::ParamStore proj_store;
  nn::Linear pe(&proj_store, "pe", static_cast<size_t>(student->config().dim),
                static_cast<size_t>(teacher.config().dim), &rng);
  nn::Linear ps(&proj_store, "ps", static_cast<size_t>(student->config().dim),
                static_cast<size_t>(teacher.config().dim), &rng);

  nn::Adam student_adam(&student->params(), {.lr = options.lr});
  nn::Adam proj_adam(&proj_store, {.lr = options.lr});
  Rng order_rng(options.seed + 17);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::unique_ptr<EstNode>> trees;
  trees.reserve(train.size());
  for (const auto& labeled : train) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    trees.push_back(MakeEstTree(labeled.query, logical.get(), database,
                                &labeled.true_cards));
  }
  // One cache serves both forwards of the distillation double-pass when the
  // models share an encoder (the standard setup); otherwise the teacher gets
  // its own rows.
  const std::vector<nn::Matrix> scaches =
      BuildFeatureCaches(*student, train, trees);
  const bool shared_encoder = teacher.encoder() == student->encoder();
  const std::vector<nn::Matrix> tcaches =
      shared_encoder ? std::vector<nn::Matrix>()
                     : BuildFeatureCaches(teacher, train, trees);

  const int total_epochs = options.hint_epochs + options.predict_epochs;
  for (int epoch = 0; epoch < total_epochs; ++epoch) {
    LPCE_PROFILE_SCOPE("train.epoch");
    WallTimer epoch_timer;
    const bool hint_stage = epoch < options.hint_epochs;
    order_rng.Shuffle(&order);
    int batch_count = 0;
    double epoch_loss = 0.0;
    int samples = 0;
    double grad_norm_sum = 0.0;
    int grad_norm_steps = 0;
    for (size_t idx : order) {
      const auto& labeled = train[idx];
      auto teacher_out = teacher.Forward(
          labeled.query, trees[idx].get(), /*dynamic_child_cards=*/false,
          shared_encoder ? &scaches[idx] : &tcaches[idx]);
      auto student_out = student->Forward(labeled.query, trees[idx].get(),
                                          /*dynamic_child_cards=*/false,
                                          &scaches[idx]);
      LPCE_CHECK(teacher_out.size() == student_out.size());
      nn::Tensor loss;
      for (size_t i = 0; i < student_out.size(); ++i) {
        nn::Tensor term;
        if (hint_stage) {
          // Hint loss: match embed and representation through projections.
          nn::Tensor ex = nn::Abs(
              nn::Sub(Detach(teacher_out[i].x), pe.Forward(student_out[i].x)));
          nn::Tensor eh = nn::Abs(
              nn::Sub(Detach(teacher_out[i].h), ps.Forward(student_out[i].h)));
          term = nn::Add(nn::Sum(ex), nn::Sum(eh));
        } else {
          // Prediction loss: alpha * q + (1 - alpha) * |logit_t - logit_s|.
          const double true_card = student_out[i].node->true_card;
          nn::Tensor logit_term = nn::Abs(
              nn::Sub(Detach(teacher_out[i].logit), student_out[i].logit));
          term = nn::Scale(logit_term, 1.0f - options.alpha);
          if (true_card >= 0.0) {
            nn::Matrix target(1, 1);
            target.at(0, 0) = static_cast<float>(student->CardToY(true_card));
            nn::Tensor q = nn::Abs(nn::Sub(student_out[i].y, nn::MakeTensor(target)));
            term = nn::Add(term, nn::Scale(q, options.alpha));
          }
        }
        loss = loss == nullptr ? term : nn::Add(loss, term);
      }
      if (loss == nullptr) continue;
      loss = nn::Scale(loss, 1.0f / static_cast<float>(student_out.size()));
      nn::Backward(loss);
      epoch_loss += loss->value().at(0, 0);
      ++samples;
      if (++batch_count >= options.batch_size) {
        const float scale = 1.0f / static_cast<float>(batch_count);
        student->params().ScaleGrads(scale);
        grad_norm_sum += static_cast<double>(student->params().GradNorm());
        ++grad_norm_steps;
        student->params().ClipGradNorm(options.grad_clip);
        proj_store.ScaleGrads(scale);
        proj_store.ClipGradNorm(options.grad_clip);
        student_adam.Step();
        proj_adam.Step();
        batch_count = 0;
      }
    }
    if (batch_count > 0) {
      student_adam.Step();
      proj_adam.Step();
    }
    EpochStats es;
    es.epoch = epoch;
    es.stage = hint_stage ? "hint" : "predict";
    es.train_loss = samples > 0 ? epoch_loss / samples : 0.0;
    es.samples = samples;
    es.wall_seconds = epoch_timer.ElapsedSeconds();
    es.examples_per_sec =
        es.wall_seconds > 0.0 ? samples / es.wall_seconds : 0.0;
    es.grad_norm =
        grad_norm_steps > 0 ? grad_norm_sum / grad_norm_steps : 0.0;
    stats.epochs.push_back(std::move(es));
    LPCE_LOG(Debug) << "distill epoch " << epoch
                    << (hint_stage ? " (hint)" : " (predict)");
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  RecordTrainStats(stats);
  return stats;
}

double EvaluateRootQError(const TreeModel& model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& test) {
  double total = 0.0;
  int count = 0;
  for (const auto& labeled : test) {
    auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    auto tree = MakeEstTree(labeled.query, logical.get(), database,
                            &labeled.true_cards);
    const double est = model.PredictCard(labeled.query, tree.get());
    const double act = static_cast<double>(labeled.FinalCard());
    const double q = std::max(std::max(est, 1.0), std::max(act, 1.0)) /
                     std::min(std::max(est, 1.0), std::max(act, 1.0));
    total += q;
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace lpce::model
