// Per-epoch training telemetry shared by every training procedure
// (TrainTreeModel, DistillTreeModel, TrainLpceR stage 2).
//
// Each epoch produces one EpochStats record; the whole run produces one
// TrainStats report, which is (a) returned to the caller, (b) appended as
// JSONL to $LPCE_TRAIN_LOG via RecordTrainStats, and (c) surfaced through
// the metrics registry as lpce.train.* counters/histograms.
//
// JSONL schema (one object per line, key order fixed):
//   per-epoch: {"schema_version":1,"model":TAG,"stage":STAGE,"epoch":N,
//               "train_loss":F,"samples":N,"wall_seconds":F,
//               "examples_per_sec":F,"grad_norm":F,"validation_loss":F,
//               "val_qerror_mean":F,"val_qerror_median":F,
//               "val_qerror_p95":F,"is_best":B}
//   summary:   {"schema_version":1,"model":TAG,"summary":true,"epochs":N,
//               "best_epoch":N,"early_stopped":B,"final_train_loss":F,
//               "total_seconds":F}
// Validation fields are -1 when the run had no validation split. STAGE is
// "train" (TrainTreeModel), "hint"/"predict" (distillation), or "refine"
// (LPCE-R stage 2).
//
// LPCE_TRAIN_LOG: unset or "0" disables the log; "1" appends to
// ./lpce_train_log.jsonl; any other value is used as the output path.
#ifndef LPCE_LPCE_TRAIN_STATS_H_
#define LPCE_LPCE_TRAIN_STATS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lpce::model {

struct EpochStats {
  int epoch = 0;
  std::string stage = "train";
  double train_loss = 0.0;
  int samples = 0;
  double wall_seconds = 0.0;
  double examples_per_sec = 0.0;
  /// Mean pre-clip global gradient norm over the epoch's optimizer steps.
  double grad_norm = 0.0;
  // Validation metrics; -1 when the run has no validation split.
  double validation_loss = -1.0;
  double val_qerror_mean = -1.0;
  double val_qerror_median = -1.0;
  double val_qerror_p95 = -1.0;
  /// This epoch produced the best validation loss so far (its parameter
  /// snapshot is the one restored at the end of training).
  bool is_best = false;
};

struct TrainStats {
  std::string model_tag;
  std::vector<EpochStats> epochs;
  /// Index into `epochs` of the restored best-validation snapshot, or -1
  /// when training kept the last epoch's parameters (no validation split).
  int best_epoch = -1;
  bool early_stopped = false;
  double total_seconds = 0.0;

  /// Training loss of the parameters the model actually ends up with: the
  /// best-validation epoch when one was restored, else the last epoch.
  /// (The old scalar return reported the last epoch's loss even when early
  /// stopping had restored an earlier snapshot.)
  double final_train_loss() const;

  /// JSONL serialization: one line per epoch plus one summary line, each
  /// `\n`-terminated. Every line validates with ValidateTrainLogLine.
  std::string ToJsonl() const;
};

/// Thread-safe tag -> TrainStats store. The bench world records every
/// model's training telemetry here; the serving layer's workers (and any
/// concurrent bench reporter) may look entries up while other threads are
/// still recording. All access takes an internal mutex and lookups copy out,
/// so no reference into the guarded map ever escapes. (The predecessor was a
/// bare std::map on bench::World, mutated without a guard — a latent race
/// once anything multi-threaded touched the world; see DESIGN.md "Serving
/// layer".)
class TrainStatsCache {
 public:
  /// Inserts or replaces the entry for `tag`.
  void Record(const std::string& tag, TrainStats stats);

  /// Copies the entry for `tag` into *out; false when absent.
  bool Find(const std::string& tag, TrainStats* out) const;

  bool empty() const;
  size_t size() const;
  /// All recorded tags, sorted (deterministic reporting order).
  std::vector<std::string> tags() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TrainStats> stats_;
};

/// Validates one JSONL line (epoch or summary) against the schema above.
Status ValidateTrainLogLine(const std::string& line);

/// Publishes lpce.train.* metrics and appends the JSONL report to
/// $LPCE_TRAIN_LOG when enabled. Called by every training procedure;
/// best-effort (I/O errors are logged, not returned).
void RecordTrainStats(const TrainStats& stats);

/// True when LPCE_TRAIN_LOG enables the JSONL log.
bool TrainLogEnabled();

}  // namespace lpce::model

#endif  // LPCE_LPCE_TRAIN_STATS_H_
