#include "lpce/train_stats.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "common/json.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace lpce::model {

namespace {

using common::JsonParser;
using common::JsonValue;
using common::JsonWriter;
using common::RequireBool;
using common::RequireNumber;
using common::RequireString;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool ValidStage(const std::string& stage) {
  return stage == "train" || stage == "hint" || stage == "predict" ||
         stage == "refine";
}

/// Resolved once per process: nullptr when the log is off.
const std::string* TrainLogPath() {
  static const std::string* path = []() -> const std::string* {
    const char* env = std::getenv("LPCE_TRAIN_LOG");
    if (env == nullptr || env[0] == '\0' || std::string(env) == "0") {
      return nullptr;
    }
    return new std::string(std::string(env) == "1" ? "lpce_train_log.jsonl"
                                                   : env);
  }();
  return path;
}

}  // namespace

double TrainStats::final_train_loss() const {
  if (epochs.empty()) return 0.0;
  if (best_epoch >= 0 && best_epoch < static_cast<int>(epochs.size())) {
    return epochs[best_epoch].train_loss;
  }
  return epochs.back().train_loss;
}

std::string TrainStats::ToJsonl() const {
  std::string out;
  for (const EpochStats& e : epochs) {
    JsonWriter w(/*pretty=*/false);
    w.BeginObject();
    w.Key("schema_version");
    w.Value(1);
    w.Key("model");
    w.Value(model_tag);
    w.Key("stage");
    w.Value(e.stage);
    w.Key("epoch");
    w.Value(e.epoch);
    w.Key("train_loss");
    w.NumberLiteral(FormatDouble(e.train_loss));
    w.Key("samples");
    w.Value(e.samples);
    w.Key("wall_seconds");
    w.NumberLiteral(FormatDouble(e.wall_seconds));
    w.Key("examples_per_sec");
    w.NumberLiteral(FormatDouble(e.examples_per_sec));
    w.Key("grad_norm");
    w.NumberLiteral(FormatDouble(e.grad_norm));
    w.Key("validation_loss");
    w.NumberLiteral(FormatDouble(e.validation_loss));
    w.Key("val_qerror_mean");
    w.NumberLiteral(FormatDouble(e.val_qerror_mean));
    w.Key("val_qerror_median");
    w.NumberLiteral(FormatDouble(e.val_qerror_median));
    w.Key("val_qerror_p95");
    w.NumberLiteral(FormatDouble(e.val_qerror_p95));
    w.Key("is_best");
    w.Value(e.is_best);
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("model");
  w.Value(model_tag);
  w.Key("summary");
  w.Value(true);
  w.Key("epochs");
  w.Value(static_cast<int>(epochs.size()));
  w.Key("best_epoch");
  w.Value(best_epoch);
  w.Key("early_stopped");
  w.Value(early_stopped);
  w.Key("final_train_loss");
  w.NumberLiteral(FormatDouble(final_train_loss()));
  w.Key("total_seconds");
  w.NumberLiteral(FormatDouble(total_seconds));
  w.EndObject();
  out += w.str();
  out += '\n';
  return out;
}

Status ValidateTrainLogLine(const std::string& line) {
  JsonValue root;
  std::string error;
  JsonParser parser(line);
  if (!parser.Parse(&root, &error)) {
    return Status::InvalidArgument("JSON parse error: " + error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("train log line must be an object");
  }
  double version = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "schema_version", &version));
  if (version != 1.0) {
    return Status::InvalidArgument("unsupported schema_version");
  }
  std::string model;
  LPCE_RETURN_IF_ERROR(RequireString(root, "model", &model));
  if (model.empty()) return Status::InvalidArgument("empty model tag");

  if (root.Find("summary") != nullptr) {
    LPCE_RETURN_IF_ERROR(RequireBool(root, "summary"));
    double epochs = 0, best_epoch = 0, total_seconds = 0;
    LPCE_RETURN_IF_ERROR(RequireNumber(root, "epochs", &epochs));
    LPCE_RETURN_IF_ERROR(RequireNumber(root, "best_epoch", &best_epoch));
    LPCE_RETURN_IF_ERROR(RequireBool(root, "early_stopped"));
    LPCE_RETURN_IF_ERROR(RequireNumber(root, "final_train_loss", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(root, "total_seconds", &total_seconds));
    if (epochs < 0 || total_seconds < 0) {
      return Status::InvalidArgument("negative summary field");
    }
    if (best_epoch < -1 || best_epoch >= epochs) {
      return Status::InvalidArgument("best_epoch out of range");
    }
    return Status::Ok();
  }

  std::string stage;
  LPCE_RETURN_IF_ERROR(RequireString(root, "stage", &stage));
  if (!ValidStage(stage)) {
    return Status::InvalidArgument("unknown stage '" + stage + "'");
  }
  double epoch = 0, samples = 0, wall = 0, eps = 0, grad = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "epoch", &epoch));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "train_loss", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "samples", &samples));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "wall_seconds", &wall));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "examples_per_sec", &eps));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "grad_norm", &grad));
  if (epoch < 0 || samples < 0 || wall < 0 || eps < 0 || grad < 0) {
    return Status::InvalidArgument("negative epoch field");
  }
  for (const char* key :
       {"validation_loss", "val_qerror_mean", "val_qerror_median",
        "val_qerror_p95"}) {
    double v = 0;
    LPCE_RETURN_IF_ERROR(RequireNumber(root, key, &v));
    if (v < -1.0) {
      return Status::InvalidArgument(std::string("out-of-range '") + key + "'");
    }
  }
  LPCE_RETURN_IF_ERROR(RequireBool(root, "is_best"));
  return Status::Ok();
}

bool TrainLogEnabled() { return TrainLogPath() != nullptr; }

void RecordTrainStats(const TrainStats& stats) {
  {
    static common::Counter* epochs_total =
        common::MetricsRegistry::Global().counter("lpce.train.epochs_total");
    static common::Counter* examples_total =
        common::MetricsRegistry::Global().counter("lpce.train.examples_total");
    static common::Counter* runs_total =
        common::MetricsRegistry::Global().counter("lpce.train.runs_total");
    static common::Counter* early_stops_total =
        common::MetricsRegistry::Global().counter(
            "lpce.train.early_stops_total");
    static common::Histogram* epoch_seconds =
        common::MetricsRegistry::Global().histogram(
            "lpce.train.epoch_seconds");
    static common::Gauge* last_loss =
        common::MetricsRegistry::Global().gauge("lpce.train.last_loss");
    runs_total->Increment();
    if (stats.early_stopped) early_stops_total->Increment();
    epochs_total->Increment(stats.epochs.size());
    for (const EpochStats& e : stats.epochs) {
      examples_total->Increment(static_cast<uint64_t>(e.samples));
      epoch_seconds->Observe(e.wall_seconds);
    }
    last_loss->Set(stats.final_train_loss());
  }

  const std::string* path = TrainLogPath();
  if (path == nullptr) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const std::filesystem::path parent = std::filesystem::path(*path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(*path, std::ios::app);
  if (!out) {
    LPCE_LOG(Warn) << "cannot append train log to " << *path;
    return;
  }
  out << stats.ToJsonl();
}

void TrainStatsCache::Record(const std::string& tag, TrainStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[tag] = std::move(stats);
}

bool TrainStatsCache::Find(const std::string& tag, TrainStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(tag);
  if (it == stats_.end()) return false;
  *out = it->second;
  return true;
}

bool TrainStatsCache::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.empty();
}

size_t TrainStatsCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.size();
}

std::vector<std::string> TrainStatsCache::tags() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> tags;
  tags.reserve(stats_.size());
  for (const auto& [tag, stats] : stats_) tags.push_back(tag);
  return tags;  // std::map iteration is already sorted
}

}  // namespace lpce::model
