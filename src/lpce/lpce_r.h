// LPCE-R: the progressive cardinality-refinement model (paper Sec. 5).
//
// Three modules share the LPCE-I architecture: `content` embeds the executed
// sub-plan's query content, `cardinality` embeds it together with the real
// cardinalities of each executed operator's children, and `refine` estimates
// the remaining operators. A learned connect layer (Eq. 6) merges the two
// executed-sub-plan embeddings c_A / c_B into c_AB, which is injected into
// the refine module's recurrence in place of a child encoding.
//
// Training (Fig. 9) is two-stage: (1) pre-train content (exactly like
// LPCE-I) and cardinality (features ⊕ children's real cards) with the
// node-wise loss; (2) freeze both, initialize refine from content, and
// fine-tune refine + connect on execution prefixes of the training plans.
#ifndef LPCE_LPCE_LPCE_R_H_
#define LPCE_LPCE_LPCE_R_H_

#include <memory>

#include "lpce/tree_model.h"

namespace lpce::model {

/// Which modules participate — the paper's Table 3 ablation.
enum class RefinerMode {
  kFull = 0,  // content + cardinality + connect + refine (LPCE-R)
  kSingle,    // one cardinality-style module for everything (LPCE-R-Single)
  kTwo,       // cardinality + refine, no content/connect (LPCE-R-Two)
};

class LpceR {
 public:
  /// `base_config` describes the shared module structure (the LPCE-I student
  /// configuration); with_child_cards is toggled internally per module.
  LpceR(const FeatureEncoder* encoder, TreeModelConfig base_config,
        RefinerMode mode = RefinerMode::kFull);

  RefinerMode mode() const { return mode_; }

  /// Mutable module access is for training/serialization only. Once trained,
  /// all module parameters are read-only — every estimate path below is
  /// const — so a trained LpceR is safe to share across serving threads.
  TreeModel& content() { return *content_; }
  const TreeModel& content() const { return *content_; }
  TreeModel& cardinality() { return *cardinality_; }
  const TreeModel& cardinality() const { return *cardinality_; }
  TreeModel& refine() { return *refine_; }
  const TreeModel& refine() const { return *refine_; }
  nn::ParamStore& connect_params() { return connect_params_; }
  const nn::ParamStore& connect_params() const { return connect_params_; }

  /// c_AB for an executed sub-plan tree whose child_card_* fields carry the
  /// real cardinalities. The executed modules' outputs are detached unless
  /// `keep_graph` (stage-2 training never backprops into frozen modules, but
  /// the connect layer needs the graph from c_A/c_B onward).
  nn::Tensor EncodeExecuted(const qry::Query& query, const EstNode* executed) const;

  /// Estimates the cardinality of the subtree root of `tree`, which may
  /// contain injected leaves produced by EncodeExecuted.
  double EstimateTree(const qry::Query& query, const EstNode* tree) const;

  /// Connect layer (Eq. 6).
  nn::Tensor Connect(const nn::Tensor& c_content, const nn::Tensor& c_card) const;

  /// Inference fast paths (no autograd graph).
  nn::Matrix EncodeExecutedFast(const qry::Query& query,
                                const EstNode* executed) const;
  double EstimateTreeFast(const qry::Query& query, const EstNode* tree) const;
  nn::Matrix ConnectFast(const nn::Matrix& c_content,
                         const nn::Matrix& c_card) const;

  double CardToY(double card) const { return refine_->CardToY(card); }
  double YToCard(double y) const { return refine_->YToCard(y); }

  /// Serialization of all module parameters into files under `prefix`.
  Status Save(const std::string& prefix) const;
  Status Load(const std::string& prefix);

 private:
  friend struct LpceRTrainer;

  RefinerMode mode_;
  const FeatureEncoder* encoder_;
  std::unique_ptr<TreeModel> content_;
  std::unique_ptr<TreeModel> cardinality_;
  std::unique_ptr<TreeModel> refine_;
  nn::ParamStore connect_params_;
  nn::Linear wa_;
  nn::Linear wb_;
  nn::Linear wab_;
};

struct LpceRTrainOptions {
  TrainOptions pretrain;           // stage 1 (both modules)
  int refine_epochs = 6;           // stage 2
  int prefixes_per_query = 3;      // sampled executed-subtree roots per plan
  float lr = 1e-3f;
  int batch_size = 32;
  float grad_clip = 5.0f;
  uint64_t seed = 777;
  /// Optional: initialize the content module from an already-trained LPCE-I
  /// (same shapes) instead of pre-training it from scratch.
  const TreeModel* pretrained_content = nullptr;
  /// Model tag stamped into the stage-2 TrainStats / LPCE_TRAIN_LOG JSONL.
  /// Stage-1 pre-training reports separately under `pretrain.tag`.
  std::string tag = "lpce_r";
};

/// Runs the full two-stage training procedure of Fig. 9. Returns per-epoch
/// telemetry for the stage-2 refine loop (stage "refine"); the stage-1
/// pre-training runs report their own TrainStats via TrainTreeModel.
TrainStats TrainLpceR(LpceR* model, const db::Database& database,
                      const std::vector<wk::LabeledQuery>& train,
                      const LpceRTrainOptions& options);

}  // namespace lpce::model

#endif  // LPCE_LPCE_LPCE_R_H_
