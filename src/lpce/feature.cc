#include "lpce/feature.h"

#include <algorithm>
#include <cstring>

#include "common/profiler.h"

namespace lpce::model {

float FeatureEncoder::NormalizeOperand(db::ColRef col, int64_t value) const {
  const stats::ColumnStats& cs = stats_->column(col);
  const double span = static_cast<double>(cs.max_value - cs.min_value);
  if (span <= 0.0) return 0.5f;
  const double norm = (static_cast<double>(value - cs.min_value)) / span;
  return static_cast<float>(std::clamp(norm, 0.0, 1.0));
}

void FeatureEncoder::EncodeScanInto(const qry::Query& query, int table_pos,
                                    float* out) const {
  std::memset(out, 0, static_cast<size_t>(dim()) * sizeof(float));
  const int cols = catalog_->TotalColumns();
  out[0] = 1.0f;  // function = scan
  const auto preds = query.PredicatesOf(table_pos);
  if (!preds.empty()) {
    const qry::Predicate& pred = preds.front();
    const int col_id = catalog_->GlobalColumnId(pred.col);
    out[2 + cols + col_id] = 1.0f;
    out[2 + 2 * cols + static_cast<int>(pred.op)] = 1.0f;
    out[dim() - 1] = NormalizeOperand(pred.col, pred.value);
  }
}

void FeatureEncoder::EncodeJoinInto(const qry::Query& query, int join_idx,
                                    float* out) const {
  std::memset(out, 0, static_cast<size_t>(dim()) * sizeof(float));
  out[1] = 1.0f;  // function = join
  const qry::Join& join = query.joins[join_idx];
  out[2 + catalog_->GlobalColumnId(join.left)] = 1.0f;
  out[2 + catalog_->GlobalColumnId(join.right)] = 1.0f;
}

nn::Matrix FeatureEncoder::EncodeScan(const qry::Query& query, int table_pos) const {
  LPCE_PROFILE_SCOPE("lpce.encode_scan");
  nn::Matrix out(1, static_cast<size_t>(dim()), 0.0f);
  EncodeScanInto(query, table_pos, out.data());
  return out;
}

nn::Matrix FeatureEncoder::EncodeJoin(const qry::Query& query, int join_idx) const {
  LPCE_PROFILE_SCOPE("lpce.encode_join");
  nn::Matrix out(1, static_cast<size_t>(dim()), 0.0f);
  EncodeJoinInto(query, join_idx, out.data());
  return out;
}

}  // namespace lpce::model
