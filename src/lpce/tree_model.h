// The tree-structured estimation model of LPCE-I (paper Fig. 6) and its
// training procedures: node-wise / query-wise losses (Eq. 2-3) and knowledge
// distillation (Eq. 4-5, Fig. 7).
//
// The same class also instantiates the TLSTM baseline (LSTM cell +
// query-wise loss) and the LPCE-T/S/C/Q ablation variants, and serves as the
// backbone of all three LPCE-R modules (Sec. 5).
#ifndef LPCE_LPCE_TREE_MODEL_H_
#define LPCE_LPCE_TREE_MODEL_H_

#include <memory>
#include <vector>

#include "lpce/feature.h"
#include "lpce/train_stats.h"
#include "nn/adam.h"
#include "nn/arena.h"
#include "nn/cells.h"
#include "nn/layers.h"
#include "workload/workload.h"

namespace lpce::model {

/// Generalized estimation tree. Leaves are base-table scans or — during
/// LPCE-R refinement — "injected" nodes carrying a precomputed encoding of
/// an executed sub-plan. Internal nodes are joins.
struct EstNode {
  qry::RelSet rels = 0;
  int table_pos = -1;  // base-table leaves
  int join_idx = -1;   // internal nodes
  nn::Tensor injected_c;  // executed-sub-plan leaves (LPCE-R)

  /// Children cardinalities (raw tuple counts) for the cardinality module;
  /// for base leaves `left` holds the table's row count (paper Sec. 5.2).
  double child_card_left = -1.0;
  double child_card_right = -1.0;

  /// Training label: the node's true cardinality (< 0 when unknown).
  double true_card = -1.0;

  std::unique_ptr<EstNode> left;
  std::unique_ptr<EstNode> right;

  bool is_injected() const { return injected_c != nullptr; }
  bool is_leaf() const { return left == nullptr && right == nullptr; }
};

/// Converts a logical tree into an estimation tree, filling labels and
/// children cardinalities from `labels` when provided.
std::unique_ptr<EstNode> MakeEstTree(
    const qry::Query& query, const qry::LogicalNode* logical,
    const db::Database& database,
    const std::unordered_map<qry::RelSet, uint64_t>* labels);

struct TreeModelConfig {
  int feature_dim = 0;
  int dim = 64;           // embed output == recurrent hidden size
  int embed_hidden = 64;  // inner width of the embed module
  int out_hidden = 128;   // inner width of the output module
  bool use_lstm = false;  // TLSTM / LPCE-T use the tree-LSTM cell
  bool with_child_cards = false;  // LPCE-R cardinality module input
  double log_max_card = 20.0;     // log(1 + max train cardinality)
  uint64_t seed = 1;
};

/// Thread-safety: weights are mutated only by the training procedures
/// (TrainTreeModel/DistillTreeModel/TrainLpceR) and Load(); once those
/// return, the parameters are read-only — every inference entry point
/// (Forward/Infer/InferBatch) is const and touches only per-thread scratch
/// (nn::InferArena::ThreadLocal). A trained TreeModel is therefore shared
/// read-only across serving workers (engine/server.h). Do not interleave
/// training with concurrent inference on the same instance.
class TreeModel {
 public:
  struct NodeOutput {
    const EstNode* node = nullptr;
    nn::Tensor x;      // embed-module output
    nn::Tensor c;      // node encoding
    nn::Tensor h;      // node representation
    nn::Tensor logit;  // output module pre-sigmoid (distillation target)
    nn::Tensor y;      // sigmoid(logit): normalized log-cardinality
  };

  TreeModel(const FeatureEncoder* encoder, TreeModelConfig config);

  TreeModel(const TreeModel&) = delete;
  TreeModel& operator=(const TreeModel&) = delete;

  /// Runs the model over the tree; returns one output per non-injected node
  /// in post-order (the root is last).
  ///
  /// When `dynamic_child_cards` is set (LPCE-R-Single inference, Table 3),
  /// internal nodes whose children lack a true_card label take the model's
  /// own running estimates as the child-cardinality inputs instead.
  ///
  /// `feature_cache` (optional) holds one precomputed base-feature row per
  /// non-injected node in post-order (BuildFeatureCache); training reuses it
  /// across epochs instead of re-running the encoder every pass.
  std::vector<NodeOutput> Forward(const qry::Query& query, const EstNode* root,
                                  bool dynamic_child_cards = false,
                                  const nn::Matrix* feature_cache = nullptr) const;

  /// Encodes every non-injected node of the tree once: row i holds the base
  /// encoder features (width feature_dim) of the i-th post-order node.
  /// Child-cardinality columns are appended per Forward/Infer pass, so one
  /// cache serves static and dynamic modes and every model configuration.
  nn::Matrix BuildFeatureCache(const qry::Query& query, const EstNode* root) const;

  // ---- Tape-free, level-batched inference fast path (PR 4). ----
  //
  // All plan-tree nodes at the same depth run through embed / cell / output
  // as single [N x d] matmuls; every intermediate lives in the calling
  // thread's nn::InferArena, so a query performs zero heap allocations after
  // warmup. Because the taped Forward and this path funnel through the same
  // out-of-line kernels (nn/kernels.h) with the same per-node operation
  // sequence, results are bit-identical to Forward — pinned by
  // tests/infer_fastpath_test.cc.

  struct InferNodeOutput {
    const EstNode* node = nullptr;
    float y = 0.0f;    // sigmoid output, bit-equal to Forward's y
    double card = 0.0; // YToCard(y)
  };

  struct InferResult {
    double root_card = 0.0;
    /// Root encoding / representation, each `dim` floats. Arena-owned:
    /// valid until the calling thread's next Infer/PrepareQuery entry.
    const float* root_c = nullptr;
    const float* root_h = nullptr;
  };

  /// Single-tree batched inference. Resets the thread arena on entry. When
  /// `sink` is given, collects (rels, card) for every non-injected node in
  /// post-order (PredictAllFast contract).
  InferResult Infer(const qry::Query& query, const EstNode* root,
                    bool dynamic_child_cards = false,
                    std::vector<std::pair<qry::RelSet, double>>* sink = nullptr,
                    const nn::Matrix* feature_cache = nullptr) const;

  /// Multi-tree batched inference (validation forward): nodes of all trees
  /// at the same depth share one matmul per layer. outputs->at(t) receives
  /// tree t's post-order per-node outputs (vectors are reused, not shrunk).
  /// `caches` (optional, parallel to `trees`) supplies per-tree feature
  /// caches; null entries fall back to the encoder.
  void InferTrees(
      const std::vector<std::pair<const qry::Query*, const EstNode*>>& trees,
      std::vector<std::vector<InferNodeOutput>>* outputs,
      bool dynamic_child_cards = false,
      const std::vector<const nn::Matrix*>* caches = nullptr) const;

  /// Arena-backed incremental state for the batched PrepareQuery path
  /// (paper Sec. 6.1). Pointers live in the thread arena: valid until the
  /// thread's next Infer/arena reset.
  struct RawState {
    const float* c = nullptr;
    const float* h = nullptr;
    double card = 0.0;
  };

  struct JoinStateRequest {
    int join_idx = -1;
    const RawState* left = nullptr;
    const RawState* right = nullptr;
  };

  /// Batched LeafStateFast: one state per entry of `positions`, computed as
  /// a single [N x d] pass. Caller owns the arena lifecycle (reset before
  /// the first batch of a query, keep alive across popcount levels).
  void LeafStatesFastBatch(const qry::Query& query,
                           const std::vector<int>& positions,
                           std::vector<RawState>* out) const;

  /// Batched JoinStateFast: request i joins `left[i]` and `right[i]` over
  /// join edge `join_idx[i]`; all requests run as one [N x d] pass.
  void JoinStatesFastBatch(const qry::Query& query,
                           const std::vector<JoinStateRequest>& requests,
                           std::vector<RawState>* out) const;

  /// True when the batched tape-free path is enabled (env LPCE_INFER_BATCH,
  /// default on; "0" falls back to the legacy recursive fast walk).
  static bool BatchedInferEnabled();

  /// Process-wide override of the LPCE_INFER_BATCH knob, for benches and
  /// tests that compare the batched and legacy paths in one process.
  static void SetBatchedInferEnabled(bool enabled);

  /// Cardinality estimate for the root of the tree.
  double PredictCard(const qry::Query& query, const EstNode* root) const;

  /// Inference fast path (no autograd graph): root cardinality estimate.
  /// Supports injected leaves and the dynamic-child-cards mode.
  double PredictCardFast(const qry::Query& query, const EstNode* root,
                         bool dynamic_child_cards = false) const;

  /// Fast per-node estimates, keyed by relation set (post-order).
  void PredictAllFast(const qry::Query& query, const EstNode* root,
                      std::vector<std::pair<qry::RelSet, double>>* out) const;

  /// Inference fast path for the root's encoding c (LPCE-R executed-sub-plan
  /// feature extraction).
  nn::Matrix EncodeRootFast(const qry::Query& query, const EstNode* root) const;

  /// Output module on a representation h (inference fast path, internal).
  nn::Matrix OutputFast(const nn::Matrix& h) const;

  /// Incremental inference states for batched sub-plan estimation (paper
  /// Sec. 6.1: all same-level sub-query inferences share work). A state is
  /// the recurrent (c, h) pair plus the node's cardinality estimate; the
  /// canonical chain of a subset extends the chain of the subset minus its
  /// last-added table, so each connected subset costs one additional step.
  /// Only content-style models (no child-cardinality inputs) support this.
  struct FastNodeState {
    nn::Matrix c;
    nn::Matrix h;
    double card = 0.0;
  };
  FastNodeState LeafStateFast(const qry::Query& query, int table_pos) const;
  FastNodeState JoinStateFast(const qry::Query& query, int join_idx,
                              const FastNodeState& left,
                              const FastNodeState& right) const;

  /// Normalized log-cardinality <-> raw cardinality.
  double CardToY(double card) const;
  double YToCard(double y) const;

  nn::ParamStore& params() { return params_; }
  const nn::ParamStore& params() const { return params_; }
  const TreeModelConfig& config() const { return config_; }
  const FeatureEncoder* encoder() const { return encoder_; }

  /// Copies parameter values from a same-shaped model (LPCE-R initializes
  /// the refine module from the content module, Sec. 5.2).
  void CopyParamsFrom(const TreeModel& other);

 private:
  friend class TreeModelTrainer;

  int input_dim() const {
    return config_.feature_dim + (config_.with_child_cards ? 2 : 0);
  }

  /// One level's worth of batched embed + cell + output work; defined in
  /// tree_model.cc.
  struct LevelBatch;
  void RunLevelBatch(LevelBatch* batch, nn::InferArena* arena) const;

  /// The three stages RunLevelBatch and the hoisted InferManyImpl path are
  /// built from (defined in tree_model.cc). CellPre holds the
  /// child-independent products — embed plus every W.x linear — which the
  /// hoisted path computes once for all levels so each weight matrix streams
  /// through cache once per batch instead of once per level.
  struct CellPre;
  CellPre RunCellPre(const float* x_in, size_t n, nn::InferArena* arena) const;
  void RunCellLevel(const CellPre& pre, size_t row0, size_t n,
                    const float* const* c_left, const float* const* c_right,
                    const float* const* h_left, const float* const* h_right,
                    float* c, float* h, nn::InferArena* arena) const;
  float* RunOutputHead(const float* h, size_t n, nn::InferArena* arena) const;

  /// Shared driver behind Infer/InferTrees: flattens the trees, groups nodes
  /// by depth, and runs one LevelBatch per depth (deepest first). Any of
  /// `caches`, `outputs`, `sink`, `root_result` may be null.
  void InferManyImpl(const qry::Query* const* queries,
                     const EstNode* const* roots, size_t num_trees,
                     const nn::Matrix* const* caches, bool dynamic_child_cards,
                     std::vector<std::vector<InferNodeOutput>>* outputs,
                     std::vector<std::pair<qry::RelSet, double>>* sink,
                     InferResult* root_result) const;

  const FeatureEncoder* encoder_;
  TreeModelConfig config_;
  nn::ParamStore params_;
  nn::Mlp2 embed_;
  nn::TreeSruCell sru_;
  nn::TreeLstmCell lstm_;
  nn::Mlp2 output_;
};

struct TrainOptions {
  int epochs = 10;
  float lr = 1e-3f;
  int batch_size = 32;
  float grad_clip = 5.0f;
  bool node_wise = true;  // false: query-wise loss (Eq. 2) — MSCN/TLSTM style
  uint64_t seed = 123;
  /// Hold out this fraction of the training queries as a validation set
  /// (the paper holds out 10%, Sec. 7.1). When > 0, the parameters with the
  /// best validation loss are restored at the end of training, and training
  /// stops early after `patience` epochs without improvement (0 = never).
  double validation_fraction = 0.0;
  int patience = 0;
  /// Thread cap for the training matrix products (0 = global pool size,
  /// 1 = sequential). Any setting trains to bit-identical parameters — the
  /// parallel products preserve the sequential accumulation order.
  int num_threads = 0;
  /// Model tag stamped into TrainStats / the LPCE_TRAIN_LOG JSONL.
  std::string tag = "tree_model";
};

/// Trains with the (node- or query-wise) q-error surrogate |y - y*| and
/// returns per-epoch telemetry. Contract: the returned
/// TrainStats::final_train_loss() is the training loss of the parameters the
/// model is left with — the best-validation epoch when early stopping
/// restored a snapshot (best_epoch >= 0), else the last epoch.
TrainStats TrainTreeModel(TreeModel* model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& train,
                          const TrainOptions& options);

struct DistillOptions {
  int hint_epochs = 6;        // stage 1: hint loss (Eq. 4)
  int predict_epochs = 6;     // stage 2: prediction loss (Eq. 5)
  float alpha = 0.5f;         // weight between q-error and logit matching
  float lr = 1e-3f;
  int batch_size = 32;
  float grad_clip = 5.0f;
  uint64_t seed = 321;
  /// Same contract as TrainOptions::num_threads.
  int num_threads = 0;
  /// Model tag stamped into TrainStats / the LPCE_TRAIN_LOG JSONL.
  std::string tag = "distill";
};

/// Knowledge distillation: trains `student` to match `teacher` through
/// learned projections p_e / p_s, then calibrates with the prediction loss.
/// Epochs carry stage "hint" then "predict"; there is no validation split,
/// so best_epoch stays -1.
TrainStats DistillTreeModel(TreeModel* student, const TreeModel& teacher,
                            const db::Database& database,
                            const std::vector<wk::LabeledQuery>& train,
                            const DistillOptions& options);

/// Mean q-error of root predictions over a workload (evaluation helper).
double EvaluateRootQError(const TreeModel& model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& test);

/// Detaches a tensor from the autograd graph (constant copy of its value).
nn::Tensor Detach(const nn::Tensor& t);

}  // namespace lpce::model

#endif  // LPCE_LPCE_TREE_MODEL_H_
