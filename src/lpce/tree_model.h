// The tree-structured estimation model of LPCE-I (paper Fig. 6) and its
// training procedures: node-wise / query-wise losses (Eq. 2-3) and knowledge
// distillation (Eq. 4-5, Fig. 7).
//
// The same class also instantiates the TLSTM baseline (LSTM cell +
// query-wise loss) and the LPCE-T/S/C/Q ablation variants, and serves as the
// backbone of all three LPCE-R modules (Sec. 5).
#ifndef LPCE_LPCE_TREE_MODEL_H_
#define LPCE_LPCE_TREE_MODEL_H_

#include <memory>
#include <vector>

#include "lpce/feature.h"
#include "lpce/train_stats.h"
#include "nn/adam.h"
#include "nn/cells.h"
#include "nn/layers.h"
#include "workload/workload.h"

namespace lpce::model {

/// Generalized estimation tree. Leaves are base-table scans or — during
/// LPCE-R refinement — "injected" nodes carrying a precomputed encoding of
/// an executed sub-plan. Internal nodes are joins.
struct EstNode {
  qry::RelSet rels = 0;
  int table_pos = -1;  // base-table leaves
  int join_idx = -1;   // internal nodes
  nn::Tensor injected_c;  // executed-sub-plan leaves (LPCE-R)

  /// Children cardinalities (raw tuple counts) for the cardinality module;
  /// for base leaves `left` holds the table's row count (paper Sec. 5.2).
  double child_card_left = -1.0;
  double child_card_right = -1.0;

  /// Training label: the node's true cardinality (< 0 when unknown).
  double true_card = -1.0;

  std::unique_ptr<EstNode> left;
  std::unique_ptr<EstNode> right;

  bool is_injected() const { return injected_c != nullptr; }
  bool is_leaf() const { return left == nullptr && right == nullptr; }
};

/// Converts a logical tree into an estimation tree, filling labels and
/// children cardinalities from `labels` when provided.
std::unique_ptr<EstNode> MakeEstTree(
    const qry::Query& query, const qry::LogicalNode* logical,
    const db::Database& database,
    const std::unordered_map<qry::RelSet, uint64_t>* labels);

struct TreeModelConfig {
  int feature_dim = 0;
  int dim = 64;           // embed output == recurrent hidden size
  int embed_hidden = 64;  // inner width of the embed module
  int out_hidden = 128;   // inner width of the output module
  bool use_lstm = false;  // TLSTM / LPCE-T use the tree-LSTM cell
  bool with_child_cards = false;  // LPCE-R cardinality module input
  double log_max_card = 20.0;     // log(1 + max train cardinality)
  uint64_t seed = 1;
};

class TreeModel {
 public:
  struct NodeOutput {
    const EstNode* node = nullptr;
    nn::Tensor x;      // embed-module output
    nn::Tensor c;      // node encoding
    nn::Tensor h;      // node representation
    nn::Tensor logit;  // output module pre-sigmoid (distillation target)
    nn::Tensor y;      // sigmoid(logit): normalized log-cardinality
  };

  TreeModel(const FeatureEncoder* encoder, TreeModelConfig config);

  TreeModel(const TreeModel&) = delete;
  TreeModel& operator=(const TreeModel&) = delete;

  /// Runs the model over the tree; returns one output per non-injected node
  /// in post-order (the root is last).
  ///
  /// When `dynamic_child_cards` is set (LPCE-R-Single inference, Table 3),
  /// internal nodes whose children lack a true_card label take the model's
  /// own running estimates as the child-cardinality inputs instead.
  std::vector<NodeOutput> Forward(const qry::Query& query, const EstNode* root,
                                  bool dynamic_child_cards = false) const;

  /// Cardinality estimate for the root of the tree.
  double PredictCard(const qry::Query& query, const EstNode* root) const;

  /// Inference fast path (no autograd graph): root cardinality estimate.
  /// Supports injected leaves and the dynamic-child-cards mode.
  double PredictCardFast(const qry::Query& query, const EstNode* root,
                         bool dynamic_child_cards = false) const;

  /// Fast per-node estimates, keyed by relation set (post-order).
  void PredictAllFast(const qry::Query& query, const EstNode* root,
                      std::vector<std::pair<qry::RelSet, double>>* out) const;

  /// Inference fast path for the root's encoding c (LPCE-R executed-sub-plan
  /// feature extraction).
  nn::Matrix EncodeRootFast(const qry::Query& query, const EstNode* root) const;

  /// Output module on a representation h (inference fast path, internal).
  nn::Matrix OutputFast(const nn::Matrix& h) const;

  /// Incremental inference states for batched sub-plan estimation (paper
  /// Sec. 6.1: all same-level sub-query inferences share work). A state is
  /// the recurrent (c, h) pair plus the node's cardinality estimate; the
  /// canonical chain of a subset extends the chain of the subset minus its
  /// last-added table, so each connected subset costs one additional step.
  /// Only content-style models (no child-cardinality inputs) support this.
  struct FastNodeState {
    nn::Matrix c;
    nn::Matrix h;
    double card = 0.0;
  };
  FastNodeState LeafStateFast(const qry::Query& query, int table_pos) const;
  FastNodeState JoinStateFast(const qry::Query& query, int join_idx,
                              const FastNodeState& left,
                              const FastNodeState& right) const;

  /// Normalized log-cardinality <-> raw cardinality.
  double CardToY(double card) const;
  double YToCard(double y) const;

  nn::ParamStore& params() { return params_; }
  const nn::ParamStore& params() const { return params_; }
  const TreeModelConfig& config() const { return config_; }
  const FeatureEncoder* encoder() const { return encoder_; }

  /// Copies parameter values from a same-shaped model (LPCE-R initializes
  /// the refine module from the content module, Sec. 5.2).
  void CopyParamsFrom(const TreeModel& other);

 private:
  friend class TreeModelTrainer;

  int input_dim() const {
    return config_.feature_dim + (config_.with_child_cards ? 2 : 0);
  }

  const FeatureEncoder* encoder_;
  TreeModelConfig config_;
  nn::ParamStore params_;
  nn::Mlp2 embed_;
  nn::TreeSruCell sru_;
  nn::TreeLstmCell lstm_;
  nn::Mlp2 output_;
};

struct TrainOptions {
  int epochs = 10;
  float lr = 1e-3f;
  int batch_size = 32;
  float grad_clip = 5.0f;
  bool node_wise = true;  // false: query-wise loss (Eq. 2) — MSCN/TLSTM style
  uint64_t seed = 123;
  /// Hold out this fraction of the training queries as a validation set
  /// (the paper holds out 10%, Sec. 7.1). When > 0, the parameters with the
  /// best validation loss are restored at the end of training, and training
  /// stops early after `patience` epochs without improvement (0 = never).
  double validation_fraction = 0.0;
  int patience = 0;
  /// Thread cap for the training matrix products (0 = global pool size,
  /// 1 = sequential). Any setting trains to bit-identical parameters — the
  /// parallel products preserve the sequential accumulation order.
  int num_threads = 0;
  /// Model tag stamped into TrainStats / the LPCE_TRAIN_LOG JSONL.
  std::string tag = "tree_model";
};

/// Trains with the (node- or query-wise) q-error surrogate |y - y*| and
/// returns per-epoch telemetry. Contract: the returned
/// TrainStats::final_train_loss() is the training loss of the parameters the
/// model is left with — the best-validation epoch when early stopping
/// restored a snapshot (best_epoch >= 0), else the last epoch.
TrainStats TrainTreeModel(TreeModel* model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& train,
                          const TrainOptions& options);

struct DistillOptions {
  int hint_epochs = 6;        // stage 1: hint loss (Eq. 4)
  int predict_epochs = 6;     // stage 2: prediction loss (Eq. 5)
  float alpha = 0.5f;         // weight between q-error and logit matching
  float lr = 1e-3f;
  int batch_size = 32;
  float grad_clip = 5.0f;
  uint64_t seed = 321;
  /// Same contract as TrainOptions::num_threads.
  int num_threads = 0;
  /// Model tag stamped into TrainStats / the LPCE_TRAIN_LOG JSONL.
  std::string tag = "distill";
};

/// Knowledge distillation: trains `student` to match `teacher` through
/// learned projections p_e / p_s, then calibrates with the prediction loss.
/// Epochs carry stage "hint" then "predict"; there is no validation split,
/// so best_epoch stays -1.
TrainStats DistillTreeModel(TreeModel* student, const TreeModel& teacher,
                            const db::Database& database,
                            const std::vector<wk::LabeledQuery>& train,
                            const DistillOptions& options);

/// Mean q-error of root predictions over a workload (evaluation helper).
double EvaluateRootQError(const TreeModel& model, const db::Database& database,
                          const std::vector<wk::LabeledQuery>& test);

/// Detaches a tensor from the autograd graph (constant copy of its value).
nn::Tensor Detach(const nn::Tensor& t);

}  // namespace lpce::model

#endif  // LPCE_LPCE_TREE_MODEL_H_
