// Versioned registry of immutable model snapshots with a read-copy-update
// publish path — the serving side of the online feedback loop (ROADMAP
// item 1).
//
// A ModelVersion bundles everything a worker session derives its estimators
// from: the initial-estimation TreeModel (required) and, optionally, the
// LPCE-R refiner. Versions are immutable once published — the TreeModel /
// LpceR inference entry points are const and thread-safe after training, so
// a published version is safe to share read-only across every worker.
//
// RCU swap protocol:
//   - Publish() assigns the next version number and swaps the registry's
//     current pointer under a mutex (writers are rare — one per fine-tune).
//   - Current() hands out a shared_ptr<const ModelVersion>: taking it pins
//     the snapshot; the refcount is the grace period. A reader that pinned
//     version N keeps using N's models even after N+1 publishes; N is
//     destroyed when the last pinned reader drops it.
//   - Workers re-check Current() only *between* queries (engine/server.cc),
//     which yields the version-pinning invariant: a query never mixes model
//     versions between inference, refinement, and re-optimization.
//   - Publish hooks (e.g. plan-cache invalidation) run synchronously after
//     the swap, outside the registry mutex.
//
// Persistence: SaveCurrent() writes each module's ParamStore via temp-file +
// atomic rename, manifest last — the manifest is the commit point, so a
// crashed save never yields a loadable-but-torn snapshot. LoadAndPublish()
// restores into freshly constructed models (shapes must match the provided
// config) and publishes the result as a new version.
#ifndef LPCE_LPCE_MODEL_REGISTRY_H_
#define LPCE_LPCE_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "lpce/lpce_r.h"
#include "lpce/tree_model.h"

namespace lpce::model {

/// One immutable published snapshot. `model` is always set; `refiner` may be
/// null (sessions then run without LPCE-R refinement).
struct ModelVersion {
  uint64_t version = 0;
  std::string tag;  // provenance: "initial", "finetune@...", "loaded", ...
  std::shared_ptr<const TreeModel> model;
  std::shared_ptr<const LpceR> refiner;
};

class ModelRegistry {
 public:
  ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes a new version (numbers start at 1 and increase by 1 per
  /// publish). The snapshot becomes visible to subsequent Current() calls
  /// atomically; already-pinned readers are unaffected. Publish hooks run
  /// synchronously after the swap, outside the registry mutex, in
  /// registration order. Returns the published version number.
  uint64_t Publish(std::shared_ptr<const TreeModel> model,
                   std::shared_ptr<const LpceR> refiner, std::string tag);

  /// Pins and returns the current snapshot (null until the first Publish).
  /// The returned pointer stays valid — and its models unchanged — for as
  /// long as the caller holds it, regardless of later publishes.
  std::shared_ptr<const ModelVersion> Current() const;

  /// Version number of the current snapshot (0 until the first Publish).
  /// Cheap: workers poll this between queries to detect swaps.
  uint64_t CurrentVersionNumber() const;

  /// Registers a hook invoked after every publish (serving uses this for
  /// plan-cache invalidation). Returns an id for RemovePublishHook.
  using PublishHook = std::function<void(const ModelVersion&)>;
  uint64_t AddPublishHook(PublishHook hook);
  void RemovePublishHook(uint64_t id);

  /// Persists the current snapshot under `dir`: one params file per module
  /// (model.bin, refiner.{card,refine,content,connect}.bin), each written
  /// via temp + atomic rename, then the MANIFEST (version, tag, files) —
  /// also via atomic rename — as the commit point.
  Status SaveCurrent(const std::string& dir) const;

  /// Loads a SaveCurrent() snapshot into freshly built models over
  /// `encoder`/`config` (shapes must match the saved parameters) and
  /// publishes it. `mode` must match the saved refiner's mode when one was
  /// saved. Returns the published version number.
  Result<uint64_t> LoadAndPublish(const std::string& dir,
                                  const FeatureEncoder* encoder,
                                  const TreeModelConfig& config,
                                  RefinerMode mode = RefinerMode::kFull);

  struct Counters {
    uint64_t published = 0;  // Publish() calls
    uint64_t pins = 0;       // Current() calls that returned a snapshot
    uint64_t hook_runs = 0;  // publish-hook invocations
  };
  Counters counters() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelVersion> current_;
  uint64_t next_version_ = 1;
  uint64_t next_hook_id_ = 1;
  std::map<uint64_t, PublishHook> hooks_;
  mutable Counters counters_;
};

}  // namespace lpce::model

#endif  // LPCE_LPCE_MODEL_REGISTRY_H_
