#include "lpce/model_registry.h"

#include <sys/stat.h>

#include <cstdio>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace lpce::model {

namespace {

struct RegistryMetrics {
  common::Counter* published;
  common::Counter* hook_runs;
  common::Gauge* version;
};

const RegistryMetrics& Metrics() {
  static const RegistryMetrics metrics = [] {
    auto& registry = common::MetricsRegistry::Global();
    RegistryMetrics m;
    m.published = registry.counter("lpce.registry.published_total");
    m.hook_runs = registry.counter("lpce.registry.hook_runs_total");
    m.version = registry.gauge("lpce.registry.version");
    return m;
  }();
  return metrics;
}

bool EnsureDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0755) == 0;
}

// ParamStore::SaveToFile is not atomic on its own; write to a temp sibling
// and rename so a crash mid-save leaves no torn module file.
Status AtomicSaveParams(const nn::ParamStore& params, const std::string& path) {
  const std::string tmp = path + ".tmp";
  LPCE_RETURN_IF_ERROR(params.SaveToFile(tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  return Status::Ok();
}

constexpr char kManifestName[] = "MANIFEST";

}  // namespace

ModelRegistry::ModelRegistry() = default;

uint64_t ModelRegistry::Publish(std::shared_ptr<const TreeModel> model,
                                std::shared_ptr<const LpceR> refiner,
                                std::string tag) {
  LPCE_CHECK_MSG(model != nullptr, "ModelRegistry::Publish needs a model");
  auto snapshot = std::make_shared<ModelVersion>();
  snapshot->tag = std::move(tag);
  snapshot->model = std::move(model);
  snapshot->refiner = std::move(refiner);
  std::vector<PublishHook> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->version = next_version_++;
    current_ = snapshot;
    ++counters_.published;
    hooks.reserve(hooks_.size());
    for (const auto& [id, hook] : hooks_) hooks.push_back(hook);
  }
  Metrics().published->Increment();
  Metrics().version->Set(static_cast<double>(snapshot->version));
  // Outside the lock: hooks may call back into consumers of the registry
  // (plan-cache invalidation, telemetry) without risking lock inversion.
  for (const PublishHook& hook : hooks) {
    hook(*snapshot);
    Metrics().hook_runs->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.hook_runs;
  }
  return snapshot->version;
}

std::shared_ptr<const ModelVersion> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr) ++counters_.pins;
  return current_;
}

uint64_t ModelRegistry::CurrentVersionNumber() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->version;
}

uint64_t ModelRegistry::AddPublishHook(PublishHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_hook_id_++;
  hooks_[id] = std::move(hook);
  return id;
}

void ModelRegistry::RemovePublishHook(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_.erase(id);
}

Status ModelRegistry::SaveCurrent(const std::string& dir) const {
  std::shared_ptr<const ModelVersion> snapshot = Current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no published version to save");
  }
  if (!EnsureDir(dir)) return Status::IoError("cannot create dir " + dir);
  LPCE_RETURN_IF_ERROR(
      AtomicSaveParams(snapshot->model->params(), dir + "/model.bin"));
  const bool has_refiner = snapshot->refiner != nullptr;
  if (has_refiner) {
    const LpceR& r = *snapshot->refiner;
    LPCE_RETURN_IF_ERROR(
        AtomicSaveParams(r.content().params(), dir + "/refiner.content.bin"));
    LPCE_RETURN_IF_ERROR(
        AtomicSaveParams(r.cardinality().params(), dir + "/refiner.card.bin"));
    LPCE_RETURN_IF_ERROR(
        AtomicSaveParams(r.refine().params(), dir + "/refiner.refine.bin"));
    LPCE_RETURN_IF_ERROR(
        AtomicSaveParams(r.connect_params(), dir + "/refiner.connect.bin"));
  }
  // The manifest is written last, atomically: a snapshot directory without a
  // committed manifest is treated as absent by LoadAndPublish.
  const std::string manifest = dir + "/" + kManifestName;
  const std::string tmp = manifest + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + tmp);
  const int mode =
      has_refiner ? static_cast<int>(snapshot->refiner->mode()) : -1;
  const bool ok =
      std::fprintf(f, "version %llu\ntag %s\nrefiner %d\n",
                   static_cast<unsigned long long>(snapshot->version),
                   snapshot->tag.empty() ? "-" : snapshot->tag.c_str(),
                   mode) > 0 &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), manifest.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot commit " + manifest);
  }
  return Status::Ok();
}

Result<uint64_t> ModelRegistry::LoadAndPublish(const std::string& dir,
                                               const FeatureEncoder* encoder,
                                               const TreeModelConfig& config,
                                               RefinerMode mode) {
  const std::string manifest = dir + "/" + kManifestName;
  std::FILE* f = std::fopen(manifest.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("no committed snapshot at " + dir);
  }
  unsigned long long saved_version = 0;
  char tag_buf[256] = {0};
  int refiner_mode = -1;
  const int scanned = std::fscanf(f, "version %llu\ntag %255s\nrefiner %d",
                                  &saved_version, tag_buf, &refiner_mode);
  std::fclose(f);
  if (scanned != 3) return Status::IoError("malformed manifest " + manifest);

  auto model = std::make_shared<TreeModel>(encoder, config);
  LPCE_RETURN_IF_ERROR(model->params().LoadFromFile(dir + "/model.bin"));
  std::shared_ptr<LpceR> refiner;
  if (refiner_mode >= 0) {
    if (refiner_mode != static_cast<int>(mode)) {
      return Status::InvalidArgument("saved refiner mode mismatch at " + dir);
    }
    refiner = std::make_shared<LpceR>(encoder, config, mode);
    LPCE_RETURN_IF_ERROR(
        refiner->content().params().LoadFromFile(dir + "/refiner.content.bin"));
    LPCE_RETURN_IF_ERROR(
        refiner->cardinality().params().LoadFromFile(dir + "/refiner.card.bin"));
    LPCE_RETURN_IF_ERROR(
        refiner->refine().params().LoadFromFile(dir + "/refiner.refine.bin"));
    LPCE_RETURN_IF_ERROR(
        refiner->connect_params().LoadFromFile(dir + "/refiner.connect.bin"));
  }
  std::string tag(tag_buf);
  if (tag == "-") tag.clear();
  return Publish(std::move(model), std::move(refiner),
                 tag.empty() ? "loaded" : "loaded:" + tag);
}

ModelRegistry::Counters ModelRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace lpce::model
