#include "lpce/estimators.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/profiler.h"

namespace lpce::model {

std::unique_ptr<EstNode> CloneEstTree(const EstNode* node) {
  auto copy = std::make_unique<EstNode>();
  copy->rels = node->rels;
  copy->table_pos = node->table_pos;
  copy->join_idx = node->join_idx;
  copy->injected_c = node->injected_c;
  copy->child_card_left = node->child_card_left;
  copy->child_card_right = node->child_card_right;
  copy->true_card = node->true_card;
  if (node->left != nullptr) copy->left = CloneEstTree(node->left.get());
  if (node->right != nullptr) copy->right = CloneEstTree(node->right.get());
  return copy;
}

namespace {

/// Last table position the canonical builder adds for the connected subset
/// `rels` (see qry::BuildCanonicalTree: lowest bit first, then repeatedly
/// the lowest connected position).
int CanonicalLastPosition(const qry::Query& query, qry::RelSet rels) {
  qry::RelSet acc = qry::Bit(__builtin_ctz(rels));
  int last = __builtin_ctz(rels);
  while (acc != rels) {
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      if (!qry::Contains(rels, pos) || qry::Contains(acc, pos)) continue;
      if (query.JoinsBetween(acc, qry::Bit(pos)).empty()) continue;
      acc |= qry::Bit(pos);
      last = pos;
      break;
    }
  }
  return last;
}

}  // namespace

bool TreeModelEstimator::PreparedFor(const qry::Query& query) const {
  return prepared_ && prepared_tables_ == query.tables &&
         prepared_joins_ == query.joins.size() &&
         prepared_predicates_ == query.predicates.size();
}

void TreeModelEstimator::PrepareQuery(const qry::Query& query) {
  LPCE_PROFILE_SCOPE("lpce.prepare_query");
  static common::Counter* prepared_total =
      common::MetricsRegistry::Global().counter(
          "lpce.tree_model.prepared_queries_total");
  prepared_total->Increment();
  prepared_ = false;
  prepared_cards_.clear();
  if (model_->config().with_child_cards) return;  // unsupported; lazy path
  if (TreeModel::BatchedInferEnabled()) {
    // Batched incremental chain (paper Sec. 6.1 + PR 4): all leaves run as
    // one [T x d] pass, then every connected subset of each popcount size
    // runs as one pass — its canonical prefix has one table fewer, so the
    // whole level's inputs exist before the level starts. States live in the
    // thread's inference arena: reset once here, kept alive across levels,
    // so a prepared query does zero heap allocations after warmup.
    static common::Counter* level_batches_total =
        common::MetricsRegistry::Global().counter(
            "lpce.infer.subplan_level_batches_total");
    nn::InferArena::ThreadLocal().Reset();
    std::unordered_map<qry::RelSet, TreeModel::RawState> states;
    std::vector<int> positions(static_cast<size_t>(query.num_tables()));
    for (int pos = 0; pos < query.num_tables(); ++pos) positions[pos] = pos;
    std::vector<TreeModel::RawState> level_states;
    model_->LeafStatesFastBatch(query, positions, &level_states);
    level_batches_total->Increment();
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      states[qry::Bit(pos)] = level_states[pos];
      prepared_cards_[qry::Bit(pos)] = level_states[pos].card;
    }
    const qry::RelSet all = query.AllRels();
    std::vector<qry::RelSet> level_rels;
    std::vector<TreeModel::JoinStateRequest> requests;
    for (int size = 2; size <= query.num_tables(); ++size) {
      level_rels.clear();
      requests.clear();
      for (qry::RelSet rels = 1; rels <= all; ++rels) {
        if (qry::PopCount(rels) != size || !query.IsConnected(rels)) continue;
        const int last = CanonicalLastPosition(query, rels);
        const qry::RelSet prefix = rels & ~qry::Bit(last);
        auto it = states.find(prefix);
        LPCE_CHECK_MSG(it != states.end(), "canonical prefix must be computed");
        const auto joins = query.JoinsBetween(prefix, qry::Bit(last));
        LPCE_CHECK(!joins.empty());
        level_rels.push_back(rels);
        // unordered_map references are stable across inserts.
        requests.push_back({joins[0], &it->second, &states[qry::Bit(last)]});
      }
      if (requests.empty()) continue;
      model_->JoinStatesFastBatch(query, requests, &level_states);
      level_batches_total->Increment();
      for (size_t i = 0; i < level_rels.size(); ++i) {
        states[level_rels[i]] = level_states[i];
        prepared_cards_[level_rels[i]] = level_states[i].card;
      }
    }
  } else {
    // Legacy one-node-at-a-time chain: the canonical chain of S minus its
    // last-added table is a strict prefix of S's chain, so
    // state(S) = JoinStep(state(S \ last), leaf(last)).
    std::unordered_map<qry::RelSet, TreeModel::FastNodeState> states;
    std::vector<TreeModel::FastNodeState> leaves(query.tables.size());
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      leaves[pos] = model_->LeafStateFast(query, pos);
      states[qry::Bit(pos)] = leaves[pos];
      prepared_cards_[qry::Bit(pos)] = leaves[pos].card;
    }
    // Enumerate connected subsets grouped by size.
    const qry::RelSet all = query.AllRels();
    for (int size = 2; size <= query.num_tables(); ++size) {
      for (qry::RelSet rels = 1; rels <= all; ++rels) {
        if (qry::PopCount(rels) != size || !query.IsConnected(rels)) continue;
        const int last = CanonicalLastPosition(query, rels);
        const qry::RelSet prefix = rels & ~qry::Bit(last);
        auto it = states.find(prefix);
        LPCE_CHECK_MSG(it != states.end(), "canonical prefix must be computed");
        const auto joins = query.JoinsBetween(prefix, qry::Bit(last));
        LPCE_CHECK(!joins.empty());
        TreeModel::FastNodeState state = model_->JoinStateFast(
            query, joins[0], it->second, leaves[last]);
        prepared_cards_[rels] = state.card;
        states[rels] = std::move(state);
      }
    }
  }
  prepared_tables_ = query.tables;
  prepared_joins_ = query.joins.size();
  prepared_predicates_ = query.predicates.size();
  prepared_ = true;
}

double TreeModelEstimator::EstimateSubset(const qry::Query& query,
                                          qry::RelSet rels) {
  if (PreparedFor(query)) {
    auto it = prepared_cards_.find(rels);
    if (it != prepared_cards_.end()) return it->second;
  }
  auto logical = qry::BuildCanonicalTree(query, rels);
  auto tree = MakeEstTree(query, logical.get(), *db_, nullptr);
  return model_->PredictCardFast(query, tree.get());
}

void LpceREstimator::ObserveActual(const qry::Query& query, qry::RelSet rels,
                                   double actual) {
  if (roots_.count(rels) > 0) return;  // duplicate observation
  static common::Counter* observations_total =
      common::MetricsRegistry::Global().counter(
          "lpce.refiner.observations_total");
  observations_total->Increment();
  auto node = std::make_unique<EstNode>();
  node->rels = rels;
  node->true_card = actual;
  if (qry::PopCount(rels) == 1) {
    node->table_pos = __builtin_ctz(rels);
    node->child_card_left = static_cast<double>(
        db_->table(query.tables[node->table_pos]).num_rows());
    node->child_card_right = 0.0;
  } else {
    // Find two previously-observed roots that partition `rels`.
    qry::RelSet left_rels = 0;
    for (const auto& [r, tree] : roots_) {
      if ((r & rels) == r && roots_.count(rels & ~r) > 0) {
        left_rels = r;
        break;
      }
    }
    if (left_rels == 0) {
      // Fallback (the engine always reports children first, but be robust):
      // synthesize a canonical tree for the whole set.
      auto logical = qry::BuildCanonicalTree(query, rels);
      node = MakeEstTree(query, logical.get(), *db_, nullptr);
      node->true_card = actual;
    } else {
      const qry::RelSet right_rels = rels & ~left_rels;
      auto joins = query.JoinsBetween(left_rels, right_rels);
      LPCE_CHECK(!joins.empty());
      node->join_idx = joins[0];
      node->left = std::move(roots_[left_rels]);
      node->right = std::move(roots_[right_rels]);
      roots_.erase(left_rels);
      roots_.erase(right_rels);
      encoding_cache_.erase(left_rels);
      encoding_cache_.erase(right_rels);
      node->child_card_left = node->left->true_card;
      node->child_card_right = node->right->true_card;
    }
  }
  roots_[rels] = std::move(node);
}

nn::Tensor LpceREstimator::EncodingFor(const qry::Query& query, qry::RelSet rels) {
  auto it = encoding_cache_.find(rels);
  if (it != encoding_cache_.end()) return it->second;
  auto root_it = roots_.find(rels);
  LPCE_CHECK(root_it != roots_.end());
  nn::Tensor enc = nn::MakeTensor(
      model_->EncodeExecutedFast(query, root_it->second.get()));
  encoding_cache_[rels] = enc;
  return enc;
}

double LpceREstimator::EstimateSubset(const qry::Query& query, qry::RelSet rels) {
  LPCE_PROFILE_SCOPE("lpce.refiner_estimate");
  static common::Counter* estimates_total =
      common::MetricsRegistry::Global().counter("lpce.refiner.estimates_total");
  estimates_total->Increment();
  // Units: maximal executed subtrees inside `rels` + uncovered base tables.
  struct Unit {
    qry::RelSet rels;
    const EstNode* executed = nullptr;  // null for base tables
  };
  std::vector<Unit> units;
  qry::RelSet covered = 0;
  for (const auto& [r, tree] : roots_) {
    if ((r & rels) == r) {
      units.push_back({r, tree.get()});
      covered |= r;
    }
  }
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (qry::Contains(rels, pos) && !qry::Contains(covered, pos)) {
      units.push_back({qry::Bit(pos), nullptr});
    }
  }
  LPCE_CHECK(!units.empty());

  // Left-deep tree over units, greedily attaching a connected unit.
  std::sort(units.begin(), units.end(),
            [](const Unit& a, const Unit& b) { return a.rels < b.rels; });
  const bool single_mode = model_->mode() == RefinerMode::kSingle;

  auto make_leaf = [&](const Unit& unit) -> std::unique_ptr<EstNode> {
    if (unit.executed != nullptr) {
      if (single_mode) {
        // LPCE-R-Single re-processes the executed subtree with real cards.
        return CloneEstTree(unit.executed);
      }
      auto leaf = std::make_unique<EstNode>();
      leaf->rels = unit.rels;
      leaf->injected_c = EncodingFor(query, unit.rels);
      leaf->true_card = unit.executed->true_card;
      return leaf;
    }
    auto leaf = std::make_unique<EstNode>();
    leaf->rels = unit.rels;
    leaf->table_pos = __builtin_ctz(unit.rels);
    leaf->child_card_left = static_cast<double>(
        db_->table(query.tables[leaf->table_pos]).num_rows());
    leaf->child_card_right = 0.0;
    return leaf;
  };

  std::vector<bool> used(units.size(), false);
  std::unique_ptr<EstNode> acc = make_leaf(units[0]);
  used[0] = true;
  size_t remaining = units.size() - 1;
  while (remaining > 0) {
    bool attached = false;
    for (size_t i = 0; i < units.size(); ++i) {
      if (used[i]) continue;
      auto joins = query.JoinsBetween(acc->rels, units[i].rels);
      if (joins.empty()) continue;
      auto parent = std::make_unique<EstNode>();
      parent->rels = acc->rels | units[i].rels;
      parent->join_idx = joins[0];
      auto right = make_leaf(units[i]);
      parent->child_card_left = acc->true_card;
      parent->child_card_right = right->true_card;
      parent->left = std::move(acc);
      parent->right = std::move(right);
      acc = std::move(parent);
      used[i] = true;
      --remaining;
      attached = true;
      break;
    }
    LPCE_CHECK_MSG(attached, "estimate subset must be connected");
  }
  return model_->EstimateTreeFast(query, acc.get());
}

}  // namespace lpce::model
