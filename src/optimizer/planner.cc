#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/fpclass.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/timer.h"

namespace lpce::opt {

namespace {

/// DP table entry for one unit mask: best cost plus the decisions needed to
/// reconstruct the plan (kept as masks, not trees, so losing candidates cost
/// nothing to discard).
struct Entry {
  double cost = std::numeric_limits<double>::infinity();
  double card = 0.0;
  bool feasible = false;
  // Join decision (internal nodes).
  exec::PhysOp op = exec::PhysOp::kHashJoin;
  uint32_t outer_mask = 0;
  uint32_t inner_mask = 0;
  int join_idx = -1;
  // Scan decision (leaves).
  bool use_index = false;
  db::ColRef index_col;
};

}  // namespace

PlanResult Planner::Plan(const qry::Query& query,
                         card::CardinalityEstimator* estimator) {
  std::vector<PlanUnit> units;
  units.reserve(query.tables.size());
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    PlanUnit unit;
    unit.rels = qry::Bit(pos);
    unit.table_pos = pos;
    units.push_back(std::move(unit));
  }
  return PlanUnits(query, estimator, units);
}

PlanResult Planner::PlanUnits(const qry::Query& query,
                              card::CardinalityEstimator* estimator,
                              const std::vector<PlanUnit>& units) {
  // Inference below re-labels itself T_I; the search skeleton stays with the
  // enclosing phase (T_P for the initial plan, T_R during re-optimization).
  LPCE_PROFILE_SCOPE("planner.plan_units");
  WallTimer total_timer;
  PlanResult result;

  const int n = static_cast<int>(units.size());
  LPCE_CHECK(n >= 1 && n <= 20);
  const uint32_t full = (uint32_t{1} << n) - 1;

  std::vector<qry::RelSet> covered(uint64_t{1} << n, 0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int low = __builtin_ctz(mask);
    covered[mask] = covered[mask & (mask - 1)] | units[low].rels;
  }
  {
    qry::RelSet all = covered[full];
    LPCE_CHECK_MSG(all == query.AllRels(), "units must cover the whole query");
  }

  // Estimation pool: one inference per unique table subset (Sec. 6.1). Built
  // into the result so the plan cache can reuse it on template hits.
  std::unordered_map<qry::RelSet, double>& pool = result.pool;
  auto estimate = [&](uint32_t mask) -> double {
    // Exactly-one-pseudo-unit masks have exactly known cardinality.
    if ((mask & (mask - 1)) == 0) {
      const PlanUnit& unit = units[__builtin_ctz(mask)];
      if (unit.known_card >= 0.0) return unit.known_card;
    }
    const qry::RelSet rels = covered[mask];
    auto it = pool.find(rels);
    if (it != pool.end()) return it->second;
    LPCE_PROFILE_SCOPE("T_I.estimate");
    WallTimer timer;
    double card = estimator->EstimateSubset(query, rels);
    // Explicit degenerate-estimate guard: NaN and negative estimates clamp
    // to 0 rows (the cost model additionally sanitizes on its side, so a
    // 0-row input can never produce a NaN cost that corrupts DP comparison).
    if (common::IsNan(card) || card < 0.0) card = 0.0;
    result.inference_seconds += timer.ElapsedSeconds();
    ++result.num_estimates;
    pool.emplace(rels, card);
    return card;
  };

  std::vector<Entry> best(uint64_t{1} << n);

  // Leaves.
  for (int i = 0; i < n; ++i) {
    const uint32_t mask = uint32_t{1} << i;
    Entry& entry = best[mask];
    entry.card = estimate(mask);
    entry.feasible = true;
    const PlanUnit& unit = units[i];
    if (unit.materialized != nullptr) {
      entry.cost = cost_model_.PseudoScanCost(entry.card);
      continue;
    }
    const int32_t table_id = query.tables[unit.table_pos];
    const auto preds = query.PredicatesOf(unit.table_pos);
    const double table_rows =
        static_cast<double>(db_->table(table_id).num_rows());
    entry.cost = cost_model_.SeqScanCost(table_rows, static_cast<int>(preds.size()));
    for (const auto& pred : preds) {
      if (pred.op == qry::CmpOp::kNe) continue;
      const double index_cost = cost_model_.IndexScanCost(
          entry.card, static_cast<int>(preds.size()) - 1);
      if (index_cost < entry.cost) {
        entry.cost = index_cost;
        entry.use_index = true;
        entry.index_col = pred.col;
      }
    }
  }

  // DPsize over connected unit subsets; iterating masks in increasing
  // numeric order works because every strict submask is smaller.
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // leaf
    if (!query.IsConnected(covered[mask])) continue;
    Entry& entry = best[mask];
    double out_card = -1.0;
    for (uint32_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const uint32_t other = mask ^ sub;
      if (!best[sub].feasible || !best[other].feasible) continue;
      const auto joins = query.JoinsBetween(covered[sub], covered[other]);
      if (joins.empty()) continue;
      if (out_card < 0.0) out_card = estimate(mask);
      const double outer_rows = best[sub].card;
      const double inner_rows = best[other].card;
      // Multigraph cuts: the first edge drives the join, the rest are
      // residual filters charged to the cost (and attached during build).
      const int num_residual = static_cast<int>(joins.size()) - 1;
      for (exec::PhysOp op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                              exec::PhysOp::kNestLoopJoin}) {
        const double cost =
            best[sub].cost + best[other].cost +
            cost_model_.JoinCost(op, outer_rows, inner_rows, out_card,
                                 num_residual);
        if (cost < entry.cost) {
          entry.cost = cost;
          entry.card = out_card;
          entry.feasible = true;
          entry.op = op;
          entry.outer_mask = sub;
          entry.inner_mask = other;
          entry.join_idx = joins[0];
        }
      }
    }
  }

  LPCE_CHECK_MSG(best[full].feasible, "query join graph must be connected");

  // Reconstruct the winning plan.
  std::function<std::unique_ptr<exec::PlanNode>(uint32_t)> build =
      [&](uint32_t mask) -> std::unique_ptr<exec::PlanNode> {
    const Entry& entry = best[mask];
    auto node = std::make_unique<exec::PlanNode>();
    node->rels = covered[mask];
    node->est_card = entry.card;
    node->est_cost = entry.cost;
    if ((mask & (mask - 1)) == 0) {
      const PlanUnit& unit = units[__builtin_ctz(mask)];
      if (unit.materialized != nullptr) {
        node->op = exec::PhysOp::kPseudoScan;
        node->pseudo = unit.materialized;
      } else {
        node->table_pos = unit.table_pos;
        node->filters = query.PredicatesOf(unit.table_pos);
        if (entry.use_index) {
          node->op = exec::PhysOp::kIndexScan;
          node->index_col = entry.index_col;
        } else {
          node->op = exec::PhysOp::kSeqScan;
        }
      }
      return node;
    }
    node->op = entry.op;
    node->outer = build(entry.outer_mask);
    node->inner = build(entry.inner_mask);
    const qry::Join& join = query.joins[entry.join_idx];
    const int left_pos = query.PositionOf(join.left.table);
    if (qry::Contains(node->outer->rels, left_pos)) {
      node->outer_key = join.left;
      node->inner_key = join.right;
    } else {
      node->outer_key = join.right;
      node->inner_key = join.left;
    }
    // Every additional edge crossing this cut becomes a residual filter so
    // no equi-join predicate is silently dropped (multigraph queries).
    for (int join_idx :
         query.JoinsBetween(node->outer->rels, node->inner->rels)) {
      if (join_idx == entry.join_idx) continue;
      const qry::Join& extra = query.joins[join_idx];
      const int extra_left = query.PositionOf(extra.left.table);
      if (qry::Contains(node->outer->rels, extra_left)) {
        node->residual_keys.emplace_back(extra.left, extra.right);
      } else {
        node->residual_keys.emplace_back(extra.right, extra.left);
      }
    }
    return node;
  };
  result.plan = build(full);
  result.search_seconds =
      std::max(0.0, total_timer.ElapsedSeconds() - result.inference_seconds);
  {
    static common::Counter* plans_total =
        common::MetricsRegistry::Global().counter("planner.plans_total");
    static common::Counter* estimates_total =
        common::MetricsRegistry::Global().counter("planner.estimates_total");
    static common::Histogram* search_seconds =
        common::MetricsRegistry::Global().histogram("planner.search_seconds");
    plans_total->Increment();
    estimates_total->Increment(result.num_estimates);
    search_seconds->Observe(result.search_seconds);
  }
  return result;
}

}  // namespace lpce::opt
