// Dynamic-programming plan enumeration (PostgreSQL-style, paper Sec. 6.1).
//
// The planner enumerates connected subsets of "plan units". For initial
// optimization every unit is a base table; during re-optimization some units
// are pseudo relations — materialized intermediates of the executed sub-plan
// with exactly known cardinalities (Sec. 6.2). For each subset it picks the
// cheapest combination of join order, join algorithm (hash/merge/nested
// loop), and scan method (sequential/index), using cardinalities from a
// pluggable estimator memoized in an estimation pool.
#ifndef LPCE_OPTIMIZER_PLANNER_H_
#define LPCE_OPTIMIZER_PLANNER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "card/estimator.h"
#include "exec/plan.h"
#include "optimizer/cost_model.h"
#include "storage/database.h"

namespace lpce::opt {

/// One atom of plan enumeration: a base table or a materialized intermediate.
struct PlanUnit {
  qry::RelSet rels = 0;          // covered positions in Query::tables
  int table_pos = -1;            // >= 0 for base tables
  exec::RowSetPtr materialized;  // non-null for pseudo relations
  double known_card = -1.0;      // exact cardinality for pseudo relations
};

struct PlanResult {
  std::unique_ptr<exec::PlanNode> plan;
  double search_seconds = 0.0;     // T_P: DP enumeration time
  double inference_seconds = 0.0;  // T_I: estimator time (unique subsets)
  size_t num_estimates = 0;        // unique cardinality estimations performed
  /// The estimation pool (subset -> estimate) built during enumeration. The
  /// plan cache stores it alongside the skeleton so a hit can reuse every
  /// estimate without touching the estimator.
  std::unordered_map<qry::RelSet, double> pool;
};

class Planner {
 public:
  Planner(const db::Database* database, CostModel cost_model)
      : db_(database), cost_model_(cost_model) {}

  /// Plans the full query from base tables.
  PlanResult Plan(const qry::Query& query, card::CardinalityEstimator* estimator);

  /// Plans over arbitrary units (re-optimization entry point). Units must
  /// jointly cover all query tables exactly once.
  PlanResult PlanUnits(const qry::Query& query,
                       card::CardinalityEstimator* estimator,
                       const std::vector<PlanUnit>& units);

  const CostModel& cost_model() const { return cost_model_; }

 private:
  const db::Database* db_;
  CostModel cost_model_;
};

}  // namespace lpce::opt

#endif  // LPCE_OPTIMIZER_PLANNER_H_
