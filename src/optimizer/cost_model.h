// PostgreSQL-flavoured cost model for the physical operators in exec/plan.h.
//
// Costs are abstract work units proportional to the executor's actual work:
// hash join is linear in both inputs, merge join pays n·log n sorts, nested
// loop is quadratic (and therefore only wins for tiny outer inputs — the
// regime where a cardinality underestimate makes the optimizer pick it by
// mistake, paper Fig. 17).
#ifndef LPCE_OPTIMIZER_COST_MODEL_H_
#define LPCE_OPTIMIZER_COST_MODEL_H_

#include "exec/plan.h"

namespace lpce::opt {

struct CostParams {
  double seq_tuple = 1.0;       // per tuple scanned sequentially
  double pred = 0.3;            // per predicate evaluation
  double index_lookup = 60.0;   // per index range descent
  double index_tuple = 2.5;     // per tuple fetched through an index
  double hash_build = 2.0;      // per build-side tuple
  double hash_probe = 1.2;      // per probe-side tuple
  double sort = 0.25;           // per tuple * log2(tuples)
  double merge = 0.5;           // per tuple merged
  double nl_pair = 0.08;        // per (outer, inner) pair compared
  double out_tuple = 0.3;       // per output tuple materialized
  double pseudo_tuple = 0.2;    // per tuple re-read from a materialized result
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  const CostParams& params() const { return params_; }

  double SeqScanCost(double table_rows, int num_preds) const;
  double IndexScanCost(double matching_rows, int num_residual_preds) const;
  double PseudoScanCost(double rows) const;

  /// Join cost given the two input cardinalities and the output cardinality.
  /// `num_residual_preds` counts extra equi-join predicates (beyond the
  /// primary key pair) evaluated as residual filters on candidate matches.
  ///
  /// All costs are sanitized: degenerate inputs (0 rows, NaN, infinity —
  /// e.g. a clamped estimate flowing into NL's outer*inner product) can
  /// never yield a NaN/-inf cost, so DP entry comparison stays a total
  /// order (a NaN cost makes `<` false both ways and the winning entry
  /// arbitrary).
  double JoinCost(exec::PhysOp op, double outer_rows, double inner_rows,
                  double output_rows, int num_residual_preds = 0) const;

 private:
  CostParams params_;
};

}  // namespace lpce::opt

#endif  // LPCE_OPTIMIZER_COST_MODEL_H_
