// Template-keyed plan & estimate cache (ROADMAP item 2; AQO's fss idea).
//
// Serving workloads are dominated by parameterized variants of a small set
// of query templates, yet every admitted query pays full DP enumeration
// (T_P) and a fresh estimate pool (T_I). This cache keys the planner's
// output on a template fingerprint (query/fingerprint.h): on a hit the
// engine skips planning entirely, rebinding the cached plan skeleton's scan
// filters to the new literals and adopting the cached estimation pool, so
// T_P + T_I collapse to a lookup plus a clone.
//
// Correctness rests on the fingerprint's bit-identity contract: equal
// canonical keys guarantee the estimator would produce bitwise-identical
// estimates for every subset, and the DP planner is deterministic given its
// estimates, so the served skeleton is exactly the plan fresh planning
// would have built. The coarse `fss_hash` only groups entries for metrics
// and traces; the exact canonical key is what the map is keyed on, so
// distinct templates can never collide.
//
// Thread-safe (one mutex; entries are cloned out, never shared), capacity-
// bounded with LRU eviction, and epoch-invalidated: Invalidate() empties
// the cache and bumps the epoch, and an Insert staged against an older
// epoch is dropped — a worker that planned against pre-bump statistics can
// never publish a stale skeleton.
#ifndef LPCE_OPTIMIZER_PLAN_CACHE_H_
#define LPCE_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "card/estimator.h"
#include "exec/plan.h"
#include "query/fingerprint.h"
#include "query/query.h"

namespace lpce::opt {

/// Monotonic counters snapshot (per cache instance; the lpce.plancache.*
/// global metrics aggregate across instances).
struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  size_t size = 0;
};

class PlanCache {
 public:
  /// `capacity` > 0: maximum resident entries (LRU-evicted beyond that).
  explicit PlanCache(size_t capacity);

  /// Fingerprints `query` for this cache, delegating per-predicate
  /// signatures to `estimator` (whose name also salts the key, so a cache
  /// shared across estimator kinds never cross-serves).
  static qry::TemplateFingerprint Fingerprint(
      const qry::Query& query, const card::CardinalityEstimator& estimator);

  struct LookupOutcome {
    /// Rebound plan skeleton on hit (scan filters already rebound to the
    /// query's literals), nullptr on miss.
    std::unique_ptr<exec::PlanNode> plan;
    /// Copy of the cached estimation pool on hit.
    std::unordered_map<qry::RelSet, double> pool;
    /// Epoch observed at lookup; pass to Insert after a miss so a
    /// concurrent Invalidate drops the stale insert.
    uint64_t epoch = 0;

    bool hit() const { return plan != nullptr; }
  };

  /// On hit, returns a deep copy of the cached skeleton with every scan's
  /// filters rebound to `query`'s predicates, plus the pool copy; bumps the
  /// entry to most-recently-used. On miss, returns plan == nullptr and the
  /// current epoch.
  LookupOutcome Lookup(const qry::TemplateFingerprint& fp,
                       const qry::Query& query);

  /// Stores a clone of `plan` (an initial plan: no pseudo scans) and `pool`
  /// under `fp`, evicting the LRU entry if at capacity. Dropped silently if
  /// `epoch` is stale (an Invalidate ran since the lookup) or the key is
  /// already present (a concurrent worker won the race).
  void Insert(const qry::TemplateFingerprint& fp, uint64_t epoch,
              const exec::PlanNode& plan,
              const std::unordered_map<qry::RelSet, double>& pool);

  /// Empties the cache and bumps the epoch — call on a statistics rebuild
  /// or model version bump; in-flight inserts against the old epoch are
  /// dropped when they arrive.
  void Invalidate();

  PlanCacheCounters counters() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::unique_ptr<exec::PlanNode> plan;  // skeleton (literal-free template)
    std::unordered_map<qry::RelSet, double> pool;
    uint64_t fss_hash = 0;
    std::list<std::string>::iterator lru_pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // canonical key -> entry
  std::list<std::string> lru_;                      // front = most recent
  uint64_t epoch_ = 0;
  PlanCacheCounters counters_;
};

}  // namespace lpce::opt

#endif  // LPCE_OPTIMIZER_PLAN_CACHE_H_
