#include "optimizer/plan_cache.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"

namespace lpce::opt {

namespace {

/// Rebinds a cached skeleton's scan filters to the incoming query's
/// literals. The template fingerprint guarantees both queries have the same
/// predicate (column, op) shape, so PredicatesOf returns the same filters
/// modulo literal values — exactly what the scans must apply.
void RebindFilters(exec::PlanNode* node, const qry::Query& query) {
  if (node == nullptr) return;
  if (node->op == exec::PhysOp::kSeqScan ||
      node->op == exec::PhysOp::kIndexScan) {
    node->filters = query.PredicatesOf(node->table_pos);
  }
  RebindFilters(node->outer.get(), query);
  RebindFilters(node->inner.get(), query);
}

bool HasPseudoScan(const exec::PlanNode& node) {
  if (node.op == exec::PhysOp::kPseudoScan) return true;
  return (node.outer != nullptr && HasPseudoScan(*node.outer)) ||
         (node.inner != nullptr && HasPseudoScan(*node.inner));
}

struct CacheMetrics {
  common::Counter* hits;
  common::Counter* misses;
  common::Counter* inserts;
  common::Counter* evictions;
  common::Counter* invalidations;
  common::Gauge* size;

  static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      auto& reg = common::MetricsRegistry::Global();
      CacheMetrics out;
      out.hits = reg.counter("lpce.plancache.hits_total");
      out.misses = reg.counter("lpce.plancache.misses_total");
      out.inserts = reg.counter("lpce.plancache.inserts_total");
      out.evictions = reg.counter("lpce.plancache.evictions_total");
      out.invalidations = reg.counter("lpce.plancache.invalidations_total");
      out.size = reg.gauge("lpce.plancache.size");
      return out;
    }();
    return m;
  }
};

}  // namespace

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  LPCE_CHECK_MSG(capacity_ > 0, "plan cache capacity must be positive");
}

qry::TemplateFingerprint PlanCache::Fingerprint(
    const qry::Query& query, const card::CardinalityEstimator& estimator) {
  std::vector<qry::PredicateSignature> signatures;
  signatures.reserve(query.predicates.size());
  for (const auto& pred : query.predicates) {
    signatures.push_back(estimator.FingerprintPredicate(query, pred));
  }
  return qry::ComputeTemplateFingerprint(query, estimator.name(), signatures);
}

PlanCache::LookupOutcome PlanCache::Lookup(const qry::TemplateFingerprint& fp,
                                           const qry::Query& query) {
  LookupOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcome.epoch = epoch_;
    auto it = entries_.find(fp.canonical);
    if (it == entries_.end()) {
      ++counters_.misses;
    } else {
      ++counters_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      outcome.plan = it->second.plan->Clone();
      outcome.pool = it->second.pool;
    }
  }
  if (outcome.plan != nullptr) {
    RebindFilters(outcome.plan.get(), query);
    CacheMetrics::Get().hits->Increment();
  } else {
    CacheMetrics::Get().misses->Increment();
  }
  return outcome;
}

void PlanCache::Insert(const qry::TemplateFingerprint& fp, uint64_t epoch,
                       const exec::PlanNode& plan,
                       const std::unordered_map<qry::RelSet, double>& pool) {
  LPCE_CHECK_MSG(!HasPseudoScan(plan),
                 "only initial plans are cacheable (no pseudo scans)");
  std::unique_ptr<exec::PlanNode> skeleton = plan.Clone();
  bool inserted = false;
  bool evicted = false;
  size_t size_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A stale epoch means Invalidate ran between this worker's lookup and
    // now: the plan was built against old statistics and must not be
    // published. A present key means a concurrent worker already inserted
    // the same template; first writer wins.
    if (epoch == epoch_ && entries_.find(fp.canonical) == entries_.end()) {
      if (entries_.size() >= capacity_) {
        const std::string& victim = lru_.back();
        entries_.erase(victim);
        lru_.pop_back();
        ++counters_.evictions;
        evicted = true;
      }
      lru_.push_front(fp.canonical);
      Entry entry;
      entry.plan = std::move(skeleton);
      entry.pool = pool;
      entry.fss_hash = fp.fss_hash;
      entry.lru_pos = lru_.begin();
      entries_.emplace(fp.canonical, std::move(entry));
      ++counters_.inserts;
      inserted = true;
    }
    size_after = entries_.size();
  }
  if (inserted) {
    CacheMetrics::Get().inserts->Increment();
    CacheMetrics::Get().size->Set(static_cast<double>(size_after));
  }
  if (evicted) CacheMetrics::Get().evictions->Increment();
}

void PlanCache::Invalidate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    ++epoch_;
    ++counters_.invalidations;
    counters_.size = 0;
  }
  CacheMetrics::Get().invalidations->Increment();
  CacheMetrics::Get().size->Set(0.0);
}

PlanCacheCounters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheCounters out = counters_;
  out.size = entries_.size();
  return out;
}

}  // namespace lpce::opt
