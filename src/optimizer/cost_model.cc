#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace lpce::opt {

namespace {
double Log2Clamped(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

double CostModel::SeqScanCost(double table_rows, int num_preds) const {
  return table_rows * (params_.seq_tuple + params_.pred * num_preds);
}

double CostModel::IndexScanCost(double matching_rows,
                                int num_residual_preds) const {
  return params_.index_lookup +
         matching_rows * (params_.index_tuple + params_.pred * num_residual_preds);
}

double CostModel::PseudoScanCost(double rows) const {
  return rows * params_.pseudo_tuple;
}

double CostModel::JoinCost(exec::PhysOp op, double outer_rows, double inner_rows,
                           double output_rows) const {
  const double out = std::max(0.0, output_rows) * params_.out_tuple;
  switch (op) {
    case exec::PhysOp::kHashJoin:
      return inner_rows * params_.hash_build + outer_rows * params_.hash_probe + out;
    case exec::PhysOp::kMergeJoin:
      return params_.sort *
                 (outer_rows * Log2Clamped(outer_rows) +
                  inner_rows * Log2Clamped(inner_rows)) +
             params_.merge * (outer_rows + inner_rows) + out;
    case exec::PhysOp::kNestLoopJoin:
      return params_.nl_pair * outer_rows * inner_rows + out;
    default:
      LPCE_CHECK_MSG(false, "not a join operator");
  }
  return 0.0;
}

}  // namespace lpce::opt
