#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/fpclass.h"

namespace lpce::opt {

namespace {

double Log2Clamped(double x) { return std::log2(std::max(2.0, x)); }

/// Degenerate-cardinality guard. Estimators clamp to >= 0, but a 0-row input
/// multiplied by an infinite one (NL's outer*inner term) yields NaN, and NaN
/// poisons DP entry comparison: `cost < best.cost` is false both ways, so
/// whichever entry lands first wins arbitrarily. Sanitize rows before any
/// arithmetic: NaN/negative -> 0, +inf -> a huge finite row count. Bit-level
/// classification (common/fpclass.h): -ffast-math folds std::isnan/isinf.
double SanitizeRows(double rows) {
  if (common::IsNan(rows) || rows < 0.0) return 0.0;
  if (common::IsNanOrInf(rows)) return 1e30;
  return rows;
}

/// Costs must stay totally ordered under `<`. Any residual non-finite cost
/// becomes a huge finite sentinel so it loses to every real plan but still
/// compares deterministically against other degenerate entries.
double FiniteCost(double cost) {
  if (common::IsNanOrInf(cost) || cost < 0.0) return 1e300;
  return cost;
}

}  // namespace

double CostModel::SeqScanCost(double table_rows, int num_preds) const {
  return FiniteCost(SanitizeRows(table_rows) *
                    (params_.seq_tuple + params_.pred * num_preds));
}

double CostModel::IndexScanCost(double matching_rows,
                                int num_residual_preds) const {
  return FiniteCost(params_.index_lookup +
                    SanitizeRows(matching_rows) *
                        (params_.index_tuple + params_.pred * num_residual_preds));
}

double CostModel::PseudoScanCost(double rows) const {
  return FiniteCost(SanitizeRows(rows) * params_.pseudo_tuple);
}

double CostModel::JoinCost(exec::PhysOp op, double outer_rows, double inner_rows,
                           double output_rows, int num_residual_preds) const {
  const double outer = SanitizeRows(outer_rows);
  const double inner = SanitizeRows(inner_rows);
  const double out = SanitizeRows(output_rows) * params_.out_tuple;
  // Residual equi-join predicates (beyond the primary key pair) are evaluated
  // on every candidate match the primary key surfaces; charge them against
  // the larger input as a proxy for the candidate stream.
  const double residual =
      params_.pred * num_residual_preds * std::max(outer, inner);
  switch (op) {
    case exec::PhysOp::kHashJoin:
      return FiniteCost(inner * params_.hash_build + outer * params_.hash_probe +
                        residual + out);
    case exec::PhysOp::kMergeJoin:
      return FiniteCost(params_.sort * (outer * Log2Clamped(outer) +
                                        inner * Log2Clamped(inner)) +
                        params_.merge * (outer + inner) + residual + out);
    case exec::PhysOp::kNestLoopJoin:
      return FiniteCost(params_.nl_pair * outer * inner + residual + out);
    default:
      LPCE_CHECK_MSG(false, "not a join operator");
  }
  return 0.0;
}

}  // namespace lpce::opt
