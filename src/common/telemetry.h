// Serving telemetry pipeline: a bounded lock-free MPSC event stream that
// workers publish one compact per-query record into, drained by a background
// aggregator into sliding-window per-template state (log-bucketed latency
// histograms per phase, streaming q-error quantiles, throughput/drop
// counters), exported as Prometheus text over MetricsRegistry + the windows.
//
// Design contract (DESIGN.md "Serving telemetry & drift detection"):
//   - The query path never blocks on telemetry. Publishing is one ticketed
//     CAS into a fixed ring; a full ring counts a drop and returns. When
//     telemetry is off (the default) the cost is one relaxed atomic load,
//     exactly like the profiler.
//   - Aggregation is deterministic given the record sequence: windows rotate
//     on record counts (never wall-clock), histogram bucketing is pure
//     integer math (no libm), and every snapshot/exposition iterates
//     templates in ascending fss order. Wall-clock fields (record
//     timestamps, window spans) exist only under TelemetryMode::kFull so
//     tests can pin golden exposition output in kDeterministic mode.
//   - Baselines freeze deterministically: the first completed window of a
//     template becomes its frozen baseline; the drift monitor
//     (engine/drift_monitor.h) compares later completed windows against it.
//
// Env knobs: LPCE_TELEMETRY=1 enables publishing, LPCE_TELEMETRY_PROM=path
// makes the background aggregator periodically write the Prometheus
// exposition there (plus a final write at shutdown), LPCE_TELEMETRY_RING
// sets the ring capacity (rounded up to a power of two, default 4096) and
// LPCE_TELEMETRY_WINDOW the per-template window size in records (default
// 256).
#ifndef LPCE_COMMON_TELEMETRY_H_
#define LPCE_COMMON_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lpce::common {

namespace internal {
extern std::atomic<bool> g_telemetry_enabled;
}  // namespace internal

/// True when the engine publishes per-query records. Initialized once from
/// LPCE_TELEMETRY; one relaxed load, so it belongs on the query path.
inline bool TelemetryEnabled() {
  return internal::g_telemetry_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override (tests, benches). Does not reset accumulated state;
/// pair with TelemetryHub::Configure for a clean slate.
void SetTelemetryEnabled(bool enabled);

// ---- Log-bucketed histogram -----------------------------------------------

/// Bounded-memory histogram over uint64 values with logarithmic buckets: 8
/// linear sub-buckets per octave (relative bucket width at most ~14%, 12.5%
/// asymptotically), 512 buckets covering the full uint64 range. Bucketing is
/// pure bit manipulation — no floating point — so a value lands in the same
/// bucket on every machine and under every build flag, which is what lets
/// golden tests pin exposition output. p50/p95/p99 are derivable without
/// storing samples: quantiles report the containing bucket's inclusive upper
/// bound.
///
/// Doubles (q-errors) ride the same integer core through a fixed 1/1024
/// scale: Observe(v * 1024) truncated. Not thread-safe; instances live
/// inside the hub's aggregation windows (single consumer) or on bench
/// stacks.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;  // 8 sub-buckets per octave
  /// Exactly enough buckets that the last one's upper bound is UINT64_MAX
  /// (values below 2^kSubBits get exact buckets, then 2^kSubBits per octave).
  static constexpr int kNumBuckets = (64 - kSubBits + 1) << kSubBits;
  static constexpr double kDoubleScale = 1024.0;

  // The bucket array is heap-allocated on first observation: an untouched
  // histogram costs a few pointers, so materializing a template's window
  // state (dozens of histograms) under the hub mutex stays cheap even when
  // a workload floods the hub with fresh templates.
  LogHistogram() = default;
  LogHistogram(const LogHistogram& other) { *this = other; }
  LogHistogram(LogHistogram&&) noexcept = default;
  LogHistogram& operator=(const LogHistogram& other);
  LogHistogram& operator=(LogHistogram&&) noexcept = default;

  void Observe(uint64_t value);
  /// value < 0 clamps to 0; values are recorded at 1/1024 resolution.
  void ObserveDouble(double value) {
    Observe(value <= 0.0 ? 0 : static_cast<uint64_t>(value * kDoubleScale));
  }

  /// Inclusive upper bound of the bucket containing rank ceil(q * count);
  /// 0 when empty. q outside [0, 1] clamps.
  uint64_t ValueAtQuantile(double q) const;
  double DoubleAtQuantile(double q) const {
    return static_cast<double>(ValueAtQuantile(q)) / kDoubleScale;
  }

  void Merge(const LogHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double sum_double() const { return static_cast<double>(sum_) / kDoubleScale; }
  /// Always non-null (an empty histogram shares a static all-zero array).
  const uint64_t* buckets() const {
    return counts_ != nullptr ? counts_.get() : kZeroBuckets;
  }

  static int BucketOf(uint64_t value);
  /// Inclusive upper value edge of `bucket`.
  static uint64_t BucketUpperBound(int bucket);

 private:
  uint64_t* MutableCounts();  // allocates (zeroed) on first use

  std::unique_ptr<uint64_t[]> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;

  static const uint64_t kZeroBuckets[kNumBuckets];
};

// ---- Per-query record -----------------------------------------------------

enum class QueryOutcome : uint8_t {
  kOk = 0,        // executed to completion
  kRejected = 1,  // refused at admission (queue full / shutdown)
};

/// One compact per-query record, published by the engine after each
/// RunQuery (or by the server on rejection). Fixed-size POD so ring slots
/// never allocate.
struct TelemetryRecord {
  static constexpr int kMaxQErrors = 4;

  uint64_t fss_hash = 0;  // template group key (query/fingerprint.h)
  // Paper phase decomposition T_end = T_P + T_I + T_R + T_E, nanoseconds.
  uint64_t plan_ns = 0;
  uint64_t infer_ns = 0;
  uint64_t reopt_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t result_rows = 0;
  /// Peak total bytes of retained executor intermediates (RunStats
  /// peak_intermediate_bytes) — the per-query memory axis the serving
  /// windows report alongside the phase latencies.
  uint64_t peak_bytes = 0;
  /// Publish-time wall clock (unix ns); stamped by the hub only in
  /// TelemetryMode::kFull, 0 otherwise.
  uint64_t unix_ns = 0;
  uint32_t num_reopts = 0;
  /// Checkpoint q-errors observed during the run: total count plus the
  /// first kMaxQErrors values (the rest are counted, not stored).
  uint32_t num_qerrors = 0;
  float qerrors[kMaxQErrors] = {0, 0, 0, 0};
  float max_qerror = 0.0f;  // 0 = no q-error observations
  uint8_t cache_hit = 0;    // plan-cache hit
  QueryOutcome outcome = QueryOutcome::kOk;

  uint64_t total_ns() const { return plan_ns + infer_ns + reopt_ns + exec_ns; }
};

// ---- Lock-free bounded MPSC ring ------------------------------------------

/// Bounded multi-producer ring (Vyukov ticket scheme: per-cell sequence
/// numbers, one CAS per publish). TryPush never blocks and never spins on a
/// full ring — it fails fast so the query path can count a drop and move on.
/// TryPop is safe from any number of consumers; the hub uses one.
class TelemetryRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit TelemetryRing(size_t capacity);

  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  bool TryPush(const TelemetryRecord& record);
  bool TryPop(TelemetryRecord* out);

  size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    TelemetryRecord record;
  };

  std::vector<Cell> cells_;
  uint64_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
};

// ---- Aggregation windows --------------------------------------------------

/// Accumulated state of one window (or the lifetime total) of one template.
struct WindowStats {
  uint64_t queries = 0;
  uint64_t reopts = 0;
  uint64_t cache_hits = 0;
  uint64_t rejected = 0;
  uint64_t checkpoints = 0;  // q-error observations (including unstored)
  uint64_t result_rows = 0;
  // First/last record wall clock (unix ns); 0 in kDeterministic mode.
  uint64_t first_unix_ns = 0;
  uint64_t last_unix_ns = 0;
  /// Phase latency histograms in nanoseconds, indexed by Phase.
  LogHistogram phases[4];
  /// Checkpoint q-errors at 1/1024 resolution.
  LogHistogram qerror;
  /// Per-query peak intermediate bytes (TelemetryRecord::peak_bytes).
  LogHistogram peak_bytes;

  enum Phase { kPlan = 0, kInfer = 1, kReopt = 2, kExec = 3 };

  void Apply(const TelemetryRecord& record);
  void Reset();
  /// Wall-clock span covered by the window, seconds (0 when timestamps are
  /// absent or a single record was seen).
  double SpanSeconds() const;
};

const char* PhaseName(int phase);  // "plan"/"infer"/"reopt"/"exec"

/// Point-in-time copy of the hub's aggregation state. Templates are sorted
/// by fss ascending, so identical record sequences yield identical
/// snapshots (and identical exposition bytes in kDeterministic mode).
struct TelemetrySnapshot {
  struct Template {
    uint64_t fss = 0;
    WindowStats lifetime;           // every record ever drained
    WindowStats current;            // the partially filled window
    WindowStats completed;          // most recent full window
    WindowStats baseline;           // frozen first full window
    bool has_completed = false;
    bool has_baseline = false;
    uint64_t windows_completed = 0;
    // Drift flag last pushed by the monitor (engine/drift_monitor.h).
    bool drifted = false;
    double drift_ratio = 0.0;
  };

  std::vector<Template> templates;
  uint64_t window_size = 0;
  uint64_t published = 0;
  uint64_t dropped = 0;
  uint64_t drained = 0;
  uint64_t qerrors_truncated = 0;

  const Template* Find(uint64_t fss) const;
};

// ---- Hub ------------------------------------------------------------------

enum class TelemetryMode {
  kDeterministic = 0,  // no wall-clock fields anywhere (golden-able)
  kFull,               // records stamped, window spans + export time emitted
};

struct TelemetryOptions {
  size_t ring_capacity = 4096;  // rounded up to a power of two
  uint64_t window_size = 256;   // records per template window
  TelemetryMode mode = TelemetryMode::kFull;
  /// Periodic Prometheus export path ("" = none). The background aggregator
  /// rewrites it roughly once a second and once more at shutdown.
  std::string prom_path;

  /// ring_capacity from LPCE_TELEMETRY_RING, window_size from
  /// LPCE_TELEMETRY_WINDOW, prom_path from LPCE_TELEMETRY_PROM. Absent or
  /// invalid values keep the defaults.
  static TelemetryOptions FromEnv();
};

/// Process-wide telemetry pipeline: ring + windows + optional background
/// aggregator thread. Thread-safe throughout; the hot Publish path touches
/// only the ring and two relaxed counters.
class TelemetryHub {
 public:
  static TelemetryHub& Global();

  /// Drops all state (ring contents, windows, flags, counters) and applies
  /// `options`. Stops a running aggregator first; tests call this between
  /// scenarios for a clean, deterministic slate.
  void Configure(const TelemetryOptions& options);

  /// Enqueues one record. Returns false when telemetry is disabled (no-op)
  /// or the ring is full (drop counted); never blocks. In kFull mode stamps
  /// record.unix_ns when the caller left it 0.
  bool Publish(TelemetryRecord record);

  /// Drains every queued record into the windows in ring order, then runs
  /// the drift hook when one is installed and the batch completed at least
  /// one window. Returns the number of records applied. Serialized
  /// internally; safe to call concurrently with publishers and the
  /// background aggregator.
  uint64_t DrainNow();

  TelemetrySnapshot Snapshot() const;

  /// Installed by engine/drift_monitor.h: runs after a DrainNow batch
  /// (outside the state mutex) to evaluate windows and push flags back.
  /// Only invoked when the batch completed at least one window — drift
  /// verdicts depend solely on completed windows, and the evaluation
  /// snapshots every template, which is far too heavy for the aggregator's
  /// millisecond drain cadence.
  void SetDriftHook(std::function<void(TelemetryHub&)> hook);
  void SetDriftFlag(uint64_t fss, bool drifted, double ratio);

  struct DriftFlagView {
    bool drifted = false;
    double ratio = 0.0;
  };
  DriftFlagView drift_flag(uint64_t fss) const;

  /// Starts the background aggregator thread (idempotent): drains the ring
  /// every few milliseconds and maintains the LPCE_TELEMETRY_PROM export.
  /// Registers an atexit stop so the final exposition is always written.
  void StartAggregator();
  /// Stops the thread after a final drain + export. Idempotent.
  void StopAggregator();
  bool aggregator_running() const;

  /// Full Prometheus text exposition: every MetricsRegistry instrument plus
  /// the per-template telemetry windows and drift flags. Deterministic
  /// modulo instrument values when the hub is in kDeterministic mode.
  std::string PrometheusText() const;

  uint64_t published() const { return published_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }

  TelemetryMode mode() const;

 private:
  TelemetryHub();

  struct TemplateState {
    WindowStats lifetime;
    WindowStats current;
    WindowStats completed;
    WindowStats baseline;
    bool has_completed = false;
    bool has_baseline = false;
    uint64_t windows_completed = 0;
    bool drifted = false;
    double drift_ratio = 0.0;
  };

  void ApplyLocked(const TelemetryRecord& record);
  void AggregatorLoop();
  void ExportProm();  // best effort, never throws

  mutable std::mutex mu_;  // windows, flags, options
  TelemetryOptions options_;
  /// Publishers read the ring without the mutex; Configure swaps in a fresh
  /// ring and retires the old one (never freed mid-flight).
  std::atomic<TelemetryRing*> ring_{nullptr};
  std::vector<std::unique_ptr<TelemetryRing>> retired_rings_;
  std::atomic<int> mode_{static_cast<int>(TelemetryMode::kFull)};
  // std::map: deterministic ascending-fss iteration for snapshots/exposition.
  std::map<uint64_t, TemplateState> templates_;
  std::function<void(TelemetryHub&)> drift_hook_;
  /// Windows completed across all templates (guarded by mu_); the drift
  /// hook fires only when this advanced since its last run.
  uint64_t total_rotations_ = 0;

  std::mutex drain_mu_;  // serializes consumers
  uint64_t hook_seen_rotations_ = 0;  // guarded by drain_mu_
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> drained_{0};
  std::atomic<uint64_t> qerrors_truncated_{0};

  mutable std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  std::thread aggregator_;
  bool stop_ = false;
  bool running_ = false;
};

/// Telemetry-and-drift section of the exposition (no MetricsRegistry
/// instruments): per-template counters, phase histograms, q-error summary,
/// window/baseline quantile gauges, drift flags. Deterministic bytes for a
/// deterministic snapshot. `include_wallclock` adds span-seconds gauges and
/// is what TelemetryMode::kFull turns on.
void AppendTelemetryPrometheus(const TelemetrySnapshot& snapshot,
                               bool include_wallclock, std::string* out);

}  // namespace lpce::common

#endif  // LPCE_COMMON_TELEMETRY_H_
