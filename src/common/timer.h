// Wall-clock timing utilities used for the end-to-end time decomposition
// T_end = T_P + T_I + T_R + T_E (paper Eq. 7/8).
#ifndef LPCE_COMMON_TIMER_H_
#define LPCE_COMMON_TIMER_H_

#include <chrono>

namespace lpce {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's wall-clock duration to *sink (in seconds) on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace lpce

#endif  // LPCE_COMMON_TIMER_H_
