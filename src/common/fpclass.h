// Floating-point classification that survives -ffast-math.
//
// Release builds compile with -ffast-math, under which the compiler assumes
// NaN/inf never occur and constant-folds std::isnan/std::isinf/std::isfinite
// to false/false/true — silently disabling any guard written with them. NaNs
// still arise at runtime (0 * inf from clamped estimates, for one), so code
// that must sanitize degenerate doubles classifies them by IEEE-754 bit
// pattern instead: the exponent field being all ones means inf (zero
// mantissa) or NaN (non-zero mantissa), and no optimizer assumption touches
// integer compares.
#ifndef LPCE_COMMON_FPCLASS_H_
#define LPCE_COMMON_FPCLASS_H_

#include <cstdint>
#include <cstring>

namespace lpce::common {

inline uint64_t DoubleBits(double x) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

/// True for NaN or +-inf (exponent field all ones).
inline bool IsNanOrInf(double x) {
  return (DoubleBits(x) & 0x7ff0000000000000ull) == 0x7ff0000000000000ull;
}

inline bool IsNan(double x) {
  const uint64_t bits = DoubleBits(x) & 0x7fffffffffffffffull;
  return bits > 0x7ff0000000000000ull;
}

inline bool IsFinite(double x) { return !IsNanOrInf(x); }

}  // namespace lpce::common

#endif  // LPCE_COMMON_FPCLASS_H_
