// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms.
//
// Updates are lock-free atomics, safe from any thread (including ThreadPool
// workers mid-ParallelFor); name lookup takes a mutex, so hot paths should
// resolve their instruments once (function-local static) and reuse the
// pointer — instruments are never destroyed, only Reset(). The JSON dump is
// deterministic in *structure* (instruments sorted by name, stable key
// order); the values are whatever the process has accumulated.
#ifndef LPCE_COMMON_METRICS_H_
#define LPCE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lpce::common {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. peak bytes of the last run).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed, ascending bucket upper bounds (plus an implicit
/// +inf overflow bucket). Designed for latencies in seconds but unit-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count per bucket; size() == bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1us .. 10s, decade-and-a-half spaced.
const std::vector<double>& DefaultLatencyBounds();

/// Point-in-time copy of every instrument's value, keyed by name. Taken with
/// MetricsRegistry::Snapshot(); two snapshots diff with Delta() so callers
/// can report per-query/per-epoch metric movement without resetting the
/// process-global registry.
struct MetricsSnapshot {
  struct HistogramState {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<uint64_t> buckets;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramState> histograms;

  /// Same shape as MetricsRegistry::ToJson() (stable structure, names
  /// sorted), minus the histogram bounds.
  std::string ToJson() const;
};

/// after - before. Counters and histogram counts/sums/buckets subtract
/// (instruments absent from `before` count from zero); gauges are
/// last-write-wins, so the delta simply carries the `after` value.
MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after);

/// Thread-safe name -> instrument registry. Instruments are created on first
/// use and live for the process lifetime, so cached pointers stay valid.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` is used only on first creation; later calls return the
  /// existing histogram regardless of the argument.
  Histogram* histogram(const std::string& name,
                       const std::vector<double>& bounds = DefaultLatencyBounds());

  /// All instruments as one JSON object, names sorted, stable key order:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Appends every instrument in Prometheus text format (names sanitized to
  /// [a-zA-Z0-9_:]; histograms get cumulative le buckets plus _sum/_count).
  void AppendPrometheus(std::string* out) const;

  /// Copies every instrument's current value.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument (tests). Pointers remain valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lpce::common

#endif  // LPCE_COMMON_METRICS_H_
