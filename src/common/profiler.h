// Thread-aware hierarchical wall-clock profiler.
//
//   void Planner::PlanUnits(...) {
//     LPCE_PROFILE_SCOPE("planner.dp_search");
//     ...
//   }
//
// Each scope pushes a frame onto a per-thread stack; nested scopes form a
// call tree per thread (call count, total/min/max wall nanoseconds per
// node). At dump time the per-thread trees merge by scope name into one
// process-wide tree, serialized two ways:
//
//   - ToJson(): deterministic-key-order JSON (children sorted by name) —
//     machine-readable, schema-checked by ValidateProfileJson and rendered
//     by examples/profile_report.
//   - ToCollapsed(): Brendan-Gregg collapsed-stack lines
//     ("a;b;c <self_ns>") — pipe through flamegraph.pl for a flamegraph.
//
// Cost model: when profiling is off (the default), a scope is one relaxed
// atomic load and a branch — cheap enough for per-MatMul instrumentation.
// When on, entering/leaving a scope takes the owning thread's state mutex
// (uncontended; each thread has its own), which keeps concurrent merges and
// TSan happy.
//
// Phase labels: scope names beginning with "T_P." / "T_I." / "T_R." / "T_E."
// mark the paper's end-to-end decomposition T_end = T_P + T_I + T_R + T_E
// (Eq. 7/8). A nested phase label overrides the enclosing one (self-time
// attribution), so e.g. model inference inside DP search counts toward T_I,
// not T_P. See DESIGN.md "Profiling & training telemetry".
//
// Env knobs: LPCE_PROFILE=1 enables profiling at process start and dumps
// profile.json + profile.collapsed into $LPCE_PROFILE_DIR (default
// "lpce_profile") at exit. Tests toggle programmatically via
// SetProfilerEnabled.
#ifndef LPCE_COMMON_PROFILER_H_
#define LPCE_COMMON_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace lpce::common {

namespace internal {
extern std::atomic<bool> g_profiler_enabled;
}  // namespace internal

/// True when scopes are being recorded. Initialized once from LPCE_PROFILE.
inline bool ProfilerEnabled() {
  return internal::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override (tests, tools). Enabling does not register an
/// at-exit dump; call WriteProfileFiles / Profiler::ToJson explicitly.
void SetProfilerEnabled(bool enabled);

/// One node of the merged profile tree. `children` is name-keyed (sorted),
/// which makes every serialization deterministic in structure.
struct ProfileNode {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  std::map<std::string, ProfileNode> children;

  /// Wall time not attributed to any child (clamped at 0: children that
  /// completed inside a still-open parent invocation are not yet matched by
  /// parent total time).
  uint64_t SelfNs() const;
};

class Profiler {
 public:
  static Profiler& Global();

  /// Snapshot of the process-wide tree: live per-thread trees merged with
  /// the trees of already-exited threads. The synthetic root has count 0;
  /// its children are the top-level scopes.
  ProfileNode Merged() const;

  /// {"schema_version":1,"unit":"ns","roots":[...]} — key order fixed,
  /// children sorted by name. Values are wall-clock and non-deterministic.
  std::string ToJson() const;

  /// Collapsed-stack lines, one per tree node with count > 0, value =
  /// self-time nanoseconds, paths in depth-first name order.
  std::string ToCollapsed() const;

  /// Drops all recorded data (per-thread and retired). Must not be called
  /// while any thread holds an open LPCE_PROFILE_SCOPE; scopes opened before
  /// a Reset and closed after it are discarded, not corrupted.
  void Reset();

 private:
  Profiler() = default;
  friend class ProfileScope;
  friend struct ThreadStateHolder;
  struct Impl;
  Impl* impl();
};

/// RAII frame. Construct with a string literal (the name is captured by
/// pointer and must outlive the process).
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (ProfilerEnabled()) Enter(name);
  }
  ~ProfileScope() {
    if (node_ != nullptr) Exit();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void Enter(const char* name);
  void Exit();

  void* node_ = nullptr;   // internal ThreadNode*, null when inactive
  uint64_t start_ns_ = 0;
  uint64_t generation_ = 0;  // guards against Reset() racing an open scope
};

/// Validates a profile JSON document (ToJson output) against the schema:
/// version, unit, recursively well-formed nodes (typed fields, children
/// sorted strictly by name, min <= max when count > 0, self <= total).
Status ValidateProfileJson(const std::string& json);

/// Writes profile.json and profile.collapsed into `dir` (created when
/// missing). Best effort: returns a Status but never throws.
Status WriteProfileFiles(const std::string& dir);

#define LPCE_PROFILE_CONCAT_INNER(a, b) a##b
#define LPCE_PROFILE_CONCAT(a, b) LPCE_PROFILE_CONCAT_INNER(a, b)
#define LPCE_PROFILE_SCOPE(name)                    \
  ::lpce::common::ProfileScope LPCE_PROFILE_CONCAT( \
      lpce_profile_scope_, __LINE__)(name)

}  // namespace lpce::common

#endif  // LPCE_COMMON_PROFILER_H_
