// Minimal leveled logging to stderr.
//
// Usage: LPCE_LOG(Info) << "trained " << n << " epochs";
// The global level can be raised to silence benches/tests, and is
// initialized from the LPCE_LOG_LEVEL env var (debug/info/warn/error/off,
// or the digits 0-4; default info). Suppressed messages cost one level
// compare — the macro short-circuits before any formatting happens.
#ifndef LPCE_COMMON_LOGGING_H_
#define LPCE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace lpce {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the mutable global minimum level; messages below it are dropped.
LogLevel& GlobalLogLevel();

namespace internal {

inline bool LogLevelEnabled(LogLevel level) {
  return level >= GlobalLogLevel();
}

/// Swallows the stream expression in the enabled branch of LPCE_LOG so both
/// ternary arms have type void (glog's voidify trick). operator& binds
/// looser than operator<<, so the whole chain runs first.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= GlobalLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarn:
        return "W";
      case LogLevel::kError:
        return "E";
      default:
        return "?";
    }
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lpce

// Short-circuits before constructing LogMessage: a suppressed level never
// formats its arguments (the old form built the full message and prefix,
// then threw them away in the destructor).
#define LPCE_LOG(severity)                                                \
  !::lpce::internal::LogLevelEnabled(::lpce::LogLevel::k##severity)       \
      ? (void)0                                                           \
      : ::lpce::internal::LogVoidify() &                                  \
            ::lpce::internal::LogMessage(::lpce::LogLevel::k##severity,   \
                                         __FILE__, __LINE__)              \
                .stream()

#endif  // LPCE_COMMON_LOGGING_H_
