// Minimal leveled logging to stderr.
//
// Usage: LPCE_LOG(INFO) << "trained " << n << " epochs";
// The global level can be raised to silence benches/tests.
#ifndef LPCE_COMMON_LOGGING_H_
#define LPCE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace lpce {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the mutable global minimum level; messages below it are dropped.
LogLevel& GlobalLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= GlobalLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarn:
        return "W";
      case LogLevel::kError:
        return "E";
      default:
        return "?";
    }
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lpce

#define LPCE_LOG(severity)                                                    \
  ::lpce::internal::LogMessage(::lpce::LogLevel::k##severity, __FILE__, __LINE__) \
      .stream()

#endif  // LPCE_COMMON_LOGGING_H_
