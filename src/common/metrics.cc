#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace lpce::common {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  LPCE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds: bucket i counts observations <= bounds[i].
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << FormatDouble(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h->count()
        << ",\"sum\":" << FormatDouble(h->sum()) << ",\"bounds\":[";
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << FormatDouble(bounds[i]);
    }
    out << "],\"buckets\":[";
    const auto counts = h->counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      out << counts[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PromValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::AppendPrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string prom = PromName(name);
    out->append("# TYPE ").append(prom).append(" counter\n");
    out->append(prom).append(" ").append(std::to_string(c->value())).append("\n");
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = PromName(name);
    out->append("# TYPE ").append(prom).append(" gauge\n");
    out->append(prom).append(" ").append(PromValue(g->value())).append("\n");
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = PromName(name);
    out->append("# TYPE ").append(prom).append(" histogram\n");
    const auto& bounds = h->bounds();
    const auto counts = h->counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out->append(prom).append("_bucket{le=\"").append(PromValue(bounds[i]));
      out->append("\"} ").append(std::to_string(cumulative)).append("\n");
    }
    out->append(prom).append("_bucket{le=\"+Inf\"} ");
    out->append(std::to_string(h->count())).append("\n");
    out->append(prom).append("_sum ").append(PromValue(h->sum())).append("\n");
    out->append(prom).append("_count ").append(std::to_string(h->count()));
    out->append("\n");
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramState state;
    state.count = h->count();
    state.sum = h->sum();
    state.buckets = h->counts();
    snap.histograms[name] = std::move(state);
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << FormatDouble(v);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h.count
        << ",\"sum\":" << FormatDouble(h.sum) << ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << h.buckets[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    delta.counters[name] = v - (it != before.counters.end() ? it->second : 0);
  }
  delta.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    MetricsSnapshot::HistogramState d = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (size_t i = 0;
           i < d.buckets.size() && i < it->second.buckets.size(); ++i) {
        d.buckets[i] -= it->second.buckets[i];
      }
    }
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace lpce::common
