// Minimal JSON emit/parse utilities shared by every subsystem that writes a
// machine-readable artifact (query traces, profiles, train logs, metric
// snapshots).
//
// JsonWriter emits JSON with a caller-controlled, fixed key order — the
// foundation of the repo's deterministic-serialization contract. The parser
// is "just enough JSON to validate our own emissions": no escapes, no
// unicode, numbers via strtod. Both round-trip everything this codebase
// produces.
#ifndef LPCE_COMMON_JSON_H_
#define LPCE_COMMON_JSON_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace lpce::common {

/// Emits JSON with a fixed key order. `pretty` adds newlines + indentation
/// (safe to post-process: no string value ever contains structural chars).
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const char* name) {
    Prefix();
    out_ << '"' << name << "\":";
    if (pretty_) out_ << ' ';
    just_keyed_ = true;
  }

  void Value(const std::string& s) {
    Prefix();
    out_ << '"' << s << '"';
  }
  void Value(const char* s) { Value(std::string(s)); }
  void Value(uint64_t v) {
    Prefix();
    out_ << v;
  }
  void Value(int v) {
    Prefix();
    out_ << v;
  }
  void Value(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
  }
  void NumberLiteral(const std::string& formatted) {
    Prefix();
    out_ << formatted;
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Prefix();
    out_ << c;
    first_.push_back(true);
  }
  void Close(char c) {
    const bool empty = first_.back();
    first_.pop_back();
    if (pretty_ && !empty) {
      out_ << '\n';
      Pad();
    }
    out_ << c;
  }
  /// Runs before every key, bare value, or container opening: emits the
  /// separating comma and (pretty) newline + indent, except directly after a
  /// key, where the value continues the key's line.
  void Prefix() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (first_.empty()) return;
    if (!first_.back()) out_ << ',';
    if (pretty_) {
      out_ << '\n';
      Pad();
    }
    first_.back() = false;
  }
  void Pad() {
    for (size_t i = 0; i < first_.size(); ++i) out_ << "  ";
  }

  bool pretty_;
  std::ostringstream out_;
  std::vector<bool> first_;
  bool just_keyed_ = false;
};

/// Just enough JSON to validate our own emissions.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error);

 private:
  void SkipSpace();
  bool Fail(std::string* error, const std::string& what);
  bool ParseValue(JsonValue* out, std::string* error);
  bool ParseString(JsonValue* out, std::string* error);
  bool ParseNumber(JsonValue* out, std::string* error);
  bool ParseArray(JsonValue* out, std::string* error);
  bool ParseObject(JsonValue* out, std::string* error);

  const std::string& text_;
  size_t pos_ = 0;
};

/// Schema-check helpers: require a typed key on an object, optionally
/// returning the value.
Status RequireNumber(const JsonValue& obj, const char* key, double* out);
Status RequireString(const JsonValue& obj, const char* key, std::string* out);
Status RequireBool(const JsonValue& obj, const char* key, bool* out = nullptr);

}  // namespace lpce::common

#endif  // LPCE_COMMON_JSON_H_
