// Fixed-size worker pool with a deterministic ParallelFor. The partitioning
// is static: chunk boundaries depend only on (begin, end, grain, max_chunks),
// never on scheduling, so callers that write disjoint per-chunk outputs (or
// concatenate per-chunk buffers in chunk order) get bit-identical results at
// every pool size. A pool of size 1 spawns no workers and runs everything
// inline on the calling thread — the exact pre-parallel code path.
//
// The process-wide pool (GlobalPool) sizes itself from LPCE_NUM_THREADS
// (default: hardware_concurrency); see DESIGN.md "Threading model".
#ifndef LPCE_COMMON_THREAD_POOL_H_
#define LPCE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lpce::common {

class ThreadPool {
 public:
  /// A pool of logical size `num_threads` (0 = hardware_concurrency). The
  /// calling thread always participates in ParallelFor, so only
  /// `num_threads - 1` workers are spawned; size 1 spawns none.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Splits [begin, end) into at most min(size(), max_chunks) contiguous
  /// chunks of at least `grain` elements each and runs fn(chunk_begin,
  /// chunk_end) on every chunk, blocking until all complete. max_chunks <= 0
  /// means "no extra cap". With a single chunk (small range, grain, size 1,
  /// or max_chunks 1) fn runs inline on the calling thread. Nested calls from
  /// inside a worker also run inline — the pool never deadlocks on itself.
  /// fn must not throw.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn,
                   int max_chunks = 0);

  /// The static partition ParallelFor uses: up to `max_chunks` near-equal
  /// contiguous chunks of at least `grain` elements (last chunk takes the
  /// remainder). Exposed so callers can pre-size per-chunk buffers.
  static std::vector<std::pair<size_t, size_t>> Partition(size_t begin,
                                                          size_t end,
                                                          size_t grain,
                                                          int max_chunks);

 private:
  void WorkerLoop();

  int size_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Process-wide pool, lazily constructed at LPCE_NUM_THREADS (default:
/// hardware_concurrency) threads.
ThreadPool& GlobalPool();

/// Rebuilds the global pool at `num_threads` (0 = hardware_concurrency).
/// Must not race with in-flight ParallelFor calls; intended for start-up
/// configuration (bench_world) and tests.
void SetGlobalPoolSize(int num_threads);

}  // namespace lpce::common

#endif  // LPCE_COMMON_THREAD_POOL_H_
