#include "common/logging.h"

namespace lpce {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace lpce
