#include "common/logging.h"

#include <cctype>
#include <cstdlib>

namespace lpce {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("LPCE_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::kInfo;
  std::string value;
  for (const char* p = env; *p != '\0'; ++p) {
    value.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") return LogLevel::kWarn;
  if (value == "error" || value == "3") return LogLevel::kError;
  if (value == "off" || value == "none" || value == "4") return LogLevel::kOff;
  return LogLevel::kInfo;
}

}  // namespace

LogLevel& GlobalLogLevel() {
  static LogLevel level = LevelFromEnv();
  return level;
}

}  // namespace lpce
