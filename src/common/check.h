// Checked assertion macros used across the library.
//
// LPCE_CHECK is always on (including release builds) and is used to guard
// programmer-error invariants; violating one aborts with a diagnostic.
// LPCE_DCHECK compiles away in release builds (-DNDEBUG).
#ifndef LPCE_COMMON_CHECK_H_
#define LPCE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lpce::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "LPCE_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace lpce::internal

#define LPCE_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::lpce::internal::CheckFailed(#cond, __FILE__, __LINE__, "");   \
    }                                                                 \
  } while (0)

#define LPCE_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::lpce::internal::CheckFailed(#cond, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define LPCE_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define LPCE_DCHECK(cond) LPCE_CHECK(cond)
#endif

#endif  // LPCE_COMMON_CHECK_H_
