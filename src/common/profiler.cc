#include "common/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/json.h"

namespace lpce::common {

namespace internal {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace internal

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread tree node. Children are keyed by the scope name *pointer* —
/// LPCE_PROFILE_SCOPE passes string literals, so the lookup on the hot path
/// is a pointer compare; names are only compared as strings at merge time.
struct ThreadNode {
  const char* name = nullptr;
  ThreadNode* parent = nullptr;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = std::numeric_limits<uint64_t>::max();
  uint64_t max_ns = 0;
  std::map<const void*, std::unique_ptr<ThreadNode>> children;
};

struct ThreadState {
  std::mutex mu;
  ThreadNode root;
  ThreadNode* current = &root;
  uint64_t generation = 0;
};

void MergeTree(ProfileNode* dst, const ThreadNode& src) {
  if (src.count > 0) {
    dst->min_ns = dst->count > 0 ? std::min(dst->min_ns, src.min_ns) : src.min_ns;
    dst->max_ns = std::max(dst->max_ns, src.max_ns);
    dst->count += src.count;
    dst->total_ns += src.total_ns;
  }
  for (const auto& [key, child] : src.children) {
    (void)key;
    MergeTree(&dst->children[child->name], *child);
  }
}

}  // namespace

struct Profiler::Impl {
  std::mutex mu;  // registry + retired; always taken before a ThreadState mu
  std::vector<ThreadState*> threads;
  ProfileNode retired;  // merged trees of threads that already exited
};

Profiler::Impl* Profiler::impl() {
  static Impl* impl = new Impl();
  return impl;
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

/// Registers the calling thread's state for the lifetime of the thread; on
/// thread exit the tree is folded into the retired tree so no samples are
/// lost when pool workers shut down before the dump. Namespace-scope (not
/// anonymous) to match the friend declaration in Profiler.
struct ThreadStateHolder {
  ThreadState state;

  ThreadStateHolder() {
    auto* impl = Profiler::Global().impl();
    std::lock_guard<std::mutex> lock(impl->mu);
    impl->threads.push_back(&state);
  }

  ~ThreadStateHolder() {
    auto* impl = Profiler::Global().impl();
    std::lock_guard<std::mutex> lock(impl->mu);
    {
      std::lock_guard<std::mutex> tl(state.mu);
      MergeTree(&impl->retired, state.root);
    }
    auto& threads = impl->threads;
    threads.erase(std::remove(threads.begin(), threads.end(), &state),
                  threads.end());
  }
};

namespace {

ThreadState& LocalState() {
  thread_local ThreadStateHolder holder;
  return holder.state;
}

}  // namespace

void SetProfilerEnabled(bool enabled) {
  internal::g_profiler_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t ProfileNode::SelfNs() const {
  uint64_t child_total = 0;
  for (const auto& [name, child] : children) child_total += child.total_ns;
  return child_total >= total_ns ? 0 : total_ns - child_total;
}

void ProfileScope::Enter(const char* name) {
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.current->children[name];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadNode>();
    slot->name = name;
    slot->parent = state.current;
  }
  state.current = slot.get();
  node_ = slot.get();
  generation_ = state.generation;
  start_ns_ = NowNs();
}

void ProfileScope::Exit() {
  const uint64_t elapsed = NowNs() - start_ns_;
  ThreadState& state = LocalState();
  std::lock_guard<std::mutex> lock(state.mu);
  // A Reset() between Enter and Exit freed the node; drop the sample.
  if (state.generation != generation_) return;
  auto* node = static_cast<ThreadNode*>(node_);
  ++node->count;
  node->total_ns += elapsed;
  node->min_ns = std::min(node->min_ns, elapsed);
  node->max_ns = std::max(node->max_ns, elapsed);
  state.current = node->parent;
}

ProfileNode Profiler::Merged() const {
  auto* im = const_cast<Profiler*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  ProfileNode out = im->retired;
  for (ThreadState* state : im->threads) {
    std::lock_guard<std::mutex> tl(state->mu);
    MergeTree(&out, state->root);
  }
  return out;
}

void Profiler::Reset() {
  auto* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  im->retired = ProfileNode();
  for (ThreadState* state : im->threads) {
    std::lock_guard<std::mutex> tl(state->mu);
    state->root.children.clear();
    state->current = &state->root;
    ++state->generation;
  }
}

namespace {

void WriteNodeJson(JsonWriter* w, const std::string& name,
                   const ProfileNode& node) {
  w->BeginObject();
  w->Key("name");
  w->Value(name);
  w->Key("count");
  w->Value(node.count);
  w->Key("total_ns");
  w->Value(node.total_ns);
  w->Key("self_ns");
  w->Value(node.SelfNs());
  w->Key("min_ns");
  w->Value(node.count > 0 ? node.min_ns : uint64_t{0});
  w->Key("max_ns");
  w->Value(node.max_ns);
  w->Key("children");
  w->BeginArray();
  for (const auto& [child_name, child] : node.children) {
    WriteNodeJson(w, child_name, child);
  }
  w->EndArray();
  w->EndObject();
}

void WriteCollapsed(std::string* out, const std::string& prefix,
                    const std::string& name, const ProfileNode& node) {
  const std::string path = prefix.empty() ? name : prefix + ";" + name;
  if (node.count > 0) {
    *out += path;
    *out += ' ';
    *out += std::to_string(node.SelfNs());
    *out += '\n';
  }
  for (const auto& [child_name, child] : node.children) {
    WriteCollapsed(out, path, child_name, child);
  }
}

}  // namespace

std::string Profiler::ToJson() const {
  const ProfileNode merged = Merged();
  JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("unit");
  w.Value("ns");
  w.Key("roots");
  w.BeginArray();
  for (const auto& [name, child] : merged.children) {
    WriteNodeJson(&w, name, child);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string Profiler::ToCollapsed() const {
  const ProfileNode merged = Merged();
  std::string out;
  for (const auto& [name, child] : merged.children) {
    WriteCollapsed(&out, "", name, child);
  }
  return out;
}

namespace {

Status ValidateProfileNode(const JsonValue& node, int depth) {
  if (depth > 64) return Status::InvalidArgument("profile tree too deep");
  if (node.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("node must be an object");
  }
  std::string name;
  LPCE_RETURN_IF_ERROR(RequireString(node, "name", &name));
  if (name.empty()) return Status::InvalidArgument("empty scope name");
  double count = 0, total = 0, self = 0, min_ns = 0, max_ns = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(node, "count", &count));
  LPCE_RETURN_IF_ERROR(RequireNumber(node, "total_ns", &total));
  LPCE_RETURN_IF_ERROR(RequireNumber(node, "self_ns", &self));
  LPCE_RETURN_IF_ERROR(RequireNumber(node, "min_ns", &min_ns));
  LPCE_RETURN_IF_ERROR(RequireNumber(node, "max_ns", &max_ns));
  if (count < 0 || total < 0 || self < 0 || min_ns < 0 || max_ns < 0) {
    return Status::InvalidArgument("negative field in node '" + name + "'");
  }
  if (self > total) {
    return Status::InvalidArgument("self_ns > total_ns in node '" + name + "'");
  }
  if (count > 0 && min_ns > max_ns) {
    return Status::InvalidArgument("min_ns > max_ns in node '" + name + "'");
  }
  const JsonValue* children = node.Find("children");
  if (children == nullptr || children->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing 'children' array in node '" + name +
                                   "'");
  }
  std::string prev_name;
  for (size_t i = 0; i < children->arr.size(); ++i) {
    LPCE_RETURN_IF_ERROR(ValidateProfileNode(children->arr[i], depth + 1));
    const std::string child_name = children->arr[i].Find("name")->str;
    if (i > 0 && child_name <= prev_name) {
      return Status::InvalidArgument("children of '" + name +
                                     "' not sorted by name");
    }
    prev_name = child_name;
  }
  return Status::Ok();
}

}  // namespace

Status ValidateProfileJson(const std::string& json) {
  JsonValue root;
  std::string error;
  JsonParser parser(json);
  if (!parser.Parse(&root, &error)) {
    return Status::InvalidArgument("JSON parse error: " + error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("profile root must be an object");
  }
  double version = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "schema_version", &version));
  if (version != 1.0) {
    return Status::InvalidArgument("unsupported schema_version");
  }
  std::string unit;
  LPCE_RETURN_IF_ERROR(RequireString(root, "unit", &unit));
  if (unit != "ns") return Status::InvalidArgument("unsupported unit");
  const JsonValue* roots = root.Find("roots");
  if (roots == nullptr || roots->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing 'roots' array");
  }
  std::string prev_name;
  for (size_t i = 0; i < roots->arr.size(); ++i) {
    LPCE_RETURN_IF_ERROR(ValidateProfileNode(roots->arr[i], 0));
    const std::string name = roots->arr[i].Find("name")->str;
    if (i > 0 && name <= prev_name) {
      return Status::InvalidArgument("roots not sorted by name");
    }
    prev_name = name;
  }
  return Status::Ok();
}

Status WriteProfileFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create profile dir: " + dir);
  {
    std::ofstream out(dir + "/profile.json");
    if (!out) return Status::IoError("cannot open profile.json in " + dir);
    out << Profiler::Global().ToJson() << "\n";
  }
  {
    std::ofstream out(dir + "/profile.collapsed");
    if (!out) return Status::IoError("cannot open profile.collapsed in " + dir);
    out << Profiler::Global().ToCollapsed();
  }
  return Status::Ok();
}

namespace {

void DumpAtExit() {
  const char* dir = std::getenv("LPCE_PROFILE_DIR");
  WriteProfileFiles(dir != nullptr && dir[0] != '\0' ? dir : "lpce_profile");
}

/// Reads LPCE_PROFILE once at static-init time; when set, profiling is on
/// from the first instruction and the process dumps its profile at exit.
struct ProfilerEnvInit {
  ProfilerEnvInit() {
    const char* env = std::getenv("LPCE_PROFILE");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      internal::g_profiler_enabled.store(true, std::memory_order_relaxed);
      std::atexit(DumpAtExit);
    }
  }
};
ProfilerEnvInit g_profiler_env_init;

}  // namespace

}  // namespace lpce::common
