// Deterministic pseudo-random number generation.
//
// Everything in the library that draws random numbers (dataset generation,
// workload generation, model initialization, training shuffles) takes an
// explicit Rng so that runs are reproducible from a single seed.
#ifndef LPCE_COMMON_RNG_H_
#define LPCE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace lpce {

/// xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    LPCE_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LPCE_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} using a
/// precomputed inverse CDF table. Heavy skew at rank 0.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, Rng* rng);

  /// Draws one Zipf-distributed rank in [0, n).
  size_t Sample();

 private:
  Rng* rng_;
  std::vector<double> cdf_;
};

}  // namespace lpce

#endif  // LPCE_COMMON_RNG_H_
