#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace lpce {

ZipfSampler::ZipfSampler(size_t n, double s, Rng* rng) : rng_(rng) {
  LPCE_CHECK(n > 0);
  LPCE_CHECK(rng != nullptr);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample() {
  double u = rng_->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace lpce
