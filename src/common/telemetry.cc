#include "common/telemetry.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/metrics.h"

namespace lpce::common {

namespace internal {
std::atomic<bool> g_telemetry_enabled{false};
}  // namespace internal

void SetTelemetryEnabled(bool enabled) {
  internal::g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- LogHistogram ---------------------------------------------------------

int LogHistogram::BucketOf(uint64_t value) {
  // Values below one full octave of sub-buckets map to themselves; above
  // that, the top kSubBits bits after the leading one select the sub-bucket
  // within the value's octave. Pure integer math: identical on every
  // machine and under every build flag.
  if (value < (1u << kSubBits)) return static_cast<int>(value);
  const int h = std::bit_width(value) - 1;  // position of the leading one
  const int sub = static_cast<int>((value >> (h - kSubBits)) &
                                   ((uint64_t{1} << kSubBits) - 1));
  return ((h - kSubBits + 1) << kSubBits) + sub;
}

uint64_t LogHistogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
  const int h = (bucket >> kSubBits) + kSubBits - 1;
  const uint64_t sub = static_cast<uint64_t>(bucket & ((1 << kSubBits) - 1));
  const uint64_t lower =
      (uint64_t{1} << h) + (sub << (h - kSubBits));
  return lower + (uint64_t{1} << (h - kSubBits)) - 1;
}

const uint64_t LogHistogram::kZeroBuckets[LogHistogram::kNumBuckets] = {};

uint64_t* LogHistogram::MutableCounts() {
  if (counts_ == nullptr) {
    counts_ = std::make_unique<uint64_t[]>(kNumBuckets);  // value-initialized
  }
  return counts_.get();
}

LogHistogram& LogHistogram::operator=(const LogHistogram& other) {
  if (this == &other) return *this;
  count_ = other.count_;
  sum_ = other.sum_;
  if (other.counts_ == nullptr) {
    counts_.reset();
  } else {
    std::memcpy(MutableCounts(), other.counts_.get(),
                sizeof(uint64_t) * kNumBuckets);
  }
  return *this;
}

void LogHistogram::Observe(uint64_t value) {
  ++MutableCounts()[BucketOf(value)];
  ++count_;
  sum_ += value;
}

uint64_t LogHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank * 1.0 < q * static_cast<double>(count_)) ++rank;  // ceil
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  const uint64_t* counts = buckets();
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ != 0) {
    uint64_t* counts = MutableCounts();
    const uint64_t* theirs = other.buckets();
    for (int b = 0; b < kNumBuckets; ++b) counts[b] += theirs[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::Reset() {
  counts_.reset();  // drop the allocation: reset windows go back to cheap
  count_ = 0;
  sum_ = 0;
}

// ---- TelemetryRing --------------------------------------------------------

TelemetryRing::TelemetryRing(size_t capacity) {
  size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  cells_ = std::vector<Cell>(cap);
  mask_ = cap - 1;
  for (size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TelemetryRing::TryPush(const TelemetryRecord& record) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.record = record;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded `pos`; retry against the new slot.
    } else if (diff < 0) {
      return false;  // full: the consumer has not freed this slot yet
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool TelemetryRing::TryPop(TelemetryRecord* out) {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t diff =
        static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        *out = cell.record;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

// ---- WindowStats ----------------------------------------------------------

const char* PhaseName(int phase) {
  switch (phase) {
    case WindowStats::kPlan:
      return "plan";
    case WindowStats::kInfer:
      return "infer";
    case WindowStats::kReopt:
      return "reopt";
    case WindowStats::kExec:
      return "exec";
  }
  return "unknown";
}

void WindowStats::Apply(const TelemetryRecord& record) {
  if (record.outcome == QueryOutcome::kRejected) {
    ++rejected;
    return;
  }
  ++queries;
  reopts += record.num_reopts;
  cache_hits += record.cache_hit != 0 ? 1 : 0;
  checkpoints += record.num_qerrors;
  result_rows += record.result_rows;
  if (record.unix_ns != 0) {
    if (first_unix_ns == 0 || record.unix_ns < first_unix_ns) {
      first_unix_ns = record.unix_ns;
    }
    if (record.unix_ns > last_unix_ns) last_unix_ns = record.unix_ns;
  }
  phases[kPlan].Observe(record.plan_ns);
  phases[kInfer].Observe(record.infer_ns);
  phases[kReopt].Observe(record.reopt_ns);
  phases[kExec].Observe(record.exec_ns);
  peak_bytes.Observe(record.peak_bytes);
  const uint32_t stored =
      record.num_qerrors < TelemetryRecord::kMaxQErrors
          ? record.num_qerrors
          : TelemetryRecord::kMaxQErrors;
  for (uint32_t i = 0; i < stored; ++i) {
    qerror.ObserveDouble(static_cast<double>(record.qerrors[i]));
  }
}

void WindowStats::Reset() { *this = WindowStats(); }

double WindowStats::SpanSeconds() const {
  if (last_unix_ns <= first_unix_ns) return 0.0;
  return static_cast<double>(last_unix_ns - first_unix_ns) / 1e9;
}

const TelemetrySnapshot::Template* TelemetrySnapshot::Find(uint64_t fss) const {
  for (const auto& t : templates) {
    if (t.fss == fss) return &t;
  }
  return nullptr;
}

// ---- TelemetryHub ---------------------------------------------------------

TelemetryOptions TelemetryOptions::FromEnv() {
  TelemetryOptions options;
  if (const char* v = std::getenv("LPCE_TELEMETRY_RING");
      v != nullptr && v[0] != '\0') {
    const long parsed = std::atol(v);
    if (parsed > 0) options.ring_capacity = static_cast<size_t>(parsed);
  }
  if (const char* v = std::getenv("LPCE_TELEMETRY_WINDOW");
      v != nullptr && v[0] != '\0') {
    const long parsed = std::atol(v);
    if (parsed > 0) options.window_size = static_cast<uint64_t>(parsed);
  }
  if (const char* v = std::getenv("LPCE_TELEMETRY_PROM");
      v != nullptr && v[0] != '\0') {
    options.prom_path = v;
  }
  return options;
}

TelemetryHub::TelemetryHub() { Configure(TelemetryOptions::FromEnv()); }

TelemetryHub& TelemetryHub::Global() {
  // Leaky singleton (like MetricsRegistry): worker threads and atexit hooks
  // may touch the hub during static destruction.
  static TelemetryHub* hub = new TelemetryHub();
  return *hub;
}

void TelemetryHub::Configure(const TelemetryOptions& options) {
  StopAggregator();
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  mode_.store(static_cast<int>(options.mode), std::memory_order_relaxed);
  auto fresh = std::make_unique<TelemetryRing>(options.ring_capacity);
  ring_.store(fresh.get(), std::memory_order_release);
  // A publisher may still hold a pointer to the previous ring mid-push, so
  // old rings are retired, never freed (bounded by Configure call count).
  retired_rings_.push_back(std::move(fresh));
  templates_.clear();
  total_rotations_ = 0;
  hook_seen_rotations_ = 0;
  published_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  drained_.store(0, std::memory_order_relaxed);
  qerrors_truncated_.store(0, std::memory_order_relaxed);
}

bool TelemetryHub::Publish(TelemetryRecord record) {
  if (!TelemetryEnabled()) return false;
  TelemetryRing* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return false;
  if (mode_.load(std::memory_order_relaxed) ==
          static_cast<int>(TelemetryMode::kFull) &&
      record.unix_ns == 0) {
    record.unix_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  if (ring->TryPush(record)) {
    published_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TelemetryHub::ApplyLocked(const TelemetryRecord& record) {
  if (record.num_qerrors > TelemetryRecord::kMaxQErrors) {
    qerrors_truncated_.fetch_add(
        record.num_qerrors - TelemetryRecord::kMaxQErrors,
        std::memory_order_relaxed);
  }
  TemplateState& state = templates_[record.fss_hash];
  state.lifetime.Apply(record);
  state.current.Apply(record);
  if (options_.window_size > 0 &&
      state.current.queries >= options_.window_size) {
    state.completed = state.current;
    state.has_completed = true;
    ++state.windows_completed;
    ++total_rotations_;
    if (!state.has_baseline) {
      // The first full window freezes as the drift baseline — deterministic
      // given the record sequence, no wall clock involved.
      state.baseline = state.completed;
      state.has_baseline = true;
    }
    state.current.Reset();
  }
}

uint64_t TelemetryHub::DrainNow() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  TelemetryRing* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) return 0;
  uint64_t applied = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TelemetryRecord record;
    while (ring->TryPop(&record)) {
      ApplyLocked(record);
      ++applied;
    }
  }
  drained_.fetch_add(applied, std::memory_order_relaxed);
  // Drift verdicts can only change when a window completes, and the hook's
  // evaluation snapshots every template — far too heavy to run on every
  // aggregator drain tick. Fire it only when this batch rotated a window.
  std::function<void(TelemetryHub&)> hook;
  uint64_t rotations = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = drift_hook_;
    rotations = total_rotations_;
  }
  if (hook && rotations != hook_seen_rotations_) {
    hook_seen_rotations_ = rotations;  // drain_mu_ is held
    hook(*this);
  }
  return applied;
}

TelemetrySnapshot TelemetryHub::Snapshot() const {
  TelemetrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.window_size = options_.window_size;
  snapshot.published = published_.load(std::memory_order_relaxed);
  snapshot.dropped = dropped_.load(std::memory_order_relaxed);
  snapshot.drained = drained_.load(std::memory_order_relaxed);
  snapshot.qerrors_truncated =
      qerrors_truncated_.load(std::memory_order_relaxed);
  snapshot.templates.reserve(templates_.size());
  for (const auto& [fss, state] : templates_) {
    TelemetrySnapshot::Template t;
    t.fss = fss;
    t.lifetime = state.lifetime;
    t.current = state.current;
    t.completed = state.completed;
    t.baseline = state.baseline;
    t.has_completed = state.has_completed;
    t.has_baseline = state.has_baseline;
    t.windows_completed = state.windows_completed;
    t.drifted = state.drifted;
    t.drift_ratio = state.drift_ratio;
    snapshot.templates.push_back(std::move(t));
  }
  return snapshot;
}

void TelemetryHub::SetDriftHook(std::function<void(TelemetryHub&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_hook_ = std::move(hook);
}

void TelemetryHub::SetDriftFlag(uint64_t fss, bool drifted, double ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(fss);
  if (it == templates_.end()) return;
  it->second.drifted = drifted;
  it->second.drift_ratio = ratio;
}

TelemetryHub::DriftFlagView TelemetryHub::drift_flag(uint64_t fss) const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftFlagView view;
  auto it = templates_.find(fss);
  if (it != templates_.end()) {
    view.drifted = it->second.drifted;
    view.ratio = it->second.drift_ratio;
  }
  return view;
}

TelemetryMode TelemetryHub::mode() const {
  return static_cast<TelemetryMode>(mode_.load(std::memory_order_relaxed));
}

// ---- Background aggregator ------------------------------------------------

void TelemetryHub::StartAggregator() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  aggregator_ = std::thread([this] { AggregatorLoop(); });
  // The final drain + exposition export must happen even when nobody calls
  // StopAggregator explicitly (CI test binaries just exit).
  static bool atexit_registered = [] {
    std::atexit([] { TelemetryHub::Global().StopAggregator(); });
    return true;
  }();
  (void)atexit_registered;
}

void TelemetryHub::StopAggregator() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;  // claim the join before releasing the lock
    worker = std::move(aggregator_);
  }
  thread_cv_.notify_all();
  worker.join();
  DrainNow();
  ExportProm();
}

bool TelemetryHub::aggregator_running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return running_;
}

void TelemetryHub::AggregatorLoop() {
  auto last_export = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      thread_cv_.wait_for(lock, std::chrono::milliseconds(10),
                          [this] { return stop_; });
      if (stop_) return;  // StopAggregator drains + exports after the join
    }
    DrainNow();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_export >= std::chrono::seconds(1)) {
      last_export = now;
      ExportProm();
    }
  }
}

void TelemetryHub::ExportProm() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = options_.prom_path;
  }
  if (path.empty()) return;
  const std::string text = PrometheusText();
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  // Write-then-rename so a concurrent scraper never reads a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // best effort: telemetry must never fail the process
    out << text;
  }
  std::filesystem::rename(tmp, target, ec);
}

// ---- Prometheus exposition ------------------------------------------------

namespace {

std::string PromDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FssLabel(uint64_t fss) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fss));
  return buf;
}

void Family(std::string* out, const char* name, const char* type,
            const char* help) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void Sample(std::string* out, const std::string& name,
            const std::string& labels, const std::string& value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(value).append("\n");
}

std::string U64(uint64_t v) { return std::to_string(v); }

/// Emits one per-template counter family across every template.
template <typename Getter>
void TemplateCounter(std::string* out, const TelemetrySnapshot& snapshot,
                     const char* name, const char* help, Getter get) {
  Family(out, name, "counter", help);
  for (const auto& t : snapshot.templates) {
    Sample(out, name, "fss=\"" + FssLabel(t.fss) + "\"", U64(get(t)));
  }
}

const double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};

/// q-error quantile gauges for one window of every template; templates
/// without the window (per `has`) are skipped.
template <typename Has, typename Window>
void QErrorGauges(std::string* out, const TelemetrySnapshot& snapshot,
                  const char* name, const char* help, Has has, Window window) {
  Family(out, name, "gauge", help);
  for (const auto& t : snapshot.templates) {
    if (!has(t)) continue;
    const WindowStats& w = window(t);
    if (w.qerror.count() == 0) continue;
    for (double q : kQuantiles) {
      Sample(out, name,
             "fss=\"" + FssLabel(t.fss) + "\",quantile=\"" + PromDouble(q) +
                 "\"",
             PromDouble(w.qerror.DoubleAtQuantile(q)));
    }
  }
}

}  // namespace

void AppendTelemetryPrometheus(const TelemetrySnapshot& snapshot,
                               bool include_wallclock, std::string* out) {
  // Pipeline counters.
  Family(out, "lpce_telemetry_published_total", "counter",
         "Records accepted into the telemetry ring.");
  Sample(out, "lpce_telemetry_published_total", "", U64(snapshot.published));
  Family(out, "lpce_telemetry_dropped_total", "counter",
         "Records dropped because the ring was full (query path never "
         "blocks).");
  Sample(out, "lpce_telemetry_dropped_total", "", U64(snapshot.dropped));
  Family(out, "lpce_telemetry_drained_total", "counter",
         "Records the aggregator has applied to windows.");
  Sample(out, "lpce_telemetry_drained_total", "", U64(snapshot.drained));
  Family(out, "lpce_telemetry_qerrors_truncated_total", "counter",
         "Checkpoint q-errors beyond the per-record capacity (counted, not "
         "stored).");
  Sample(out, "lpce_telemetry_qerrors_truncated_total", "",
         U64(snapshot.qerrors_truncated));
  Family(out, "lpce_telemetry_window_size", "gauge",
         "Records per sliding window per template.");
  Sample(out, "lpce_telemetry_window_size", "", U64(snapshot.window_size));

  // Per-template lifetime counters.
  TemplateCounter(out, snapshot, "lpce_telemetry_queries_total",
                  "Completed queries per template.",
                  [](const auto& t) { return t.lifetime.queries; });
  TemplateCounter(out, snapshot, "lpce_telemetry_reopts_total",
                  "Re-optimizations per template.",
                  [](const auto& t) { return t.lifetime.reopts; });
  TemplateCounter(out, snapshot, "lpce_telemetry_cache_hits_total",
                  "Plan-cache hits per template.",
                  [](const auto& t) { return t.lifetime.cache_hits; });
  TemplateCounter(out, snapshot, "lpce_telemetry_rejected_total",
                  "Admissions rejected (back-pressure).",
                  [](const auto& t) { return t.lifetime.rejected; });
  TemplateCounter(out, snapshot, "lpce_telemetry_checkpoints_total",
                  "Checkpoint q-error observations per template.",
                  [](const auto& t) { return t.lifetime.checkpoints; });
  TemplateCounter(out, snapshot, "lpce_telemetry_result_rows_total",
                  "Result rows served per template.",
                  [](const auto& t) { return t.lifetime.result_rows; });
  TemplateCounter(out, snapshot, "lpce_telemetry_windows_completed_total",
                  "Full windows rotated per template.",
                  [](const auto& t) { return t.windows_completed; });

  // Per-template per-phase latency histograms (lifetime). Only non-empty
  // buckets are emitted (any le subset is legal Prometheus as long as +Inf
  // closes the series).
  Family(out, "lpce_telemetry_phase_seconds", "histogram",
         "Per-phase latency (T_P/T_I/T_R/T_E) per template, log-bucketed.");
  for (const auto& t : snapshot.templates) {
    for (int phase = 0; phase < 4; ++phase) {
      const LogHistogram& h = t.lifetime.phases[phase];
      if (h.count() == 0) continue;
      const std::string labels =
          "fss=\"" + FssLabel(t.fss) + "\",phase=\"" + PhaseName(phase) + "\"";
      uint64_t cumulative = 0;
      for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
        if (h.buckets()[b] == 0) continue;
        cumulative += h.buckets()[b];
        const double le_seconds =
            static_cast<double>(LogHistogram::BucketUpperBound(b)) / 1e9;
        Sample(out, "lpce_telemetry_phase_seconds_bucket",
               labels + ",le=\"" + PromDouble(le_seconds) + "\"",
               U64(cumulative));
      }
      Sample(out, "lpce_telemetry_phase_seconds_bucket",
             labels + ",le=\"+Inf\"", U64(h.count()));
      Sample(out, "lpce_telemetry_phase_seconds_sum", labels,
             PromDouble(static_cast<double>(h.sum()) / 1e9));
      Sample(out, "lpce_telemetry_phase_seconds_count", labels,
             U64(h.count()));
    }
  }

  // Per-template peak-intermediate-bytes histogram (lifetime): the memory
  // axis next to the phase latencies — late materialization's
  // peak_intermediate_bytes reduction shows up here per serving window.
  Family(out, "lpce_telemetry_peak_intermediate_bytes", "histogram",
         "Per-query peak retained executor intermediate bytes per template, "
         "log-bucketed.");
  for (const auto& t : snapshot.templates) {
    const LogHistogram& h = t.lifetime.peak_bytes;
    if (h.count() == 0) continue;
    const std::string labels = "fss=\"" + FssLabel(t.fss) + "\"";
    uint64_t cumulative = 0;
    for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
      if (h.buckets()[b] == 0) continue;
      cumulative += h.buckets()[b];
      const double le_bytes =
          static_cast<double>(LogHistogram::BucketUpperBound(b));
      Sample(out, "lpce_telemetry_peak_intermediate_bytes_bucket",
             labels + ",le=\"" + PromDouble(le_bytes) + "\"", U64(cumulative));
    }
    Sample(out, "lpce_telemetry_peak_intermediate_bytes_bucket",
           labels + ",le=\"+Inf\"", U64(h.count()));
    Sample(out, "lpce_telemetry_peak_intermediate_bytes_sum", labels,
           PromDouble(static_cast<double>(h.sum())));
    Sample(out, "lpce_telemetry_peak_intermediate_bytes_count", labels,
           U64(h.count()));
  }

  // Streaming q-error quantiles: lifetime summary plus current-window and
  // frozen-baseline gauges (the drift monitor's inputs, exposed so a human
  // can see what it sees).
  Family(out, "lpce_telemetry_qerror", "summary",
         "Checkpoint q-error distribution per template (lifetime).");
  for (const auto& t : snapshot.templates) {
    if (t.lifetime.qerror.count() == 0) continue;
    const std::string fss = "fss=\"" + FssLabel(t.fss) + "\"";
    for (double q : kQuantiles) {
      Sample(out, "lpce_telemetry_qerror",
             fss + ",quantile=\"" + PromDouble(q) + "\"",
             PromDouble(t.lifetime.qerror.DoubleAtQuantile(q)));
    }
    Sample(out, "lpce_telemetry_qerror_sum", fss,
           PromDouble(t.lifetime.qerror.sum_double()));
    Sample(out, "lpce_telemetry_qerror_count", fss,
           U64(t.lifetime.qerror.count()));
  }
  QErrorGauges(
      out, snapshot, "lpce_telemetry_qerror_window",
      "q-error quantiles of the most recent full window (falls back to the "
      "partial current window).",
      [](const auto&) { return true; },
      [](const auto& t) -> const WindowStats& {
        return t.has_completed ? t.completed : t.current;
      });
  QErrorGauges(
      out, snapshot, "lpce_telemetry_qerror_baseline",
      "q-error quantiles of the frozen baseline window.",
      [](const auto& t) { return t.has_baseline; },
      [](const auto& t) -> const WindowStats& { return t.baseline; });

  // Drift flags (engine/drift_monitor.h pushes these).
  Family(out, "lpce_drift_flagged", "gauge",
         "1 when the template's current q-error window drifted beyond the "
         "baseline ratio threshold.");
  for (const auto& t : snapshot.templates) {
    Sample(out, "lpce_drift_flagged", "fss=\"" + FssLabel(t.fss) + "\"",
           t.drifted ? "1" : "0");
  }
  Family(out, "lpce_drift_ratio", "gauge",
         "Current-window / baseline q-error quantile ratio (0 until "
         "evaluated).");
  for (const auto& t : snapshot.templates) {
    Sample(out, "lpce_drift_ratio", "fss=\"" + FssLabel(t.fss) + "\"",
           PromDouble(t.drift_ratio));
  }

  if (include_wallclock) {
    Family(out, "lpce_telemetry_span_seconds", "gauge",
           "Wall-clock span covered by the template's records.");
    for (const auto& t : snapshot.templates) {
      Sample(out, "lpce_telemetry_span_seconds",
             "fss=\"" + FssLabel(t.fss) + "\"",
             PromDouble(t.lifetime.SpanSeconds()));
    }
  }
}

std::string TelemetryHub::PrometheusText() const {
  std::string out;
  MetricsRegistry::Global().AppendPrometheus(&out);
  AppendTelemetryPrometheus(Snapshot(),
                            mode() == TelemetryMode::kFull, &out);
  if (mode() == TelemetryMode::kFull) {
    Family(&out, "lpce_telemetry_export_unix_seconds", "gauge",
           "Wall clock of this exposition.");
    const double now =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    Sample(&out, "lpce_telemetry_export_unix_seconds", "", PromDouble(now));
  }
  return out;
}

namespace {

/// Reads LPCE_TELEMETRY once at static-init time (same contract as
/// LPCE_PROFILE): publishing is on from the first query.
struct TelemetryEnvInit {
  TelemetryEnvInit() {
    const char* env = std::getenv("LPCE_TELEMETRY");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      internal::g_telemetry_enabled.store(true, std::memory_order_relaxed);
    }
  }
};
TelemetryEnvInit g_telemetry_env_init;

}  // namespace

}  // namespace lpce::common
