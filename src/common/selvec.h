// Branch-free selection vectors for vectorized (batch-at-a-time) execution.
//
// A selection vector is a dense, ascending list of row indexes that survived
// the filters applied so far (MonetDB/X100 style). Building one is
// branch-free: every candidate index is stored unconditionally and the write
// cursor advances by the predicate's 0/1 result, so the inner loop carries no
// data-dependent branch for the CPU to mispredict. Because candidates are
// visited in ascending order and kept in place, a selection vector preserves
// the input row order exactly — the property the executor's bit-identity
// contract rests on (see DESIGN.md "Vectorized execution").
#ifndef LPCE_COMMON_SELVEC_H_
#define LPCE_COMMON_SELVEC_H_

#include <cstddef>
#include <cstdint>
#include <iterator>

namespace lpce::common {

/// Fills `sel` with every index i in [0, n) where pred(i) is truthy
/// (branch-free); returns how many were kept. `sel` must hold n entries.
template <typename Pred>
inline size_t BuildSelection(size_t n, uint32_t* sel, Pred pred) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);
    k += static_cast<size_t>(static_cast<bool>(pred(static_cast<uint32_t>(i))));
  }
  return k;
}

/// Compacts `sel_in` (length n) into `sel_out`, keeping the indexes where
/// pred(index) holds; returns the surviving count. In-place refinement
/// (sel_out == sel_in) is safe: the write cursor never passes the read
/// cursor.
template <typename Pred>
inline size_t RefineSelection(const uint32_t* sel_in, size_t n,
                              uint32_t* sel_out, Pred pred) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = sel_in[i];
    sel_out[k] = idx;
    k += static_cast<size_t>(static_cast<bool>(pred(idx)));
  }
  return k;
}

/// Gathers col[sel[i]] for i in [0, n) into `dst` (must hold n values).
/// Works for payload columns (int64) and row-id columns (uint32) alike.
template <typename T>
inline void GatherSelected(const T* col, const uint32_t* sel, size_t n,
                           T* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = col[sel[i]];
}

/// Two-level gather: dst[i] = col[rid[sel[i]]] for i in [0, n). Reads payload
/// values through a row-id indirection column — the access pattern of late
/// materialization, where an intermediate carries base-table row ids and a
/// selection vector over them picks the candidates of the current batch.
template <typename T>
inline void GatherGathered(const T* col, const uint32_t* rid,
                           const uint32_t* sel, size_t n, T* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = col[rid[sel[i]]];
}

/// Random-access iterator over col[sel[i]]. Lets callers append a gather to a
/// std::vector via insert(end, begin, end) — one write per element, with no
/// value-initialization pass over the appended tail (resize would pay one).
template <typename T = int64_t>
class GatherIterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using pointer = const T*;
  using reference = T;

  GatherIterator(const T* col, const uint32_t* sel, size_t i)
      : col_(col), sel_(sel), i_(i) {}

  T operator*() const { return col_[sel_[i_]]; }
  T operator[](difference_type d) const { return col_[sel_[i_ + d]]; }
  GatherIterator& operator++() { ++i_; return *this; }
  GatherIterator operator++(int) { auto t = *this; ++i_; return t; }
  GatherIterator& operator--() { --i_; return *this; }
  GatherIterator operator--(int) { auto t = *this; --i_; return t; }
  GatherIterator& operator+=(difference_type d) { i_ += d; return *this; }
  GatherIterator& operator-=(difference_type d) { i_ -= d; return *this; }
  GatherIterator operator+(difference_type d) const {
    return GatherIterator(col_, sel_, i_ + d);
  }
  GatherIterator operator-(difference_type d) const {
    return GatherIterator(col_, sel_, i_ - d);
  }
  difference_type operator-(const GatherIterator& o) const {
    return static_cast<difference_type>(i_) -
           static_cast<difference_type>(o.i_);
  }
  bool operator==(const GatherIterator& o) const { return i_ == o.i_; }
  bool operator!=(const GatherIterator& o) const { return i_ != o.i_; }
  bool operator<(const GatherIterator& o) const { return i_ < o.i_; }
  bool operator<=(const GatherIterator& o) const { return i_ <= o.i_; }
  bool operator>(const GatherIterator& o) const { return i_ > o.i_; }
  bool operator>=(const GatherIterator& o) const { return i_ >= o.i_; }

 private:
  const T* col_;
  const uint32_t* sel_;
  size_t i_;
};

}  // namespace lpce::common

#endif  // LPCE_COMMON_SELVEC_H_
