#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace lpce::common {

bool JsonParser::Parse(JsonValue* out, std::string* error) {
  if (!ParseValue(out, error)) return false;
  SkipSpace();
  if (pos_ != text_.size()) {
    *error = "trailing characters at offset " + std::to_string(pos_);
    return false;
  }
  return true;
}

void JsonParser::SkipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::Fail(std::string* error, const std::string& what) {
  *error = what + " at offset " + std::to_string(pos_);
  return false;
}

bool JsonParser::ParseValue(JsonValue* out, std::string* error) {
  SkipSpace();
  if (pos_ >= text_.size()) return Fail(error, "unexpected end");
  const char c = text_[pos_];
  if (c == '{') return ParseObject(out, error);
  if (c == '[') return ParseArray(out, error);
  if (c == '"') return ParseString(out, error);
  if (text_.compare(pos_, 4, "true") == 0) {
    out->type = JsonValue::Type::kBool;
    out->b = true;
    pos_ += 4;
    return true;
  }
  if (text_.compare(pos_, 5, "false") == 0) {
    out->type = JsonValue::Type::kBool;
    out->b = false;
    pos_ += 5;
    return true;
  }
  if (text_.compare(pos_, 4, "null") == 0) {
    out->type = JsonValue::Type::kNull;
    pos_ += 4;
    return true;
  }
  return ParseNumber(out, error);
}

bool JsonParser::ParseString(JsonValue* out, std::string* error) {
  ++pos_;  // opening quote
  std::string s;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    if (text_[pos_] == '\\') return Fail(error, "escapes unsupported");
    s.push_back(text_[pos_++]);
  }
  if (pos_ >= text_.size()) return Fail(error, "unterminated string");
  ++pos_;  // closing quote
  out->type = JsonValue::Type::kString;
  out->str = std::move(s);
  return true;
}

bool JsonParser::ParseNumber(JsonValue* out, std::string* error) {
  const size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (pos_ == start) return Fail(error, "expected value");
  out->type = JsonValue::Type::kNumber;
  out->num = std::strtod(text_.c_str() + start, nullptr);
  return true;
}

bool JsonParser::ParseArray(JsonValue* out, std::string* error) {
  ++pos_;  // '['
  out->type = JsonValue::Type::kArray;
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == ']') {
    ++pos_;
    return true;
  }
  while (true) {
    JsonValue element;
    if (!ParseValue(&element, error)) return false;
    out->arr.push_back(std::move(element));
    SkipSpace();
    if (pos_ >= text_.size()) return Fail(error, "unterminated array");
    if (text_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    return Fail(error, "expected ',' or ']'");
  }
}

bool JsonParser::ParseObject(JsonValue* out, std::string* error) {
  ++pos_;  // '{'
  out->type = JsonValue::Type::kObject;
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == '}') {
    ++pos_;
    return true;
  }
  while (true) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail(error, "expected object key");
    }
    JsonValue key;
    if (!ParseString(&key, error)) return false;
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Fail(error, "expected ':'");
    }
    ++pos_;
    JsonValue value;
    if (!ParseValue(&value, error)) return false;
    out->obj.emplace_back(std::move(key.str), std::move(value));
    SkipSpace();
    if (pos_ >= text_.size()) return Fail(error, "unterminated object");
    if (text_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    return Fail(error, "expected ',' or '}'");
  }
}

Status RequireNumber(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument(std::string("missing/non-number key '") +
                                   key + "'");
  }
  if (out != nullptr) *out = v->num;
  return Status::Ok();
}

Status RequireString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    return Status::InvalidArgument(std::string("missing/non-string key '") +
                                   key + "'");
  }
  if (out != nullptr) *out = v->str;
  return Status::Ok();
}

Status RequireBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) {
    return Status::InvalidArgument(std::string("missing/non-bool key '") + key +
                                   "'");
  }
  if (out != nullptr) *out = v->b;
  return Status::Ok();
}

}  // namespace lpce::common
