// Lightweight error-propagation types (no exceptions in library code).
//
// Status carries ok/error + message; Result<T> is Status plus a value.
// Recoverable failures (bad query, I/O) return Status; programmer errors
// use LPCE_CHECK.
#ifndef LPCE_COMMON_STATUS_H_
#define LPCE_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace lpce {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,
};

/// Error-or-ok result of an operation that can fail at runtime.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// A bounded resource (e.g. a serving admission queue) is at capacity;
  /// the operation may succeed later.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A Status plus a value of type T when the status is ok.
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {      // NOLINT(runtime/explicit)
    LPCE_CHECK_MSG(!status_.ok(), "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LPCE_CHECK_MSG(ok(), "Result::value() on error");
    return value_;
  }
  T& value() & {
    LPCE_CHECK_MSG(ok(), "Result::value() on error");
    return value_;
  }
  T&& value() && {
    LPCE_CHECK_MSG(ok(), "Result::value() on error");
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace lpce

#define LPCE_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::lpce::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // LPCE_COMMON_STATUS_H_
