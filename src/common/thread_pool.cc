#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace lpce::common {

namespace {

// Set while a pool worker runs a task; nested ParallelFor calls from inside a
// task fall back to inline execution instead of deadlocking on a full queue.
thread_local bool tls_in_worker = false;

int DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Requests far beyond any real core count (e.g. a typo'd LPCE_NUM_THREADS)
// would otherwise die in std::thread with "Resource temporarily unavailable".
constexpr int kMaxPoolSize = 256;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  size_ = num_threads > 0 ? num_threads : DefaultThreads();
  size_ = std::min(size_, kMaxPoolSize);
  workers_.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();  // self-accounts: decrements its batch counter, notifies done_cv_
  }
}

std::vector<std::pair<size_t, size_t>> ThreadPool::Partition(size_t begin,
                                                             size_t end,
                                                             size_t grain,
                                                             int max_chunks) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (begin >= end) return chunks;
  const size_t n = end - begin;
  const size_t g = std::max<size_t>(grain, 1);
  // Floor division: with more than one chunk, every chunk gets >= grain
  // elements (a single chunk may be smaller than the grain).
  size_t k = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(std::max(max_chunks, 1)), n / g));
  chunks.reserve(k);
  const size_t base = n / k;
  const size_t extra = n % k;  // first `extra` chunks take one more element
  size_t pos = begin;
  for (size_t i = 0; i < k; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    chunks.emplace_back(pos, pos + len);
    pos += len;
  }
  return chunks;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn,
                             int max_chunks) {
  if (begin >= end) return;
  int cap = size_;
  if (max_chunks > 0) cap = std::min(cap, max_chunks);
  if (tls_in_worker) cap = 1;  // nested: run inline, never re-enter the queue
  const auto chunks = Partition(begin, end, grain, cap);
  if (chunks.size() == 1) {
    fn(begin, end);
    return;
  }
  // Completion is tracked per call (not pool-wide): a nested ParallelFor
  // issued from a stolen task must not wait on its *enclosing* batch, which
  // cannot finish until the stolen task returns. Queued tasks self-account —
  // they decrement their own batch counter and ping done_cv_ — so helpers can
  // safely run tasks from any batch.
  size_t remaining = chunks.size() - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 1; i < chunks.size(); ++i) {
      const auto [b, e] = chunks[i];
      queue_.emplace_back([this, &fn, &remaining, b, e] {
        fn(b, e);
        std::lock_guard<std::mutex> task_lock(mu_);
        --remaining;
        done_cv_.notify_all();
      });
    }
  }
  work_cv_.notify_all();
  fn(chunks[0].first, chunks[0].second);
  // Help drain the queue while waiting for this call's chunks to finish. A
  // stolen task may belong to a different (nested) batch; it accounts for
  // itself either way.
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock,
                    [&] { return remaining == 0 || !queue_.empty(); });
      if (remaining == 0) return;
      if (!queue_.empty()) {
        task = std::move(queue_.back());
        queue_.pop_back();
      }
    }
    if (task) task();
  }
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

int EnvThreads() {
  const char* value = std::getenv("LPCE_NUM_THREADS");
  if (value == nullptr) return 0;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 0;
}

}  // namespace

ThreadPool& GlobalPool() {
  auto& slot = GlobalPoolSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(EnvThreads());
  return *slot;
}

void SetGlobalPoolSize(int num_threads) {
  auto& slot = GlobalPoolSlot();
  slot = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace lpce::common
