#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace lpce::stats {

double ColumnStats::EqUnknownSelectivity() const {
  const double remaining_distinct =
      std::max(1.0, n_distinct - static_cast<double>(mcvs.size()));
  return histogram_total_freq / remaining_distinct;
}

double ColumnStats::FractionBelow(int64_t x, bool inclusive) const {
  if (row_count == 0) return 0.0;
  double frac = 0.0;
  for (const auto& [value, freq] : mcvs) {
    if (value < x || (inclusive && value == x)) frac += freq;
  }
  if (!bounds.empty() && histogram_total_freq > 0.0) {
    const size_t buckets = bounds.size() - 1;
    const double per_bucket = histogram_total_freq / static_cast<double>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      const int64_t lo = bounds[b];
      const int64_t hi = bounds[b + 1];
      if (x <= lo) {
        if (inclusive && x == lo) {
          // Touches only the bucket's lower edge; treat as empty overlap.
        }
        break;
      }
      if (x > hi) {
        frac += per_bucket;
        continue;
      }
      // Partial bucket: linear interpolation.
      const double width = static_cast<double>(hi - lo) + 1.0;
      const double covered = static_cast<double>(x - lo) + (inclusive ? 1.0 : 0.0);
      frac += per_bucket * std::clamp(covered / width, 0.0, 1.0);
    }
  }
  return std::clamp(frac, 0.0, 1.0);
}

double ColumnStats::Selectivity(qry::CmpOp op, int64_t value) const {
  if (row_count == 0) return 0.0;
  switch (op) {
    case qry::CmpOp::kLt:
      return FractionBelow(value, /*inclusive=*/false);
    case qry::CmpOp::kLe:
      return FractionBelow(value, /*inclusive=*/true);
    case qry::CmpOp::kGe:
      return std::clamp(1.0 - FractionBelow(value, /*inclusive=*/false), 0.0, 1.0);
    case qry::CmpOp::kGt:
      return std::clamp(1.0 - FractionBelow(value, /*inclusive=*/true), 0.0, 1.0);
    case qry::CmpOp::kEq: {
      for (const auto& [v, freq] : mcvs) {
        if (v == value) return freq;
      }
      if (value < min_value || value > max_value) return 0.0;
      return EqUnknownSelectivity();
    }
    case qry::CmpOp::kNe: {
      double eq = 0.0;
      bool found = false;
      for (const auto& [v, freq] : mcvs) {
        if (v == value) {
          eq = freq;
          found = true;
          break;
        }
      }
      if (!found) eq = (value >= min_value && value <= max_value)
                           ? EqUnknownSelectivity()
                           : 0.0;
      return std::clamp(1.0 - eq, 0.0, 1.0);
    }
  }
  return 1.0;
}

ColumnStats BuildColumnStats(const db::Table& table, size_t column, int num_mcvs,
                             int num_buckets) {
  ColumnStats stats;
  const auto& values = table.column(column);
  stats.row_count = values.size();
  if (values.empty()) return stats;

  std::unordered_map<int64_t, size_t> counts;
  for (int64_t v : values) ++counts[v];
  stats.n_distinct = static_cast<double>(counts.size());
  stats.min_value = *std::min_element(values.begin(), values.end());
  stats.max_value = *std::max_element(values.begin(), values.end());

  // Most common values.
  std::vector<std::pair<int64_t, size_t>> by_count(counts.begin(), counts.end());
  std::sort(by_count.begin(), by_count.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const size_t take = std::min<size_t>(static_cast<size_t>(num_mcvs),
                                       by_count.size());
  const double n = static_cast<double>(values.size());
  std::unordered_map<int64_t, bool> is_mcv;
  for (size_t i = 0; i < take; ++i) {
    const double freq = static_cast<double>(by_count[i].second) / n;
    stats.mcvs.emplace_back(by_count[i].first, freq);
    stats.mcv_total_freq += freq;
    is_mcv[by_count[i].first] = true;
  }
  stats.histogram_total_freq = std::max(0.0, 1.0 - stats.mcv_total_freq);

  // Equi-depth histogram over the non-MCV values.
  std::vector<int64_t> rest;
  rest.reserve(values.size());
  for (int64_t v : values) {
    if (is_mcv.find(v) == is_mcv.end()) rest.push_back(v);
  }
  if (!rest.empty()) {
    std::sort(rest.begin(), rest.end());
    const size_t buckets = std::min<size_t>(static_cast<size_t>(num_buckets),
                                            rest.size());
    stats.bounds.resize(buckets + 1);
    for (size_t b = 0; b <= buckets; ++b) {
      const size_t idx =
          std::min(rest.size() - 1, b * rest.size() / std::max<size_t>(1, buckets));
      stats.bounds[b] = rest[idx];
    }
    stats.bounds.back() = rest.back();
  } else {
    stats.histogram_total_freq = 0.0;
  }
  return stats;
}

void DatabaseStats::Build(const db::Database& database) {
  columns_.clear();
  global_ids_.clear();
  table_rows_.clear();
  const db::Catalog& cat = database.catalog();
  table_rows_.resize(cat.num_tables());
  for (int32_t t = 0; t < cat.num_tables(); ++t) {
    const db::Table& tab = database.table(t);
    table_rows_[t] = tab.num_rows();
    for (int32_t c = 0; c < static_cast<int32_t>(tab.num_columns()); ++c) {
      global_ids_[static_cast<size_t>(Key({t, c}))] = columns_.size();
      columns_.push_back(BuildColumnStats(tab, c));
    }
  }
}

}  // namespace lpce::stats
