// PostgreSQL-style per-column statistics: most-common values, equi-depth
// histogram, n_distinct. These feed the Histogram baseline estimator (the
// stand-in for PostgreSQL's native estimator, paper Sec. 7.2) and the cost
// model's scan-selectivity decisions.
#ifndef LPCE_STATS_COLUMN_STATS_H_
#define LPCE_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/database.h"

namespace lpce::stats {

struct ColumnStats {
  size_t row_count = 0;
  int64_t min_value = 0;
  int64_t max_value = 0;
  double n_distinct = 1.0;

  /// Most common values with their frequency as a fraction of rows.
  std::vector<std::pair<int64_t, double>> mcvs;
  double mcv_total_freq = 0.0;

  /// Equi-depth histogram bounds over the non-MCV values
  /// (bounds.size() == buckets + 1; each bucket holds an equal row share).
  std::vector<int64_t> bounds;
  double histogram_total_freq = 0.0;  // 1 - mcv_total_freq

  /// Selectivity of `col op value` under this column's statistics, in [0,1].
  double Selectivity(qry::CmpOp op, int64_t value) const;

  /// Fraction of rows with value < x (or <= x), combining MCVs + histogram.
  double FractionBelow(int64_t x, bool inclusive) const;

  /// Selectivity of equality with an unknown (non-MCV) value.
  double EqUnknownSelectivity() const;
};

/// Builds statistics for one column (full scan — our tables are small; the
/// real PostgreSQL ANALYZE samples).
ColumnStats BuildColumnStats(const db::Table& table, size_t column,
                             int num_mcvs = 16, int num_buckets = 32);

/// Statistics for every column of every table in a database.
class DatabaseStats {
 public:
  DatabaseStats() = default;
  explicit DatabaseStats(const db::Database& database) { Build(database); }

  void Build(const db::Database& database);

  const ColumnStats& column(db::ColRef ref) const {
    return columns_[global_ids_.at(static_cast<size_t>(Key(ref)))];
  }
  size_t table_rows(int32_t table) const { return table_rows_[table]; }

 private:
  int64_t Key(db::ColRef ref) const {
    return static_cast<int64_t>(ref.table) * 64 + ref.column;
  }

  std::vector<ColumnStats> columns_;
  std::unordered_map<size_t, size_t> global_ids_;
  std::vector<size_t> table_rows_;
};

}  // namespace lpce::stats

#endif  // LPCE_STATS_COLUMN_STATS_H_
