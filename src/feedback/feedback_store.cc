#include "feedback/feedback_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/metrics.h"

namespace lpce::fb {

namespace {

constexpr uint64_t kFileMagic = 0x4C50434546424B31ull;    // "LPCEFBK1"
constexpr uint64_t kRecordMagic = 0x4C50434546524543ull;  // "LPCEFREC"

// Serialized-size sanity bounds, mirroring LoadWorkload's: a frame whose
// counts blow past these is corruption, not data.
constexpr uint64_t kMaxPayload = 1 << 20;
constexpr uint64_t kMaxTables = 64;
constexpr uint64_t kMaxJoins = 64;
constexpr uint64_t kMaxPredicates = 128;
constexpr uint64_t kMaxActuals = 4096;

struct FeedbackMetrics {
  common::Counter* appended;
  common::Counter* evicted;
  common::Counter* loaded;
  common::Counter* truncated_tails;
  common::Counter* compactions;
  common::Counter* disk_errors;
  common::Gauge* live;
  common::Gauge* templates;
};

const FeedbackMetrics& Metrics() {
  static const FeedbackMetrics metrics = [] {
    auto& registry = common::MetricsRegistry::Global();
    FeedbackMetrics m;
    m.appended = registry.counter("lpce.feedback.appended_total");
    m.evicted = registry.counter("lpce.feedback.evicted_total");
    m.loaded = registry.counter("lpce.feedback.loaded_total");
    m.truncated_tails = registry.counter("lpce.feedback.truncated_tails_total");
    m.compactions = registry.counter("lpce.feedback.compactions_total");
    m.disk_errors = registry.counter("lpce.feedback.disk_errors_total");
    m.live = registry.gauge("lpce.feedback.live");
    m.templates = registry.gauge("lpce.feedback.templates");
    return m;
  }();
  return metrics;
}

// Little buffer writers/readers over std::string, same field layout idiom as
// workload.cc's file helpers.
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  template <typename T>
  bool Get(T* v) {
    if (pos + sizeof(T) > size) return false;
    std::memcpy(v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
};

std::string LogPath(const std::string& dir) { return dir + "/feedback.log"; }

bool EnsureDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0755) == 0;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string SerializeFeedbackPayload(const FeedbackQuery& record) {
  std::string out;
  PutU64(&out, record.fss_hash);
  const qry::Query& q = record.query;
  PutU32(&out, static_cast<uint32_t>(q.tables.size()));
  for (int32_t t : q.tables) PutI32(&out, t);
  PutU32(&out, static_cast<uint32_t>(q.joins.size()));
  for (const auto& j : q.joins) {
    PutI32(&out, j.left.table);
    PutI32(&out, j.left.column);
    PutI32(&out, j.right.table);
    PutI32(&out, j.right.column);
  }
  PutU32(&out, static_cast<uint32_t>(q.predicates.size()));
  for (const auto& p : q.predicates) {
    PutI32(&out, p.col.table);
    PutI32(&out, p.col.column);
    PutI32(&out, static_cast<int32_t>(p.op));
    PutI64(&out, p.value);
  }
  PutU32(&out, static_cast<uint32_t>(record.actuals.size()));
  for (const auto& [rels, card] : record.actuals) {
    PutU32(&out, rels);
    PutU64(&out, card);
  }
  return out;
}

bool ParseFeedbackPayload(const std::string& payload, FeedbackQuery* out) {
  Cursor cur{payload.data(), payload.size()};
  *out = FeedbackQuery();
  if (!cur.Get(&out->fss_hash)) return false;
  uint32_t n = 0;
  if (!cur.Get(&n) || n > kMaxTables) return false;
  out->query.tables.resize(n);
  for (auto& t : out->query.tables) {
    if (!cur.Get(&t)) return false;
  }
  if (!cur.Get(&n) || n > kMaxJoins) return false;
  out->query.joins.resize(n);
  for (auto& j : out->query.joins) {
    if (!cur.Get(&j.left.table) || !cur.Get(&j.left.column) ||
        !cur.Get(&j.right.table) || !cur.Get(&j.right.column)) {
      return false;
    }
  }
  if (!cur.Get(&n) || n > kMaxPredicates) return false;
  out->query.predicates.resize(n);
  for (auto& p : out->query.predicates) {
    int32_t op = 0;
    if (!cur.Get(&p.col.table) || !cur.Get(&p.col.column) || !cur.Get(&op) ||
        !cur.Get(&p.value)) {
      return false;
    }
    if (op < 0 || op >= qry::kNumCmpOps) return false;
    p.op = static_cast<qry::CmpOp>(op);
  }
  if (!cur.Get(&n) || n > kMaxActuals) return false;
  out->actuals.resize(n);
  for (auto& [rels, card] : out->actuals) {
    if (!cur.Get(&rels) || !cur.Get(&card)) return false;
  }
  return cur.pos == payload.size();
}

FeedbackStoreOptions FeedbackStoreOptions::FromEnv() {
  FeedbackStoreOptions options;
  const char* dir = std::getenv("LPCE_FEEDBACK_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    options.dir = dir;
  } else if (FeedbackEnabledFromEnv()) {
    options.dir = ".lpce_feedback";
  }
  const char* cap = std::getenv("LPCE_FEEDBACK_CAP");
  if (cap != nullptr) {
    const long parsed = std::atol(cap);
    if (parsed > 0) options.per_template_cap = static_cast<size_t>(parsed);
  }
  return options;
}

bool FeedbackEnabledFromEnv() {
  const char* value = std::getenv("LPCE_FEEDBACK");
  return value != nullptr && value[0] != '\0' && std::string(value) != "0";
}

FeedbackStore::FeedbackStore(FeedbackStoreOptions options)
    : options_(std::move(options)) {
  options_.per_template_cap = std::max<size_t>(options_.per_template_cap, 1);
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.dir.empty()) {
    if (!EnsureDir(options_.dir)) {
      disk_status_ =
          Status::IoError("cannot create feedback dir " + options_.dir);
      Metrics().disk_errors->Increment();
      return;
    }
    LoadLocked();
    if (disk_status_.ok()) {
      const Status opened = OpenForAppendLocked();
      if (!opened.ok()) {
        disk_status_ = opened;
        Metrics().disk_errors->Increment();
      }
    }
  }
}

FeedbackStore::~FeedbackStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
}

// Replays <dir>/feedback.log into templates_. Any malformed frame — short
// read, bad magic, size out of bounds, checksum mismatch, unparseable
// payload — ends the replay: everything before it is kept, the file is
// truncated back to the good prefix, and one recovered tail is counted.
void FeedbackStore::LoadLocked() {
  const std::string path = LogPath(options_.dir);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;  // no log yet
  auto read_u64 = [&](uint64_t* v) {
    return std::fread(v, sizeof(*v), 1, f) == 1;
  };
  uint64_t good_end = 0;
  bool tail_torn = false;
  uint64_t magic = 0;
  if (!read_u64(&magic) || magic != kFileMagic) {
    tail_torn = std::ftell(f) != 0;  // empty file: not torn, just new
  } else {
    good_end = sizeof(uint64_t);
    for (;;) {
      uint64_t record_magic = 0, size = 0, checksum = 0;
      if (!read_u64(&record_magic)) break;  // clean EOF
      if (record_magic != kRecordMagic || !read_u64(&size) ||
          size > kMaxPayload || !read_u64(&checksum)) {
        tail_torn = true;
        break;
      }
      std::string payload(size, '\0');
      if (size > 0 && std::fread(payload.data(), 1, size, f) != size) {
        tail_torn = true;
        break;
      }
      if (Fnv1a64(payload.data(), payload.size()) != checksum) {
        tail_torn = true;
        break;
      }
      Entry entry;
      if (!ParseFeedbackPayload(payload, &entry.record)) {
        tail_torn = true;
        break;
      }
      entry.payload = std::move(payload);
      AppendLocked(std::move(entry));
      ++disk_records_;
      ++counters_.loaded;
      Metrics().loaded->Increment();
      good_end = static_cast<uint64_t>(std::ftell(f));
    }
  }
  std::fclose(f);
  if (tail_torn) {
    ++counters_.truncated_tails;
    Metrics().truncated_tails->Increment();
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      // Could not cut the torn tail off; rewrite the whole live set instead.
      const Status st = CompactLocked();
      if (!st.ok()) {
        disk_status_ = st;
        Metrics().disk_errors->Increment();
      }
    }
  }
}

Status FeedbackStore::OpenForAppendLocked() {
  const std::string path = LogPath(options_.dir);
  const bool fresh = disk_records_ == 0;
  log_ = std::fopen(path.c_str(), fresh ? "wb" : "ab");
  if (log_ == nullptr) return Status::IoError("cannot open " + path);
  if (fresh) {
    const uint64_t magic = kFileMagic;
    if (std::fwrite(&magic, sizeof(magic), 1, log_) != 1 ||
        std::fflush(log_) != 0) {
      std::fclose(log_);
      log_ = nullptr;
      return Status::IoError("cannot write header to " + path);
    }
  }
  return Status::Ok();
}

void FeedbackStore::Append(const FeedbackQuery& record) {
  Entry entry;
  entry.record = record;
  std::sort(entry.record.actuals.begin(), entry.record.actuals.end());
  entry.payload = SerializeFeedbackPayload(entry.record);
  std::lock_guard<std::mutex> lock(mu_);
  const std::string payload = entry.payload;  // AppendLocked consumes entry
  AppendLocked(std::move(entry));
  ++counters_.appended;
  Metrics().appended->Increment();
  if (log_ != nullptr) {
    const uint64_t size = payload.size();
    const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
    bool ok = std::fwrite(&kRecordMagic, sizeof(uint64_t), 1, log_) == 1 &&
              std::fwrite(&size, sizeof(size), 1, log_) == 1 &&
              std::fwrite(&checksum, sizeof(checksum), 1, log_) == 1;
    if (ok && size > 0) {
      ok = std::fwrite(payload.data(), 1, payload.size(), log_) == payload.size();
    }
    ok = ok && std::fflush(log_) == 0;
    if (!ok) {
      if (disk_status_.ok()) {
        disk_status_ = Status::IoError("append failed; serving from memory");
      }
      Metrics().disk_errors->Increment();
      std::fclose(log_);
      log_ = nullptr;
      return;
    }
    ++disk_records_;
    // Evicted records stay in the log until it has grown well past the live
    // set; then fold them out so disk usage tracks the retention policy.
    if (disk_records_ > 4 * counters_.live + 64) {
      const Status st = CompactLocked();
      if (!st.ok() && disk_status_.ok()) {
        disk_status_ = st;
        Metrics().disk_errors->Increment();
      }
    }
  }
}

void FeedbackStore::AppendLocked(Entry entry) {
  std::deque<Entry>& records = templates_[entry.record.fss_hash];
  records.push_back(std::move(entry));
  if (records.size() > options_.per_template_cap) {
    records.pop_front();
    ++counters_.evicted;
    Metrics().evicted->Increment();
  } else {
    ++counters_.live;
  }
  counters_.templates = templates_.size();
  Metrics().live->Set(static_cast<double>(counters_.live));
  Metrics().templates->Set(static_cast<double>(counters_.templates));
}

namespace {

wk::LabeledQuery ToLabeled(const FeedbackQuery& record) {
  wk::LabeledQuery labeled;
  labeled.query = record.query;
  for (const auto& [rels, card] : record.actuals) {
    labeled.true_cards[rels] = card;
  }
  return labeled;
}

}  // namespace

std::vector<wk::LabeledQuery> FeedbackStore::HarvestAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wk::LabeledQuery> out;
  for (const auto& [fss, records] : templates_) {
    std::vector<const Entry*> sorted;
    sorted.reserve(records.size());
    for (const Entry& e : records) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry* a, const Entry* b) { return a->payload < b->payload; });
    for (const Entry* e : sorted) out.push_back(ToLabeled(e->record));
  }
  return out;
}

std::vector<wk::LabeledQuery> FeedbackStore::HarvestTemplate(uint64_t fss) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wk::LabeledQuery> out;
  auto it = templates_.find(fss);
  if (it == templates_.end()) return out;
  std::vector<const Entry*> sorted;
  sorted.reserve(it->second.size());
  for (const Entry& e : it->second) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->payload < b->payload; });
  for (const Entry* e : sorted) out.push_back(ToLabeled(e->record));
  return out;
}

std::vector<uint64_t> FeedbackStore::Templates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(templates_.size());
  for (const auto& [fss, records] : templates_) out.push_back(fss);
  return out;
}

size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.live;
}

Status FeedbackStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  const Status st = CompactLocked();
  if (!st.ok() && disk_status_.ok()) {
    disk_status_ = st;
    Metrics().disk_errors->Increment();
  }
  return st;
}

Status FeedbackStore::CompactLocked() {
  if (options_.dir.empty()) return Status::Ok();
  const std::string path = LogPath(options_.dir);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot write " + tmp);
  auto fail = [&](const char* what) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError(std::string(what) + ": " + tmp);
  };
  uint64_t written = 0;
  if (std::fwrite(&kFileMagic, sizeof(uint64_t), 1, f) != 1) {
    return fail("write header");
  }
  for (const auto& [fss, records] : templates_) {
    for (const Entry& e : records) {
      const uint64_t size = e.payload.size();
      const uint64_t checksum = Fnv1a64(e.payload.data(), e.payload.size());
      if (std::fwrite(&kRecordMagic, sizeof(uint64_t), 1, f) != 1 ||
          std::fwrite(&size, sizeof(size), 1, f) != 1 ||
          std::fwrite(&checksum, sizeof(checksum), 1, f) != 1 ||
          (size > 0 &&
           std::fwrite(e.payload.data(), 1, e.payload.size(), f) != size)) {
        return fail("write record");
      }
      ++written;
    }
  }
  if (std::fflush(f) != 0) return fail("flush");
  std::fclose(f);
  // Commit point: the log is atomically either the old file or the new one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path);
  }
  if (log_ != nullptr) std::fclose(log_);
  log_ = std::fopen(path.c_str(), "ab");
  if (log_ == nullptr) return Status::IoError("reopen " + path);
  disk_records_ = written;
  ++counters_.compactions;
  Metrics().compactions->Increment();
  return Status::Ok();
}

Status FeedbackStore::disk_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_status_;
}

FeedbackStore::Counters FeedbackStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace lpce::fb
