// On-disk execution-feedback knowledge store (ROADMAP item 1; AQO's
// persistent knowledge base idea, keyed by the same feature-subspace hash
// the plan cache and telemetry group templates by).
//
// Every executed query yields exact cardinalities for all of its executed
// sub-plans (the engine's trace spans). The store persists those
// (sub-plan subset, true cardinality) pairs — together with the query they
// belong to, so they can be re-materialized as wk::LabeledQuery training
// examples — into an append-only binary log:
//
//   file   := u64 file-magic, record*
//   record := u64 record-magic, u64 payload-size, u64 fnv1a64(payload),
//             payload
//
// Crash-safety contract:
//   - Appends are framed + checksummed. A torn tail (partial frame, bad
//     checksum) is detected at load time: the loader keeps the good prefix,
//     truncates the file back to it, and counts one recovered truncation —
//     a crashed writer never poisons the store.
//   - Compact() rewrites the live set to `<dir>/feedback.log.tmp` and
//     atomically renames it over `<dir>/feedback.log`, so the file is
//     either the old log or the new one, never a half-written mix. The
//     store auto-compacts when the on-disk log grows well past the live
//     (post-eviction) set.
//
// Bounding: at most `per_template_cap` records are retained per template
// (fss hash); beyond that the oldest record of the template is evicted
// (insertion-order LRU — records are immutable and never "used" in place,
// so recency == insertion). Eviction is deterministic given the append
// sequence; on reload the same sequence replays to the same live set.
//
// Thread-safe throughout (one mutex; the engine's workers append
// concurrently). Harvest order is deterministic regardless of concurrent
// arrival order: templates ascending by fss, records within a template
// sorted by their serialized payload bytes.
//
// Env knobs (FeedbackStoreOptions::FromEnv): LPCE_FEEDBACK=1 enables
// harvesting in the serving layer, LPCE_FEEDBACK_DIR the log directory
// (default ".lpce_feedback"), LPCE_FEEDBACK_CAP the per-template cap
// (default 64).
#ifndef LPCE_FEEDBACK_FEEDBACK_STORE_H_
#define LPCE_FEEDBACK_FEEDBACK_STORE_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "workload/workload.h"

namespace lpce::fb {

/// One executed query's worth of feedback: the query itself plus the exact
/// cardinality of every executed sub-plan subset (sorted by rels ascending).
struct FeedbackQuery {
  uint64_t fss_hash = 0;  // template group key (query/fingerprint.h)
  qry::Query query;
  std::vector<std::pair<qry::RelSet, uint64_t>> actuals;
};

struct FeedbackStoreOptions {
  /// Log directory ("" = memory-only store, nothing persisted).
  std::string dir;
  /// Maximum retained records per template; oldest evicted beyond this.
  size_t per_template_cap = 64;

  /// dir from LPCE_FEEDBACK_DIR (default ".lpce_feedback" when LPCE_FEEDBACK
  /// is set, "" otherwise), per_template_cap from LPCE_FEEDBACK_CAP.
  static FeedbackStoreOptions FromEnv();
};

/// True when LPCE_FEEDBACK is set to a non-empty value other than "0".
bool FeedbackEnabledFromEnv();

class FeedbackStore {
 public:
  /// Opens (or creates) the log under options.dir and replays it into
  /// memory, recovering cleanly from a truncated tail. Memory-only when
  /// options.dir is empty.
  explicit FeedbackStore(FeedbackStoreOptions options);
  ~FeedbackStore();

  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  /// Records one query's feedback: appends to the in-memory template deque
  /// (evicting the oldest past the cap) and to the on-disk log. Disk errors
  /// are absorbed (the store keeps serving from memory; see disk_status).
  void Append(const FeedbackQuery& record);

  /// Every live record as a labeled training example. Deterministic order:
  /// templates ascending by fss, records within a template ordered by
  /// serialized payload bytes — independent of concurrent arrival order.
  std::vector<wk::LabeledQuery> HarvestAll() const;

  /// Live records of one template, same intra-template order as HarvestAll.
  std::vector<wk::LabeledQuery> HarvestTemplate(uint64_t fss) const;

  /// Live template keys, ascending.
  std::vector<uint64_t> Templates() const;

  /// Live (post-eviction) record count across all templates.
  size_t size() const;

  /// Rewrites the log to exactly the live set via write-temp + atomic
  /// rename. No-op (Ok) for a memory-only store.
  Status Compact();

  /// First disk error encountered (Ok while the log is healthy).
  Status disk_status() const;

  struct Counters {
    uint64_t appended = 0;        // Append() calls accepted into memory
    uint64_t evicted = 0;         // records dropped by the per-template cap
    uint64_t loaded = 0;          // records replayed from disk at startup
    uint64_t truncated_tails = 0; // torn tails recovered at load (0 or 1)
    uint64_t compactions = 0;     // explicit + automatic Compact() runs
    size_t live = 0;              // current in-memory records
    size_t templates = 0;         // current distinct fss keys
  };
  Counters counters() const;

  const FeedbackStoreOptions& options() const { return options_; }

 private:
  struct Entry {
    FeedbackQuery record;
    std::string payload;  // serialized form: dedup-free deterministic sort key
  };

  void AppendLocked(Entry entry);
  Status CompactLocked();
  void LoadLocked();
  Status OpenForAppendLocked();

  FeedbackStoreOptions options_;
  mutable std::mutex mu_;
  // std::map: deterministic ascending-fss iteration.
  std::map<uint64_t, std::deque<Entry>> templates_;
  std::FILE* log_ = nullptr;
  uint64_t disk_records_ = 0;  // frames in the on-disk log (>= live)
  Status disk_status_;
  Counters counters_;
};

/// Serialization helpers shared with the tests (frame-level corruption
/// tests build their own payloads).
std::string SerializeFeedbackPayload(const FeedbackQuery& record);
bool ParseFeedbackPayload(const std::string& payload, FeedbackQuery* out);
uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace lpce::fb

#endif  // LPCE_FEEDBACK_FEEDBACK_STORE_H_
