#include "exec/vectorized.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/selvec.h"
#include "common/thread_pool.h"

namespace lpce::exec {

namespace {

// Inputs below this many rows run the sequential paths — same threshold as
// the row-at-a-time operators (exec/executor.cc), so flipping batch mode
// never changes *when* the pool is engaged, only what each worker runs.
constexpr size_t kMinParallelRows = 4096;

int EffectiveThreads(int num_threads) {
  int workers = common::GlobalPool().size();
  if (num_threads > 0) workers = std::min(workers, num_threads);
  return workers;
}

/// Refines the selection vector `sel` (global row ids, length n) in place
/// against `col[r] op lit`, one branch-free pass per predicate. The switch
/// is hoisted out of the loop so each comparison compiles to a flag-setting
/// compare feeding the cursor increment, with no per-row branch.
size_t RefineCmp(const std::vector<int64_t>& col, qry::CmpOp op, int64_t lit,
                 uint32_t* sel, size_t n) {
  switch (op) {
    case qry::CmpOp::kLt:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] < lit; });
    case qry::CmpOp::kLe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] <= lit; });
    case qry::CmpOp::kEq:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] == lit; });
    case qry::CmpOp::kGe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] >= lit; });
    case qry::CmpOp::kGt:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] > lit; });
    case qry::CmpOp::kNe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] != lit; });
  }
  return n;
}

/// Source (side, column index) for every join output column.
struct Source {
  bool from_outer;
  int col;
};

std::vector<Source> ResolveSources(const RowSet& outer, const RowSet& inner,
                                   const std::vector<db::ColRef>& required) {
  std::vector<Source> sources;
  sources.reserve(required.size());
  for (const auto& ref : required) {
    int idx = outer.ColumnIndex(ref);
    if (idx >= 0) {
      sources.push_back({true, idx});
    } else {
      idx = inner.ColumnIndex(ref);
      LPCE_CHECK_MSG(idx >= 0, "join output column not found in either side");
      sources.push_back({false, idx});
    }
  }
  return sources;
}

common::Counter* BatchesCounter() {
  static common::Counter* batches =
      common::MetricsRegistry::Global().counter("executor.batches_total");
  return batches;
}

}  // namespace

int BatchSizeFromEnv() {
  const char* env = std::getenv("LPCE_EXEC_BATCH");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) return 0;
  // "1" means "enabled, default size"; anything larger is a literal size,
  // clamped so a typo can't demand a gigarow selection buffer.
  if (value == 1) return kDefaultBatchSize;
  return static_cast<int>(std::min<long>(value, 1 << 20));
}

bool LateMatFromEnv() {
  const char* env = std::getenv("LPCE_EXEC_LATE_MAT");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  return end != env && *end == '\0' && value > 0;
}

RowSetPtr BatchScan(const db::Table& table, int32_t table_id,
                    const std::vector<uint32_t>* index_rows,
                    const std::vector<qry::Predicate>& residual,
                    const std::vector<db::ColRef>& required, int batch_size,
                    int num_threads, bool late) {
  LPCE_PROFILE_SCOPE("exec.batch_scan");
  LPCE_CHECK(batch_size > 0);
  const size_t B = static_cast<size_t>(batch_size);
  const size_t n = index_rows != nullptr ? index_rows->size() : table.num_rows();
  auto out = std::make_shared<RowSet>();
  out->schema = required;
  for (const auto& ref : required) LPCE_CHECK(ref.table == table_id);
  if (!late) out->cols.resize(required.size());

  // A dense scan with no predicates is a straight column copy — no
  // selection vector, no gather. Under late materialization it is an
  // identity row-id column instead (4 bytes per row, regardless of how many
  // columns the parent will eventually read).
  if (index_rows == nullptr && residual.empty()) {
    out->row_count = n;
    if (late) {
      out->rid_tables.push_back(table_id);
      auto& rid = out->rid_cols.emplace_back();
      rid.resize(n);
      for (size_t i = 0; i < n; ++i) rid[i] = static_cast<uint32_t>(i);
      return out;
    }
    for (size_t c = 0; c < required.size(); ++c) {
      out->cols[c] = table.column(required[c].column);
    }
    return out;
  }

  // Filter batch-at-a-time: batch k always covers candidates
  // [k*B, min((k+1)*B, n)) — fixed global boundaries, so any chunking of
  // whole batches across workers concatenates back to the input order and
  // the surviving rows are bit-identical at every pool size.
  const size_t num_batches = (n + B - 1) / B;
  auto filter_batches = [&](size_t batch_lo, size_t batch_hi,
                            std::vector<uint32_t>* kept) {
    std::vector<uint32_t> sel(B);
    for (size_t batch = batch_lo; batch < batch_hi; ++batch) {
      const size_t lo = batch * B;
      const size_t count = std::min(B, n - lo);
      if (index_rows != nullptr) {
        // Candidates are the driving index's row list.
        std::copy(index_rows->data() + lo, index_rows->data() + lo + count,
                  sel.data());
      } else {
        for (size_t i = 0; i < count; ++i) {
          sel[i] = static_cast<uint32_t>(lo + i);
        }
      }
      size_t live = count;
      for (const auto& f : residual) {
        if (live == 0) break;
        live = RefineCmp(table.column(f.col.column), f.op, f.value, sel.data(),
                         live);
      }
      kept->insert(kept->end(), sel.data(), sel.data() + live);
    }
  };

  const int workers = EffectiveThreads(num_threads);
  std::vector<uint32_t> rows;
  if (workers > 1 && n >= kMinParallelRows && num_batches > 1) {
    const auto chunks =
        common::ThreadPool::Partition(0, num_batches, 1, workers);
    std::vector<std::vector<uint32_t>> kept(chunks.size());
    common::GlobalPool().ParallelFor(
        0, chunks.size(), 1,
        [&](size_t c0, size_t c1) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_filter");
          for (size_t c = c0; c < c1; ++c) {
            kept[c].reserve((chunks[c].second - chunks[c].first) * B);
            filter_batches(chunks[c].first, chunks[c].second, &kept[c]);
          }
        },
        workers);
    size_t total = 0;
    for (const auto& k : kept) total += k.size();
    rows.reserve(total);
    for (const auto& k : kept) rows.insert(rows.end(), k.begin(), k.end());
  } else {
    rows.reserve(n);
    filter_batches(0, num_batches, &rows);
  }
  BatchesCounter()->Increment(num_batches);

  out->row_count = rows.size();
  // Late materialization: the surviving selection vector *is* the result —
  // no payload gather at all. Payload reads happen downstream through the
  // row-id indirection (LateHashJoin / MaterializeRowSet).
  if (late) {
    out->rid_tables.push_back(table_id);
    out->rid_cols.push_back(std::move(rows));
    return out;
  }
  for (size_t c = 0; c < required.size(); ++c) {
    const auto& src = table.column(required[c].column);
    auto& dst = out->cols[c];
    dst.resize(rows.size());
    if (workers > 1 && rows.size() >= kMinParallelRows) {
      common::GlobalPool().ParallelFor(
          0, rows.size(), kMinParallelRows / 4,
          [&](size_t b, size_t e) {
            LPCE_PROFILE_SCOPE("exec.worker.gather");
            common::GatherSelected(src.data(), rows.data() + b, e - b,
                                   dst.data() + b);
          },
          workers);
    } else {
      common::GatherSelected(src.data(), rows.data(), rows.size(), dst.data());
    }
  }
  return out;
}

RowSetPtr BatchHashJoin(const RowSet& outer, const RowSet& inner,
                        int outer_key, int inner_key,
                        const std::vector<std::pair<int, int>>& residual,
                        const std::vector<db::ColRef>& required,
                        size_t max_rows, bool* overflow, int batch_size,
                        int num_threads) {
  LPCE_PROFILE_SCOPE("exec.batch_hash_join");
  LPCE_CHECK(batch_size > 0);
  const auto& okeys = outer.cols[outer_key];
  const auto& ikeys = inner.cols[inner_key];
  const size_t B = static_cast<size_t>(batch_size);
  const int workers = EffectiveThreads(num_threads);
  common::ThreadPool& pool = common::GlobalPool();
  const std::vector<Source> sources = ResolveSources(outer, inner, required);

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  // ---- Build: flattened bucket-segment table over the inner keys. ---------
  // Counting sort by bucket: every bucket's (key, row) pairs land in one
  // contiguous segment of flat_keys/flat_rows, written in ascending inner-row
  // order, so a probe scans a cache-resident segment instead of chasing
  // chain pointers and a key's matches enumerate exactly like the row path's
  // per-key insertion-order vector. The hash only places rows into buckets —
  // key equality is re-checked per entry — so the bucket count and hash
  // function are invisible in the output.
  const size_t n_inner = ikeys.size();
  size_t nbuckets = 16;
  while (nbuckets < 2 * n_inner) nbuckets <<= 1;
  const uint64_t mask = nbuckets - 1;
  std::vector<uint32_t> bucket(n_inner);
  if (workers > 1 && n_inner >= kMinParallelRows) {
    pool.ParallelFor(
        0, n_inner, 4096,
        [&](size_t b, size_t e) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_hash");
          for (size_t r = b; r < e; ++r) {
            bucket[r] = static_cast<uint32_t>(MixJoinKey(ikeys[r]) & mask);
          }
        },
        workers);
  } else {
    for (size_t r = 0; r < n_inner; ++r) {
      bucket[r] = static_cast<uint32_t>(MixJoinKey(ikeys[r]) & mask);
    }
  }
  std::vector<uint32_t> off(nbuckets + 1, 0);
  for (size_t r = 0; r < n_inner; ++r) ++off[bucket[r] + 1];
  for (size_t b = 0; b < nbuckets; ++b) off[b + 1] += off[b];
  std::vector<int64_t> flat_keys(n_inner);
  std::vector<uint32_t> flat_rows(n_inner);
  {
    std::vector<uint32_t> cursor(off.begin(), off.end() - 1);
    for (size_t r = 0; r < n_inner; ++r) {
      const uint32_t p = cursor[bucket[r]]++;
      flat_keys[p] = ikeys[r];
      flat_rows[p] = static_cast<uint32_t>(r);
    }
  }

  // ---- Probe: batches of outer rows. --------------------------------------
  // Each batch collects candidate (outer row, inner row) match pairs, then
  // refines them branch-free against the residual equi-join keys, then
  // gathers the survivors column-at-a-time. Batch boundaries are fixed
  // globally (batch k covers [k*B, (k+1)*B)), so chunking whole batches
  // across workers and concatenating in chunk order reproduces the
  // sequential output exactly.
  const size_t n_outer = okeys.size();
  const size_t num_batches = (n_outer + B - 1) / B;
  std::atomic<size_t> emitted{0};
  std::atomic<bool> over{false};

  struct ChunkOut {
    std::vector<std::vector<int64_t>> cols;
    size_t rows = 0;
  };

  // Probe modes, all sharing the branch-free segment scan (every entry is
  // stored/summed unconditionally, the cursor advances by the key-equality
  // result):
  //  - count-only (no residuals, no output columns — a root join): each
  //    batch is a pure sum of key-equality hits, nothing materialized;
  //  - expand (no residuals): only inner row ids are collected, plus a
  //    per-outer-row match count; outer columns are emitted by run-length
  //    fill (one load per outer row) and inner columns by gather;
  //  - pairs (residual keys): full (outer, inner) candidate pairs, refined
  //    branch-free per residual key, then gathered per side.
  const bool count_only = residual.empty() && sources.empty();
  const bool expand = residual.empty() && !sources.empty();
  // Expand mode only materializes inner row ids when an inner column is
  // actually emitted; a join whose output draws on the outer side alone gets
  // by on the per-row match counts.
  bool need_inner_rows = !expand;
  for (const Source& s : sources) need_inner_rows |= !s.from_outer;

  auto probe_batches = [&](size_t batch_lo, size_t batch_hi, ChunkOut* local) {
    local->cols.resize(sources.size());
    std::vector<uint32_t> m_outer(expand || count_only ? 0 : B), m_inner(B);
    std::vector<uint32_t> counts(expand ? B : 0);
    std::vector<uint32_t> buckets(B);
    for (size_t batch = batch_lo; batch < batch_hi; ++batch) {
      if (over.load(std::memory_order_relaxed)) return;
      const size_t lo = batch * B;
      const size_t hi = std::min(lo + B, n_outer);
      // Hashing is hoisted into its own pass: the multiply/xor chains of
      // consecutive rows pipeline back to back with no branchy segment scan
      // between them.
      for (size_t r = lo; r < hi; ++r) {
        buckets[r - lo] = static_cast<uint32_t>(MixJoinKey(okeys[r]) & mask);
      }
      if (count_only) {
        size_t hits = 0;
        for (size_t r = lo; r < hi; ++r) {
          const int64_t key = okeys[r];
          const uint64_t b = buckets[r - lo];
          const uint32_t seg_end = off[b + 1];
          for (uint32_t i = off[b]; i < seg_end; ++i) {
            hits += static_cast<size_t>(flat_keys[i] == key);
          }
        }
        local->rows += hits;
        if (max_rows > 0 && hits > 0 &&
            emitted.fetch_add(hits, std::memory_order_relaxed) + hits >
                max_rows) {
          over.store(true, std::memory_order_relaxed);
          return;
        }
        continue;
      }
      // Candidate collection. Capacity is grown ahead of each row's segment
      // so the scan carries no bounds check.
      size_t m = 0;
      for (size_t r = lo; r < hi; ++r) {
        const int64_t key = okeys[r];
        const uint64_t b = buckets[r - lo];
        const uint32_t seg_begin = off[b];
        const uint32_t seg_end = off[b + 1];
        if (need_inner_rows && m + (seg_end - seg_begin) > m_inner.size()) {
          const size_t grown =
              std::max(m_inner.size() * 2, m + (seg_end - seg_begin));
          m_inner.resize(grown);
          if (!expand) m_outer.resize(grown);
        }
        if (expand && !need_inner_rows) {
          size_t hits = 0;
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            hits += static_cast<size_t>(flat_keys[i] == key);
          }
          counts[r - lo] = static_cast<uint32_t>(hits);
          m += hits;
        } else if (expand) {
          const size_t before = m;
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            m_inner[m] = flat_rows[i];
            m += static_cast<size_t>(flat_keys[i] == key);
          }
          counts[r - lo] = static_cast<uint32_t>(m - before);
        } else {
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            m_outer[m] = static_cast<uint32_t>(r);
            m_inner[m] = flat_rows[i];
            m += static_cast<size_t>(flat_keys[i] == key);
          }
        }
      }
      for (const auto& [oc, ic] : residual) {
        const auto& ocol = outer.cols[oc];
        const auto& icol = inner.cols[ic];
        size_t k = 0;
        for (size_t j = 0; j < m; ++j) {
          const uint32_t orow = m_outer[j];
          const uint32_t irow = m_inner[j];
          m_outer[k] = orow;
          m_inner[k] = irow;
          k += static_cast<size_t>(ocol[orow] == icol[irow]);
        }
        m = k;
      }
      for (size_t s = 0; s < sources.size(); ++s) {
        auto& dst = local->cols[s];
        const auto& src = sources[s].from_outer ? outer.cols[sources[s].col]
                                                : inner.cols[sources[s].col];
        // Appends go through insert (fill / iterator-range overloads) rather
        // than resize + overwrite: insert writes each new element exactly
        // once, where resize would value-initialize the tail first — a whole
        // extra pass over every emitted column.
        if (sources[s].from_outer && expand) {
          // Run-length emit: each outer row's value repeats once per match,
          // in match order — identical to gathering through explicit
          // (outer, inner) pairs, without materializing them.
          for (size_t r = lo; r < hi; ++r) {
            const uint32_t cnt = counts[r - lo];
            if (cnt > 0) dst.insert(dst.end(), cnt, src[r]);
          }
        } else {
          const uint32_t* sel =
              sources[s].from_outer ? m_outer.data() : m_inner.data();
          dst.insert(dst.end(), common::GatherIterator(src.data(), sel, 0),
                     common::GatherIterator(src.data(), sel, m));
        }
      }
      local->rows += m;
      // Count only rows actually emitted: residual keys can reject
      // candidates the primary key surfaced. Same trip condition as the row
      // paths — overflow fires iff the total would exceed max_rows.
      if (max_rows > 0 && m > 0 &&
          emitted.fetch_add(m, std::memory_order_relaxed) + m > max_rows) {
        over.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  BatchesCounter()->Increment(num_batches);
  if (workers > 1 && n_outer + n_inner >= kMinParallelRows &&
      num_batches > 1) {
    const auto chunks =
        common::ThreadPool::Partition(0, num_batches, 1, workers);
    std::vector<ChunkOut> partials(chunks.size());
    pool.ParallelFor(
        0, chunks.size(), 1,
        [&](size_t c0, size_t c1) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_probe");
          for (size_t c = c0; c < c1; ++c) {
            probe_batches(chunks[c].first, chunks[c].second, &partials[c]);
          }
        },
        workers);
    if (over.load()) {
      // The run is abandoned; the partial output is discarded upstream.
      *overflow = true;
      return out;
    }
    size_t total = 0;
    for (const auto& p : partials) total += p.rows;
    out->row_count = total;
    pool.ParallelFor(
        0, sources.size(), 1,
        [&](size_t s0, size_t s1) {
          LPCE_PROFILE_SCOPE("exec.worker.concat");
          for (size_t s = s0; s < s1; ++s) {
            auto& dst = out->cols[s];
            dst.reserve(total);
            for (const auto& p : partials) {
              dst.insert(dst.end(), p.cols[s].begin(), p.cols[s].end());
            }
          }
        },
        workers);
    return out;
  }

  ChunkOut all;
  probe_batches(0, num_batches, &all);
  if (over.load()) {
    *overflow = true;
    return out;
  }
  out->row_count = all.rows;
  for (size_t s = 0; s < sources.size(); ++s) {
    out->cols[s] = std::move(all.cols[s]);
  }
  return out;
}

// ---- Late materialization (row-id intermediates) ----------------------------
//
// Under LPCE_EXEC_LATE_MAT a join's inputs and output carry base-table row-id
// columns instead of payload columns. Every payload read — join keys at probe
// time, residual-key values, the final materialization — goes through the
// row-id indirection (common/selvec.h GatherGathered). The probe structure,
// overflow contract, and order-preserving chunk-concat parallelism are shared
// with BatchHashJoin, so the emitted row order is bit-identical to the
// materialized paths.

namespace {

/// Payload column read through a row-id indirection. `rid == nullptr` means
/// the candidate handles already are base rows (the fused scan side), so the
/// read is a one-level gather.
struct LateKeyCol {
  const int64_t* base = nullptr;
  const uint32_t* rid = nullptr;
};

/// Source of one output row-id column: a side's rid column gathered through
/// the match list, or (outer side with `rid == nullptr`) the outer candidate
/// handle itself.
struct LateRidSource {
  bool from_outer = false;
  const uint32_t* rid = nullptr;
};

/// Flattened bucket-segment table over the inner side's (gathered) keys —
/// identical layout and enumeration order to BatchHashJoin's build.
struct LateBuildTable {
  uint64_t mask = 0;
  std::vector<uint32_t> off;
  std::vector<int64_t> flat_keys;
  std::vector<uint32_t> flat_rows;
};

LateBuildTable BuildLateHashTable(const int64_t* key_base,
                                  const uint32_t* key_rid, size_t n_inner,
                                  int workers) {
  LateBuildTable t;
  size_t nbuckets = 16;
  while (nbuckets < 2 * n_inner) nbuckets <<= 1;
  t.mask = nbuckets - 1;
  // Gather the inner keys through the row-id indirection once; the bucket
  // pass and the flat fill both read the gathered copy sequentially.
  std::vector<int64_t> ikeys(n_inner);
  std::vector<uint32_t> bucket(n_inner);
  auto hash_range = [&](size_t b, size_t e) {
    for (size_t r = b; r < e; ++r) {
      ikeys[r] = key_base[key_rid[r]];
      bucket[r] = static_cast<uint32_t>(MixJoinKey(ikeys[r]) & t.mask);
    }
  };
  if (workers > 1 && n_inner >= kMinParallelRows) {
    common::GlobalPool().ParallelFor(
        0, n_inner, 4096,
        [&](size_t b, size_t e) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_hash");
          hash_range(b, e);
        },
        workers);
  } else {
    hash_range(0, n_inner);
  }
  t.off.assign(nbuckets + 1, 0);
  for (size_t r = 0; r < n_inner; ++r) ++t.off[bucket[r] + 1];
  for (size_t b = 0; b < nbuckets; ++b) t.off[b + 1] += t.off[b];
  t.flat_keys.resize(n_inner);
  t.flat_rows.resize(n_inner);
  {
    std::vector<uint32_t> cursor(t.off.begin(), t.off.end() - 1);
    for (size_t r = 0; r < n_inner; ++r) {
      const uint32_t p = cursor[bucket[r]]++;
      t.flat_keys[p] = ikeys[r];
      t.flat_rows[p] = static_cast<uint32_t>(r);
    }
  }
  return t;
}

struct LateProbeArgs {
  const int64_t* okey_base = nullptr;
  const uint32_t* okey_rid = nullptr;  // nullptr: candidates are base rows
  std::vector<std::pair<LateKeyCol, LateKeyCol>> residual;  // (outer, inner)
  std::vector<LateRidSource> out_rids;
  size_t max_rows = 0;
  size_t B = 0;
  int workers = 1;
  size_t n_cand = 0;   // candidate domain size (pre-filter for fused)
  size_t n_inner = 0;  // build-side rows (parallel threshold only)
  bool collect = false;  // accumulate candidates (the fused scan's output)
};

/// Shared probe driver for the late join kernels. `fill(batch, cand)` writes
/// the batch's candidate handles (rowset rows for the unfused kernel, filter-
/// surviving base rows for the fused one) and returns how many there are;
/// batch k always covers candidate domain [k*B, (k+1)*B), so chunking whole
/// batches across workers concatenates back to the sequential order.
/// Returns false on overflow.
template <typename FillBatch>
bool LateProbeDrive(const LateBuildTable& build, const LateProbeArgs& a,
                    FillBatch fill, RowSet* out,
                    std::vector<uint32_t>* collected) {
  const size_t B = a.B;
  const uint64_t mask = build.mask;
  const std::vector<uint32_t>& off = build.off;
  const std::vector<int64_t>& flat_keys = build.flat_keys;
  const std::vector<uint32_t>& flat_rows = build.flat_rows;
  const size_t num_batches = (a.n_cand + B - 1) / B;
  std::atomic<size_t> emitted{0};
  std::atomic<bool> over{false};

  const bool count_only = a.residual.empty() && a.out_rids.empty();
  const bool expand = a.residual.empty() && !count_only;
  bool need_inner_rows = !expand;
  for (const LateRidSource& s : a.out_rids) need_inner_rows |= !s.from_outer;

  struct ChunkOut {
    std::vector<std::vector<uint32_t>> rids;
    std::vector<uint32_t> cand_rows;  // collected candidates (fused scans)
    size_t rows = 0;
  };

  auto probe_batches = [&](size_t batch_lo, size_t batch_hi, ChunkOut* local) {
    local->rids.resize(a.out_rids.size());
    std::vector<uint32_t> cand(B);
    std::vector<uint32_t> m_outer(expand || count_only ? 0 : B), m_inner(B);
    std::vector<uint32_t> counts(expand ? B : 0);
    std::vector<uint32_t> buckets(B);
    std::vector<int64_t> okey_buf(B);
    std::vector<int64_t> res_outer, res_inner;
    for (size_t batch = batch_lo; batch < batch_hi; ++batch) {
      if (over.load(std::memory_order_relaxed)) return;
      const size_t live = fill(batch, cand.data());
      if (a.collect) {
        local->cand_rows.insert(local->cand_rows.end(), cand.data(),
                                cand.data() + live);
      }
      if (live == 0) continue;
      // Join-key access gathers through the row-id indirection — the
      // deferred payload read late materialization trades the emission
      // copies for.
      if (a.okey_rid != nullptr) {
        common::GatherGathered(a.okey_base, a.okey_rid, cand.data(), live,
                               okey_buf.data());
      } else {
        common::GatherSelected(a.okey_base, cand.data(), live, okey_buf.data());
      }
      for (size_t i = 0; i < live; ++i) {
        buckets[i] = static_cast<uint32_t>(MixJoinKey(okey_buf[i]) & mask);
      }
      if (count_only) {
        size_t hits = 0;
        for (size_t i = 0; i < live; ++i) {
          const int64_t key = okey_buf[i];
          const uint64_t b = buckets[i];
          const uint32_t seg_end = off[b + 1];
          for (uint32_t j = off[b]; j < seg_end; ++j) {
            hits += static_cast<size_t>(flat_keys[j] == key);
          }
        }
        local->rows += hits;
        if (a.max_rows > 0 && hits > 0 &&
            emitted.fetch_add(hits, std::memory_order_relaxed) + hits >
                a.max_rows) {
          over.store(true, std::memory_order_relaxed);
          return;
        }
        continue;
      }
      size_t m = 0;
      for (size_t i = 0; i < live; ++i) {
        const int64_t key = okey_buf[i];
        const uint64_t b = buckets[i];
        const uint32_t seg_begin = off[b];
        const uint32_t seg_end = off[b + 1];
        if (need_inner_rows && m + (seg_end - seg_begin) > m_inner.size()) {
          const size_t grown =
              std::max(m_inner.size() * 2, m + (seg_end - seg_begin));
          m_inner.resize(grown);
          if (!expand) m_outer.resize(grown);
        }
        if (expand && !need_inner_rows) {
          size_t hits = 0;
          for (uint32_t j = seg_begin; j < seg_end; ++j) {
            hits += static_cast<size_t>(flat_keys[j] == key);
          }
          counts[i] = static_cast<uint32_t>(hits);
          m += hits;
        } else if (expand) {
          const size_t before = m;
          for (uint32_t j = seg_begin; j < seg_end; ++j) {
            m_inner[m] = flat_rows[j];
            m += static_cast<size_t>(flat_keys[j] == key);
          }
          counts[i] = static_cast<uint32_t>(m - before);
        } else {
          for (uint32_t j = seg_begin; j < seg_end; ++j) {
            m_outer[m] = cand[i];
            m_inner[m] = flat_rows[j];
            m += static_cast<size_t>(flat_keys[j] == key);
          }
        }
      }
      // Residual equi-join keys evaluate through the same indirection: gather
      // both sides' candidate values (two-level on the rid-backed sides),
      // then refine branch-free.
      for (const auto& [res_o, res_i] : a.residual) {
        if (m == 0) break;
        if (res_outer.size() < m) {
          res_outer.resize(m);
          res_inner.resize(m);
        }
        if (res_o.rid != nullptr) {
          common::GatherGathered(res_o.base, res_o.rid, m_outer.data(), m,
                                 res_outer.data());
        } else {
          common::GatherSelected(res_o.base, m_outer.data(), m,
                                 res_outer.data());
        }
        common::GatherGathered(res_i.base, res_i.rid, m_inner.data(), m,
                               res_inner.data());
        size_t k = 0;
        for (size_t j = 0; j < m; ++j) {
          m_outer[k] = m_outer[j];
          m_inner[k] = m_inner[j];
          k += static_cast<size_t>(res_outer[j] == res_inner[j]);
        }
        m = k;
      }
      // Emit row-id columns only — the whole point: one uint32 column per
      // still-referenced table instead of one int64 column per payload.
      for (size_t s = 0; s < a.out_rids.size(); ++s) {
        auto& dst = local->rids[s];
        const LateRidSource& src = a.out_rids[s];
        if (src.from_outer && expand) {
          // Run-length emit, exactly like the batch path's outer columns.
          for (size_t i = 0; i < live; ++i) {
            const uint32_t cnt = counts[i];
            if (cnt > 0) {
              dst.insert(dst.end(), cnt,
                         src.rid != nullptr ? src.rid[cand[i]] : cand[i]);
            }
          }
        } else if (src.from_outer) {
          if (src.rid != nullptr) {
            dst.insert(dst.end(),
                       common::GatherIterator<uint32_t>(src.rid,
                                                        m_outer.data(), 0),
                       common::GatherIterator<uint32_t>(src.rid,
                                                        m_outer.data(), m));
          } else {
            dst.insert(dst.end(), m_outer.data(), m_outer.data() + m);
          }
        } else {
          dst.insert(dst.end(),
                     common::GatherIterator<uint32_t>(src.rid, m_inner.data(),
                                                      0),
                     common::GatherIterator<uint32_t>(src.rid, m_inner.data(),
                                                      m));
        }
      }
      local->rows += m;
      if (a.max_rows > 0 && m > 0 &&
          emitted.fetch_add(m, std::memory_order_relaxed) + m > a.max_rows) {
        over.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  BatchesCounter()->Increment(num_batches);
  common::ThreadPool& pool = common::GlobalPool();
  if (a.workers > 1 && a.n_cand + a.n_inner >= kMinParallelRows &&
      num_batches > 1) {
    const auto chunks =
        common::ThreadPool::Partition(0, num_batches, 1, a.workers);
    std::vector<ChunkOut> partials(chunks.size());
    pool.ParallelFor(
        0, chunks.size(), 1,
        [&](size_t c0, size_t c1) {
          LPCE_PROFILE_SCOPE("exec.worker.late_probe");
          for (size_t c = c0; c < c1; ++c) {
            probe_batches(chunks[c].first, chunks[c].second, &partials[c]);
          }
        },
        a.workers);
    if (over.load()) return false;
    size_t total = 0;
    for (const auto& p : partials) total += p.rows;
    out->row_count = total;
    pool.ParallelFor(
        0, a.out_rids.size(), 1,
        [&](size_t s0, size_t s1) {
          LPCE_PROFILE_SCOPE("exec.worker.concat");
          for (size_t s = s0; s < s1; ++s) {
            auto& dst = out->rid_cols[s];
            dst.reserve(total);
            for (const auto& p : partials) {
              dst.insert(dst.end(), p.rids[s].begin(), p.rids[s].end());
            }
          }
        },
        a.workers);
    if (a.collect) {
      size_t kept = 0;
      for (const auto& p : partials) kept += p.cand_rows.size();
      collected->reserve(kept);
      for (const auto& p : partials) {
        collected->insert(collected->end(), p.cand_rows.begin(),
                          p.cand_rows.end());
      }
    }
    return true;
  }

  ChunkOut all;
  probe_batches(0, num_batches, &all);
  if (over.load()) return false;
  out->row_count = all.rows;
  for (size_t s = 0; s < a.out_rids.size(); ++s) {
    out->rid_cols[s] = std::move(all.rids[s]);
  }
  if (a.collect) *collected = std::move(all.cand_rows);
  return true;
}

/// Resolves a side's join-key accessor: base column data plus the side's
/// row-id column for the key's table.
LateKeyCol LateSideKey(const db::Database& db, const RowSet& side,
                       db::ColRef key) {
  const int idx = side.RidIndex(key.table);
  LPCE_CHECK_MSG(idx >= 0, "late join input missing the key table's row ids");
  return {db.table(key.table).column(key.column).data(),
          side.rid_cols[idx].data()};
}

std::vector<LateRidSource> ResolveRidSources(
    const RowSet* outer, const RowSet& inner, int32_t fused_outer_table,
    const std::vector<int32_t>& out_rid_tables) {
  std::vector<LateRidSource> sources;
  sources.reserve(out_rid_tables.size());
  for (int32_t table_id : out_rid_tables) {
    if (outer != nullptr) {
      const int oi = outer->RidIndex(table_id);
      if (oi >= 0) {
        sources.push_back({true, outer->rid_cols[oi].data()});
        continue;
      }
    } else if (table_id == fused_outer_table) {
      sources.push_back({true, nullptr});
      continue;
    }
    const int ii = inner.RidIndex(table_id);
    LPCE_CHECK_MSG(ii >= 0, "join output row-id table not found in either side");
    sources.push_back({false, inner.rid_cols[ii].data()});
  }
  return sources;
}

}  // namespace

RowSetPtr LateHashJoin(const db::Database& db, const RowSet& outer,
                       const RowSet& inner, db::ColRef outer_key,
                       db::ColRef inner_key,
                       const std::vector<std::pair<db::ColRef, db::ColRef>>&
                           residual_keys,
                       const std::vector<db::ColRef>& required,
                       const std::vector<int32_t>& out_rid_tables,
                       size_t max_rows, bool* overflow, int batch_size,
                       int num_threads) {
  LPCE_PROFILE_SCOPE("exec.late_hash_join");
  LPCE_CHECK(batch_size > 0);
  const int workers = EffectiveThreads(num_threads);

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->rid_tables = out_rid_tables;
  out->rid_cols.resize(out_rid_tables.size());

  const LateKeyCol okey = LateSideKey(db, outer, outer_key);
  const LateKeyCol ikey = LateSideKey(db, inner, inner_key);
  const LateBuildTable build =
      BuildLateHashTable(ikey.base, ikey.rid, inner.row_count, workers);

  LateProbeArgs args;
  args.okey_base = okey.base;
  args.okey_rid = okey.rid;
  for (const auto& [outer_col, inner_col] : residual_keys) {
    args.residual.emplace_back(LateSideKey(db, outer, outer_col),
                               LateSideKey(db, inner, inner_col));
  }
  args.out_rids = ResolveRidSources(&outer, inner, -1, out_rid_tables);
  args.max_rows = max_rows;
  args.B = static_cast<size_t>(batch_size);
  args.workers = workers;
  args.n_cand = outer.row_count;
  args.n_inner = inner.row_count;

  const size_t B = args.B;
  const size_t n_outer = outer.row_count;
  auto fill = [B, n_outer](size_t batch, uint32_t* cand) -> size_t {
    const size_t lo = batch * B;
    const size_t count = std::min(B, n_outer - lo);
    for (size_t i = 0; i < count; ++i) {
      cand[i] = static_cast<uint32_t>(lo + i);
    }
    return count;
  };
  if (!LateProbeDrive(build, args, fill, out.get(), nullptr)) {
    *overflow = true;
  }
  return out;
}

RowSetPtr LateFusedScanJoin(
    const db::Database& db, const db::Table& outer_table,
    int32_t outer_table_id, const std::vector<uint32_t>* index_rows,
    const std::vector<qry::Predicate>& scan_filters,
    const std::vector<db::ColRef>& scan_required, RowSetPtr* scan_out,
    const RowSet& inner, db::ColRef outer_key, db::ColRef inner_key,
    const std::vector<std::pair<db::ColRef, db::ColRef>>& residual_keys,
    const std::vector<db::ColRef>& required,
    const std::vector<int32_t>& out_rid_tables, size_t max_rows,
    bool* overflow, int batch_size, int num_threads) {
  LPCE_PROFILE_SCOPE("exec.late_fused_scan_join");
  LPCE_CHECK(batch_size > 0);
  LPCE_CHECK(outer_key.table == outer_table_id);
  const int workers = EffectiveThreads(num_threads);

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->rid_tables = out_rid_tables;
  out->rid_cols.resize(out_rid_tables.size());

  const LateKeyCol ikey = LateSideKey(db, inner, inner_key);
  const LateBuildTable build =
      BuildLateHashTable(ikey.base, ikey.rid, inner.row_count, workers);

  LateProbeArgs args;
  args.okey_base = outer_table.column(outer_key.column).data();
  args.okey_rid = nullptr;  // candidates are the scanned table's base rows
  for (const auto& [outer_col, inner_col] : residual_keys) {
    LPCE_CHECK(outer_col.table == outer_table_id);
    args.residual.emplace_back(
        LateKeyCol{db.table(outer_col.table).column(outer_col.column).data(),
                   nullptr},
        LateSideKey(db, inner, inner_col));
  }
  args.out_rids =
      ResolveRidSources(nullptr, inner, outer_table_id, out_rid_tables);
  args.max_rows = max_rows;
  args.B = static_cast<size_t>(batch_size);
  args.workers = workers;
  args.n_cand =
      index_rows != nullptr ? index_rows->size() : outer_table.num_rows();
  args.n_inner = inner.row_count;
  args.collect = true;

  // The fusion itself: each batch's surviving selection vector (base rows)
  // feeds the probe directly — no intermediate rowset between the scan's
  // filter and the first join — while a copy of it accumulates into the
  // scan's row-id output for checkpoint/re-planning bookkeeping.
  const size_t B = args.B;
  const size_t n_cand = args.n_cand;
  auto fill = [&](size_t batch, uint32_t* cand) -> size_t {
    const size_t lo = batch * B;
    const size_t count = std::min(B, n_cand - lo);
    if (index_rows != nullptr) {
      std::copy(index_rows->data() + lo, index_rows->data() + lo + count, cand);
    } else {
      for (size_t i = 0; i < count; ++i) {
        cand[i] = static_cast<uint32_t>(lo + i);
      }
    }
    size_t live = count;
    for (const auto& f : scan_filters) {
      if (live == 0) break;
      live = RefineCmp(outer_table.column(f.col.column), f.op, f.value, cand,
                       live);
    }
    return live;
  };

  std::vector<uint32_t> kept;
  if (!LateProbeDrive(build, args, fill, out.get(), &kept)) {
    // Overflow abandons the run; the caller recomputes the scan honestly if
    // it still needs the outer node's bookkeeping.
    *overflow = true;
    *scan_out = nullptr;
    return out;
  }
  auto scan = std::make_shared<RowSet>();
  scan->schema = scan_required;
  for (const auto& ref : scan_required) LPCE_CHECK(ref.table == outer_table_id);
  scan->row_count = kept.size();
  scan->rid_tables.push_back(outer_table_id);
  scan->rid_cols.push_back(std::move(kept));
  *scan_out = std::move(scan);
  return out;
}

RowSetPtr MaterializeRowSet(const db::Database& db, RowSetPtr rs,
                            int num_threads) {
  if (rs == nullptr || !rs->late()) return rs;
  LPCE_PROFILE_SCOPE("exec.materialize");
  auto out = std::make_shared<RowSet>();
  out->schema = rs->schema;
  out->row_count = rs->row_count;
  out->cols.resize(out->schema.size());
  const int workers = EffectiveThreads(num_threads);
  for (size_t c = 0; c < out->schema.size(); ++c) {
    const db::ColRef ref = out->schema[c];
    const int idx = rs->RidIndex(ref.table);
    LPCE_CHECK_MSG(idx >= 0, "late rowset missing row ids for a schema column");
    const auto& rid = rs->rid_cols[idx];
    const auto& src = db.table(ref.table).column(ref.column);
    auto& dst = out->cols[c];
    dst.resize(rid.size());
    if (workers > 1 && rid.size() >= kMinParallelRows) {
      common::GlobalPool().ParallelFor(
          0, rid.size(), kMinParallelRows / 4,
          [&](size_t b, size_t e) {
            LPCE_PROFILE_SCOPE("exec.worker.gather");
            common::GatherSelected(src.data(), rid.data() + b, e - b,
                                   dst.data() + b);
          },
          workers);
    } else {
      common::GatherSelected(src.data(), rid.data(), rid.size(), dst.data());
    }
  }
  return out;
}

}  // namespace lpce::exec
