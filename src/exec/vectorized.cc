#include "exec/vectorized.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/selvec.h"
#include "common/thread_pool.h"

namespace lpce::exec {

namespace {

// Inputs below this many rows run the sequential paths — same threshold as
// the row-at-a-time operators (exec/executor.cc), so flipping batch mode
// never changes *when* the pool is engaged, only what each worker runs.
constexpr size_t kMinParallelRows = 4096;

int EffectiveThreads(int num_threads) {
  int workers = common::GlobalPool().size();
  if (num_threads > 0) workers = std::min(workers, num_threads);
  return workers;
}

/// Refines the selection vector `sel` (global row ids, length n) in place
/// against `col[r] op lit`, one branch-free pass per predicate. The switch
/// is hoisted out of the loop so each comparison compiles to a flag-setting
/// compare feeding the cursor increment, with no per-row branch.
size_t RefineCmp(const std::vector<int64_t>& col, qry::CmpOp op, int64_t lit,
                 uint32_t* sel, size_t n) {
  switch (op) {
    case qry::CmpOp::kLt:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] < lit; });
    case qry::CmpOp::kLe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] <= lit; });
    case qry::CmpOp::kEq:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] == lit; });
    case qry::CmpOp::kGe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] >= lit; });
    case qry::CmpOp::kGt:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] > lit; });
    case qry::CmpOp::kNe:
      return common::RefineSelection(sel, n, sel,
                                     [&](uint32_t r) { return col[r] != lit; });
  }
  return n;
}

/// Source (side, column index) for every join output column.
struct Source {
  bool from_outer;
  int col;
};

std::vector<Source> ResolveSources(const RowSet& outer, const RowSet& inner,
                                   const std::vector<db::ColRef>& required) {
  std::vector<Source> sources;
  sources.reserve(required.size());
  for (const auto& ref : required) {
    int idx = outer.ColumnIndex(ref);
    if (idx >= 0) {
      sources.push_back({true, idx});
    } else {
      idx = inner.ColumnIndex(ref);
      LPCE_CHECK_MSG(idx >= 0, "join output column not found in either side");
      sources.push_back({false, idx});
    }
  }
  return sources;
}

common::Counter* BatchesCounter() {
  static common::Counter* batches =
      common::MetricsRegistry::Global().counter("executor.batches_total");
  return batches;
}

}  // namespace

int BatchSizeFromEnv() {
  const char* env = std::getenv("LPCE_EXEC_BATCH");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) return 0;
  // "1" means "enabled, default size"; anything larger is a literal size,
  // clamped so a typo can't demand a gigarow selection buffer.
  if (value == 1) return kDefaultBatchSize;
  return static_cast<int>(std::min<long>(value, 1 << 20));
}

RowSetPtr BatchScan(const db::Table& table, int32_t table_id,
                    const std::vector<uint32_t>* index_rows,
                    const std::vector<qry::Predicate>& residual,
                    const std::vector<db::ColRef>& required, int batch_size,
                    int num_threads) {
  LPCE_PROFILE_SCOPE("exec.batch_scan");
  LPCE_CHECK(batch_size > 0);
  const size_t B = static_cast<size_t>(batch_size);
  const size_t n = index_rows != nullptr ? index_rows->size() : table.num_rows();
  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  // A dense scan with no predicates is a straight column copy — no
  // selection vector, no gather.
  if (index_rows == nullptr && residual.empty()) {
    out->row_count = n;
    for (size_t c = 0; c < required.size(); ++c) {
      LPCE_CHECK(required[c].table == table_id);
      out->cols[c] = table.column(required[c].column);
    }
    return out;
  }

  // Filter batch-at-a-time: batch k always covers candidates
  // [k*B, min((k+1)*B, n)) — fixed global boundaries, so any chunking of
  // whole batches across workers concatenates back to the input order and
  // the surviving rows are bit-identical at every pool size.
  const size_t num_batches = (n + B - 1) / B;
  auto filter_batches = [&](size_t batch_lo, size_t batch_hi,
                            std::vector<uint32_t>* kept) {
    std::vector<uint32_t> sel(B);
    for (size_t batch = batch_lo; batch < batch_hi; ++batch) {
      const size_t lo = batch * B;
      const size_t count = std::min(B, n - lo);
      if (index_rows != nullptr) {
        // Candidates are the driving index's row list.
        std::copy(index_rows->data() + lo, index_rows->data() + lo + count,
                  sel.data());
      } else {
        for (size_t i = 0; i < count; ++i) {
          sel[i] = static_cast<uint32_t>(lo + i);
        }
      }
      size_t live = count;
      for (const auto& f : residual) {
        if (live == 0) break;
        live = RefineCmp(table.column(f.col.column), f.op, f.value, sel.data(),
                         live);
      }
      kept->insert(kept->end(), sel.data(), sel.data() + live);
    }
  };

  const int workers = EffectiveThreads(num_threads);
  std::vector<uint32_t> rows;
  if (workers > 1 && n >= kMinParallelRows && num_batches > 1) {
    const auto chunks =
        common::ThreadPool::Partition(0, num_batches, 1, workers);
    std::vector<std::vector<uint32_t>> kept(chunks.size());
    common::GlobalPool().ParallelFor(
        0, chunks.size(), 1,
        [&](size_t c0, size_t c1) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_filter");
          for (size_t c = c0; c < c1; ++c) {
            kept[c].reserve((chunks[c].second - chunks[c].first) * B);
            filter_batches(chunks[c].first, chunks[c].second, &kept[c]);
          }
        },
        workers);
    size_t total = 0;
    for (const auto& k : kept) total += k.size();
    rows.reserve(total);
    for (const auto& k : kept) rows.insert(rows.end(), k.begin(), k.end());
  } else {
    rows.reserve(n);
    filter_batches(0, num_batches, &rows);
  }
  BatchesCounter()->Increment(num_batches);

  out->row_count = rows.size();
  for (size_t c = 0; c < required.size(); ++c) {
    LPCE_CHECK(required[c].table == table_id);
    const auto& src = table.column(required[c].column);
    auto& dst = out->cols[c];
    dst.resize(rows.size());
    if (workers > 1 && rows.size() >= kMinParallelRows) {
      common::GlobalPool().ParallelFor(
          0, rows.size(), kMinParallelRows / 4,
          [&](size_t b, size_t e) {
            LPCE_PROFILE_SCOPE("exec.worker.gather");
            common::GatherSelected(src.data(), rows.data() + b, e - b,
                                   dst.data() + b);
          },
          workers);
    } else {
      common::GatherSelected(src.data(), rows.data(), rows.size(), dst.data());
    }
  }
  return out;
}

RowSetPtr BatchHashJoin(const RowSet& outer, const RowSet& inner,
                        int outer_key, int inner_key,
                        const std::vector<std::pair<int, int>>& residual,
                        const std::vector<db::ColRef>& required,
                        size_t max_rows, bool* overflow, int batch_size,
                        int num_threads) {
  LPCE_PROFILE_SCOPE("exec.batch_hash_join");
  LPCE_CHECK(batch_size > 0);
  const auto& okeys = outer.cols[outer_key];
  const auto& ikeys = inner.cols[inner_key];
  const size_t B = static_cast<size_t>(batch_size);
  const int workers = EffectiveThreads(num_threads);
  common::ThreadPool& pool = common::GlobalPool();
  const std::vector<Source> sources = ResolveSources(outer, inner, required);

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  // ---- Build: flattened bucket-segment table over the inner keys. ---------
  // Counting sort by bucket: every bucket's (key, row) pairs land in one
  // contiguous segment of flat_keys/flat_rows, written in ascending inner-row
  // order, so a probe scans a cache-resident segment instead of chasing
  // chain pointers and a key's matches enumerate exactly like the row path's
  // per-key insertion-order vector. The hash only places rows into buckets —
  // key equality is re-checked per entry — so the bucket count and hash
  // function are invisible in the output.
  const size_t n_inner = ikeys.size();
  size_t nbuckets = 16;
  while (nbuckets < 2 * n_inner) nbuckets <<= 1;
  const uint64_t mask = nbuckets - 1;
  std::vector<uint32_t> bucket(n_inner);
  if (workers > 1 && n_inner >= kMinParallelRows) {
    pool.ParallelFor(
        0, n_inner, 4096,
        [&](size_t b, size_t e) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_hash");
          for (size_t r = b; r < e; ++r) {
            bucket[r] = static_cast<uint32_t>(MixJoinKey(ikeys[r]) & mask);
          }
        },
        workers);
  } else {
    for (size_t r = 0; r < n_inner; ++r) {
      bucket[r] = static_cast<uint32_t>(MixJoinKey(ikeys[r]) & mask);
    }
  }
  std::vector<uint32_t> off(nbuckets + 1, 0);
  for (size_t r = 0; r < n_inner; ++r) ++off[bucket[r] + 1];
  for (size_t b = 0; b < nbuckets; ++b) off[b + 1] += off[b];
  std::vector<int64_t> flat_keys(n_inner);
  std::vector<uint32_t> flat_rows(n_inner);
  {
    std::vector<uint32_t> cursor(off.begin(), off.end() - 1);
    for (size_t r = 0; r < n_inner; ++r) {
      const uint32_t p = cursor[bucket[r]]++;
      flat_keys[p] = ikeys[r];
      flat_rows[p] = static_cast<uint32_t>(r);
    }
  }

  // ---- Probe: batches of outer rows. --------------------------------------
  // Each batch collects candidate (outer row, inner row) match pairs, then
  // refines them branch-free against the residual equi-join keys, then
  // gathers the survivors column-at-a-time. Batch boundaries are fixed
  // globally (batch k covers [k*B, (k+1)*B)), so chunking whole batches
  // across workers and concatenating in chunk order reproduces the
  // sequential output exactly.
  const size_t n_outer = okeys.size();
  const size_t num_batches = (n_outer + B - 1) / B;
  std::atomic<size_t> emitted{0};
  std::atomic<bool> over{false};

  struct ChunkOut {
    std::vector<std::vector<int64_t>> cols;
    size_t rows = 0;
  };

  // Probe modes, all sharing the branch-free segment scan (every entry is
  // stored/summed unconditionally, the cursor advances by the key-equality
  // result):
  //  - count-only (no residuals, no output columns — a root join): each
  //    batch is a pure sum of key-equality hits, nothing materialized;
  //  - expand (no residuals): only inner row ids are collected, plus a
  //    per-outer-row match count; outer columns are emitted by run-length
  //    fill (one load per outer row) and inner columns by gather;
  //  - pairs (residual keys): full (outer, inner) candidate pairs, refined
  //    branch-free per residual key, then gathered per side.
  const bool count_only = residual.empty() && sources.empty();
  const bool expand = residual.empty() && !sources.empty();
  // Expand mode only materializes inner row ids when an inner column is
  // actually emitted; a join whose output draws on the outer side alone gets
  // by on the per-row match counts.
  bool need_inner_rows = !expand;
  for (const Source& s : sources) need_inner_rows |= !s.from_outer;

  auto probe_batches = [&](size_t batch_lo, size_t batch_hi, ChunkOut* local) {
    local->cols.resize(sources.size());
    std::vector<uint32_t> m_outer(expand || count_only ? 0 : B), m_inner(B);
    std::vector<uint32_t> counts(expand ? B : 0);
    std::vector<uint32_t> buckets(B);
    for (size_t batch = batch_lo; batch < batch_hi; ++batch) {
      if (over.load(std::memory_order_relaxed)) return;
      const size_t lo = batch * B;
      const size_t hi = std::min(lo + B, n_outer);
      // Hashing is hoisted into its own pass: the multiply/xor chains of
      // consecutive rows pipeline back to back with no branchy segment scan
      // between them.
      for (size_t r = lo; r < hi; ++r) {
        buckets[r - lo] = static_cast<uint32_t>(MixJoinKey(okeys[r]) & mask);
      }
      if (count_only) {
        size_t hits = 0;
        for (size_t r = lo; r < hi; ++r) {
          const int64_t key = okeys[r];
          const uint64_t b = buckets[r - lo];
          const uint32_t seg_end = off[b + 1];
          for (uint32_t i = off[b]; i < seg_end; ++i) {
            hits += static_cast<size_t>(flat_keys[i] == key);
          }
        }
        local->rows += hits;
        if (max_rows > 0 && hits > 0 &&
            emitted.fetch_add(hits, std::memory_order_relaxed) + hits >
                max_rows) {
          over.store(true, std::memory_order_relaxed);
          return;
        }
        continue;
      }
      // Candidate collection. Capacity is grown ahead of each row's segment
      // so the scan carries no bounds check.
      size_t m = 0;
      for (size_t r = lo; r < hi; ++r) {
        const int64_t key = okeys[r];
        const uint64_t b = buckets[r - lo];
        const uint32_t seg_begin = off[b];
        const uint32_t seg_end = off[b + 1];
        if (need_inner_rows && m + (seg_end - seg_begin) > m_inner.size()) {
          const size_t grown =
              std::max(m_inner.size() * 2, m + (seg_end - seg_begin));
          m_inner.resize(grown);
          if (!expand) m_outer.resize(grown);
        }
        if (expand && !need_inner_rows) {
          size_t hits = 0;
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            hits += static_cast<size_t>(flat_keys[i] == key);
          }
          counts[r - lo] = static_cast<uint32_t>(hits);
          m += hits;
        } else if (expand) {
          const size_t before = m;
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            m_inner[m] = flat_rows[i];
            m += static_cast<size_t>(flat_keys[i] == key);
          }
          counts[r - lo] = static_cast<uint32_t>(m - before);
        } else {
          for (uint32_t i = seg_begin; i < seg_end; ++i) {
            m_outer[m] = static_cast<uint32_t>(r);
            m_inner[m] = flat_rows[i];
            m += static_cast<size_t>(flat_keys[i] == key);
          }
        }
      }
      for (const auto& [oc, ic] : residual) {
        const auto& ocol = outer.cols[oc];
        const auto& icol = inner.cols[ic];
        size_t k = 0;
        for (size_t j = 0; j < m; ++j) {
          const uint32_t orow = m_outer[j];
          const uint32_t irow = m_inner[j];
          m_outer[k] = orow;
          m_inner[k] = irow;
          k += static_cast<size_t>(ocol[orow] == icol[irow]);
        }
        m = k;
      }
      for (size_t s = 0; s < sources.size(); ++s) {
        auto& dst = local->cols[s];
        const auto& src = sources[s].from_outer ? outer.cols[sources[s].col]
                                                : inner.cols[sources[s].col];
        // Appends go through insert (fill / iterator-range overloads) rather
        // than resize + overwrite: insert writes each new element exactly
        // once, where resize would value-initialize the tail first — a whole
        // extra pass over every emitted column.
        if (sources[s].from_outer && expand) {
          // Run-length emit: each outer row's value repeats once per match,
          // in match order — identical to gathering through explicit
          // (outer, inner) pairs, without materializing them.
          for (size_t r = lo; r < hi; ++r) {
            const uint32_t cnt = counts[r - lo];
            if (cnt > 0) dst.insert(dst.end(), cnt, src[r]);
          }
        } else {
          const uint32_t* sel =
              sources[s].from_outer ? m_outer.data() : m_inner.data();
          dst.insert(dst.end(), common::GatherIterator(src.data(), sel, 0),
                     common::GatherIterator(src.data(), sel, m));
        }
      }
      local->rows += m;
      // Count only rows actually emitted: residual keys can reject
      // candidates the primary key surfaced. Same trip condition as the row
      // paths — overflow fires iff the total would exceed max_rows.
      if (max_rows > 0 && m > 0 &&
          emitted.fetch_add(m, std::memory_order_relaxed) + m > max_rows) {
        over.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  BatchesCounter()->Increment(num_batches);
  if (workers > 1 && n_outer + n_inner >= kMinParallelRows &&
      num_batches > 1) {
    const auto chunks =
        common::ThreadPool::Partition(0, num_batches, 1, workers);
    std::vector<ChunkOut> partials(chunks.size());
    pool.ParallelFor(
        0, chunks.size(), 1,
        [&](size_t c0, size_t c1) {
          LPCE_PROFILE_SCOPE("exec.worker.batch_probe");
          for (size_t c = c0; c < c1; ++c) {
            probe_batches(chunks[c].first, chunks[c].second, &partials[c]);
          }
        },
        workers);
    if (over.load()) {
      // The run is abandoned; the partial output is discarded upstream.
      *overflow = true;
      return out;
    }
    size_t total = 0;
    for (const auto& p : partials) total += p.rows;
    out->row_count = total;
    pool.ParallelFor(
        0, sources.size(), 1,
        [&](size_t s0, size_t s1) {
          LPCE_PROFILE_SCOPE("exec.worker.concat");
          for (size_t s = s0; s < s1; ++s) {
            auto& dst = out->cols[s];
            dst.reserve(total);
            for (const auto& p : partials) {
              dst.insert(dst.end(), p.cols[s].begin(), p.cols[s].end());
            }
          }
        },
        workers);
    return out;
  }

  ChunkOut all;
  probe_batches(0, num_batches, &all);
  if (over.load()) {
    *overflow = true;
    return out;
  }
  out->row_count = all.rows;
  for (size_t s = 0; s < sources.size(); ++s) {
    out->cols[s] = std::move(all.cols[s]);
  }
  return out;
}

}  // namespace lpce::exec
