// Operator-at-a-time executor with checkpoint support.
//
// Nodes are executed in post-order; every operator materializes its result
// (column-at-a-time, MonetDB style — see DESIGN.md substitution 2). A
// checkpoint fires when a finished node's actual cardinality deviates from
// its estimate by more than a q-error threshold (paper Sec. 6.2); execution
// stops with all finished intermediates retained so the re-optimization
// controller can re-plan the remainder.
//
// Two operator implementations share this control loop: the row-at-a-time
// kernels below (the differential oracle) and the vectorized batch kernels
// (exec/vectorized.h, selected by Options::batch_size / LPCE_EXEC_BATCH),
// which stream scans and hash joins in column-oriented batches with
// branch-free selection vectors. Both produce bit-identical rowsets and
// byte-identical deterministic traces at every batch and pool size.
#ifndef LPCE_EXEC_EXECUTOR_H_
#define LPCE_EXEC_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "engine/trace.h"
#include "exec/plan.h"
#include "exec/rowset.h"
#include "storage/database.h"

namespace lpce::exec {

/// q-error between an estimate and an actual cardinality; both sides are
/// clamped to >= 1 tuple (a zero-cardinality result matches any estimate
/// below one tuple).
double QError(double estimated, double actual);

class Executor {
 public:
  struct Options {
    bool enable_checkpoints = false;
    double qerror_threshold = 50.0;
    /// Trigger-policy refinements (the paper's Sec. 6.2 closes by calling
    /// smarter triggers future work; these knobs implement two natural ones):
    /// only consider re-optimizing when the finished operator produced at
    /// least this many rows (tiny intermediates cannot hurt the remainder)...
    size_t min_trip_rows = 0;
    /// ...and/or only on underestimates (actual > estimate) — the direction
    /// that lures the optimizer into nested-loop mistakes.
    bool underestimates_only = false;
    /// Abort the run if any single operator materializes more rows than
    /// this (0 = unlimited). Used by the workload generator to reject
    /// pathologically exploding queries.
    size_t max_node_rows = 0;
    /// Caps the worker threads used for hash-join build/probe and residual
    /// scan filtering (0 = the global pool's full size, 1 = sequential).
    /// Output row order is deterministic — identical at every setting.
    int num_threads = 0;
    /// Executor batch size: -1 = follow the LPCE_EXEC_BATCH environment knob
    /// (see exec/vectorized.h), 0 = row-at-a-time operators, > 0 = the
    /// vectorized batch path with this many rows per batch. Results, actual
    /// cardinalities, and traces are bit-identical at every setting — the
    /// row path is the batch path's differential oracle.
    int batch_size = -1;
    /// Late materialization (row-id intermediates, DESIGN.md "Pipelined
    /// execution & late materialization"): -1 = follow the LPCE_EXEC_LATE_MAT
    /// environment knob, 0 = off, > 0 = on. Implies the batch path (a zero
    /// batch_size is promoted to kDefaultBatchSize). Falls back to the plain
    /// batch path for any plan the late kernels do not cover (merge/nest-loop
    /// joins picked by re-planning, materialized pseudo scans), so results
    /// and deterministic traces stay bit-identical to both oracles at every
    /// setting.
    int late_materialization = -1;
    /// When set, every finished operator appends a span and every checkpoint
    /// evaluation appends an event (see engine/trace.h). Not owned.
    eng::QueryTrace* trace = nullptr;
  };

  struct RunResult {
    /// Root result when the plan ran to completion, nullptr otherwise.
    RowSetPtr result;
    /// Node whose checkpoint tripped (nullptr when completed).
    PlanNode* tripped = nullptr;
    /// Set when max_node_rows was exceeded (the run is abandoned).
    bool aborted = false;
    /// Materialized results of every finished node.
    std::unordered_map<const PlanNode*, RowSetPtr> finished;
  };

  Executor(const db::Database* database, const qry::Query* query)
      : db_(database), query_(query) {}

  /// Runs the plan to completion (no checkpoints), annotating actual_card on
  /// every node. Returns the root result.
  RowSetPtr Execute(PlanNode* root);

  /// Runs with the given options; may stop early at a tripped checkpoint.
  RunResult Run(PlanNode* root, const Options& options);

  /// Peak total resident bytes across all retained intermediates in the last
  /// run — the "peak memory" proxy for the Sec. 6.2 overhead experiment.
  /// Every finished node's result is retained (checkpoints may need it for
  /// re-planning), so this is the sum of live rowsets at its maximum, not
  /// just the largest single one.
  size_t peak_intermediate_bytes() const { return peak_bytes_; }

 private:
  RowSetPtr ExecuteNode(PlanNode* node, const std::vector<db::ColRef>& required,
                        const Options& options, RunResult* result);

  /// Post-execution bookkeeping shared by the operator-at-a-time loop and the
  /// fused scan→probe path: annotates the node, retains the result, updates
  /// metrics/trace, and evaluates the node's checkpoint. Returns true when
  /// the checkpoint tripped (result->tripped is set).
  bool FinishNode(PlanNode* node, const RowSetPtr& out,
                  const std::vector<db::ColRef>& required,
                  const Options& options, RunResult* result,
                  double exec_seconds, int outer_span, int inner_span,
                  uint64_t outer_rows, uint64_t inner_rows);

  /// Fused scan-filter → first-probe execution of a hash join whose outer
  /// child is a leaf scan (late-materialization runs only): each scanned
  /// batch's selection vector feeds the probe directly, with per-node
  /// bookkeeping emitted afterwards in oracle order (outer, inner, join).
  RowSetPtr ExecuteFusedScanJoin(PlanNode* node,
                                 const std::vector<db::ColRef>& required,
                                 const Options& options, RunResult* result);

  RowSetPtr ExecuteScan(const PlanNode& node, const std::vector<db::ColRef>& required,
                        int num_threads);
  /// Resolves a scan node's driving input: fills `rows` with the index range
  /// result (index scans) and `residual` with the predicates left to filter;
  /// returns true for a dense scan of the whole table in storage order.
  bool ResolveScanInput(const PlanNode& node, std::vector<uint32_t>* rows,
                        std::vector<qry::Predicate>* residual) const;
  /// Row-id columns a late intermediate covering `rels` must carry: the
  /// tables still referenced downstream — incident to a join edge crossing
  /// out of `rels`, or owning a parent-required column — in ascending query
  /// position order. Tables no longer referenced are dropped, shrinking the
  /// intermediate as the join chain consumes relations.
  std::vector<int32_t> LateRidTables(
      qry::RelSet rels, const std::vector<db::ColRef>& required) const;
  RowSetPtr ExecutePseudo(const PlanNode& node,
                          const std::vector<db::ColRef>& required);
  RowSetPtr ExecuteJoin(const PlanNode& node, const RowSet& outer, const RowSet& inner,
                        const std::vector<db::ColRef>& required, size_t max_rows,
                        bool* overflow, int num_threads);
  /// `residual` pairs resolved column indexes (outer, inner) of the extra
  /// equi-join predicates; a candidate match is emitted only when every pair
  /// agrees.
  RowSetPtr ParallelHashJoin(const RowSet& outer, const RowSet& inner,
                             int outer_key, int inner_key,
                             const std::vector<std::pair<int, int>>& residual,
                             const std::vector<db::ColRef>& required,
                             size_t max_rows, bool* overflow, int num_threads);

  /// Splits parent-required columns into those provided by `rels`.
  std::vector<db::ColRef> SideRequired(const std::vector<db::ColRef>& required,
                                       qry::RelSet rels) const;

  const db::Database* db_;
  const qry::Query* query_;
  size_t peak_bytes_ = 0;
  size_t live_bytes_ = 0;
  /// Effective batch size of the current run (Options::batch_size with -1
  /// resolved against LPCE_EXEC_BATCH); 0 = row-at-a-time.
  int batch_size_ = 0;
  /// Whether the current run carries row-id intermediates
  /// (Options::late_materialization resolved against LPCE_EXEC_LATE_MAT,
  /// then gated on the plan shape being coverable by the late kernels).
  bool late_ = false;
};

/// Builds an all-hash-join plan following the canonical left-deep tree for
/// the full query — used by workload labeling, where only true cardinalities
/// matter, not operator choice.
std::unique_ptr<PlanNode> BuildCanonicalHashPlan(const qry::Query& query);

}  // namespace lpce::exec

#endif  // LPCE_EXEC_EXECUTOR_H_
