// Vectorized (batch-at-a-time) operator kernels — the LPCE_EXEC_BATCH fast
// path of the executor.
//
// Each kernel streams its input in fixed-size column-oriented batches
// (default 1024 rows): scans drive every filter predicate through a
// branch-free selection vector (common/selvec.h), and the hash join builds a
// flat open-addressing chain table probed batch-at-a-time. Outputs are the
// same fully-materialized RowSets the row-at-a-time kernels produce, in
// bit-identical row order at every batch size and thread-pool size — the
// row path stays available as the differential oracle (see DESIGN.md
// "Vectorized execution" for the determinism argument).
#ifndef LPCE_EXEC_VECTORIZED_H_
#define LPCE_EXEC_VECTORIZED_H_

#include <utility>
#include <vector>

#include "exec/rowset.h"
#include "query/query.h"
#include "storage/table.h"

namespace lpce::exec {

/// Rows per batch when LPCE_EXEC_BATCH enables the path without naming a
/// size: large enough to amortize per-batch dispatch, small enough that one
/// batch's selection vector and gathered columns stay cache-resident.
inline constexpr int kDefaultBatchSize = 1024;

/// Resolves the LPCE_EXEC_BATCH environment knob to an executor batch size:
/// unset/"0"/invalid = 0 (row-at-a-time path), "1" = kDefaultBatchSize,
/// N >= 2 = N rows per batch. Parsed on every call (once per query), so
/// tests may flip the knob at runtime.
int BatchSizeFromEnv();

/// splitmix64 finalizer — spreads join keys across hash buckets / build
/// partitions even when they are small consecutive integers. Shared by the
/// row path's partitioned build and the batch path's chain table.
inline uint64_t MixJoinKey(int64_t key) {
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Batch scan: drives the table (or, for index scans, the row list the
/// driving index produced) through `residual` predicates batch-at-a-time
/// with selection vectors, then gathers `required` into the output.
/// `index_rows == nullptr` scans the whole table in storage order.
/// Bit-identical to the row-at-a-time scan path.
RowSetPtr BatchScan(const db::Table& table, int32_t table_id,
                    const std::vector<uint32_t>* index_rows,
                    const std::vector<qry::Predicate>& residual,
                    const std::vector<db::ColRef>& required, int batch_size,
                    int num_threads);

/// Batch hash join: flat chain-table build over the inner keys (per-key
/// match lists traverse in ascending inner-row order, matching the row
/// path's insertion order), then a batched probe of the outer side with
/// branch-free residual-key refinement of the candidate matches.
/// `residual` pairs resolved column indexes (outer, inner) of the extra
/// equi-join predicates. Sets *overflow and returns an empty result when
/// more than `max_rows` rows would be emitted (0 = unlimited).
RowSetPtr BatchHashJoin(const RowSet& outer, const RowSet& inner,
                        int outer_key, int inner_key,
                        const std::vector<std::pair<int, int>>& residual,
                        const std::vector<db::ColRef>& required,
                        size_t max_rows, bool* overflow, int batch_size,
                        int num_threads);

}  // namespace lpce::exec

#endif  // LPCE_EXEC_VECTORIZED_H_
