// Vectorized (batch-at-a-time) operator kernels — the LPCE_EXEC_BATCH fast
// path of the executor.
//
// Each kernel streams its input in fixed-size column-oriented batches
// (default 1024 rows): scans drive every filter predicate through a
// branch-free selection vector (common/selvec.h), and the hash join builds a
// flat open-addressing chain table probed batch-at-a-time. Outputs are the
// same fully-materialized RowSets the row-at-a-time kernels produce, in
// bit-identical row order at every batch size and thread-pool size — the
// row path stays available as the differential oracle (see DESIGN.md
// "Vectorized execution" for the determinism argument).
#ifndef LPCE_EXEC_VECTORIZED_H_
#define LPCE_EXEC_VECTORIZED_H_

#include <utility>
#include <vector>

#include "exec/rowset.h"
#include "query/query.h"
#include "storage/database.h"
#include "storage/table.h"

namespace lpce::exec {

/// Rows per batch when LPCE_EXEC_BATCH enables the path without naming a
/// size: large enough to amortize per-batch dispatch, small enough that one
/// batch's selection vector and gathered columns stay cache-resident.
inline constexpr int kDefaultBatchSize = 1024;

/// Resolves the LPCE_EXEC_BATCH environment knob to an executor batch size:
/// unset/"0"/invalid = 0 (row-at-a-time path), "1" = kDefaultBatchSize,
/// N >= 2 = N rows per batch. Parsed on every call (once per query), so
/// tests may flip the knob at runtime.
int BatchSizeFromEnv();

/// Resolves the LPCE_EXEC_LATE_MAT environment knob: "1" enables late
/// materialization (row-id intermediates, see DESIGN.md "Pipelined execution
/// & late materialization"), anything else disables it. Parsed on every call
/// (once per query), so tests may flip the knob at runtime.
bool LateMatFromEnv();

/// splitmix64 finalizer — spreads join keys across hash buckets / build
/// partitions even when they are small consecutive integers. Shared by the
/// row path's partitioned build and the batch path's chain table.
inline uint64_t MixJoinKey(int64_t key) {
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Batch scan: drives the table (or, for index scans, the row list the
/// driving index produced) through `residual` predicates batch-at-a-time
/// with selection vectors, then gathers `required` into the output.
/// `index_rows == nullptr` scans the whole table in storage order.
/// Bit-identical to the row-at-a-time scan path.
///
/// With `late` set the payload gather is skipped entirely: the surviving
/// selection vector becomes the output's single row-id column (the fusion
/// boundary — downstream probes read keys through it) and `required` is
/// recorded in the schema unmaterialized.
RowSetPtr BatchScan(const db::Table& table, int32_t table_id,
                    const std::vector<uint32_t>* index_rows,
                    const std::vector<qry::Predicate>& residual,
                    const std::vector<db::ColRef>& required, int batch_size,
                    int num_threads, bool late = false);

/// Batch hash join: flat chain-table build over the inner keys (per-key
/// match lists traverse in ascending inner-row order, matching the row
/// path's insertion order), then a batched probe of the outer side with
/// branch-free residual-key refinement of the candidate matches.
/// `residual` pairs resolved column indexes (outer, inner) of the extra
/// equi-join predicates. Sets *overflow and returns an empty result when
/// more than `max_rows` rows would be emitted (0 = unlimited).
RowSetPtr BatchHashJoin(const RowSet& outer, const RowSet& inner,
                        int outer_key, int inner_key,
                        const std::vector<std::pair<int, int>>& residual,
                        const std::vector<db::ColRef>& required,
                        size_t max_rows, bool* overflow, int batch_size,
                        int num_threads);

/// Late-materialization hash join: both sides carry row-id columns
/// (RowSet::late()); join keys and residual-key values are gathered through
/// the row-id indirection at probe time (common/selvec.h GatherGathered) and
/// the output carries one row-id column per table in `out_rid_tables` —
/// no payload column is ever materialized. `required` is recorded in the
/// output schema unmaterialized. Same probe modes, overflow contract, and
/// order-preserving chunk-concat parallelism as BatchHashJoin: the emitted
/// row order is bit-identical to the materialized paths at every batch and
/// pool size.
RowSetPtr LateHashJoin(const db::Database& db, const RowSet& outer,
                       const RowSet& inner, db::ColRef outer_key,
                       db::ColRef inner_key,
                       const std::vector<std::pair<db::ColRef, db::ColRef>>&
                           residual_keys,
                       const std::vector<db::ColRef>& required,
                       const std::vector<int32_t>& out_rid_tables,
                       size_t max_rows, bool* overflow, int batch_size,
                       int num_threads);

/// Fused scan-filter → probe: streams `outer_table` (or the driving index's
/// row list) through the scan's residual predicates and feeds each batch's
/// surviving selection vector straight into the hash-join probe — no
/// intermediate rowset between the scan and the first join. The scan's
/// row-id output is still accumulated as a by-product into *scan_out (the
/// executor needs it for actual-cardinality bookkeeping, checkpoints, and
/// re-planning), so results, traces, and the finished-node map stay
/// bit-identical to the unfused lanes. `inner` must be late.
RowSetPtr LateFusedScanJoin(
    const db::Database& db, const db::Table& outer_table,
    int32_t outer_table_id, const std::vector<uint32_t>* index_rows,
    const std::vector<qry::Predicate>& scan_filters,
    const std::vector<db::ColRef>& scan_required, RowSetPtr* scan_out,
    const RowSet& inner, db::ColRef outer_key, db::ColRef inner_key,
    const std::vector<std::pair<db::ColRef, db::ColRef>>& residual_keys,
    const std::vector<db::ColRef>& required,
    const std::vector<int32_t>& out_rid_tables, size_t max_rows,
    bool* overflow, int batch_size, int num_threads);

/// Gathers a late rowset's payload columns from the base tables (dst[r] =
/// table.column(schema[c])[rid[r]]), producing the fully-materialized rowset
/// the row/batch oracles would have built — identical schema, row order, and
/// values. Returns `rs` unchanged when it is already materialized. This is
/// the forced materialization point: the executor calls it when a late
/// intermediate feeds an operator that needs values (a pseudo scan in a
/// non-late round), and the differential tests call it to compare late
/// intermediates bit-for-bit against the oracles.
RowSetPtr MaterializeRowSet(const db::Database& db, RowSetPtr rs,
                            int num_threads = 0);

}  // namespace lpce::exec

#endif  // LPCE_EXEC_VECTORIZED_H_
