// Physical execution plans.
//
// A plan is a binary tree of scans and joins; PostgreSQL-style physical
// operators (paper Fig. 10): sequential scan, index scan, hash join, sort-
// merge join, nested-loop join. During re-optimization a leaf can also be a
// "pseudo scan" reading an already-materialized intermediate result.
#ifndef LPCE_EXEC_PLAN_H_
#define LPCE_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/rowset.h"
#include "query/query.h"

namespace lpce::exec {

enum class PhysOp {
  kSeqScan = 0,
  kIndexScan,
  kHashJoin,
  kMergeJoin,
  kNestLoopJoin,
  kPseudoScan,
};

const char* PhysOpName(PhysOp op);

struct PlanNode {
  PhysOp op = PhysOp::kSeqScan;
  qry::RelSet rels = 0;

  // Scans.
  int table_pos = -1;                       // position in Query::tables
  std::vector<qry::Predicate> filters;      // applied during the scan
  db::ColRef index_col;                     // kIndexScan: the driving column

  // Pseudo scans (re-optimization): a materialized intermediate.
  RowSetPtr pseudo;

  // Joins. `inner` is the build side for hash join and the inner relation
  // for nested loop; the optimizer puts the smaller (estimated) input there.
  std::unique_ptr<PlanNode> outer;
  std::unique_ptr<PlanNode> inner;
  db::ColRef outer_key;
  db::ColRef inner_key;
  /// Extra equi-join predicates crossing the same cut (a multigraph query can
  /// connect two subtrees with several edges). The first edge drives the join
  /// algorithm via outer_key/inner_key; these are evaluated as residual
  /// filters on every candidate match, oriented (outer column, inner column).
  std::vector<std::pair<db::ColRef, db::ColRef>> residual_keys;

  // Optimizer annotations.
  double est_card = 0.0;
  double est_cost = 0.0;

  // Executor annotations.
  uint64_t actual_card = 0;
  bool executed = false;
  /// Wall-clock seconds spent in this operator itself (children excluded).
  double exec_seconds = 0.0;

  bool is_join() const {
    return op == PhysOp::kHashJoin || op == PhysOp::kMergeJoin ||
           op == PhysOp::kNestLoopJoin;
  }

  /// Deep copy (without executor annotations on the copy).
  std::unique_ptr<PlanNode> Clone() const;

  /// Pretty-prints the plan tree with estimated/actual cardinalities —
  /// the format used by the paper's Fig. 17 case study.
  std::string ToString(const db::Catalog& catalog, const qry::Query& query,
                       int indent = 0) const;
};

/// Collects the nodes in post-order (children before parents) — the order in
/// which an operator-at-a-time executor finishes them.
void PostOrderPlan(PlanNode* root, std::vector<PlanNode*>* out);
void PostOrderPlan(const PlanNode* root, std::vector<const PlanNode*>* out);

/// Structural validation of a physical plan against its query: every join's
/// children partition its relation set and are linked by exactly one query
/// edge whose key columns sit on the correct sides; scans reference tables
/// in the query; pseudo scans carry a materialized result covering their
/// set. Returns a non-OK status describing the first violation. The engine
/// checks this (under LPCE_DCHECK builds) on every plan it executes.
Status ValidatePlan(const PlanNode& root, const qry::Query& query);

}  // namespace lpce::exec

#endif  // LPCE_EXEC_PLAN_H_
