#include "exec/executor.h"

#include <algorithm>
#include <atomic>

#include "common/metrics.h"
#include "common/profiler.h"
#include "common/selvec.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/vectorized.h"
#include <functional>
#include <limits>
#include <unordered_map>

namespace lpce::exec {

double QError(double estimated, double actual) {
  const double est = std::max(estimated, 1.0);
  const double act = std::max(actual, 1.0);
  return est > act ? est / act : act / est;
}

namespace {

void AppendUnique(std::vector<db::ColRef>* cols, db::ColRef ref) {
  for (const auto& c : *cols) {
    if (c == ref) return;
  }
  cols->push_back(ref);
}

// Inputs below this many rows run the sequential operator paths: the pool
// dispatch is not worth it, and tiny intermediates dominate the plans here.
constexpr size_t kMinParallelRows = 4096;

// Effective worker count for an operator: the global pool capped by the
// per-run knob.
int EffectiveThreads(int num_threads) {
  int workers = common::GlobalPool().size();
  if (num_threads > 0) workers = std::min(workers, num_threads);
  return workers;
}

// The late kernels cover hash joins over scans and late pseudo relations.
// Re-planned remainders may pick merge/nest-loop joins (deliberately
// mispriced row-kernel alternatives) or carry materialized pseudo rowsets
// from an earlier non-late round; such plans run the plain batch path — the
// knob is per-run, not per-operator, so a run never mixes representations.
bool PlanSupportsLate(const PlanNode& node) {
  if (node.is_join()) {
    return node.op == PhysOp::kHashJoin && PlanSupportsLate(*node.outer) &&
           PlanSupportsLate(*node.inner);
  }
  if (node.op == PhysOp::kPseudoScan) {
    return node.pseudo != nullptr && node.pseudo->late();
  }
  return true;
}

}  // namespace

std::vector<db::ColRef> Executor::SideRequired(
    const std::vector<db::ColRef>& required, qry::RelSet rels) const {
  std::vector<db::ColRef> out;
  for (const auto& c : required) {
    const int pos = query_->PositionOf(c.table);
    if (pos >= 0 && qry::Contains(rels, pos)) out.push_back(c);
  }
  return out;
}

std::vector<int32_t> Executor::LateRidTables(
    qry::RelSet rels, const std::vector<db::ColRef>& required) const {
  std::vector<int32_t> tables;
  for (size_t pos = 0; pos < query_->tables.size(); ++pos) {
    if (!qry::Contains(rels, static_cast<int>(pos))) continue;
    const int32_t table_id = query_->tables[pos];
    bool needed = false;
    for (const auto& ref : required) needed |= ref.table == table_id;
    for (const auto& join : query_->joins) {
      if (needed) break;
      const bool left_in =
          qry::Contains(rels, query_->PositionOf(join.left.table));
      const bool right_in =
          qry::Contains(rels, query_->PositionOf(join.right.table));
      if (left_in == right_in) continue;  // not a crossing edge
      needed = (left_in ? join.left.table : join.right.table) == table_id;
    }
    if (needed) tables.push_back(table_id);
  }
  return tables;
}

RowSetPtr Executor::Execute(PlanNode* root) {
  Options options;
  options.enable_checkpoints = false;
  RunResult result = Run(root, options);
  return result.result;
}

Executor::RunResult Executor::Run(PlanNode* root, const Options& options) {
  peak_bytes_ = 0;
  live_bytes_ = 0;
  // Resolved once per run: -1 defers to the LPCE_EXEC_BATCH environment knob
  // so whole suites can be re-run in batch mode without code changes.
  batch_size_ = options.batch_size >= 0 ? options.batch_size : BatchSizeFromEnv();
  late_ = options.late_materialization >= 0 ? options.late_materialization > 0
                                            : LateMatFromEnv();
  // Late materialization is a refinement of the batch path: row-id columns
  // are per-batch selection vectors promoted to intermediates.
  if (late_ && batch_size_ <= 0) batch_size_ = kDefaultBatchSize;
  if (late_) late_ = PlanSupportsLate(*root);
  RunResult result;
  RowSetPtr out = ExecuteNode(root, {}, options, &result);
  if (result.tripped == nullptr) result.result = out;
  common::MetricsRegistry::Global()
      .gauge("executor.peak_intermediate_bytes")
      ->Set(static_cast<double>(peak_bytes_));
  return result;
}

RowSetPtr Executor::ExecuteNode(PlanNode* node,
                                const std::vector<db::ColRef>& required,
                                const Options& options, RunResult* result) {
  // Late runs fuse a hash join over a leaf scan into one scan→probe pipeline
  // (DESIGN.md "Pipelined execution & late materialization"). Fusion stops at
  // join children: their checkpoints must be evaluated before the parent may
  // run, which is exactly a pipeline breaker.
  if (late_ && node->op == PhysOp::kHashJoin &&
      (node->outer->op == PhysOp::kSeqScan ||
       node->outer->op == PhysOp::kIndexScan) &&
      !node->inner->is_join()) {
    return ExecuteFusedScanJoin(node, required, options, result);
  }
  WallTimer node_timer;
  double children_seconds = 0.0;
  RowSetPtr out;
  int outer_span = -1, inner_span = -1;
  uint64_t outer_rows = 0, inner_rows = 0;
  if (node->is_join()) {
    std::vector<db::ColRef> outer_req = SideRequired(required, node->outer->rels);
    std::vector<db::ColRef> inner_req = SideRequired(required, node->inner->rels);
    AppendUnique(&outer_req, node->outer_key);
    AppendUnique(&inner_req, node->inner_key);
    for (const auto& [outer_col, inner_col] : node->residual_keys) {
      AppendUnique(&outer_req, outer_col);
      AppendUnique(&inner_req, inner_col);
    }
    WallTimer children_timer;
    RowSetPtr outer = ExecuteNode(node->outer.get(), outer_req, options, result);
    if (result->tripped != nullptr || result->aborted) return nullptr;
    if (options.trace != nullptr) outer_span = options.trace->last_span_id();
    RowSetPtr inner = ExecuteNode(node->inner.get(), inner_req, options, result);
    if (result->tripped != nullptr || result->aborted) return nullptr;
    if (options.trace != nullptr) inner_span = options.trace->last_span_id();
    children_seconds = children_timer.ElapsedSeconds();
    outer_rows = outer->num_rows();
    inner_rows = inner->num_rows();
    bool overflow = false;
    out = ExecuteJoin(*node, *outer, *inner, required, options.max_node_rows,
                      &overflow, options.num_threads);
    if (overflow) {
      result->aborted = true;
      return nullptr;
    }
  } else if (node->op == PhysOp::kPseudoScan) {
    out = ExecutePseudo(*node, required);
  } else {
    out = ExecuteScan(*node, required, options.num_threads);
  }
  const double exec_seconds = node_timer.ElapsedSeconds() - children_seconds;
  if (FinishNode(node, out, required, options, result, exec_seconds,
                 outer_span, inner_span, outer_rows, inner_rows)) {
    return nullptr;
  }
  return out;
}

bool Executor::FinishNode(PlanNode* node, const RowSetPtr& out,
                          const std::vector<db::ColRef>& required,
                          const Options& options, RunResult* result,
                          double exec_seconds, int outer_span, int inner_span,
                          uint64_t outer_rows, uint64_t inner_rows) {
  node->actual_card = out->num_rows();
  node->executed = true;
  node->exec_seconds = exec_seconds;
  // Every finished result is retained in result->finished until the run ends
  // (checkpoints may re-plan around any of them), so live memory is the sum
  // of all finished intermediates, not the largest single one.
  live_bytes_ += out->ByteSize();
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  result->finished[node] = out;

  {
    static common::Counter* nodes_total =
        common::MetricsRegistry::Global().counter("executor.nodes_total");
    static common::Counter* rows_total =
        common::MetricsRegistry::Global().counter("executor.rows_out_total");
    static common::Histogram* node_seconds =
        common::MetricsRegistry::Global().histogram("executor.node_seconds");
    nodes_total->Increment();
    rows_total->Increment(node->actual_card);
    node_seconds->Observe(node->exec_seconds);
  }
  if (options.trace != nullptr) {
    eng::TraceSpan span;
    span.op = PhysOpName(node->op);
    span.rels = node->rels;
    span.est_card = node->est_card;
    span.actual_card = node->actual_card;
    span.qerror = QError(node->est_card, static_cast<double>(node->actual_card));
    span.outer_span = outer_span;
    span.inner_span = inner_span;
    span.outer_rows = outer_rows;
    span.inner_rows = inner_rows;
    span.wall_seconds = node->exec_seconds;
    options.trace->AddSpan(std::move(span));
  }

  // Checkpoint: a pseudo scan's cardinality is exact by construction, and a
  // tripped root has nothing left to re-plan.
  if (options.enable_checkpoints && node->op != PhysOp::kPseudoScan &&
      !required.empty()) {
    const double actual = static_cast<double>(node->actual_card);
    const bool is_underestimate = actual > std::max(node->est_card, 1.0);
    const bool policy_allows =
        node->actual_card >= options.min_trip_rows &&
        (!options.underestimates_only || is_underestimate);
    const bool tripped =
        policy_allows &&
        QError(node->est_card, actual) >= options.qerror_threshold;
    if (options.trace != nullptr) {
      eng::TraceEvent event;
      event.kind = eng::TraceEventKind::kCheckpoint;
      event.rels = node->rels;
      event.est_card = node->est_card;
      event.actual_card = actual;
      event.qerror = QError(node->est_card, actual);
      event.threshold = options.qerror_threshold;
      event.policy_allows = policy_allows;
      event.tripped = tripped;
      options.trace->AddEvent(std::move(event));
    }
    if (tripped) {
      static common::Counter* trips_total =
          common::MetricsRegistry::Global().counter(
              "executor.checkpoint_trips_total");
      trips_total->Increment();
      result->tripped = node;
      return true;
    }
  }
  return false;
}

RowSetPtr Executor::ExecuteFusedScanJoin(PlanNode* node,
                                         const std::vector<db::ColRef>& required,
                                         const Options& options,
                                         RunResult* result) {
  LPCE_PROFILE_SCOPE("exec.fused_scan_join");
  PlanNode* outer_node = node->outer.get();
  PlanNode* inner_node = node->inner.get();
  std::vector<db::ColRef> outer_req = SideRequired(required, outer_node->rels);
  std::vector<db::ColRef> inner_req = SideRequired(required, inner_node->rels);
  AppendUnique(&outer_req, node->outer_key);
  AppendUnique(&inner_req, node->inner_key);
  for (const auto& [outer_col, inner_col] : node->residual_keys) {
    AppendUnique(&outer_req, outer_col);
    AppendUnique(&inner_req, inner_col);
  }

  // The build side (a leaf) executes first wall-clock — the probe streams
  // against its table — but bookkeeping below is emitted in the oracle's
  // post-order (outer, inner, join) so traces and trip points stay
  // bit-identical to the unfused lanes.
  WallTimer inner_timer;
  RowSetPtr inner =
      inner_node->op == PhysOp::kPseudoScan
          ? ExecutePseudo(*inner_node, inner_req)
          : ExecuteScan(*inner_node, inner_req, options.num_threads);
  const double inner_seconds = inner_timer.ElapsedSeconds();

  const int32_t table_id = query_->tables[outer_node->table_pos];
  const db::Table& table = db_->table(table_id);
  std::vector<uint32_t> rows;
  std::vector<qry::Predicate> scan_residual;
  const bool dense = ResolveScanInput(*outer_node, &rows, &scan_residual);

  WallTimer fused_timer;
  bool overflow = false;
  RowSetPtr scan_out;
  RowSetPtr out = LateFusedScanJoin(
      *db_, table, table_id, dense ? nullptr : &rows, scan_residual, outer_req,
      &scan_out, *inner, node->outer_key, node->inner_key, node->residual_keys,
      required, LateRidTables(node->rels, required), options.max_node_rows,
      &overflow, batch_size_, options.num_threads);
  const double fused_seconds = fused_timer.ElapsedSeconds();
  if (overflow) {
    // The fused probe abandons its run mid-stream, so its scan by-product is
    // truncated; recompute the scan honestly — the outer node's bookkeeping
    // (actual cardinality, checkpoint) must match the unfused lanes even on
    // an aborted run.
    scan_out = BatchScan(table, table_id, dense ? nullptr : &rows,
                         scan_residual, outer_req, batch_size_,
                         options.num_threads, /*late=*/true);
  }

  int outer_span = -1, inner_span = -1;
  if (FinishNode(outer_node, scan_out, outer_req, options, result,
                 /*exec_seconds=*/0.0, -1, -1, 0, 0)) {
    return nullptr;
  }
  if (options.trace != nullptr) outer_span = options.trace->last_span_id();
  if (FinishNode(inner_node, inner, inner_req, options, result, inner_seconds,
                 -1, -1, 0, 0)) {
    return nullptr;
  }
  if (options.trace != nullptr) inner_span = options.trace->last_span_id();
  if (overflow) {
    result->aborted = true;
    return nullptr;
  }
  if (FinishNode(node, out, required, options, result, fused_seconds,
                 outer_span, inner_span, scan_out->num_rows(),
                 inner->num_rows())) {
    return nullptr;
  }
  return out;
}

bool Executor::ResolveScanInput(const PlanNode& node,
                                std::vector<uint32_t>* rows,
                                std::vector<qry::Predicate>* residual) const {
  if (node.op == PhysOp::kIndexScan) {
    // Drive the scan from the sorted index on index_col; the remaining
    // predicates (if any) are applied as residual filters.
    const db::SortedIndex& index = db_->sorted_index(node.index_col);
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    // `x < INT64_MIN` / `x > INT64_MAX` cannot match anything, and naively
    // widening the literal by one would overflow (UB) — mark the range empty
    // instead.
    bool empty_range = false;
    bool driven = false;
    for (const auto& f : node.filters) {
      if (!(f.col == node.index_col) || driven || f.op == qry::CmpOp::kNe) {
        residual->push_back(f);
        continue;
      }
      driven = true;
      switch (f.op) {
        case qry::CmpOp::kLt:
          if (f.value == std::numeric_limits<int64_t>::min()) {
            empty_range = true;
          } else {
            hi = f.value - 1;
          }
          break;
        case qry::CmpOp::kLe:
          hi = f.value;
          break;
        case qry::CmpOp::kEq:
          lo = hi = f.value;
          break;
        case qry::CmpOp::kGe:
          lo = f.value;
          break;
        case qry::CmpOp::kGt:
          if (f.value == std::numeric_limits<int64_t>::max()) {
            empty_range = true;
          } else {
            lo = f.value + 1;
          }
          break;
        case qry::CmpOp::kNe:
          break;
      }
    }
    if (!empty_range) *rows = index.RangeLookup(lo, hi);
    return false;
  }
  *residual = node.filters;
  // A dense scan visits the whole table in storage order; only the row path
  // materializes the identity row list for it (the batch paths iterate
  // positions directly).
  return true;
}

RowSetPtr Executor::ExecuteScan(const PlanNode& node,
                                const std::vector<db::ColRef>& required,
                                int num_threads) {
  LPCE_PROFILE_SCOPE(node.op == PhysOp::kIndexScan ? "exec.index_scan"
                                                   : "exec.seq_scan");
  const int32_t table_id = query_->tables[node.table_pos];
  const db::Table& table = db_->table(table_id);

  std::vector<uint32_t> rows;
  std::vector<qry::Predicate> residual;
  const bool dense = ResolveScanInput(node, &rows, &residual);

  if (batch_size_ > 0) {
    return BatchScan(table, table_id, dense ? nullptr : &rows, residual,
                     required, batch_size_, num_threads, late_);
  }
  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());
  if (dense) {
    rows.resize(table.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  }

  // Apply residual filters: every chunk filters its slice into a private
  // buffer and the buffers are concatenated in chunk order, so the surviving
  // row order matches the sequential path exactly.
  if (!residual.empty()) {
    auto filter_range = [&](size_t b, size_t e, std::vector<uint32_t>* kept) {
      for (size_t i = b; i < e; ++i) {
        const uint32_t row = rows[i];
        bool pass = true;
        for (const auto& f : residual) {
          if (!qry::EvalCmp(table.at(row, f.col.column), f.op, f.value)) {
            pass = false;
            break;
          }
        }
        if (pass) kept->push_back(row);
      }
    };
    const int workers = EffectiveThreads(num_threads);
    if (workers > 1 && rows.size() >= kMinParallelRows) {
      const auto chunks = common::ThreadPool::Partition(
          0, rows.size(), kMinParallelRows / 4, workers);
      std::vector<std::vector<uint32_t>> kept(chunks.size());
      common::GlobalPool().ParallelFor(
          0, chunks.size(), 1,
          [&](size_t c0, size_t c1) {
            LPCE_PROFILE_SCOPE("exec.worker.filter");
            for (size_t c = c0; c < c1; ++c) {
              kept[c].reserve(chunks[c].second - chunks[c].first);
              filter_range(chunks[c].first, chunks[c].second, &kept[c]);
            }
          },
          workers);
      size_t total = 0;
      for (const auto& k : kept) total += k.size();
      std::vector<uint32_t> merged;
      merged.reserve(total);
      for (const auto& k : kept) merged.insert(merged.end(), k.begin(), k.end());
      rows.swap(merged);
    } else {
      std::vector<uint32_t> kept;
      kept.reserve(rows.size());
      filter_range(0, rows.size(), &kept);
      rows.swap(kept);
    }
  }

  out->row_count = rows.size();
  const int workers = EffectiveThreads(num_threads);
  for (size_t c = 0; c < required.size(); ++c) {
    LPCE_CHECK(required[c].table == table_id);
    const auto& src = table.column(required[c].column);
    auto& dst = out->cols[c];
    dst.resize(rows.size());
    if (workers > 1 && rows.size() >= kMinParallelRows) {
      common::GlobalPool().ParallelFor(
          0, rows.size(), kMinParallelRows / 4,
          [&](size_t b, size_t e) {
            LPCE_PROFILE_SCOPE("exec.worker.gather");
            for (size_t i = b; i < e; ++i) dst[i] = src[rows[i]];
          },
          workers);
    } else {
      for (size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
    }
  }
  return out;
}

RowSetPtr Executor::ExecutePseudo(const PlanNode& node,
                                  const std::vector<db::ColRef>& required) {
  LPCE_PROFILE_SCOPE("exec.pseudo_scan");
  LPCE_CHECK(node.pseudo != nullptr);
  const RowSet& src = *node.pseudo;
  auto out = std::make_shared<RowSet>();
  out->row_count = src.row_count;
  out->schema = required;
  if (late_) {
    // Late run (implies a late source, see PlanSupportsLate): pass the
    // retained row-id columns through, pruned to the tables the remainder of
    // the plan still references. A late pseudo can serve any column of its
    // tables — availability is per table, not per recorded schema entry.
    for (int32_t table_id : LateRidTables(node.rels, required)) {
      const int idx = src.RidIndex(table_id);
      LPCE_CHECK_MSG(idx >= 0, "late pseudo relation missing a row-id column");
      out->rid_tables.push_back(table_id);
      out->rid_cols.push_back(src.rid_cols[idx]);
    }
    return out;
  }
  out->cols.resize(required.size());
  if (src.late()) {
    // A late round tripped and this round runs materialized (the re-planned
    // remainder picked operators the late kernels do not cover): force the
    // deferred payload gather from the base tables now.
    for (size_t c = 0; c < required.size(); ++c) {
      const int idx = src.RidIndex(required[c].table);
      LPCE_CHECK_MSG(idx >= 0, "pseudo relation missing row ids for a column");
      const auto& rid = src.rid_cols[idx];
      const auto& col = db_->table(required[c].table).column(required[c].column);
      auto& dst = out->cols[c];
      dst.resize(rid.size());
      common::GatherSelected(col.data(), rid.data(), rid.size(), dst.data());
    }
    return out;
  }
  for (size_t c = 0; c < required.size(); ++c) {
    const int idx = src.ColumnIndex(required[c]);
    LPCE_CHECK_MSG(idx >= 0, "pseudo relation missing a required column");
    out->cols[c] = src.cols[idx];
  }
  return out;
}

RowSetPtr Executor::ExecuteJoin(const PlanNode& node, const RowSet& outer,
                                const RowSet& inner,
                                const std::vector<db::ColRef>& required,
                                size_t max_rows, bool* overflow,
                                int num_threads) {
  LPCE_PROFILE_SCOPE(node.op == PhysOp::kHashJoin    ? "exec.hash_join"
                     : node.op == PhysOp::kMergeJoin ? "exec.merge_join"
                                                     : "exec.nestloop_join");
  // Late runs dispatch before any column-index resolution: late inputs carry
  // row-id columns only, and the late kernel resolves its accessors against
  // the base tables directly.
  if (late_) {
    LPCE_CHECK(node.op == PhysOp::kHashJoin && batch_size_ > 0);
    return LateHashJoin(*db_, outer, inner, node.outer_key, node.inner_key,
                        node.residual_keys, required,
                        LateRidTables(node.rels, required), max_rows, overflow,
                        batch_size_, num_threads);
  }
  const int outer_key = outer.ColumnIndex(node.outer_key);
  const int inner_key = inner.ColumnIndex(node.inner_key);
  LPCE_CHECK(outer_key >= 0 && inner_key >= 0);
  const auto& okeys = outer.cols[outer_key];
  const auto& ikeys = inner.cols[inner_key];

  // Residual equi-join predicates (multigraph cuts): resolved to column
  // indexes once; a candidate match survives only when every pair agrees.
  std::vector<std::pair<int, int>> residual;
  residual.reserve(node.residual_keys.size());
  for (const auto& [outer_col, inner_col] : node.residual_keys) {
    const int oc = outer.ColumnIndex(outer_col);
    const int ic = inner.ColumnIndex(inner_col);
    LPCE_CHECK_MSG(oc >= 0 && ic >= 0, "residual key column not materialized");
    residual.emplace_back(oc, ic);
  }

  // Vectorized hash join (merge and nested-loop joins always run the row
  // kernels — they exist as deliberately mispriced alternatives, not hot
  // paths).
  if (node.op == PhysOp::kHashJoin && batch_size_ > 0) {
    return BatchHashJoin(outer, inner, outer_key, inner_key, residual,
                         required, max_rows, overflow, batch_size_,
                         num_threads);
  }
  if (node.op == PhysOp::kHashJoin && EffectiveThreads(num_threads) > 1 &&
      okeys.size() + ikeys.size() >= kMinParallelRows) {
    return ParallelHashJoin(outer, inner, outer_key, inner_key, residual,
                            required, max_rows, overflow, num_threads);
  }

  // Source (side, column index) for every output column.
  struct Source {
    bool from_outer;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(required.size());
  for (const auto& ref : required) {
    int idx = outer.ColumnIndex(ref);
    if (idx >= 0) {
      sources.push_back({true, idx});
    } else {
      idx = inner.ColumnIndex(ref);
      LPCE_CHECK_MSG(idx >= 0, "join output column not found in either side");
      sources.push_back({false, idx});
    }
  }

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  auto emit = [&](size_t outer_row, size_t inner_row) {
    for (const auto& [oc, ic] : residual) {
      if (outer.cols[oc][outer_row] != inner.cols[ic][inner_row]) return;
    }
    for (size_t c = 0; c < sources.size(); ++c) {
      const Source& s = sources[c];
      out->cols[c].push_back(s.from_outer ? outer.cols[s.col][outer_row]
                                          : inner.cols[s.col][inner_row]);
    }
    ++out->row_count;
  };
  auto over_limit = [&]() {
    if (max_rows > 0 && out->row_count > max_rows) {
      *overflow = true;
      return true;
    }
    return false;
  };

  switch (node.op) {
    case PhysOp::kHashJoin: {
      std::unordered_map<int64_t, std::vector<uint32_t>> build;
      build.reserve(ikeys.size());
      for (size_t r = 0; r < ikeys.size(); ++r) {
        build[ikeys[r]].push_back(static_cast<uint32_t>(r));
      }
      for (size_t r = 0; r < okeys.size(); ++r) {
        auto it = build.find(okeys[r]);
        if (it == build.end()) continue;
        for (uint32_t ir : it->second) emit(r, ir);
        if (over_limit()) return out;
      }
      break;
    }
    case PhysOp::kMergeJoin: {
      std::vector<uint32_t> operm(okeys.size()), iperm(ikeys.size());
      for (size_t i = 0; i < operm.size(); ++i) operm[i] = static_cast<uint32_t>(i);
      for (size_t i = 0; i < iperm.size(); ++i) iperm[i] = static_cast<uint32_t>(i);
      std::sort(operm.begin(), operm.end(),
                [&](uint32_t a, uint32_t b) { return okeys[a] < okeys[b]; });
      std::sort(iperm.begin(), iperm.end(),
                [&](uint32_t a, uint32_t b) { return ikeys[a] < ikeys[b]; });
      size_t oi = 0, ii = 0;
      while (oi < operm.size() && ii < iperm.size()) {
        const int64_t ov = okeys[operm[oi]];
        const int64_t iv = ikeys[iperm[ii]];
        if (ov < iv) {
          ++oi;
        } else if (ov > iv) {
          ++ii;
        } else {
          size_t oe = oi;
          while (oe < operm.size() && okeys[operm[oe]] == ov) ++oe;
          size_t ie = ii;
          while (ie < iperm.size() && ikeys[iperm[ie]] == iv) ++ie;
          for (size_t a = oi; a < oe; ++a) {
            for (size_t b = ii; b < ie; ++b) emit(operm[a], iperm[b]);
            if (over_limit()) return out;
          }
          oi = oe;
          ii = ie;
        }
      }
      break;
    }
    case PhysOp::kNestLoopJoin: {
      // Deliberately quadratic — the whole point of the paper's running
      // example is that a mistaken nested loop on a large outer is slow.
      for (size_t r = 0; r < okeys.size(); ++r) {
        const int64_t key = okeys[r];
        for (size_t ir = 0; ir < ikeys.size(); ++ir) {
          if (ikeys[ir] == key) emit(r, ir);
        }
        if (over_limit()) return out;
      }
      break;
    }
    default:
      LPCE_CHECK_MSG(false, "not a join operator");
  }
  return out;
}

RowSetPtr Executor::ParallelHashJoin(
    const RowSet& outer, const RowSet& inner, int outer_key, int inner_key,
    const std::vector<std::pair<int, int>>& residual,
    const std::vector<db::ColRef>& required, size_t max_rows, bool* overflow,
    int num_threads) {
  const auto& okeys = outer.cols[outer_key];
  const auto& ikeys = inner.cols[inner_key];
  const int workers = EffectiveThreads(num_threads);
  common::ThreadPool& pool = common::GlobalPool();

  struct Source {
    bool from_outer;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(required.size());
  for (const auto& ref : required) {
    int idx = outer.ColumnIndex(ref);
    if (idx >= 0) {
      sources.push_back({true, idx});
    } else {
      idx = inner.ColumnIndex(ref);
      LPCE_CHECK_MSG(idx >= 0, "join output column not found in either side");
      sources.push_back({false, idx});
    }
  }

  // Partitioned build: rows are hashed into `workers` partitions; each
  // partition's table is built by one task. Within a partition the rows keep
  // their ascending order, so a key's match list is identical to the one the
  // sequential build produces.
  // Partition ids are stored in a byte; more than 255 partitions would be
  // far past any sane pool size anyway.
  const size_t P = std::min<size_t>(static_cast<size_t>(workers), 255);
  std::vector<uint8_t> part(ikeys.size());
  pool.ParallelFor(
      0, ikeys.size(), 4096,
      [&](size_t b, size_t e) {
        LPCE_PROFILE_SCOPE("exec.worker.partition");
        for (size_t r = b; r < e; ++r) {
          part[r] = static_cast<uint8_t>(MixJoinKey(ikeys[r]) % P);
        }
      },
      workers);
  std::vector<std::unordered_map<int64_t, std::vector<uint32_t>>> build(P);
  pool.ParallelFor(
      0, P, 1,
      [&](size_t p0, size_t p1) {
        LPCE_PROFILE_SCOPE("exec.worker.build");
        for (size_t p = p0; p < p1; ++p) {
          build[p].reserve(ikeys.size() / P + 1);
          for (size_t r = 0; r < ikeys.size(); ++r) {
            if (part[r] == p) build[p][ikeys[r]].push_back(static_cast<uint32_t>(r));
          }
        }
      },
      workers);

  // Parallel probe: each chunk of outer rows emits into private per-column
  // buffers; concatenating them in chunk order reproduces the sequential
  // output row order exactly (outer order, then build-list order per key).
  const auto chunks =
      common::ThreadPool::Partition(0, okeys.size(), 1024, workers);
  struct ChunkOut {
    std::vector<std::vector<int64_t>> cols;
    size_t rows = 0;
  };
  std::vector<ChunkOut> partials(chunks.size());
  std::atomic<size_t> emitted{0};
  std::atomic<bool> over{false};
  pool.ParallelFor(
      0, chunks.size(), 1,
      [&](size_t c0, size_t c1) {
        LPCE_PROFILE_SCOPE("exec.worker.probe");
        for (size_t c = c0; c < c1; ++c) {
          ChunkOut& local = partials[c];
          local.cols.resize(sources.size());
          for (size_t r = chunks[c].first; r < chunks[c].second; ++r) {
            if (over.load(std::memory_order_relaxed)) return;
            const int64_t key = okeys[r];
            const auto& table = build[MixJoinKey(key) % P];
            auto it = table.find(key);
            if (it == table.end()) continue;
            size_t emits = 0;
            for (uint32_t ir : it->second) {
              bool pass = true;
              for (const auto& [oc, ic] : residual) {
                if (outer.cols[oc][r] != inner.cols[ic][ir]) {
                  pass = false;
                  break;
                }
              }
              if (!pass) continue;
              for (size_t s = 0; s < sources.size(); ++s) {
                local.cols[s].push_back(sources[s].from_outer
                                            ? outer.cols[sources[s].col][r]
                                            : inner.cols[sources[s].col][ir]);
              }
              ++emits;
            }
            // Count only rows actually emitted: residual filters can reject
            // candidates the primary key surfaced.
            local.rows += emits;
            if (max_rows > 0 && emits > 0 &&
                emitted.fetch_add(emits, std::memory_order_relaxed) + emits >
                    max_rows) {
              over.store(true, std::memory_order_relaxed);
              return;
            }
          }
        }
      },
      workers);

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());
  if (over.load()) {
    // The run is abandoned; the partially-built output is discarded upstream.
    *overflow = true;
    return out;
  }
  size_t total = 0;
  for (const auto& p : partials) total += p.rows;
  out->row_count = total;
  // Per-column concatenation in chunk order, itself parallel across columns.
  pool.ParallelFor(
      0, sources.size(), 1,
      [&](size_t s0, size_t s1) {
        LPCE_PROFILE_SCOPE("exec.worker.concat");
        for (size_t s = s0; s < s1; ++s) {
          auto& dst = out->cols[s];
          dst.reserve(total);
          for (const auto& p : partials) {
            dst.insert(dst.end(), p.cols[s].begin(), p.cols[s].end());
          }
        }
      },
      workers);
  return out;
}

std::unique_ptr<PlanNode> BuildCanonicalHashPlan(const qry::Query& query) {
  std::unique_ptr<qry::LogicalNode> logical =
      qry::BuildCanonicalTree(query, query.AllRels());
  // Convert the logical tree into a physical plan with hash joins and
  // sequential scans.
  std::function<std::unique_ptr<PlanNode>(const qry::LogicalNode*)> convert =
      [&](const qry::LogicalNode* node) -> std::unique_ptr<PlanNode> {
    auto plan = std::make_unique<PlanNode>();
    plan->rels = node->rels;
    if (node->is_leaf()) {
      plan->op = PhysOp::kSeqScan;
      plan->table_pos = node->table_pos;
      plan->filters = query.PredicatesOf(node->table_pos);
      return plan;
    }
    plan->op = PhysOp::kHashJoin;
    plan->outer = convert(node->left.get());
    plan->inner = convert(node->right.get());
    const qry::Join& join = query.joins[node->join_idx];
    const int left_pos = query.PositionOf(join.left.table);
    if (qry::Contains(plan->outer->rels, left_pos)) {
      plan->outer_key = join.left;
      plan->inner_key = join.right;
    } else {
      plan->outer_key = join.right;
      plan->inner_key = join.left;
    }
    // Multigraph cuts: every additional edge crossing this partition rides
    // along as a residual filter, oriented (outer column, inner column).
    for (int join_idx :
         query.JoinsBetween(plan->outer->rels, plan->inner->rels)) {
      if (join_idx == node->join_idx) continue;
      const qry::Join& extra = query.joins[join_idx];
      const int extra_left = query.PositionOf(extra.left.table);
      if (qry::Contains(plan->outer->rels, extra_left)) {
        plan->residual_keys.emplace_back(extra.left, extra.right);
      } else {
        plan->residual_keys.emplace_back(extra.right, extra.left);
      }
    }
    return plan;
  };
  return convert(logical.get());
}

}  // namespace lpce::exec
