#include "exec/executor.h"

#include <algorithm>

#include "common/timer.h"
#include <functional>
#include <limits>
#include <unordered_map>

namespace lpce::exec {

double QError(double estimated, double actual) {
  const double est = std::max(estimated, 1.0);
  const double act = std::max(actual, 1.0);
  return est > act ? est / act : act / est;
}

namespace {

void AppendUnique(std::vector<db::ColRef>* cols, db::ColRef ref) {
  for (const auto& c : *cols) {
    if (c == ref) return;
  }
  cols->push_back(ref);
}

}  // namespace

std::vector<db::ColRef> Executor::SideRequired(
    const std::vector<db::ColRef>& required, qry::RelSet rels) const {
  std::vector<db::ColRef> out;
  for (const auto& c : required) {
    const int pos = query_->PositionOf(c.table);
    if (pos >= 0 && qry::Contains(rels, pos)) out.push_back(c);
  }
  return out;
}

RowSetPtr Executor::Execute(PlanNode* root) {
  Options options;
  options.enable_checkpoints = false;
  RunResult result = Run(root, options);
  return result.result;
}

Executor::RunResult Executor::Run(PlanNode* root, const Options& options) {
  peak_bytes_ = 0;
  RunResult result;
  RowSetPtr out = ExecuteNode(root, {}, options, &result);
  if (result.tripped == nullptr) result.result = out;
  return result;
}

RowSetPtr Executor::ExecuteNode(PlanNode* node,
                                const std::vector<db::ColRef>& required,
                                const Options& options, RunResult* result) {
  WallTimer node_timer;
  double children_seconds = 0.0;
  RowSetPtr out;
  if (node->is_join()) {
    std::vector<db::ColRef> outer_req = SideRequired(required, node->outer->rels);
    std::vector<db::ColRef> inner_req = SideRequired(required, node->inner->rels);
    AppendUnique(&outer_req, node->outer_key);
    AppendUnique(&inner_req, node->inner_key);
    WallTimer children_timer;
    RowSetPtr outer = ExecuteNode(node->outer.get(), outer_req, options, result);
    if (result->tripped != nullptr || result->aborted) return nullptr;
    RowSetPtr inner = ExecuteNode(node->inner.get(), inner_req, options, result);
    if (result->tripped != nullptr || result->aborted) return nullptr;
    children_seconds = children_timer.ElapsedSeconds();
    bool overflow = false;
    out = ExecuteJoin(*node, *outer, *inner, required, options.max_node_rows,
                      &overflow);
    if (overflow) {
      result->aborted = true;
      return nullptr;
    }
  } else if (node->op == PhysOp::kPseudoScan) {
    out = ExecutePseudo(*node, required);
  } else {
    out = ExecuteScan(*node, required);
  }
  node->actual_card = out->num_rows();
  node->executed = true;
  node->exec_seconds = node_timer.ElapsedSeconds() - children_seconds;
  peak_bytes_ = std::max(peak_bytes_, out->ByteSize());
  result->finished[node] = out;
  // Checkpoint: a pseudo scan's cardinality is exact by construction, and a
  // tripped root has nothing left to re-plan.
  if (options.enable_checkpoints && node->op != PhysOp::kPseudoScan &&
      !required.empty()) {
    const double actual = static_cast<double>(node->actual_card);
    const bool is_underestimate = actual > std::max(node->est_card, 1.0);
    const bool policy_allows =
        node->actual_card >= options.min_trip_rows &&
        (!options.underestimates_only || is_underestimate);
    if (policy_allows &&
        QError(node->est_card, actual) >= options.qerror_threshold) {
      result->tripped = node;
      return nullptr;
    }
  }
  return out;
}

RowSetPtr Executor::ExecuteScan(const PlanNode& node,
                                const std::vector<db::ColRef>& required) {
  const int32_t table_id = query_->tables[node.table_pos];
  const db::Table& table = db_->table(table_id);
  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  std::vector<uint32_t> rows;
  std::vector<qry::Predicate> residual;
  if (node.op == PhysOp::kIndexScan) {
    // Drive the scan from the sorted index on index_col; the remaining
    // predicates (if any) are applied as residual filters.
    const db::SortedIndex& index = db_->sorted_index(node.index_col);
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
    bool driven = false;
    for (const auto& f : node.filters) {
      if (!(f.col == node.index_col) || driven || f.op == qry::CmpOp::kNe) {
        residual.push_back(f);
        continue;
      }
      driven = true;
      switch (f.op) {
        case qry::CmpOp::kLt:
          hi = f.value - 1;
          break;
        case qry::CmpOp::kLe:
          hi = f.value;
          break;
        case qry::CmpOp::kEq:
          lo = hi = f.value;
          break;
        case qry::CmpOp::kGe:
          lo = f.value;
          break;
        case qry::CmpOp::kGt:
          lo = f.value + 1;
          break;
        case qry::CmpOp::kNe:
          break;
      }
    }
    rows = index.RangeLookup(lo, hi);
  } else {
    residual = node.filters;
    rows.resize(table.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  }

  // Apply residual filters.
  if (!residual.empty()) {
    std::vector<uint32_t> kept;
    kept.reserve(rows.size());
    for (uint32_t row : rows) {
      bool pass = true;
      for (const auto& f : residual) {
        if (!qry::EvalCmp(table.at(row, f.col.column), f.op, f.value)) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(row);
    }
    rows.swap(kept);
  }

  out->row_count = rows.size();
  for (size_t c = 0; c < required.size(); ++c) {
    LPCE_CHECK(required[c].table == table_id);
    const auto& src = table.column(required[c].column);
    auto& dst = out->cols[c];
    dst.reserve(rows.size());
    for (uint32_t row : rows) dst.push_back(src[row]);
  }
  return out;
}

RowSetPtr Executor::ExecutePseudo(const PlanNode& node,
                                  const std::vector<db::ColRef>& required) {
  LPCE_CHECK(node.pseudo != nullptr);
  const RowSet& src = *node.pseudo;
  auto out = std::make_shared<RowSet>();
  out->row_count = src.row_count;
  out->schema = required;
  out->cols.resize(required.size());
  for (size_t c = 0; c < required.size(); ++c) {
    const int idx = src.ColumnIndex(required[c]);
    LPCE_CHECK_MSG(idx >= 0, "pseudo relation missing a required column");
    out->cols[c] = src.cols[idx];
  }
  return out;
}

RowSetPtr Executor::ExecuteJoin(const PlanNode& node, const RowSet& outer,
                                const RowSet& inner,
                                const std::vector<db::ColRef>& required,
                                size_t max_rows, bool* overflow) {
  const int outer_key = outer.ColumnIndex(node.outer_key);
  const int inner_key = inner.ColumnIndex(node.inner_key);
  LPCE_CHECK(outer_key >= 0 && inner_key >= 0);
  const auto& okeys = outer.cols[outer_key];
  const auto& ikeys = inner.cols[inner_key];

  // Source (side, column index) for every output column.
  struct Source {
    bool from_outer;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(required.size());
  for (const auto& ref : required) {
    int idx = outer.ColumnIndex(ref);
    if (idx >= 0) {
      sources.push_back({true, idx});
    } else {
      idx = inner.ColumnIndex(ref);
      LPCE_CHECK_MSG(idx >= 0, "join output column not found in either side");
      sources.push_back({false, idx});
    }
  }

  auto out = std::make_shared<RowSet>();
  out->schema = required;
  out->cols.resize(required.size());

  auto emit = [&](size_t outer_row, size_t inner_row) {
    for (size_t c = 0; c < sources.size(); ++c) {
      const Source& s = sources[c];
      out->cols[c].push_back(s.from_outer ? outer.cols[s.col][outer_row]
                                          : inner.cols[s.col][inner_row]);
    }
    ++out->row_count;
  };
  auto over_limit = [&]() {
    if (max_rows > 0 && out->row_count > max_rows) {
      *overflow = true;
      return true;
    }
    return false;
  };

  switch (node.op) {
    case PhysOp::kHashJoin: {
      std::unordered_map<int64_t, std::vector<uint32_t>> build;
      build.reserve(ikeys.size());
      for (size_t r = 0; r < ikeys.size(); ++r) {
        build[ikeys[r]].push_back(static_cast<uint32_t>(r));
      }
      for (size_t r = 0; r < okeys.size(); ++r) {
        auto it = build.find(okeys[r]);
        if (it == build.end()) continue;
        for (uint32_t ir : it->second) emit(r, ir);
        if (over_limit()) return out;
      }
      break;
    }
    case PhysOp::kMergeJoin: {
      std::vector<uint32_t> operm(okeys.size()), iperm(ikeys.size());
      for (size_t i = 0; i < operm.size(); ++i) operm[i] = static_cast<uint32_t>(i);
      for (size_t i = 0; i < iperm.size(); ++i) iperm[i] = static_cast<uint32_t>(i);
      std::sort(operm.begin(), operm.end(),
                [&](uint32_t a, uint32_t b) { return okeys[a] < okeys[b]; });
      std::sort(iperm.begin(), iperm.end(),
                [&](uint32_t a, uint32_t b) { return ikeys[a] < ikeys[b]; });
      size_t oi = 0, ii = 0;
      while (oi < operm.size() && ii < iperm.size()) {
        const int64_t ov = okeys[operm[oi]];
        const int64_t iv = ikeys[iperm[ii]];
        if (ov < iv) {
          ++oi;
        } else if (ov > iv) {
          ++ii;
        } else {
          size_t oe = oi;
          while (oe < operm.size() && okeys[operm[oe]] == ov) ++oe;
          size_t ie = ii;
          while (ie < iperm.size() && ikeys[iperm[ie]] == iv) ++ie;
          for (size_t a = oi; a < oe; ++a) {
            for (size_t b = ii; b < ie; ++b) emit(operm[a], iperm[b]);
            if (over_limit()) return out;
          }
          oi = oe;
          ii = ie;
        }
      }
      break;
    }
    case PhysOp::kNestLoopJoin: {
      // Deliberately quadratic — the whole point of the paper's running
      // example is that a mistaken nested loop on a large outer is slow.
      for (size_t r = 0; r < okeys.size(); ++r) {
        const int64_t key = okeys[r];
        for (size_t ir = 0; ir < ikeys.size(); ++ir) {
          if (ikeys[ir] == key) emit(r, ir);
        }
        if (over_limit()) return out;
      }
      break;
    }
    default:
      LPCE_CHECK_MSG(false, "not a join operator");
  }
  return out;
}

std::unique_ptr<PlanNode> BuildCanonicalHashPlan(const qry::Query& query) {
  std::unique_ptr<qry::LogicalNode> logical =
      qry::BuildCanonicalTree(query, query.AllRels());
  // Convert the logical tree into a physical plan with hash joins and
  // sequential scans.
  std::function<std::unique_ptr<PlanNode>(const qry::LogicalNode*)> convert =
      [&](const qry::LogicalNode* node) -> std::unique_ptr<PlanNode> {
    auto plan = std::make_unique<PlanNode>();
    plan->rels = node->rels;
    if (node->is_leaf()) {
      plan->op = PhysOp::kSeqScan;
      plan->table_pos = node->table_pos;
      plan->filters = query.PredicatesOf(node->table_pos);
      return plan;
    }
    plan->op = PhysOp::kHashJoin;
    plan->outer = convert(node->left.get());
    plan->inner = convert(node->right.get());
    const qry::Join& join = query.joins[node->join_idx];
    const int left_pos = query.PositionOf(join.left.table);
    if (qry::Contains(plan->outer->rels, left_pos)) {
      plan->outer_key = join.left;
      plan->inner_key = join.right;
    } else {
      plan->outer_key = join.right;
      plan->inner_key = join.left;
    }
    return plan;
  };
  return convert(logical.get());
}

}  // namespace lpce::exec
