#include "exec/plan.h"

#include <cstdio>
#include <sstream>

namespace lpce::exec {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kSeqScan:
      return "SeqScan";
    case PhysOp::kIndexScan:
      return "IndexScan";
    case PhysOp::kHashJoin:
      return "HashJoin";
    case PhysOp::kMergeJoin:
      return "MergeJoin";
    case PhysOp::kNestLoopJoin:
      return "NestLoopJoin";
    case PhysOp::kPseudoScan:
      return "PseudoScan";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->rels = rels;
  copy->table_pos = table_pos;
  copy->filters = filters;
  copy->index_col = index_col;
  copy->pseudo = pseudo;
  copy->outer_key = outer_key;
  copy->inner_key = inner_key;
  copy->residual_keys = residual_keys;
  copy->est_card = est_card;
  copy->est_cost = est_cost;
  if (outer != nullptr) copy->outer = outer->Clone();
  if (inner != nullptr) copy->inner = inner->Clone();
  return copy;
}

std::string PlanNode::ToString(const db::Catalog& catalog, const qry::Query& query,
                               int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << PhysOpName(op);
  if (op == PhysOp::kSeqScan || op == PhysOp::kIndexScan) {
    os << " " << catalog.table(query.tables[table_pos]).name;
    for (const auto& f : filters) {
      os << " [" << catalog.ColumnName(f.col) << " " << qry::CmpOpName(f.op) << " "
         << f.value << "]";
    }
  } else if (op == PhysOp::kPseudoScan) {
    os << " (materialized intermediate)";
  } else {
    os << " (" << catalog.ColumnName(outer_key) << " = "
       << catalog.ColumnName(inner_key) << ")";
    for (const auto& [outer_col, inner_col] : residual_keys) {
      os << " [" << catalog.ColumnName(outer_col) << " = "
         << catalog.ColumnName(inner_col) << "]";
    }
  }
  os << "  est=" << static_cast<int64_t>(est_card);
  if (executed) {
    os << " actual=" << actual_card;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " time=%.2fms", exec_seconds * 1e3);
    os << buf;
  }
  os << "\n";
  if (outer != nullptr) os << outer->ToString(catalog, query, indent + 1);
  if (inner != nullptr) os << inner->ToString(catalog, query, indent + 1);
  return os.str();
}

Status ValidatePlan(const PlanNode& root, const qry::Query& query) {
  // Root must cover exactly the query's tables.
  if (root.rels != query.AllRels()) {
    return Status::Internal("plan root does not cover the query's tables");
  }
  std::vector<const PlanNode*> nodes;
  PostOrderPlan(&root, &nodes);
  for (const PlanNode* node : nodes) {
    if (node->is_join()) {
      if (node->outer == nullptr || node->inner == nullptr) {
        return Status::Internal("join node missing a child");
      }
      if ((node->outer->rels & node->inner->rels) != 0 ||
          (node->outer->rels | node->inner->rels) != node->rels) {
        return Status::Internal("join children do not partition the node set");
      }
      const auto joins = query.JoinsBetween(node->outer->rels, node->inner->rels);
      if (joins.empty()) {
        return Status::Internal("join cut crosses no query edge");
      }
      if (node->residual_keys.size() + 1 != joins.size()) {
        return Status::Internal(
            "join must carry every cut edge: one primary key pair plus one "
            "residual pair per additional edge");
      }
      // The primary pair and every residual pair must each match a distinct
      // cut edge (either orientation), with the outer column provided by the
      // outer side and the inner column by the inner side.
      std::vector<bool> used(joins.size(), false);
      auto match_pair = [&](const db::ColRef& outer_col,
                            const db::ColRef& inner_col) {
        for (size_t j = 0; j < joins.size(); ++j) {
          if (used[j]) continue;
          const qry::Join& join = query.joins[joins[j]];
          const bool straight = join.left == outer_col && join.right == inner_col;
          const bool flipped = join.right == outer_col && join.left == inner_col;
          if (straight || flipped) {
            used[j] = true;
            return true;
          }
        }
        return false;
      };
      auto sides_ok = [&](const db::ColRef& outer_col,
                          const db::ColRef& inner_col) {
        const int outer_pos = query.PositionOf(outer_col.table);
        const int inner_pos = query.PositionOf(inner_col.table);
        return outer_pos >= 0 && qry::Contains(node->outer->rels, outer_pos) &&
               inner_pos >= 0 && qry::Contains(node->inner->rels, inner_pos);
      };
      if (!match_pair(node->outer_key, node->inner_key)) {
        return Status::Internal("join keys do not match a cut edge");
      }
      if (!sides_ok(node->outer_key, node->inner_key)) {
        return Status::Internal("join key column not provided by its side");
      }
      for (const auto& [outer_col, inner_col] : node->residual_keys) {
        if (!match_pair(outer_col, inner_col)) {
          return Status::Internal("residual keys do not match a cut edge");
        }
        if (!sides_ok(outer_col, inner_col)) {
          return Status::Internal("residual key column not provided by its side");
        }
      }
    } else if (node->op == PhysOp::kPseudoScan) {
      if (node->pseudo == nullptr) {
        return Status::Internal("pseudo scan without a materialized result");
      }
      if (node->outer != nullptr || node->inner != nullptr) {
        return Status::Internal("pseudo scan must be a leaf");
      }
    } else {
      if (node->table_pos < 0 || node->table_pos >= query.num_tables()) {
        return Status::Internal("scan references a table outside the query");
      }
      if (node->rels != qry::Bit(node->table_pos)) {
        return Status::Internal("scan relation set must be its own table");
      }
      if (node->op == PhysOp::kIndexScan && node->index_col.table < 0) {
        return Status::Internal("index scan without a driving column");
      }
      for (const auto& filter : node->filters) {
        if (filter.col.table != query.tables[node->table_pos]) {
          return Status::Internal("scan filter on a different table");
        }
      }
    }
  }
  return Status::Ok();
}

void PostOrderPlan(PlanNode* root, std::vector<PlanNode*>* out) {
  if (root == nullptr) return;
  PostOrderPlan(root->outer.get(), out);
  PostOrderPlan(root->inner.get(), out);
  out->push_back(root);
}

void PostOrderPlan(const PlanNode* root, std::vector<const PlanNode*>* out) {
  if (root == nullptr) return;
  PostOrderPlan(root->outer.get(), out);
  PostOrderPlan(root->inner.get(), out);
  out->push_back(root);
}

}  // namespace lpce::exec
