// Materialized intermediate results exchanged between physical operators.
#ifndef LPCE_EXEC_ROWSET_H_
#define LPCE_EXEC_ROWSET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/schema.h"

namespace lpce::exec {

/// A columnar result: `schema[i]` names the source column of `cols[i]`.
/// `row_count` is tracked explicitly so zero-column results (everything
/// projected away under a COUNT(*)) still carry their cardinality.
struct RowSet {
  std::vector<db::ColRef> schema;
  std::vector<std::vector<int64_t>> cols;
  size_t row_count = 0;

  size_t num_rows() const { return row_count; }
  size_t num_cols() const { return schema.size(); }

  /// Index of `ref` in the schema, or -1.
  int ColumnIndex(db::ColRef ref) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == ref) return static_cast<int>(i);
    }
    return -1;
  }

  /// Estimated resident bytes (for the Sec. 6.2 overhead measurements).
  size_t ByteSize() const {
    size_t bytes = 0;
    for (const auto& c : cols) bytes += c.size() * sizeof(int64_t);
    return bytes;
  }
};

using RowSetPtr = std::shared_ptr<const RowSet>;

}  // namespace lpce::exec

#endif  // LPCE_EXEC_ROWSET_H_
