// Materialized intermediate results exchanged between physical operators.
#ifndef LPCE_EXEC_ROWSET_H_
#define LPCE_EXEC_ROWSET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/schema.h"

namespace lpce::exec {

/// A columnar result: `schema[i]` names the source column of `cols[i]`.
/// `row_count` is tracked explicitly so zero-column results (everything
/// projected away under a COUNT(*)) still carry their cardinality.
///
/// Late materialization (LPCE_EXEC_LATE_MAT): instead of payload columns,
/// a rowset may carry aligned row-id columns into the base tables —
/// `rid_cols[i][r]` is the storage row of table `rid_tables[i]` that
/// contributed to output row r. `schema` still records which logical
/// columns the rowset provides (so ColumnIndex-based resolution keeps
/// working), but `cols` stays empty; consumers gather payload values through
/// the row ids at first use (exec::MaterializeRowSet, the late join
/// kernels). A late rowset and its materialized counterpart describe the
/// same rows in the same order.
struct RowSet {
  std::vector<db::ColRef> schema;
  std::vector<std::vector<int64_t>> cols;
  size_t row_count = 0;
  std::vector<int32_t> rid_tables;
  std::vector<std::vector<uint32_t>> rid_cols;

  size_t num_rows() const { return row_count; }
  size_t num_cols() const { return schema.size(); }

  /// True when this rowset carries row-id columns instead of payloads.
  bool late() const { return !rid_tables.empty(); }

  /// Index of `ref` in the schema, or -1.
  int ColumnIndex(db::ColRef ref) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == ref) return static_cast<int>(i);
    }
    return -1;
  }

  /// Index of `table_id` in rid_tables, or -1.
  int RidIndex(int32_t table_id) const {
    for (size_t i = 0; i < rid_tables.size(); ++i) {
      if (rid_tables[i] == table_id) return static_cast<int>(i);
    }
    return -1;
  }

  /// Estimated resident bytes (for the Sec. 6.2 overhead measurements).
  /// Row-id columns count at their narrower width — the memory saving of
  /// late materialization is visible in peak_intermediate_bytes.
  size_t ByteSize() const {
    size_t bytes = 0;
    for (const auto& c : cols) bytes += c.size() * sizeof(int64_t);
    for (const auto& r : rid_cols) bytes += r.size() * sizeof(uint32_t);
    return bytes;
  }
};

using RowSetPtr = std::shared_ptr<const RowSet>;

}  // namespace lpce::exec

#endif  // LPCE_EXEC_ROWSET_H_
