#include "storage/schema.h"

namespace lpce::db {

int32_t Catalog::AddTable(TableDef def) {
  const int32_t id = num_tables();
  column_offsets_.push_back(total_columns_);
  total_columns_ += static_cast<int32_t>(def.columns.size());
  tables_.push_back(std::move(def));
  return id;
}

void Catalog::AddJoinEdge(ColRef left, ColRef right) {
  LPCE_CHECK(left.table >= 0 && left.table < num_tables());
  LPCE_CHECK(right.table >= 0 && right.table < num_tables());
  LPCE_CHECK(left.table != right.table);
  join_edges_.push_back({left, right});
}

int32_t Catalog::FindTable(const std::string& name) const {
  for (int32_t i = 0; i < num_tables(); ++i) {
    if (tables_[i].name == name) return i;
  }
  return -1;
}

int32_t Catalog::FindColumn(int32_t table, const std::string& name) const {
  const TableDef& def = this->table(table);
  for (size_t i = 0; i < def.columns.size(); ++i) {
    if (def.columns[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}

std::vector<int32_t> Catalog::EdgesOfTable(int32_t table) const {
  std::vector<int32_t> out;
  for (size_t i = 0; i < join_edges_.size(); ++i) {
    if (join_edges_[i].left.table == table || join_edges_[i].right.table == table) {
      out.push_back(static_cast<int32_t>(i));
    }
  }
  return out;
}

int32_t Catalog::GlobalColumnId(ColRef ref) const {
  LPCE_DCHECK(ref.table >= 0 && ref.table < num_tables());
  LPCE_DCHECK(ref.column >= 0 &&
              ref.column < static_cast<int32_t>(tables_[ref.table].columns.size()));
  return column_offsets_[ref.table] + ref.column;
}

}  // namespace lpce::db
