// Schema and catalog: tables, columns, and the foreign-key join graph.
//
// All attribute values are int64 (strings are dictionary-encoded at load
// time, matching how the paper's feature encoding treats categorical string
// columns — Sec. 7.1 "we encode these columns into integers").
#ifndef LPCE_STORAGE_SCHEMA_H_
#define LPCE_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace lpce::db {

/// Identifies a column as (table index, column index) within a Catalog.
struct ColRef {
  int32_t table = -1;
  int32_t column = -1;

  bool operator==(const ColRef& other) const {
    return table == other.table && column == other.column;
  }
};

struct ColumnDef {
  std::string name;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
};

/// One undirected equi-join edge of the schema's foreign-key graph.
struct JoinEdgeDef {
  ColRef left;
  ColRef right;
};

/// Names and shapes of all tables plus the FK join graph. The catalog also
/// assigns every column a dense global id used by the feature encoder
/// (the "column set" one-hot length |C| of paper Fig. 5).
class Catalog {
 public:
  int32_t AddTable(TableDef def);
  void AddJoinEdge(ColRef left, ColRef right);

  int32_t num_tables() const { return static_cast<int32_t>(tables_.size()); }
  const TableDef& table(int32_t id) const {
    LPCE_DCHECK(id >= 0 && id < num_tables());
    return tables_[id];
  }
  /// Returns -1 if not found.
  int32_t FindTable(const std::string& name) const;
  /// Returns -1 if not found.
  int32_t FindColumn(int32_t table, const std::string& name) const;

  const std::vector<JoinEdgeDef>& join_edges() const { return join_edges_; }
  /// Edges incident to `table`.
  std::vector<int32_t> EdgesOfTable(int32_t table) const;

  /// Dense global id of a column across all tables, in [0, TotalColumns()).
  int32_t GlobalColumnId(ColRef ref) const;
  int32_t TotalColumns() const { return total_columns_; }

  std::string ColumnName(ColRef ref) const {
    return table(ref.table).name + "." + table(ref.table).columns[ref.column].name;
  }

 private:
  std::vector<TableDef> tables_;
  std::vector<int32_t> column_offsets_;  // prefix sums of column counts
  std::vector<JoinEdgeDef> join_edges_;
  int32_t total_columns_ = 0;
};

}  // namespace lpce::db

#endif  // LPCE_STORAGE_SCHEMA_H_
