// Columnar in-memory table and secondary indexes.
#ifndef LPCE_STORAGE_TABLE_H_
#define LPCE_STORAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace lpce::db {

/// A column-oriented table: one int64 vector per column, row-aligned.
class Table {
 public:
  Table() = default;
  explicit Table(size_t num_columns) : columns_(num_columns) {}

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const std::vector<int64_t>& column(size_t i) const {
    LPCE_DCHECK(i < columns_.size());
    return columns_[i];
  }
  std::vector<int64_t>& mutable_column(size_t i) {
    LPCE_DCHECK(i < columns_.size());
    return columns_[i];
  }

  int64_t at(size_t row, size_t col) const { return columns_[col][row]; }

  void Reserve(size_t rows) {
    for (auto& c : columns_) c.reserve(rows);
  }

  void AppendRow(const std::vector<int64_t>& values) {
    LPCE_DCHECK(values.size() == columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) columns_[i].push_back(values[i]);
  }

 private:
  std::vector<std::vector<int64_t>> columns_;
};

/// Equality index: value -> row ids. Used by hash-join-style lookups and by
/// the index-based join sampling estimator.
class HashIndex {
 public:
  HashIndex() = default;
  HashIndex(const Table& table, size_t col) { Build(table, col); }

  void Build(const Table& table, size_t col);

  /// Rows whose indexed column equals `value` (empty if none).
  const std::vector<uint32_t>& Lookup(int64_t value) const;

  size_t num_distinct() const { return map_.size(); }

 private:
  std::unordered_map<int64_t, std::vector<uint32_t>> map_;
  std::vector<uint32_t> empty_;
};

/// Ordered index: (value, row) pairs sorted by value. Supports range scans —
/// the "index scan" physical operator — and order statistics.
class SortedIndex {
 public:
  SortedIndex() = default;
  SortedIndex(const Table& table, size_t col) { Build(table, col); }

  void Build(const Table& table, size_t col);

  /// Row ids with lo <= value <= hi (inclusive bounds).
  std::vector<uint32_t> RangeLookup(int64_t lo, int64_t hi) const;
  /// Number of rows with lo <= value <= hi, without materializing them.
  size_t RangeCount(int64_t lo, int64_t hi) const;

  int64_t MinValue() const { return entries_.empty() ? 0 : entries_.front().first; }
  int64_t MaxValue() const { return entries_.empty() ? 0 : entries_.back().first; }

  const std::vector<std::pair<int64_t, uint32_t>>& entries() const { return entries_; }

 private:
  std::vector<std::pair<int64_t, uint32_t>> entries_;
};

}  // namespace lpce::db

#endif  // LPCE_STORAGE_TABLE_H_
