#include "storage/database.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace lpce::db {

int32_t Database::AddTable(TableDef def) {
  const size_t cols = def.columns.size();
  const int32_t id = catalog_.AddTable(std::move(def));
  tables_.emplace_back(cols);
  return id;
}

void Database::BuildAllIndexes() {
  hash_indexes_.clear();
  sorted_indexes_.clear();
  hash_indexes_.resize(catalog_.TotalColumns());
  sorted_indexes_.resize(catalog_.TotalColumns());
  for (int32_t t = 0; t < catalog_.num_tables(); ++t) {
    const Table& tab = tables_[t];
    for (int32_t c = 0; c < static_cast<int32_t>(tab.num_columns()); ++c) {
      const int32_t gid = catalog_.GlobalColumnId({t, c});
      hash_indexes_[gid].Build(tab, c);
      sorted_indexes_[gid].Build(tab, c);
    }
  }
}

namespace {

// Row counts at scale 1.0. Sized so the worst badly-planned join still
// finishes in seconds on one core while good plans take milliseconds.
struct TableSizes {
  size_t title = 24000;
  size_t movie_companies = 48000;
  size_t movie_info = 80000;
  size_t movie_info_idx = 40000;
  size_t movie_keyword = 60000;
  size_t cast_info = 100000;
  size_t company_name = 8000;
  size_t keyword = 6000;
  size_t person = 20000;
  size_t info_type = 113;
};

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(16, static_cast<size_t>(base * scale));
}

}  // namespace

std::unique_ptr<Database> BuildSynthImdb(const SynthImdbOptions& options) {
  auto database = std::make_unique<Database>();
  Rng rng(options.seed);
  TableSizes sizes;
  const double s = options.scale;

  const int32_t t_id = database->AddTable(
      {"title",
       {{"id"}, {"kind_id"}, {"production_year"}, {"votes"}, {"phonetic_code"}}});
  const int32_t mc_id = database->AddTable(
      {"movie_companies", {{"id"}, {"movie_id"}, {"company_id"}, {"company_type_id"}}});
  const int32_t mi_id = database->AddTable(
      {"movie_info", {{"id"}, {"movie_id"}, {"info_type_id"}, {"info_val"}}});
  const int32_t midx_id = database->AddTable(
      {"movie_info_idx", {{"id"}, {"movie_id"}, {"info_type_id"}, {"info_val"}}});
  const int32_t mk_id = database->AddTable(
      {"movie_keyword", {{"id"}, {"movie_id"}, {"keyword_id"}}});
  const int32_t ci_id = database->AddTable(
      {"cast_info", {{"id"}, {"movie_id"}, {"person_id"}, {"role_id"}}});
  const int32_t cn_id = database->AddTable(
      {"company_name", {{"id"}, {"country_code_id"}, {"kind_id"}}});
  const int32_t kw_id = database->AddTable({"keyword", {{"id"}, {"phonetic_id"}}});
  const int32_t p_id = database->AddTable(
      {"person", {{"id"}, {"gender_id"}, {"birth_year"}}});
  const int32_t it_id = database->AddTable({"info_type", {{"id"}, {"class_id"}}});

  Catalog& cat = database->catalog();
  // Satellites -> hub.
  cat.AddJoinEdge({mc_id, 1}, {t_id, 0});
  cat.AddJoinEdge({mi_id, 1}, {t_id, 0});
  cat.AddJoinEdge({midx_id, 1}, {t_id, 0});
  cat.AddJoinEdge({mk_id, 1}, {t_id, 0});
  cat.AddJoinEdge({ci_id, 1}, {t_id, 0});
  // Satellites -> second-hop dimensions.
  cat.AddJoinEdge({mc_id, 2}, {cn_id, 0});
  cat.AddJoinEdge({mk_id, 2}, {kw_id, 0});
  cat.AddJoinEdge({ci_id, 2}, {p_id, 0});
  cat.AddJoinEdge({mi_id, 2}, {it_id, 0});
  cat.AddJoinEdge({midx_id, 2}, {it_id, 0});

  // ---- title ----------------------------------------------------------
  const size_t n_title = Scaled(sizes.title, s);
  {
    Table& tab = database->table(t_id);
    tab.Reserve(n_title);
    ZipfSampler kind_zipf(7, options.value_skew, &rng);
    ZipfSampler year_zipf(140, 0.6, &rng);
    ZipfSampler votes_zipf(100000, options.value_skew, &rng);
    ZipfSampler phon_zipf(1000, options.value_skew, &rng);
    for (size_t i = 0; i < n_title; ++i) {
      const int64_t kind = static_cast<int64_t>(kind_zipf.Sample()) + 1;
      // Recent years are (much) more common; kind correlates with year band.
      int64_t year = 2020 - static_cast<int64_t>(year_zipf.Sample());
      if (kind >= 5) year = std::max<int64_t>(1880, year - 15);
      tab.AppendRow({static_cast<int64_t>(i),
                     kind,
                     year,
                     static_cast<int64_t>(votes_zipf.Sample()),
                     static_cast<int64_t>(phon_zipf.Sample()) + 1});
    }
  }

  // A shared popularity permutation: the same movies tend to be "hot" in
  // every satellite table, which creates the cross-table fanout correlations
  // that make independence-based estimators fail (as on real IMDB). Two
  // controls keep multi-satellite join sizes finite on an in-memory,
  // materializing executor: (a) per-movie fanout within each satellite is
  // capped, and (b) half of the rows draw from a satellite-private
  // popularity ranking, so the extreme tails do not align perfectly.
  std::vector<uint32_t> popularity(n_title);
  std::iota(popularity.begin(), popularity.end(), 0);
  rng.Shuffle(&popularity);
  ZipfSampler movie_rank_zipf(n_title, options.fanout_skew, &rng);
  const size_t fanout_cap =
      16;  // constant: bounds worst-case multi-satellite join products
  std::vector<uint32_t> private_popularity = popularity;
  std::vector<uint16_t> fanout_count;
  auto reset_satellite = [&]() {
    fanout_count.assign(n_title, 0);
    rng.Shuffle(&private_popularity);
  };
  auto sample_movie = [&]() -> int64_t {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const size_t rank = movie_rank_zipf.Sample();
      const int64_t movie = rng.Bernoulli(0.5)
                                ? popularity[rank]
                                : private_popularity[rank];
      if (fanout_count[movie] >= fanout_cap) continue;
      ++fanout_count[movie];
      return movie;
    }
    // Capped everywhere we looked: fall back to a uniform movie.
    return static_cast<int64_t>(rng.Uniform(n_title));
  };
  const auto& title_year = database->table(t_id).column(2);
  const auto& title_kind = database->table(t_id).column(1);

  // ---- movie_companies -------------------------------------------------
  const size_t n_cn = Scaled(sizes.company_name, s);
  {
    reset_satellite();
    Table& tab = database->table(mc_id);
    const size_t n = Scaled(sizes.movie_companies, s);
    tab.Reserve(n);
    ZipfSampler company_zipf(n_cn, options.value_skew, &rng);
    ZipfSampler ctype_zipf(4, 1.2, &rng);
    for (size_t i = 0; i < n; ++i) {
      const int64_t movie = sample_movie();
      // Popular (low-rank) companies gravitate to recent movies.
      int64_t company = static_cast<int64_t>(company_zipf.Sample());
      if (title_year[movie] < 1990) {
        company = (company + static_cast<int64_t>(n_cn) / 2) %
                  static_cast<int64_t>(n_cn);
      }
      tab.AppendRow({static_cast<int64_t>(i), movie, company,
                     static_cast<int64_t>(ctype_zipf.Sample()) + 1});
    }
  }

  // ---- movie_info / movie_info_idx --------------------------------------
  const size_t n_it = Scaled(sizes.info_type, std::min(1.0, s));
  auto fill_movie_info = [&](int32_t table_id, size_t base_rows) {
    reset_satellite();
    Table& tab = database->table(table_id);
    const size_t n = Scaled(base_rows, s);
    tab.Reserve(n);
    ZipfSampler itype_zipf(n_it, options.value_skew, &rng);
    for (size_t i = 0; i < n; ++i) {
      const int64_t movie = sample_movie();
      const int64_t itype = static_cast<int64_t>(itype_zipf.Sample()) + 1;
      // info_val correlates with the movie's production year plus noise.
      const int64_t val = (title_year[movie] - 1880) * 10 +
                          rng.UniformInt(0, 99) + itype % 7;
      tab.AppendRow({static_cast<int64_t>(i), movie, itype, val});
    }
  };
  fill_movie_info(mi_id, sizes.movie_info);
  fill_movie_info(midx_id, sizes.movie_info_idx);

  // ---- movie_keyword ----------------------------------------------------
  const size_t n_kw = Scaled(sizes.keyword, s);
  {
    reset_satellite();
    Table& tab = database->table(mk_id);
    const size_t n = Scaled(sizes.movie_keyword, s);
    tab.Reserve(n);
    ZipfSampler keyword_zipf(n_kw, options.value_skew, &rng);
    for (size_t i = 0; i < n; ++i) {
      const int64_t movie = sample_movie();
      tab.AppendRow({static_cast<int64_t>(i), movie,
                     static_cast<int64_t>(keyword_zipf.Sample())});
    }
  }

  // ---- cast_info --------------------------------------------------------
  const size_t n_person = Scaled(sizes.person, s);
  {
    reset_satellite();
    Table& tab = database->table(ci_id);
    const size_t n = Scaled(sizes.cast_info, s);
    tab.Reserve(n);
    ZipfSampler person_zipf(n_person, options.fanout_skew, &rng);
    ZipfSampler role_zipf(11, 1.0, &rng);
    for (size_t i = 0; i < n; ++i) {
      const int64_t movie = sample_movie();
      // role distribution depends on the movie's kind (correlation).
      int64_t role = static_cast<int64_t>(role_zipf.Sample()) + 1;
      role = 1 + (role + title_kind[movie] * 2) % 11;
      tab.AppendRow({static_cast<int64_t>(i), movie,
                     static_cast<int64_t>(person_zipf.Sample()), role});
    }
  }

  // ---- company_name -----------------------------------------------------
  {
    Table& tab = database->table(cn_id);
    tab.Reserve(n_cn);
    ZipfSampler country_zipf(100, 1.1, &rng);
    ZipfSampler kind_zipf(4, 1.0, &rng);
    for (size_t i = 0; i < n_cn; ++i) {
      tab.AppendRow({static_cast<int64_t>(i),
                     static_cast<int64_t>(country_zipf.Sample()) + 1,
                     static_cast<int64_t>(kind_zipf.Sample()) + 1});
    }
  }

  // ---- keyword ----------------------------------------------------------
  {
    Table& tab = database->table(kw_id);
    tab.Reserve(n_kw);
    ZipfSampler phon_zipf(500, 1.0, &rng);
    for (size_t i = 0; i < n_kw; ++i) {
      tab.AppendRow({static_cast<int64_t>(i),
                     static_cast<int64_t>(phon_zipf.Sample()) + 1});
    }
  }

  // ---- person -----------------------------------------------------------
  {
    Table& tab = database->table(p_id);
    tab.Reserve(n_person);
    ZipfSampler birth_zipf(100, 0.7, &rng);
    for (size_t i = 0; i < n_person; ++i) {
      const int64_t gender = rng.Bernoulli(0.62) ? 1 : (rng.Bernoulli(0.9) ? 2 : 3);
      tab.AppendRow({static_cast<int64_t>(i), gender,
                     2000 - static_cast<int64_t>(birth_zipf.Sample())});
    }
  }

  // ---- info_type --------------------------------------------------------
  {
    Table& tab = database->table(it_id);
    tab.Reserve(n_it);
    for (size_t i = 0; i < n_it; ++i) {
      tab.AppendRow({static_cast<int64_t>(i) + 1,
                     static_cast<int64_t>(i % 5) + 1});
    }
  }

  database->BuildAllIndexes();
  return database;
}

void AppendSynthImdbDrift(Database* database, double fraction, uint64_t seed) {
  LPCE_CHECK(fraction > 0.0);
  Rng rng(seed);
  const Catalog& cat = database->catalog();
  const int32_t t_id = cat.FindTable("title");
  const int32_t mc_id = cat.FindTable("movie_companies");
  const int32_t mi_id = cat.FindTable("movie_info");
  const int32_t midx_id = cat.FindTable("movie_info_idx");
  const int32_t mk_id = cat.FindTable("movie_keyword");
  const int32_t ci_id = cat.FindTable("cast_info");
  LPCE_CHECK(t_id >= 0 && mc_id >= 0 && mi_id >= 0 && midx_id >= 0 &&
             mk_id >= 0 && ci_id >= 0);

  // New movies: years beyond the original range, different kind mix.
  Table& title = database->table(t_id);
  const size_t old_titles = title.num_rows();
  const size_t new_titles =
      std::max<size_t>(8, static_cast<size_t>(old_titles * fraction));
  ZipfSampler kind_zipf(7, 0.4, &rng);  // flatter kind mix than the base data
  ZipfSampler votes_zipf(100000, 0.8, &rng);
  for (size_t i = 0; i < new_titles; ++i) {
    title.AppendRow({static_cast<int64_t>(old_titles + i),
                     7 - static_cast<int64_t>(kind_zipf.Sample()),  // inverted
                     rng.UniformInt(2021, 2035),
                     static_cast<int64_t>(votes_zipf.Sample()),
                     rng.UniformInt(1, 1000)});
  }

  // New fact rows reference mostly the new movies (recency skew).
  auto sample_movie = [&]() -> int64_t {
    if (rng.Bernoulli(0.8)) {
      return static_cast<int64_t>(old_titles + rng.Uniform(new_titles));
    }
    return static_cast<int64_t>(rng.Uniform(old_titles));
  };
  auto append_fact = [&](int32_t table_id, auto make_row) {
    Table& table = database->table(table_id);
    const size_t old_rows = table.num_rows();
    const size_t new_rows =
        std::max<size_t>(8, static_cast<size_t>(old_rows * fraction));
    for (size_t i = 0; i < new_rows; ++i) {
      make_row(&table, static_cast<int64_t>(old_rows + i));
    }
  };
  const size_t n_cn = database->table(cat.FindTable("company_name")).num_rows();
  const size_t n_kw = database->table(cat.FindTable("keyword")).num_rows();
  const size_t n_p = database->table(cat.FindTable("person")).num_rows();
  const size_t n_it = database->table(cat.FindTable("info_type")).num_rows();
  append_fact(mc_id, [&](Table* t, int64_t id) {
    t->AppendRow({id, sample_movie(), static_cast<int64_t>(rng.Uniform(n_cn)),
                  rng.UniformInt(1, 4)});
  });
  auto append_info = [&](int32_t table_id) {
    append_fact(table_id, [&](Table* t, int64_t id) {
      const int64_t movie = sample_movie();
      const int64_t year = title.at(static_cast<size_t>(movie), 2);
      t->AppendRow({id, movie,
                    static_cast<int64_t>(rng.Uniform(n_it)) + 1,
                    (year - 1880) * 10 + rng.UniformInt(0, 99)});
    });
  };
  append_info(mi_id);
  append_info(midx_id);
  append_fact(mk_id, [&](Table* t, int64_t id) {
    t->AppendRow({id, sample_movie(), static_cast<int64_t>(rng.Uniform(n_kw))});
  });
  append_fact(ci_id, [&](Table* t, int64_t id) {
    t->AppendRow({id, sample_movie(), static_cast<int64_t>(rng.Uniform(n_p)),
                  rng.UniformInt(1, 11)});
  });

  database->BuildAllIndexes();
}

}  // namespace lpce::db
