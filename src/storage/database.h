// The Database bundles catalog + table data + indexes, and the synthetic
// IMDB-style dataset generator.
//
// The paper evaluates on IMDB (22 tables, non-uniform distributions, strong
// cross-table correlations). IMDB itself cannot be shipped, so we generate a
// snowflake schema with the same structural properties (see DESIGN.md,
// substitution 1): a hub table `title`, five fact satellites keyed by
// movie_id with Zipf-skewed fanouts, and four second-hop dimensions.
// Attribute values are skewed and correlated across tables through movie
// popularity and production year.
#ifndef LPCE_STORAGE_DATABASE_H_
#define LPCE_STORAGE_DATABASE_H_

#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"

namespace lpce::db {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  int32_t AddTable(TableDef def);

  Table& table(int32_t id) { return tables_[id]; }
  const Table& table(int32_t id) const { return tables_[id]; }

  /// Builds hash + sorted indexes on every column of every table.
  void BuildAllIndexes();

  const HashIndex& hash_index(ColRef ref) const {
    return hash_indexes_[catalog_.GlobalColumnId(ref)];
  }
  const SortedIndex& sorted_index(ColRef ref) const {
    return sorted_indexes_[catalog_.GlobalColumnId(ref)];
  }
  bool indexes_built() const { return !hash_indexes_.empty(); }

 private:
  Catalog catalog_;
  std::vector<Table> tables_;
  std::vector<HashIndex> hash_indexes_;      // by global column id
  std::vector<SortedIndex> sorted_indexes_;  // by global column id
};

/// Size/skew knobs for the generator. The defaults produce a database where
/// an optimally-planned 8-join query runs in milliseconds and a badly planned
/// one runs orders of magnitude slower — the regime the paper studies.
struct SynthImdbOptions {
  uint64_t seed = 42;
  double scale = 1.0;  // multiplies all row counts
  double fanout_skew = 1.1;  // Zipf exponent for FK fanouts
  double value_skew = 1.0;   // Zipf exponent for categorical attributes
};

/// Generates the synthetic IMDB-style database (tables, data, indexes).
std::unique_ptr<Database> BuildSynthImdb(const SynthImdbOptions& options);

/// Appends `fraction` more rows to the hub and fact tables with a *drifted*
/// distribution (new, recent movies with different attribute mixes) and
/// rebuilds all indexes. Models and statistics trained before the append go
/// stale — the data-update scenario the paper defers to future work
/// (Sec. 3.2); see bench_ablation_updates for the progressive-training
/// remedy it suggests in Sec. 7.3.
void AppendSynthImdbDrift(Database* database, double fraction, uint64_t seed);

}  // namespace lpce::db

#endif  // LPCE_STORAGE_DATABASE_H_
