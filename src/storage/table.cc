#include "storage/table.h"

#include <algorithm>
#include <limits>

namespace lpce::db {

void HashIndex::Build(const Table& table, size_t col) {
  map_.clear();
  const auto& values = table.column(col);
  map_.reserve(values.size() / 2 + 1);
  for (size_t row = 0; row < values.size(); ++row) {
    map_[values[row]].push_back(static_cast<uint32_t>(row));
  }
}

const std::vector<uint32_t>& HashIndex::Lookup(int64_t value) const {
  auto it = map_.find(value);
  if (it == map_.end()) return empty_;
  return it->second;
}

void SortedIndex::Build(const Table& table, size_t col) {
  const auto& values = table.column(col);
  entries_.clear();
  entries_.reserve(values.size());
  for (size_t row = 0; row < values.size(); ++row) {
    entries_.emplace_back(values[row], static_cast<uint32_t>(row));
  }
  std::sort(entries_.begin(), entries_.end());
}

std::vector<uint32_t> SortedIndex::RangeLookup(int64_t lo, int64_t hi) const {
  std::vector<uint32_t> out;
  if (lo > hi) return out;
  auto begin = std::lower_bound(entries_.begin(), entries_.end(),
                                std::make_pair(lo, uint32_t{0}));
  for (auto it = begin; it != entries_.end() && it->first <= hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

size_t SortedIndex::RangeCount(int64_t lo, int64_t hi) const {
  if (lo > hi) return 0;
  auto begin = std::lower_bound(entries_.begin(), entries_.end(),
                                std::make_pair(lo, uint32_t{0}));
  auto end = std::upper_bound(
      entries_.begin(), entries_.end(),
      std::make_pair(hi, std::numeric_limits<uint32_t>::max()));
  return static_cast<size_t>(end - begin);
}

}  // namespace lpce::db
