#include "query/query.h"

#include <memory>
#include <sstream>

namespace lpce::qry {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kNe:
      return "<>";
  }
  return "?";
}

bool EvalCmp(int64_t lhs, CmpOp op, int64_t rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

int Query::PositionOf(int32_t table_id) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == table_id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Predicate> Query::PredicatesOf(int pos) const {
  std::vector<Predicate> out;
  for (const auto& p : predicates) {
    if (p.col.table == tables[pos]) out.push_back(p);
  }
  return out;
}

bool Query::IsConnected(RelSet s) const {
  if (s == 0) return false;
  const int start = __builtin_ctz(s);
  RelSet reached = Bit(start);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& j : joins) {
      const int lp = PositionOf(j.left.table);
      const int rp = PositionOf(j.right.table);
      if (!Contains(s, lp) || !Contains(s, rp)) continue;
      const bool has_l = Contains(reached, lp);
      const bool has_r = Contains(reached, rp);
      if (has_l != has_r) {
        reached |= Bit(lp) | Bit(rp);
        grew = true;
      }
    }
  }
  return reached == s;
}

std::vector<int> Query::JoinsBetween(RelSet a, RelSet b) const {
  std::vector<int> out;
  for (size_t i = 0; i < joins.size(); ++i) {
    const int lp = PositionOf(joins[i].left.table);
    const int rp = PositionOf(joins[i].right.table);
    if ((Contains(a, lp) && Contains(b, rp)) ||
        (Contains(a, rp) && Contains(b, lp))) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> Query::JoinsWithin(RelSet s) const {
  std::vector<int> out;
  for (size_t i = 0; i < joins.size(); ++i) {
    const int lp = PositionOf(joins[i].left.table);
    const int rp = PositionOf(joins[i].right.table);
    if (Contains(s, lp) && Contains(s, rp)) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string Query::ToString(const db::Catalog& catalog) const {
  std::ostringstream os;
  os << "SELECT COUNT(*) FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) os << ", ";
    os << catalog.table(tables[i]).name;
  }
  os << " WHERE ";
  bool first = true;
  for (const auto& j : joins) {
    if (!first) os << " AND ";
    first = false;
    os << catalog.ColumnName(j.left) << " = " << catalog.ColumnName(j.right);
  }
  for (const auto& p : predicates) {
    if (!first) os << " AND ";
    first = false;
    os << catalog.ColumnName(p.col) << " " << CmpOpName(p.op) << " " << p.value;
  }
  return os.str();
}

std::unique_ptr<LogicalNode> BuildLeafNode(const Query& query, int table_pos) {
  LPCE_CHECK(table_pos >= 0 && table_pos < query.num_tables());
  auto node = std::make_unique<LogicalNode>();
  node->rels = Bit(table_pos);
  node->table_pos = table_pos;
  return node;
}

std::unique_ptr<LogicalNode> BuildJoinNode(const Query& query,
                                           std::unique_ptr<LogicalNode> left,
                                           std::unique_ptr<LogicalNode> right) {
  auto joins = query.JoinsBetween(left->rels, right->rels);
  // Spanning-tree queries (everything the parser admits) cut exactly one
  // edge per partition; multigraph queries may cut several — the first edge
  // drives the join and the physical layer applies the rest as residual
  // filters (exec::PlanNode::residual_keys).
  LPCE_CHECK_MSG(!joins.empty(), "join tree partition must cut at least one edge");
  auto node = std::make_unique<LogicalNode>();
  node->rels = left->rels | right->rels;
  node->join_idx = joins[0];
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<LogicalNode> BuildCanonicalTree(const Query& query, RelSet s) {
  LPCE_CHECK_MSG(query.IsConnected(s), "canonical tree needs a connected subset");
  // Greedy left-deep: start at the lowest position, repeatedly attach the
  // lowest-position table connected to the current prefix.
  std::unique_ptr<LogicalNode> acc = BuildLeafNode(query, __builtin_ctz(s));
  RelSet remaining = s & ~acc->rels;
  while (remaining != 0) {
    int next = -1;
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      if (!Contains(remaining, pos)) continue;
      if (!query.JoinsBetween(acc->rels, Bit(pos)).empty()) {
        next = pos;
        break;
      }
    }
    LPCE_CHECK(next >= 0);
    acc = BuildJoinNode(query, std::move(acc), BuildLeafNode(query, next));
    remaining &= ~Bit(next);
  }
  return acc;
}

Query BuildSubQuery(const Query& query, RelSet rels) {
  Query sub;
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (Contains(rels, pos)) sub.tables.push_back(query.tables[pos]);
  }
  for (int join_idx : query.JoinsWithin(rels)) {
    sub.joins.push_back(query.joins[join_idx]);
  }
  for (const auto& pred : query.predicates) {
    if (sub.PositionOf(pred.col.table) >= 0) sub.predicates.push_back(pred);
  }
  return sub;
}

void PostOrder(const LogicalNode* root, std::vector<const LogicalNode*>* out) {
  if (root == nullptr) return;
  PostOrder(root->left.get(), out);
  PostOrder(root->right.get(), out);
  out->push_back(root);
}

}  // namespace lpce::qry
