#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace lpce::qry {

namespace {

/// Hand-rolled tokenizer: identifiers, integers, punctuation, comparison
/// operators. Keywords are matched case-insensitively.
struct Token {
  enum class Kind { kIdent, kNumber, kComma, kDot, kStar, kLParen, kRParen,
                    kCmp, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;     // identifiers (lower-cased) and operators
  int64_t number = 0;   // kNumber
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Status Next(Token* token) {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(
                                       input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      token->kind = Token::Kind::kEnd;
      return Status::Ok();
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_')) {
        ++end;
      }
      token->kind = Token::Kind::kIdent;
      token->text = input_.substr(pos_, end - pos_);
      std::transform(token->text.begin(), token->text.end(), token->text.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      pos_ = end;
      return Status::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t end = pos_ + 1;
      while (end < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[end]))) {
        ++end;
      }
      token->kind = Token::Kind::kNumber;
      token->number = std::stoll(input_.substr(pos_, end - pos_));
      pos_ = end;
      return Status::Ok();
    }
    switch (c) {
      case ',':
        token->kind = Token::Kind::kComma;
        ++pos_;
        return Status::Ok();
      case '.':
        token->kind = Token::Kind::kDot;
        ++pos_;
        return Status::Ok();
      case '*':
        token->kind = Token::Kind::kStar;
        ++pos_;
        return Status::Ok();
      case '(':
        token->kind = Token::Kind::kLParen;
        ++pos_;
        return Status::Ok();
      case ')':
        token->kind = Token::Kind::kRParen;
        ++pos_;
        return Status::Ok();
      case '<':
      case '>':
      case '=': {
        token->kind = Token::Kind::kCmp;
        token->text = c;
        ++pos_;
        if (pos_ < input_.size() &&
            (input_[pos_] == '=' || (c == '<' && input_[pos_] == '>'))) {
          token->text += input_[pos_];
          ++pos_;
        }
        return Status::Ok();
      }
      case ';':
        ++pos_;
        token->kind = Token::Kind::kEnd;
        return Status::Ok();
      default:
        return Status::InvalidArgument(std::string("unexpected character '") + c +
                                       "' at offset " + std::to_string(pos_));
    }
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

Status ParseCmpOp(const std::string& text, CmpOp* op) {
  if (text == "<") {
    *op = CmpOp::kLt;
  } else if (text == "<=") {
    *op = CmpOp::kLe;
  } else if (text == "=") {
    *op = CmpOp::kEq;
  } else if (text == ">=") {
    *op = CmpOp::kGe;
  } else if (text == ">") {
    *op = CmpOp::kGt;
  } else if (text == "<>") {
    *op = CmpOp::kNe;
  } else {
    return Status::InvalidArgument("unknown comparison operator: " + text);
  }
  return Status::Ok();
}

CmpOp Mirror(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const db::Catalog& catalog, const std::string& sql)
      : catalog_(catalog), lexer_(sql) {}

  Status Parse(Query* query) {
    LPCE_RETURN_IF_ERROR(Advance());
    LPCE_RETURN_IF_ERROR(ExpectKeyword("select"));
    LPCE_RETURN_IF_ERROR(ExpectKeyword("count"));
    LPCE_RETURN_IF_ERROR(Expect(Token::Kind::kLParen, "'('"));
    LPCE_RETURN_IF_ERROR(Expect(Token::Kind::kStar, "'*'"));
    LPCE_RETURN_IF_ERROR(Expect(Token::Kind::kRParen, "')'"));
    LPCE_RETURN_IF_ERROR(ExpectKeyword("from"));

    // Table list.
    while (true) {
      if (current_.kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected table name");
      }
      const int32_t table_id = catalog_.FindTable(current_.text);
      if (table_id < 0) {
        return Status::NotFound("unknown table: " + current_.text);
      }
      if (query->PositionOf(table_id) >= 0) {
        return Status::InvalidArgument("table listed twice: " + current_.text);
      }
      query->tables.push_back(table_id);
      LPCE_RETURN_IF_ERROR(Advance());
      if (current_.kind != Token::Kind::kComma) break;
      LPCE_RETURN_IF_ERROR(Advance());
    }

    // Optional WHERE clause (required whenever there is more than one table).
    if (current_.kind == Token::Kind::kIdent && current_.text == "where") {
      LPCE_RETURN_IF_ERROR(Advance());
      while (true) {
        LPCE_RETURN_IF_ERROR(ParseCondition(query));
        if (current_.kind == Token::Kind::kIdent && current_.text == "and") {
          LPCE_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    if (current_.kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("trailing input after query");
    }

    // Contract: the join conditions must form a spanning tree.
    if (query->num_joins() != query->num_tables() - 1) {
      return Status::InvalidArgument(
          "query must have exactly (tables - 1) join conditions, got " +
          std::to_string(query->num_joins()));
    }
    if (!query->IsConnected(query->AllRels())) {
      return Status::InvalidArgument("join conditions do not connect all tables");
    }
    return Status::Ok();
  }

 private:
  Status Advance() { return lexer_.Next(&current_); }

  Status Expect(Token::Kind kind, const char* what) {
    if (current_.kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what);
    }
    return Advance();
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (current_.kind != Token::Kind::kIdent || current_.text != keyword) {
      return Status::InvalidArgument("expected keyword '" + keyword + "'");
    }
    return Advance();
  }

  /// table.column — both must exist in the catalog and the table must be in
  /// the FROM list.
  Status ParseColumn(const Query& query, ColRef* ref) {
    if (current_.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected table.column");
    }
    const int32_t table_id = catalog_.FindTable(current_.text);
    if (table_id < 0) return Status::NotFound("unknown table: " + current_.text);
    if (query.PositionOf(table_id) < 0) {
      return Status::InvalidArgument("table not in FROM list: " + current_.text);
    }
    LPCE_RETURN_IF_ERROR(Advance());
    LPCE_RETURN_IF_ERROR(Expect(Token::Kind::kDot, "'.'"));
    if (current_.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected column name");
    }
    const int32_t column = catalog_.FindColumn(table_id, current_.text);
    if (column < 0) {
      return Status::NotFound("unknown column: " + current_.text);
    }
    ref->table = table_id;
    ref->column = column;
    return Advance();
  }

  /// One conjunct: either `col = col` (join) or `col op literal` (filter).
  Status ParseCondition(Query* query) {
    ColRef left;
    LPCE_RETURN_IF_ERROR(ParseColumn(*query, &left));
    if (current_.kind != Token::Kind::kCmp) {
      return Status::InvalidArgument("expected comparison operator");
    }
    CmpOp op;
    LPCE_RETURN_IF_ERROR(ParseCmpOp(current_.text, &op));
    LPCE_RETURN_IF_ERROR(Advance());

    if (current_.kind == Token::Kind::kNumber) {
      query->predicates.push_back({left, op, current_.number});
      return Advance();
    }
    // Column-to-column: must be an equijoin.
    if (op != CmpOp::kEq) {
      return Status::InvalidArgument("column-to-column conditions must use =");
    }
    ColRef right;
    LPCE_RETURN_IF_ERROR(ParseColumn(*query, &right));
    (void)Mirror(op);
    if (left.table == right.table) {
      return Status::InvalidArgument("self-joins are not supported");
    }
    query->joins.push_back({left, right});
    return Status::Ok();
  }

  const db::Catalog& catalog_;
  Lexer lexer_;
  Token current_;
};

}  // namespace

Status ParseQuery(const db::Catalog& catalog, const std::string& sql,
                  Query* query) {
  *query = Query{};
  Parser parser(catalog, sql);
  return parser.Parse(query);
}

}  // namespace lpce::qry
