// Template fingerprinting for the plan & estimate cache (AQO-style fss).
//
// Millions of users mostly issue parameterized variants of a few hundred
// query templates. Two fingerprints canonicalize a query for template-keyed
// reuse (optimizer/plan_cache.h):
//
//   - `fss_hash`: the coarse feature-subspace group key, AQO's
//     get_fss_for_object idea — a 64-bit hash of the query's join graph
//     (ordered tables + join edges), the predicate (column, op) clause set,
//     and a *log-scale selectivity bucket* per predicate. Literal values are
//     deliberately ignored, so parameterized variants of one template
//     collide into the same group.
//   - `canonical`: the exact cache key. Structure as above, plus each
//     predicate's estimator-supplied exact signature
//     (card::CardinalityEstimator::FingerprintPredicate) and the estimator
//     name. Equal canonical keys guarantee the estimator produces bitwise-
//     identical estimates for every subset, which in turn makes the cached
//     plan skeleton bitwise-identical to what fresh planning would build —
//     the property the cache's bit-identity contract rests on.
//
// For the histogram estimator the exact signature is the predicate's bitwise
// selectivity, so e.g. equality lookups on distinct non-MCV values (the
// classic `user_id = ?` template) hit the cache despite different literals.
#ifndef LPCE_QUERY_FINGERPRINT_H_
#define LPCE_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace lpce::qry {

/// splitmix64 finalizer: content-only 64-bit mixing (no pointers, no seeds
/// derived from process state), so hashes are identical across runs and
/// machines — traces that embed them stay deterministic.
uint64_t Mix64(uint64_t x);

/// Order-dependent combine: seed' = mix(seed ^ mix(v)).
uint64_t HashCombine(uint64_t seed, uint64_t v);

/// What one predicate contributes to the two fingerprints, supplied by the
/// estimator that will consume the cached plan (see
/// card::CardinalityEstimator::FingerprintPredicate).
struct PredicateSignature {
  /// Exact component: equality is required for a cache hit. Two predicates
  /// with the same (column, op) and equal `exact` must yield bitwise-
  /// identical estimates from the estimator that produced the signature.
  uint64_t exact = 0;
  /// Coarse selectivity bucket folded into the fss group hash (log10 scale
  /// by convention; estimators without a selectivity notion report 0).
  int32_t bucket = 0;
};

struct TemplateFingerprint {
  uint64_t fss_hash = 0;  // template group key (reporting/trace granularity)
  std::string canonical;  // exact cache key (collision-free by construction)

  bool valid() const { return !canonical.empty(); }
};

/// Buckets a selectivity in [0, 1] into its log10 decade, clamped to
/// [-12, 0]. The helper estimators use to fill PredicateSignature::bucket.
int32_t SelectivityBucket(double selectivity);

/// Computes both fingerprints. `signatures` must align index-for-index with
/// `query.predicates` (one signature per predicate, in vector order);
/// `estimator_tag` names the estimator (and implicitly its model snapshot)
/// whose estimates the cached plan embodies.
TemplateFingerprint ComputeTemplateFingerprint(
    const Query& query, const std::string& estimator_tag,
    const std::vector<PredicateSignature>& signatures);

}  // namespace lpce::qry

#endif  // LPCE_QUERY_FINGERPRINT_H_
