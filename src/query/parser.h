// A small SQL parser for the query dialect the paper studies (Sec. 3):
//
//   SELECT COUNT(*) FROM t1, t2, ... WHERE t1.a = t2.b AND t1.c < 42 AND ...
//
// Conjunctions only; predicates compare a column to an integer literal with
// one of < <= = >= > <>; join conditions equate two columns. The parser
// validates the tables/columns against the catalog and checks the join graph
// forms a spanning tree over the referenced tables (the planner's input
// contract).
#ifndef LPCE_QUERY_PARSER_H_
#define LPCE_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/query.h"

namespace lpce::qry {

/// Parses `sql` against `catalog`. On success fills `*query`.
Status ParseQuery(const db::Catalog& catalog, const std::string& sql,
                  Query* query);

}  // namespace lpce::qry

#endif  // LPCE_QUERY_PARSER_H_
