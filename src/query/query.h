// SPJA query representation (paper Sec. 3): SELECT COUNT(*) over a set of
// tables connected by equi-join edges, with per-table filter predicates.
#ifndef LPCE_QUERY_QUERY_H_
#define LPCE_QUERY_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace lpce::qry {

using db::ColRef;

enum class CmpOp { kLt = 0, kLe, kEq, kGe, kGt, kNe };
inline constexpr int kNumCmpOps = 6;

const char* CmpOpName(CmpOp op);
bool EvalCmp(int64_t lhs, CmpOp op, int64_t rhs);

/// A filter predicate `column op value` on a base table.
struct Predicate {
  ColRef col;
  CmpOp op = CmpOp::kEq;
  int64_t value = 0;
};

/// One equi-join `left = right` between two tables of the query.
struct Join {
  ColRef left;
  ColRef right;
};

/// Set of query tables, as a bitmask over positions in Query::tables.
using RelSet = uint32_t;

inline int PopCount(RelSet s) { return __builtin_popcount(s); }
inline RelSet Bit(int pos) { return RelSet{1} << pos; }
inline bool Contains(RelSet s, int pos) { return (s >> pos) & 1u; }

/// A COUNT(*) select-project-equijoin query. Generated/parsed queries form a
/// spanning tree over `tables` (the schema's FK graph), where any partition
/// of a connected table set into two connected halves is linked by exactly
/// one join edge. Hand-built queries may be multigraphs (several edges
/// between the same table pair); the planner then drives each join with one
/// edge and applies the extra cut edges as residual filters
/// (exec::PlanNode::residual_keys).
struct Query {
  std::vector<int32_t> tables;       // catalog table ids; each appears once
  std::vector<Join> joins;           // >= tables.size() - 1 edges
  std::vector<Predicate> predicates; // at most one per table

  int num_tables() const { return static_cast<int>(tables.size()); }
  int num_joins() const { return static_cast<int>(joins.size()); }
  RelSet AllRels() const { return (RelSet{1} << tables.size()) - 1; }

  /// Position of a catalog table id within `tables`, or -1.
  int PositionOf(int32_t table_id) const;
  /// Predicates that apply to the table at `pos` (0 or 1 of them).
  std::vector<Predicate> PredicatesOf(int pos) const;
  /// True if the tables in `s` form a connected subgraph of the join tree.
  bool IsConnected(RelSet s) const;
  /// Join edges with one side in `a` and the other in `b`.
  std::vector<int> JoinsBetween(RelSet a, RelSet b) const;
  /// Join edges fully inside `s`.
  std::vector<int> JoinsWithin(RelSet s) const;

  std::string ToString(const db::Catalog& catalog) const;
};

/// A canonical logical plan tree for a table subset: relations are added in
/// ascending position order as a left-deep chain (always connected). Tree
/// models (TLSTM, LPCE) consume these trees; the cardinality of a subset does
/// not depend on the tree shape, so one canonical shape per subset suffices
/// (see DESIGN.md).
struct LogicalNode {
  RelSet rels = 0;
  int table_pos = -1;                 // >= 0 for leaves
  int join_idx = -1;                  // joining edge index for internal nodes
  std::unique_ptr<LogicalNode> left;  // null for leaves
  std::unique_ptr<LogicalNode> right;

  bool is_leaf() const { return table_pos >= 0; }
};

/// Builds the canonical left-deep tree for the (connected) subset `s`.
std::unique_ptr<LogicalNode> BuildCanonicalTree(const Query& query, RelSet s);

/// Builds a logical tree mirroring an arbitrary shape: `shape(left, right)`
/// pairs by subset; used to turn executed physical plans into logical trees.
std::unique_ptr<LogicalNode> BuildLeafNode(const Query& query, int table_pos);
std::unique_ptr<LogicalNode> BuildJoinNode(const Query& query,
                                           std::unique_ptr<LogicalNode> left,
                                           std::unique_ptr<LogicalNode> right);

/// Collects every node of a logical tree in post-order (children first).
void PostOrder(const LogicalNode* root, std::vector<const LogicalNode*>* out);

/// Extracts the standalone sub-query over a connected subset: its tables,
/// the join edges inside the subset, and the predicates on those tables.
Query BuildSubQuery(const Query& query, RelSet rels);

}  // namespace lpce::qry

#endif  // LPCE_QUERY_QUERY_H_
