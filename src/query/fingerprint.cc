#include "query/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lpce::qry {

namespace {

/// Fixed-width little-endian append — the canonical key is an exact binary
/// encoding, not a hash, so distinct templates can never collide.
void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI32(std::string* out, int32_t v) {
  AppendU64(out, static_cast<uint64_t>(static_cast<uint32_t>(v)));
}

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t v) { return Mix64(seed ^ Mix64(v)); }

int32_t SelectivityBucket(double selectivity) {
  if (!(selectivity > 0.0)) return -12;  // 0, negative, NaN: the bottom bucket
  const double decade = std::floor(std::log10(selectivity));
  return static_cast<int32_t>(std::clamp(decade, -12.0, 0.0));
}

TemplateFingerprint ComputeTemplateFingerprint(
    const Query& query, const std::string& estimator_tag,
    const std::vector<PredicateSignature>& signatures) {
  LPCE_CHECK_MSG(signatures.size() == query.predicates.size(),
                 "one predicate signature per predicate, in vector order");
  TemplateFingerprint fp;
  uint64_t h = 0x1bce0cac8e5eedull;  // fixed seed: content-only hashing
  std::string& key = fp.canonical;
  key.reserve(64 + 16 * (query.tables.size() + query.joins.size() +
                         query.predicates.size()));

  // Join graph: the ordered table list (RelSet positions are order-
  // dependent, so a reordered FROM list is a different template) plus every
  // join edge's column pair in stored order.
  AppendU64(&key, query.tables.size());
  h = HashCombine(h, query.tables.size());
  for (int32_t table : query.tables) {
    AppendI32(&key, table);
    h = HashCombine(h, static_cast<uint32_t>(table));
  }
  AppendU64(&key, query.joins.size());
  h = HashCombine(h, query.joins.size());
  for (const Join& join : query.joins) {
    AppendI32(&key, join.left.table);
    AppendI32(&key, join.left.column);
    AppendI32(&key, join.right.table);
    AppendI32(&key, join.right.column);
    h = HashCombine(h, (static_cast<uint64_t>(static_cast<uint32_t>(join.left.table))
                        << 32) |
                           static_cast<uint32_t>(join.left.column));
    h = HashCombine(h, (static_cast<uint64_t>(static_cast<uint32_t>(join.right.table))
                        << 32) |
                           static_cast<uint32_t>(join.right.column));
  }

  // Predicate clause set: (column, op) shapes the template; the literal
  // contributes only its selectivity bucket to the group hash and its
  // estimator-exact signature to the canonical key.
  AppendU64(&key, query.predicates.size());
  h = HashCombine(h, query.predicates.size());
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const Predicate& pred = query.predicates[i];
    const PredicateSignature& sig = signatures[i];
    AppendI32(&key, pred.col.table);
    AppendI32(&key, pred.col.column);
    AppendI32(&key, static_cast<int32_t>(pred.op));
    AppendU64(&key, sig.exact);
    h = HashCombine(h, (static_cast<uint64_t>(static_cast<uint32_t>(pred.col.table))
                        << 32) |
                           static_cast<uint32_t>(pred.col.column));
    h = HashCombine(h, static_cast<uint64_t>(pred.op));
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(sig.bucket)));
  }

  // The estimator (and implicitly its model snapshot) the plan was built
  // against: a cache shared across estimator kinds must never cross-serve.
  AppendU64(&key, estimator_tag.size());
  key.append(estimator_tag);
  for (char c : estimator_tag) {
    h = HashCombine(h, static_cast<uint8_t>(c));
  }

  fp.fss_hash = h;
  return fp;
}

}  // namespace lpce::qry
