// End-to-end query execution with LPCE (paper Fig. 3):
//   (i) initial estimation -> (ii) DP planning -> (iii) execution with
//   checkpoints -> (iv) refinement on large q-error -> (v) re-planning of
//   the remaining operators. Time is decomposed as T_end = T_P + T_I + T_R
//   + T_E (Eq. 7/8).
#ifndef LPCE_ENGINE_ENGINE_H_
#define LPCE_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "card/estimator.h"
#include "engine/trace.h"
#include "exec/executor.h"
#include "feedback/feedback_store.h"
#include "optimizer/plan_cache.h"
#include "optimizer/planner.h"

namespace lpce::eng {

struct RunConfig {
  bool enable_reopt = false;
  double qerror_threshold = 50.0;  // paper Sec. 6.2: empirically 50
  int max_reopts = 3;              // paper Sec. 6.2: at most 3 re-optimizations
  /// When true, re-planning also considers restarting from scratch and takes
  /// the cheaper of continue/restart (Sec. 6.2).
  bool consider_restart = true;
  /// Trigger-policy refinements (Sec. 6.2 future work; see Executor::Options
  /// and the bench_ablation_trigger study).
  size_t min_trip_rows = 0;
  bool underestimates_only = false;
  /// Caps this query's intra-query executor parallelism (hash-join build/
  /// probe, residual scan filters); 0 = the global pool's full size, 1 =
  /// sequential. Results are bit-identical at every setting. The serving
  /// layer uses this to trade per-query latency against cross-query
  /// throughput when many queries share the pool.
  int exec_threads = 0;
  /// Executor batch size: -1 = follow the LPCE_EXEC_BATCH environment knob,
  /// 0 = row-at-a-time operators, > 0 = vectorized batches of this many rows
  /// (see exec/vectorized.h). Bit-identical results at every setting.
  int exec_batch_size = -1;
  /// Late materialization (row-id intermediates): -1 = follow the
  /// LPCE_EXEC_LATE_MAT environment knob, 0 = off, > 0 = on (see
  /// Executor::Options::late_materialization). Bit-identical results and
  /// deterministic traces at every setting.
  int exec_late_mat = -1;
};

struct RunStats {
  uint64_t result_count = 0;
  double plan_seconds = 0.0;       // T_P: DP search (initial plan)
  double inference_seconds = 0.0;  // T_I: initial model inference
  double reopt_seconds = 0.0;      // T_R: refinement inference + re-planning
  double exec_seconds = 0.0;       // T_E: executor time
  int num_reopts = 0;
  size_t num_estimates = 0;
  /// Peak total bytes of retained executor intermediates, maximized across
  /// re-optimization rounds (each round's peak is the sum of the rowsets it
  /// retained; rounds after a trip keep their pseudo inputs alive, so the
  /// maximum round is the query's memory high-water mark). Under late
  /// materialization this counts row-id columns at their narrower width —
  /// the Sec. 6.2 "overhead" axis the serving telemetry reports per window.
  size_t peak_intermediate_bytes = 0;
  /// Model-registry version every estimate of this query came from (0 when
  /// the serving layer runs without a registry). Stamped by EngineServer;
  /// the swap-equivalence suite uses it to pair each query with the
  /// single-version run it must be bit-identical to.
  uint64_t model_version = 0;
  std::string initial_plan;  // pretty-printed (case studies, Fig. 17)
  std::string final_plan;
  /// Structured trace of the run: one span per executed operator, one event
  /// per plan/checkpoint/refinement/re-optimization (always populated; see
  /// engine/trace.h for the serialization contract).
  std::shared_ptr<QueryTrace> trace;

  double TotalSeconds() const {
    return plan_seconds + inference_seconds + reopt_seconds + exec_seconds;
  }
};

/// Thread-compatible: an Engine holds no per-query state (the planner is
/// stateless over a const database), so distinct Engine instances may run
/// queries concurrently. The *estimators* passed to RunQuery carry per-query
/// mutable state and must not be shared across concurrent calls — the
/// serving layer (engine/server.h) gives each worker its own session.
class Engine {
 public:
  Engine(const db::Database* database, opt::CostModel cost_model)
      : db_(database), planner_(database, cost_model) {}

  /// Runs one query end to end. `initial` provides the before-execution
  /// estimates; `refiner` (nullable) provides the refined estimates during
  /// re-optimization — when null, re-planning re-uses `initial` plus the
  /// exact cardinalities of the executed sub-plans.
  RunStats RunQuery(const qry::Query& query, card::CardinalityEstimator* initial,
                    card::CardinalityEstimator* refiner, const RunConfig& config);

  /// Attaches a template-keyed plan cache (not owned; nullptr disables).
  /// On a hit, RunQuery skips estimator preparation and DP planning entirely
  /// — the cached skeleton is rebound to the query's literals and T_P + T_I
  /// collapse to the lookup. Re-optimization always replans against the live
  /// estimators, never the cache, so re-opt behavior is identical with the
  /// cache on or off. The cache may be shared across engines (thread-safe).
  void set_plan_cache(opt::PlanCache* cache) { plan_cache_ = cache; }

  /// Attaches a feedback store (not owned; nullptr disables). After each
  /// query, the exact cardinality of every executed operator (its trace
  /// span's actual rows; pseudo scans excluded — they replay a prior round's
  /// materialization) is harvested into the store, keyed by the query's
  /// template fingerprint. Harvesting happens after the trace is final, so
  /// it never perturbs results or deterministic trace bytes. The store may
  /// be shared across engines (thread-safe).
  void set_feedback_store(fb::FeedbackStore* store) { feedback_store_ = store; }

 private:
  const db::Database* db_;
  opt::Planner planner_;
  opt::PlanCache* plan_cache_ = nullptr;
  fb::FeedbackStore* feedback_store_ = nullptr;
};

}  // namespace lpce::eng

#endif  // LPCE_ENGINE_ENGINE_H_
