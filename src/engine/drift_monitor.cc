#include "engine/drift_monitor.h"

#include <cstdlib>
#include <mutex>

#include "common/metrics.h"

namespace lpce::eng {

namespace {

std::mutex& ListenerMutex() {
  static std::mutex mu;
  return mu;
}

DriftListener& GlobalListener() {
  static DriftListener listener;
  return listener;
}

}  // namespace

void SetGlobalDriftListener(DriftListener listener) {
  std::lock_guard<std::mutex> lock(ListenerMutex());
  GlobalListener() = std::move(listener);
}

DriftMonitorOptions DriftMonitorOptions::FromEnv() {
  DriftMonitorOptions options;
  if (const char* v = std::getenv("LPCE_DRIFT_RATIO");
      v != nullptr && v[0] != '\0') {
    const double parsed = std::atof(v);
    if (parsed > 1.0) options.ratio_threshold = parsed;
  }
  if (const char* v = std::getenv("LPCE_DRIFT_MIN_SAMPLES");
      v != nullptr && v[0] != '\0') {
    const long parsed = std::atol(v);
    if (parsed > 0) options.min_samples = static_cast<uint64_t>(parsed);
  }
  if (const char* v = std::getenv("LPCE_DRIFT_QUANTILE");
      v != nullptr && v[0] != '\0') {
    const double parsed = std::atof(v);
    if (parsed > 0.0 && parsed <= 1.0) options.quantile = parsed;
  }
  return options;
}

std::vector<DriftFinding> DriftMonitor::Evaluate(
    const common::TelemetrySnapshot& snapshot) const {
  std::vector<DriftFinding> findings;
  findings.reserve(snapshot.templates.size());
  for (const auto& t : snapshot.templates) {
    DriftFinding finding;
    finding.fss = t.fss;
    if (t.has_baseline && t.has_completed) {
      finding.baseline_samples = t.baseline.qerror.count();
      finding.current_samples = t.completed.qerror.count();
      finding.baseline_quantile =
          t.baseline.qerror.DoubleAtQuantile(options_.quantile);
      finding.current_quantile =
          t.completed.qerror.DoubleAtQuantile(options_.quantile);
      // Min-sample gate: a handful of queries must not flip a flag.
      if (finding.baseline_samples >= options_.min_samples &&
          finding.current_samples >= options_.min_samples &&
          finding.baseline_quantile > 0.0) {
        finding.evaluated = true;
        finding.ratio = finding.current_quantile / finding.baseline_quantile;
        finding.drifted = finding.ratio >= options_.ratio_threshold;
      }
    }
    findings.push_back(finding);
  }
  return findings;
}

void DriftMonitor::Run(common::TelemetryHub& hub) const {
  static common::Counter* evaluations_total =
      common::MetricsRegistry::Global().counter("lpce.drift.evaluations_total");
  static common::Counter* flagged_total =
      common::MetricsRegistry::Global().counter("lpce.drift.flagged_total");
  static common::Gauge* flagged_now =
      common::MetricsRegistry::Global().gauge("lpce.drift.templates_flagged");

  const common::TelemetrySnapshot snapshot = hub.Snapshot();
  const std::vector<DriftFinding> findings = Evaluate(snapshot);
  uint64_t currently_flagged = 0;
  std::vector<DriftFinding> drifted;
  for (size_t i = 0; i < findings.size(); ++i) {
    const DriftFinding& finding = findings[i];
    if (!finding.evaluated) continue;
    evaluations_total->Increment();
    hub.SetDriftFlag(finding.fss, finding.drifted, finding.ratio);
    if (finding.drifted) {
      ++currently_flagged;
      drifted.push_back(finding);
      // Count the off->on transition, not every re-evaluation of a template
      // that stays drifted.
      if (!snapshot.templates[i].drifted) flagged_total->Increment();
    }
  }
  flagged_now->Set(static_cast<double>(currently_flagged));
  if (!drifted.empty()) {
    DriftListener listener;
    {
      std::lock_guard<std::mutex> lock(ListenerMutex());
      listener = GlobalListener();
    }
    if (listener) listener(drifted);
  }
}

void InstallGlobalDriftMonitor() {
  static std::once_flag once;
  std::call_once(once, [] {
    common::TelemetryHub::Global().SetDriftHook([](common::TelemetryHub& hub) {
      static const DriftMonitor monitor;  // env options, resolved once
      monitor.Run(hub);
    });
  });
}

}  // namespace lpce::eng
