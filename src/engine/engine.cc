#include "engine/engine.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace lpce::eng {

namespace {

/// Finds the maximal executed subtrees of a (partially executed) plan.
void CollectMaximalExecuted(exec::PlanNode* node,
                            std::vector<exec::PlanNode*>* out) {
  if (node == nullptr) return;
  if (node->executed) {
    out->push_back(node);
    return;
  }
  CollectMaximalExecuted(node->outer.get(), out);
  CollectMaximalExecuted(node->inner.get(), out);
}

}  // namespace

RunStats Engine::RunQuery(const qry::Query& query,
                          card::CardinalityEstimator* initial,
                          card::CardinalityEstimator* refiner,
                          const RunConfig& config) {
  LPCE_PROFILE_SCOPE("engine.run_query");
  WallTimer total_timer;
  RunStats stats;
  stats.trace = std::make_shared<QueryTrace>();
  QueryTrace* trace = stats.trace.get();
  trace->SetQuery(query);
  trace->SetThreshold(config.qerror_threshold);
  initial->ResetObservations();
  if (refiner != nullptr) refiner->ResetObservations();

  // Plan cache (optimizer/plan_cache.h): on a hit the skeleton below comes
  // back rebound to this query's literals and both estimator preparation and
  // DP planning are skipped — T_P becomes the lookup time, T_I and the
  // estimate count 0. `prepared` defers PrepareQuery to the first
  // re-optimization (hits that never trip never pay inference at all).
  qry::TemplateFingerprint fingerprint;
  uint64_t lookup_epoch = 0;
  bool cache_hit = false;
  bool prepared = false;
  const bool telemetry_on = common::TelemetryEnabled();
  std::unique_ptr<exec::PlanNode> plan;
  if (plan_cache_ != nullptr) {
    LPCE_PROFILE_SCOPE("T_P.cache_lookup");
    WallTimer timer;
    fingerprint = opt::PlanCache::Fingerprint(query, *initial);
    opt::PlanCache::LookupOutcome outcome =
        plan_cache_->Lookup(fingerprint, query);
    lookup_epoch = outcome.epoch;
    if (outcome.hit()) {
      cache_hit = true;
      plan = std::move(outcome.plan);
      stats.plan_seconds += timer.ElapsedSeconds();
    }
  } else if (telemetry_on) {
    // Telemetry keys per-template windows by the same fss hash the plan
    // cache groups on, computed at the same point (before PrepareQuery —
    // FingerprintPredicate is const and preparation-independent, so this
    // cannot perturb results).
    fingerprint = opt::PlanCache::Fingerprint(query, *initial);
  }

  if (cache_hit) {
    // Satellite of the time decomposition (paper Fig. 12): a hit still
    // counts as a planning pass with ~0 seconds and 0 estimates, so
    // planner.plans_total stays equal to the number of queries planned and
    // the recorded T_P/T_I are the true (collapsed) costs.
    static common::Counter* plans_total =
        common::MetricsRegistry::Global().counter("planner.plans_total");
    static common::Histogram* search_seconds =
        common::MetricsRegistry::Global().histogram("planner.search_seconds");
    plans_total->Increment();
    search_seconds->Observe(stats.plan_seconds);
  } else {
    LPCE_PROFILE_SCOPE("T_I.prepare");
    WallTimer timer;
    initial->PrepareQuery(query);
    if (refiner != nullptr) refiner->PrepareQuery(query);
    stats.inference_seconds += timer.ElapsedSeconds();
    prepared = true;
  }

  opt::PlanResult planned;
  if (!cache_hit) {
    planned = [&] {
      LPCE_PROFILE_SCOPE("T_P.plan");
      return planner_.Plan(query, initial);
    }();
    stats.plan_seconds += planned.search_seconds;
    stats.inference_seconds += planned.inference_seconds;
    stats.num_estimates += planned.num_estimates;
    plan = std::move(planned.plan);
  }
  stats.initial_plan = plan->ToString(db_->catalog(), query);
  {
    TraceEvent event;
    event.kind = TraceEventKind::kPlan;
    event.plan_cost = plan->est_cost;
    event.num_estimates = cache_hit ? 0 : planned.num_estimates;
    event.decision = "initial";
    if (plan_cache_ != nullptr) {
      event.cache_decision = cache_hit ? "hit" : "miss";
      event.fss_hash = fingerprint.fss_hash;
    }
    event.wall_seconds = cache_hit
                             ? stats.plan_seconds
                             : planned.search_seconds + planned.inference_seconds;
    trace->AddEvent(std::move(event));
  }
  if (plan_cache_ != nullptr && !cache_hit) {
    // Publish right after planning so concurrent workers benefit before this
    // query even executes; the epoch guard drops the insert if statistics
    // were invalidated since the lookup.
    plan_cache_->Insert(fingerprint, lookup_epoch, *plan, planned.pool);
  }

  // The overlay pins executed subsets to their exact cardinalities; the
  // refinement model (when present) additionally adjusts the supersets.
  card::ObservedOverlay overlay(refiner != nullptr ? refiner : initial);

  exec::Executor executor(db_, &query);
  exec::Executor::Options exec_opts;
  exec_opts.enable_checkpoints = config.enable_reopt;
  exec_opts.qerror_threshold = config.qerror_threshold;
  exec_opts.min_trip_rows = config.min_trip_rows;
  exec_opts.underestimates_only = config.underestimates_only;
  exec_opts.num_threads = config.exec_threads;
  exec_opts.batch_size = config.exec_batch_size;
  exec_opts.late_materialization = config.exec_late_mat;
  exec_opts.trace = trace;

  while (true) {
    LPCE_DCHECK(exec::ValidatePlan(*plan, query).ok());
    WallTimer exec_timer;
    exec::Executor::RunResult run = [&] {
      LPCE_PROFILE_SCOPE("T_E.execute");
      return executor.Run(plan.get(), exec_opts);
    }();
    stats.exec_seconds += exec_timer.ElapsedSeconds();
    stats.peak_intermediate_bytes = std::max(
        stats.peak_intermediate_bytes, executor.peak_intermediate_bytes());
    if (run.tripped == nullptr) {
      LPCE_CHECK(run.result != nullptr);
      stats.result_count = run.result->num_rows();
      break;
    }

    // ---- Re-optimization (paper Sec. 6.2). ------------------------------
    // Scope spans the rest of the loop body: observation reporting, unit
    // re-planning, optional restart, and trace bookkeeping.
    LPCE_PROFILE_SCOPE("T_R.reopt");
    WallTimer reopt_timer;
    ++stats.num_reopts;

    // Deferred estimator preparation (cache-hit path): re-planning needs the
    // estimators live, and observations must land on prepared state exactly
    // as they do in an uncached run. Counted in T_R — it is re-optimization
    // work the cache could not avoid.
    if (!prepared) {
      LPCE_PROFILE_SCOPE("T_R.prepare");
      initial->PrepareQuery(query);
      if (refiner != nullptr) refiner->PrepareQuery(query);
      prepared = true;
    }

    // Report every finished operator bottom-up (pseudo scans were already
    // observed in the round that materialized them).
    std::vector<exec::PlanNode*> nodes;
    exec::PostOrderPlan(plan.get(), &nodes);
    for (exec::PlanNode* node : nodes) {
      if (!node->executed || node->op == exec::PhysOp::kPseudoScan) continue;
      overlay.ObserveActual(query, node->rels,
                            static_cast<double>(node->actual_card));
      TraceEvent event;
      event.kind = TraceEventKind::kRefinement;
      event.rels = node->rels;
      event.actual_card = static_cast<double>(node->actual_card);
      trace->AddEvent(std::move(event));
    }

    // Plan units: maximal executed subtrees become pseudo relations.
    std::vector<exec::PlanNode*> executed_roots;
    CollectMaximalExecuted(plan.get(), &executed_roots);
    std::vector<opt::PlanUnit> units;
    qry::RelSet covered = 0;
    for (exec::PlanNode* node : executed_roots) {
      opt::PlanUnit unit;
      unit.rels = node->rels;
      unit.materialized = run.finished.at(node);
      unit.known_card = static_cast<double>(node->actual_card);
      covered |= node->rels;
      units.push_back(std::move(unit));
    }
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      if (qry::Contains(covered, pos)) continue;
      opt::PlanUnit unit;
      unit.rels = qry::Bit(pos);
      unit.table_pos = pos;
      units.push_back(std::move(unit));
    }

    const exec::PlanNode* tripped = run.tripped;
    const double tripped_est = tripped->est_card;
    const double tripped_actual = static_cast<double>(tripped->actual_card);
    const qry::RelSet tripped_rels = tripped->rels;
    const double before_cost = plan->est_cost;

    // Continue from the materialized progress...
    opt::PlanResult cont = planner_.PlanUnits(query, &overlay, units);
    stats.num_estimates += cont.num_estimates;
    size_t reopt_estimates = cont.num_estimates;
    plan = std::move(cont.plan);
    // ...or restart from scratch if that now looks cheaper (Sec. 6.2).
    bool restarted = false;
    if (config.consider_restart) {
      opt::PlanResult restart = planner_.Plan(query, &overlay);
      stats.num_estimates += restart.num_estimates;
      reopt_estimates += restart.num_estimates;
      if (restart.plan->est_cost < plan->est_cost) {
        plan = std::move(restart.plan);
        restarted = true;
      }
    }
    stats.reopt_seconds += reopt_timer.ElapsedSeconds();
    {
      TraceEvent event;
      event.kind = TraceEventKind::kReoptimization;
      event.rels = tripped_rels;
      event.qerror = exec::QError(tripped_est, tripped_actual);
      event.threshold = config.qerror_threshold;
      event.before_cost = before_cost;
      event.plan_cost = plan->est_cost;
      event.num_estimates = reopt_estimates;
      event.decision = restarted ? "restart" : "continue";
      event.wall_seconds = reopt_timer.ElapsedSeconds();
      trace->AddEvent(std::move(event));
    }
    trace->BeginRound();

    // Re-optimization budget exhausted: run the rest without checkpoints.
    if (stats.num_reopts >= config.max_reopts) {
      exec_opts.enable_checkpoints = false;
    }
  }

  stats.final_plan = plan->ToString(db_->catalog(), query);
  trace->SetResultRows(stats.result_count);
  {
    static common::Counter* queries_total =
        common::MetricsRegistry::Global().counter("engine.queries_total");
    static common::Counter* reopts_total =
        common::MetricsRegistry::Global().counter("engine.reopts_total");
    static common::Histogram* query_seconds =
        common::MetricsRegistry::Global().histogram("engine.query_seconds");
    // Byte-scale buckets (powers of four from 1 KiB to 1 GiB) — the default
    // latency bounds would put every query in the overflow bucket.
    static common::Histogram* peak_bytes_hist =
        common::MetricsRegistry::Global().histogram(
            "lpce.exec.peak_intermediate_bytes",
            {1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
             16777216.0, 67108864.0, 268435456.0, 1073741824.0});
    queries_total->Increment();
    reopts_total->Increment(static_cast<uint64_t>(stats.num_reopts));
    query_seconds->Observe(total_timer.ElapsedSeconds());
    peak_bytes_hist->Observe(
        static_cast<double>(stats.peak_intermediate_bytes));
  }
  if (telemetry_on) {
    auto to_ns = [](double seconds) {
      return seconds <= 0.0 ? uint64_t{0}
                            : static_cast<uint64_t>(seconds * 1e9);
    };
    common::TelemetryRecord record;
    record.fss_hash = fingerprint.fss_hash;
    record.plan_ns = to_ns(stats.plan_seconds);
    record.infer_ns = to_ns(stats.inference_seconds);
    record.reopt_ns = to_ns(stats.reopt_seconds);
    record.exec_ns = to_ns(stats.exec_seconds);
    record.result_rows = stats.result_count;
    record.peak_bytes = stats.peak_intermediate_bytes;
    record.num_reopts = static_cast<uint32_t>(stats.num_reopts);
    record.cache_hit = cache_hit ? 1 : 0;
    for (const auto& e : trace->events()) {
      if (e.kind != TraceEventKind::kCheckpoint) continue;
      const float qerror = static_cast<float>(e.qerror);
      if (record.num_qerrors < common::TelemetryRecord::kMaxQErrors) {
        record.qerrors[record.num_qerrors] = qerror;
      }
      ++record.num_qerrors;
      if (qerror > record.max_qerror) record.max_qerror = qerror;
    }
    auto& hub = common::TelemetryHub::Global();
    hub.Publish(record);
    // The trace-visible summary. Appended after every deterministic event
    // (and only serialized in kFull mode), so deterministic trace bytes are
    // identical with telemetry on or off.
    const auto flag = hub.drift_flag(record.fss_hash);
    TraceEvent event;
    event.kind = TraceEventKind::kTelemetry;
    event.fss_hash = record.fss_hash;
    event.qerror = static_cast<double>(record.max_qerror);
    event.num_estimates = record.num_qerrors;
    if (plan_cache_ != nullptr) {
      event.cache_decision = cache_hit ? "hit" : "miss";
    }
    event.drifted = flag.drifted;
    event.drift_ratio = flag.ratio;
    trace->AddEvent(std::move(event));
  }
  if (feedback_store_ != nullptr) {
    // Knowledge-store harvest (ROADMAP item 1): every executed operator's
    // exact cardinality, deduplicated by relation subset. Spans from later
    // re-optimization rounds re-cover subsets already executed (pseudo scans
    // replay prior materializations and are skipped, like ObserveActual
    // above); the first span of a subset wins — they agree by construction.
    if (!fingerprint.valid()) {
      fingerprint = opt::PlanCache::Fingerprint(query, *initial);
    }
    fb::FeedbackQuery record;
    record.fss_hash = fingerprint.fss_hash;
    record.query = query;
    std::map<qry::RelSet, uint64_t> actuals;
    for (const TraceSpan& span : trace->spans()) {
      if (span.op == "PseudoScan") continue;
      actuals.emplace(span.rels, span.actual_card);
    }
    actuals.emplace(query.AllRels(), stats.result_count);
    record.actuals.assign(actuals.begin(), actuals.end());
    feedback_store_->Append(record);
  }
  MaybeDumpTrace(*trace);
  return stats;
}

}  // namespace lpce::eng
