#include "engine/finetune.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "engine/drift_monitor.h"

namespace lpce::eng {

namespace {

struct FineTuneMetrics {
  common::Counter* kicks;
  common::Counter* runs;
  common::Counter* published;
  common::Counter* skipped;
  common::Histogram* train_seconds;
};

const FineTuneMetrics& Metrics() {
  static const FineTuneMetrics metrics = [] {
    auto& registry = common::MetricsRegistry::Global();
    FineTuneMetrics m;
    m.kicks = registry.counter("lpce.finetune.kicks_total");
    m.runs = registry.counter("lpce.finetune.runs_total");
    m.published = registry.counter("lpce.finetune.published_total");
    m.skipped = registry.counter("lpce.finetune.skipped_total");
    m.train_seconds = registry.histogram("lpce.finetune.train_seconds");
    return m;
  }();
  return metrics;
}

}  // namespace

FineTuneOptions FineTuneOptions::FromEnv() {
  FineTuneOptions options;
  if (const char* v = std::getenv("LPCE_FINETUNE_EPOCHS");
      v != nullptr && v[0] != '\0') {
    const int parsed = std::atoi(v);
    if (parsed > 0) options.epochs = parsed;
  }
  if (const char* v = std::getenv("LPCE_FINETUNE_LR");
      v != nullptr && v[0] != '\0') {
    const double parsed = std::atof(v);
    if (parsed > 0.0) options.lr = static_cast<float>(parsed);
  }
  if (const char* v = std::getenv("LPCE_FINETUNE_MIN_RECORDS");
      v != nullptr && v[0] != '\0') {
    const long parsed = std::atol(v);
    if (parsed > 0) options.min_records = static_cast<size_t>(parsed);
  }
  return options;
}

bool FineTuneEnabledFromEnv() {
  const char* value = std::getenv("LPCE_FINETUNE");
  return value != nullptr && value[0] != '\0' && std::string(value) != "0";
}

FineTuneWorker::FineTuneWorker(model::ModelRegistry* registry,
                               fb::FeedbackStore* store,
                               const db::Database* database,
                               FineTuneOptions options)
    : registry_(registry), store_(store), db_(database), options_(options) {
  LPCE_CHECK_MSG(registry_ != nullptr && store_ != nullptr && db_ != nullptr,
                 "FineTuneWorker needs a registry, store, and database");
}

FineTuneWorker::~FineTuneWorker() { Stop(); }

void FineTuneWorker::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
  SetGlobalDriftListener(
      [this](const std::vector<DriftFinding>& findings) {
        (void)findings;  // any drifted template retrains the shared model
        Kick();
      });
}

void FineTuneWorker::Kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    kicked_ = true;
    ++counters_.kicks;
  }
  Metrics().kicks->Increment();
  cv_.notify_one();
}

void FineTuneWorker::Stop() {
  bool was_started = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_started = started_;
    started_ = false;
    stop_ = true;
  }
  if (!was_started) return;
  SetGlobalDriftListener(nullptr);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void FineTuneWorker::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || kicked_; });
      if (stop_ && !kicked_) return;
      kicked_ = false;  // coalesce kicks received before this run started
    }
    RunOnce();
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !kicked_) return;
  }
}

uint64_t FineTuneWorker::RunOnce() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.runs;
  }
  Metrics().runs->Increment();

  // Pin the version the fine-tune continues from. A publish racing in after
  // this pin simply means the next kick continues from the newer version.
  std::shared_ptr<const model::ModelVersion> base = registry_->Current();
  std::vector<wk::LabeledQuery> train =
      store_ == nullptr ? std::vector<wk::LabeledQuery>{} : store_->HarvestAll();
  if (base == nullptr || train.size() < options_.min_records) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.skipped;
    Metrics().skipped->Increment();
    return 0;
  }

  // Clone-then-train: the published snapshot is immutable, so concurrent
  // inference on `base` is untouched while the clone trains.
  auto tuned = std::make_shared<model::TreeModel>(base->model->encoder(),
                                                  base->model->config());
  tuned->CopyParamsFrom(*base->model);
  model::TrainOptions train_options;
  train_options.epochs = options_.epochs;
  train_options.lr = options_.lr;
  train_options.batch_size = options_.batch_size;
  train_options.seed = options_.seed;
  train_options.num_threads = options_.num_threads;
  train_options.tag = "finetune";
  const model::TrainStats stats =
      model::TrainTreeModel(tuned.get(), *db_, train, train_options);
  Metrics().train_seconds->Observe(stats.total_seconds);

  const uint64_t version = registry_->Publish(
      std::move(tuned), base->refiner,
      "finetune@v" + std::to_string(base->version));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.published;
  }
  Metrics().published->Increment();
  return version;
}

FineTuneWorker::Counters FineTuneWorker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace lpce::eng
