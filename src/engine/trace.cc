#include "engine/trace.h"

#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace lpce::eng {

using common::JsonParser;
using common::JsonValue;
using common::JsonWriter;
using common::RequireBool;
using common::RequireNumber;
using common::RequireString;

namespace {

/// Deterministic double formatting: 6 significant digits absorbs last-ulp
/// differences between build flags (fast-math/FMA vs generic) while keeping
/// q-errors and costs meaningfully comparable.
std::string FormatStable(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatWall(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void WriteRels(JsonWriter* w, qry::RelSet rels) {
  w->BeginArray();
  for (int pos = 0; pos < 32; ++pos) {
    if (qry::Contains(rels, pos)) w->Value(pos);
  }
  w->EndArray();
}

void WriteSpan(JsonWriter* w, const TraceSpan& s, TraceJsonMode mode) {
  w->BeginObject();
  w->Key("id");
  w->Value(s.id);
  w->Key("round");
  w->Value(s.round);
  w->Key("seq");
  w->Value(s.seq);
  w->Key("op");
  w->Value(s.op);
  w->Key("rels");
  WriteRels(w, s.rels);
  w->Key("est_card");
  w->NumberLiteral(FormatStable(s.est_card));
  w->Key("actual_card");
  w->Value(s.actual_card);
  w->Key("qerror");
  w->NumberLiteral(FormatStable(s.qerror));
  w->Key("outer_span");
  w->Value(s.outer_span);
  w->Key("inner_span");
  w->Value(s.inner_span);
  w->Key("outer_rows");
  w->Value(s.outer_rows);
  w->Key("inner_rows");
  w->Value(s.inner_rows);
  if (mode == TraceJsonMode::kFull) {
    w->Key("wall_seconds");
    w->NumberLiteral(FormatWall(s.wall_seconds));
  }
  w->EndObject();
}

void WriteEvent(JsonWriter* w, const TraceEvent& e, TraceJsonMode mode) {
  w->BeginObject();
  w->Key("kind");
  w->Value(TraceEventKindName(e.kind));
  w->Key("round");
  w->Value(e.round);
  w->Key("seq");
  w->Value(e.seq);
  switch (e.kind) {
    case TraceEventKind::kPlan:
      w->Key("plan_cost");
      w->NumberLiteral(FormatStable(e.plan_cost));
      w->Key("num_estimates");
      w->Value(e.num_estimates);
      w->Key("decision");
      w->Value(e.decision);
      // Plan-cache outcome rides on the plan event (instead of a separate
      // event kind) so seq numbering is identical with the cache on or off.
      if (!e.cache_decision.empty()) {
        w->Key("cache");
        w->Value(e.cache_decision);
        char fss[32];
        std::snprintf(fss, sizeof(fss), "%016llx",
                      static_cast<unsigned long long>(e.fss_hash));
        w->Key("fss");
        w->Value(std::string(fss));
      }
      break;
    case TraceEventKind::kCheckpoint:
      w->Key("rels");
      WriteRels(w, e.rels);
      w->Key("est_card");
      w->NumberLiteral(FormatStable(e.est_card));
      w->Key("actual_card");
      w->NumberLiteral(FormatStable(e.actual_card));
      w->Key("qerror");
      w->NumberLiteral(FormatStable(e.qerror));
      w->Key("threshold");
      w->NumberLiteral(FormatStable(e.threshold));
      w->Key("policy_allows");
      w->Value(e.policy_allows);
      w->Key("tripped");
      w->Value(e.tripped);
      break;
    case TraceEventKind::kRefinement:
      w->Key("rels");
      WriteRels(w, e.rels);
      w->Key("actual_card");
      w->NumberLiteral(FormatStable(e.actual_card));
      break;
    case TraceEventKind::kReoptimization:
      w->Key("rels");
      WriteRels(w, e.rels);
      w->Key("qerror");
      w->NumberLiteral(FormatStable(e.qerror));
      w->Key("threshold");
      w->NumberLiteral(FormatStable(e.threshold));
      w->Key("before_cost");
      w->NumberLiteral(FormatStable(e.before_cost));
      w->Key("plan_cost");
      w->NumberLiteral(FormatStable(e.plan_cost));
      w->Key("num_estimates");
      w->Value(e.num_estimates);
      w->Key("decision");
      w->Value(e.decision);
      break;
    case TraceEventKind::kTelemetry: {
      char fss[32];
      std::snprintf(fss, sizeof(fss), "%016llx",
                    static_cast<unsigned long long>(e.fss_hash));
      w->Key("fss");
      w->Value(std::string(fss));
      w->Key("max_qerror");
      w->NumberLiteral(FormatStable(e.qerror));
      w->Key("num_qerrors");
      w->Value(e.num_estimates);
      if (!e.cache_decision.empty()) {
        w->Key("cache");
        w->Value(e.cache_decision);
      }
      w->Key("drifted");
      w->Value(e.drifted);
      w->Key("drift_ratio");
      w->NumberLiteral(FormatStable(e.drift_ratio));
      break;
    }
  }
  if (mode == TraceJsonMode::kFull) {
    w->Key("wall_seconds");
    w->NumberLiteral(FormatWall(e.wall_seconds));
  }
  w->EndObject();
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPlan:
      return "plan";
    case TraceEventKind::kCheckpoint:
      return "checkpoint";
    case TraceEventKind::kRefinement:
      return "refinement";
    case TraceEventKind::kReoptimization:
      return "reoptimization";
    case TraceEventKind::kTelemetry:
      return "telemetry";
  }
  return "unknown";
}

void QueryTrace::SetQuery(const qry::Query& query) {
  num_tables_ = query.num_tables();
  num_joins_ = query.num_joins();
  num_predicates_ = static_cast<int>(query.predicates.size());
}

int QueryTrace::AddSpan(TraceSpan span) {
  span.id = static_cast<int>(spans_.size());
  span.round = round_;
  span.seq = next_seq_++;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::AddEvent(TraceEvent event) {
  event.round = round_;
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

int QueryTrace::num_reopts() const {
  int n = 0;
  for (const auto& e : events_) {
    if (e.kind == TraceEventKind::kReoptimization) ++n;
  }
  return n;
}

std::string QueryTrace::ToJson(TraceJsonMode mode) const {
  // Golden files diff better pretty-printed; the JSONL dump needs one line.
  const bool pretty = mode == TraceJsonMode::kDeterministic;
  JsonWriter w(pretty);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("query");
  w.BeginObject();
  w.Key("num_tables");
  w.Value(num_tables_);
  w.Key("num_joins");
  w.Value(num_joins_);
  w.Key("num_predicates");
  w.Value(num_predicates_);
  w.EndObject();
  w.Key("qerror_threshold");
  w.NumberLiteral(FormatStable(threshold_));
  w.Key("rounds");
  w.Value(round_ + 1);
  w.Key("num_reopts");
  w.Value(num_reopts());
  w.Key("result_rows");
  w.Value(result_rows_);
  w.Key("spans");
  w.BeginArray();
  for (const auto& s : spans_) WriteSpan(&w, s, mode);
  w.EndArray();
  w.Key("events");
  w.BeginArray();
  for (const auto& e : events_) {
    // Telemetry events carry observability-only state (drift flags depend on
    // the cross-query record history); they are appended after every
    // deterministic event, so skipping them here keeps deterministic output
    // byte-identical with telemetry on or off.
    if (mode == TraceJsonMode::kDeterministic &&
        e.kind == TraceEventKind::kTelemetry) {
      continue;
    }
    WriteEvent(&w, e, mode);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

// ---- Validation -----------------------------------------------------------

namespace {

Status RequireRels(const JsonValue& obj) {
  const JsonValue* v = obj.Find("rels");
  if (v == nullptr || v->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing/non-array key 'rels'");
  }
  double prev = -1.0;
  for (const auto& e : v->arr) {
    if (e.type != JsonValue::Type::kNumber || e.num <= prev) {
      return Status::InvalidArgument("'rels' must be ascending positions");
    }
    prev = e.num;
  }
  return Status::Ok();
}

Status ValidateSpan(const JsonValue& span, int index) {
  if (span.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("span is not an object");
  }
  double id = 0, round = 0, outer = 0, inner = 0, qerror = 0, est = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "id", &id));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "round", &round));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "seq", nullptr));
  std::string op;
  LPCE_RETURN_IF_ERROR(RequireString(span, "op", &op));
  LPCE_RETURN_IF_ERROR(RequireRels(span));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "est_card", &est));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "actual_card", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "qerror", &qerror));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "outer_span", &outer));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "inner_span", &inner));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "outer_rows", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(span, "inner_rows", nullptr));
  if (id != index) {
    return Status::InvalidArgument("span ids must be dense, ascending from 0");
  }
  if (op.empty()) return Status::InvalidArgument("span 'op' is empty");
  if (outer >= id || inner >= id) {
    return Status::InvalidArgument("span child references must point backward");
  }
  if ((outer < 0) != (inner < 0)) {
    return Status::InvalidArgument("span must have both children or neither");
  }
  if (qerror < 1.0) return Status::InvalidArgument("span qerror below 1");
  if (est < 0.0) return Status::InvalidArgument("span est_card negative");
  return Status::Ok();
}

Status ValidateEvent(const JsonValue& event) {
  if (event.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("event is not an object");
  }
  std::string kind;
  LPCE_RETURN_IF_ERROR(RequireString(event, "kind", &kind));
  LPCE_RETURN_IF_ERROR(RequireNumber(event, "round", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(event, "seq", nullptr));
  if (kind == "plan") {
    std::string decision;
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "plan_cost", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "num_estimates", nullptr));
    LPCE_RETURN_IF_ERROR(RequireString(event, "decision", &decision));
    if (decision != "initial") {
      return Status::InvalidArgument("plan event decision must be 'initial'");
    }
    // Optional plan-cache fields (present only when a cache was active).
    const JsonValue* cache = event.Find("cache");
    if (cache != nullptr) {
      if (cache->type != JsonValue::Type::kString ||
          (cache->str != "hit" && cache->str != "miss")) {
        return Status::InvalidArgument("plan cache outcome must be hit/miss");
      }
      std::string fss;
      LPCE_RETURN_IF_ERROR(RequireString(event, "fss", &fss));
      if (fss.size() != 16) {
        return Status::InvalidArgument("plan 'fss' must be a 16-hex-digit hash");
      }
    }
  } else if (kind == "checkpoint") {
    LPCE_RETURN_IF_ERROR(RequireRels(event));
    double qerror = 0, threshold = 0;
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "est_card", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "actual_card", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "qerror", &qerror));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "threshold", &threshold));
    LPCE_RETURN_IF_ERROR(RequireBool(event, "policy_allows"));
    LPCE_RETURN_IF_ERROR(RequireBool(event, "tripped"));
    if (qerror < 1.0) return Status::InvalidArgument("checkpoint qerror below 1");
    if (threshold <= 0.0) {
      return Status::InvalidArgument("checkpoint threshold must be positive");
    }
  } else if (kind == "refinement") {
    LPCE_RETURN_IF_ERROR(RequireRels(event));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "actual_card", nullptr));
  } else if (kind == "reoptimization") {
    std::string decision;
    LPCE_RETURN_IF_ERROR(RequireRels(event));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "qerror", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "threshold", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "before_cost", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "plan_cost", nullptr));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "num_estimates", nullptr));
    LPCE_RETURN_IF_ERROR(RequireString(event, "decision", &decision));
    if (decision != "continue" && decision != "restart") {
      return Status::InvalidArgument(
          "reoptimization decision must be continue/restart");
    }
  } else if (kind == "telemetry") {
    std::string fss;
    double max_qerror = 0, ratio = 0;
    LPCE_RETURN_IF_ERROR(RequireString(event, "fss", &fss));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "max_qerror", &max_qerror));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "num_qerrors", nullptr));
    LPCE_RETURN_IF_ERROR(RequireBool(event, "drifted"));
    LPCE_RETURN_IF_ERROR(RequireNumber(event, "drift_ratio", &ratio));
    if (fss.size() != 16) {
      return Status::InvalidArgument("telemetry 'fss' must be a 16-hex-digit hash");
    }
    if (max_qerror < 0.0) {
      return Status::InvalidArgument("telemetry max_qerror negative");
    }
    if (ratio < 0.0) {
      return Status::InvalidArgument("telemetry drift_ratio negative");
    }
    const JsonValue* cache = event.Find("cache");
    if (cache != nullptr &&
        (cache->type != JsonValue::Type::kString ||
         (cache->str != "hit" && cache->str != "miss"))) {
      return Status::InvalidArgument("telemetry cache outcome must be hit/miss");
    }
  } else {
    return Status::InvalidArgument("unknown event kind '" + kind + "'");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateTraceJson(const std::string& json) {
  JsonValue root;
  std::string error;
  JsonParser parser(json);
  if (!parser.Parse(&root, &error)) {
    return Status::InvalidArgument("JSON parse error: " + error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("trace root must be an object");
  }
  double version = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "schema_version", &version));
  if (version != 1.0) {
    return Status::InvalidArgument("unsupported schema_version");
  }
  const JsonValue* query = root.Find("query");
  if (query == nullptr || query->type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("missing 'query' object");
  }
  LPCE_RETURN_IF_ERROR(RequireNumber(*query, "num_tables", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(*query, "num_joins", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(*query, "num_predicates", nullptr));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "qerror_threshold", nullptr));
  double rounds = 0, num_reopts = 0;
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "rounds", &rounds));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "num_reopts", &num_reopts));
  LPCE_RETURN_IF_ERROR(RequireNumber(root, "result_rows", nullptr));

  const JsonValue* spans = root.Find("spans");
  if (spans == nullptr || spans->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing 'spans' array");
  }
  double prev_round = 0.0;
  for (size_t i = 0; i < spans->arr.size(); ++i) {
    Status st = ValidateSpan(spans->arr[i], static_cast<int>(i));
    if (!st.ok()) {
      return Status::InvalidArgument("span " + std::to_string(i) + ": " +
                                     st.message());
    }
    const double round = spans->arr[i].Find("round")->num;
    if (round < prev_round) {
      return Status::InvalidArgument("span rounds must be non-decreasing");
    }
    prev_round = round;
  }

  const JsonValue* events = root.Find("events");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing 'events' array");
  }
  int reopt_events = 0;
  for (size_t i = 0; i < events->arr.size(); ++i) {
    Status st = ValidateEvent(events->arr[i]);
    if (!st.ok()) {
      return Status::InvalidArgument("event " + std::to_string(i) + ": " +
                                     st.message());
    }
    if (events->arr[i].Find("kind")->str == "reoptimization") ++reopt_events;
  }
  if (reopt_events != static_cast<int>(num_reopts)) {
    return Status::InvalidArgument("num_reopts disagrees with event count");
  }
  if (num_reopts >= rounds) {
    return Status::InvalidArgument("rounds must exceed num_reopts");
  }
  return Status::Ok();
}

std::string DiffTraceJson(const std::string& expected, const std::string& actual) {
  auto split = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  };
  const auto exp = split(expected);
  const auto act = split(actual);
  std::ostringstream out;
  const size_t n = std::max(exp.size(), act.size());
  int shown = 0;
  for (size_t i = 0; i < n && shown < 40; ++i) {
    const std::string* e = i < exp.size() ? &exp[i] : nullptr;
    const std::string* a = i < act.size() ? &act[i] : nullptr;
    if (e != nullptr && a != nullptr && *e == *a) continue;
    out << "line " << (i + 1) << ":\n";
    if (e != nullptr) out << "  - " << *e << "\n";
    if (a != nullptr) out << "  + " << *a << "\n";
    ++shown;
  }
  if (shown == 0) return "(no differences)";
  return out.str();
}

bool TraceDumpEnabled() {
  const char* env = std::getenv("LPCE_TRACE");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void MaybeDumpTrace(const QueryTrace& trace) {
  if (!TraceDumpEnabled()) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const char* dir_env = std::getenv("LPCE_TRACE_DIR");
  const std::string dir = dir_env != nullptr && dir_env[0] != '\0'
                              ? dir_env
                              : std::string("lpce_traces");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // best effort: tracing must never fail a query
  std::ofstream out(dir + "/traces.jsonl", std::ios::app);
  if (!out) return;
  out << trace.ToJson(TraceJsonMode::kFull) << "\n";
}

}  // namespace lpce::eng
