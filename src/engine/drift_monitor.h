// Per-template estimator-accuracy drift detection over the telemetry windows
// (common/telemetry.h). The monitor compares each template's most recent
// completed q-error window against its frozen baseline (the first completed
// window) and flags the template when the chosen quantile has grown by more
// than a ratio threshold — the continuous signal ROADMAP item 1's
// fine-tuning trigger and item 4's learned re-opt labels both need.
//
// Determinism contract: Evaluate() is a pure function of the snapshot and
// the options — identical record sequences produce identical flags. The
// ratio-threshold + min-sample gate means a template is never flagged off a
// handful of unlucky queries.
//
// Env knobs: LPCE_DRIFT_RATIO (default 2.0), LPCE_DRIFT_MIN_SAMPLES
// (default 64 q-error observations in each window), LPCE_DRIFT_QUANTILE
// (default 0.95).
#ifndef LPCE_ENGINE_DRIFT_MONITOR_H_
#define LPCE_ENGINE_DRIFT_MONITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/telemetry.h"

namespace lpce::eng {

struct DriftMonitorOptions {
  /// Flag when current-window quantile / baseline quantile >= this.
  double ratio_threshold = 2.0;
  /// Both windows need at least this many q-error observations.
  uint64_t min_samples = 64;
  /// Which q-error quantile to compare (0.95 tracks the tail the paper's
  /// re-opt trigger cares about without p100's single-outlier noise).
  double quantile = 0.95;

  static DriftMonitorOptions FromEnv();
};

/// One template's evaluation (drifted or not — callers see the ratio and
/// sample counts either way, e.g. for the telemetry report table).
struct DriftFinding {
  uint64_t fss = 0;
  bool drifted = false;
  bool evaluated = false;  // false = gated out (no baseline / too few samples)
  double ratio = 0.0;
  double baseline_quantile = 0.0;
  double current_quantile = 0.0;
  uint64_t baseline_samples = 0;
  uint64_t current_samples = 0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(
      DriftMonitorOptions options = DriftMonitorOptions::FromEnv())
      : options_(options) {}

  /// Evaluates every template in the snapshot, in ascending-fss order.
  /// Deterministic given the snapshot.
  std::vector<DriftFinding> Evaluate(
      const common::TelemetrySnapshot& snapshot) const;

  /// Evaluate the hub's current state, push the flags back into it (so the
  /// Prometheus exposition and trace events see them), and update the
  /// process-global lpce.drift.* metrics. This is what the hub's drift hook
  /// runs after every drain.
  void Run(common::TelemetryHub& hub) const;

  const DriftMonitorOptions& options() const { return options_; }

 private:
  DriftMonitorOptions options_;
};

/// Installs a process-wide DriftMonitor (options from env, resolved once) as
/// the global hub's drift hook. Idempotent; called by EngineServer when
/// telemetry is enabled.
void InstallGlobalDriftMonitor();

/// Process-wide listener invoked after every monitor run that produced at
/// least one drifted finding, with exactly the drifted subset. This is the
/// trigger edge of the feedback loop: the serving layer's fine-tune worker
/// registers here to be kicked when templates drift (engine/finetune.h).
/// Replaces any previous listener; nullptr clears. The listener runs on the
/// telemetry aggregator thread and must not block (Kick, don't train).
using DriftListener = std::function<void(const std::vector<DriftFinding>&)>;
void SetGlobalDriftListener(DriftListener listener);

}  // namespace lpce::eng

#endif  // LPCE_ENGINE_DRIFT_MONITOR_H_
