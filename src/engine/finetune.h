// Background fine-tune worker: the training side of the online feedback
// loop (ROADMAP item 1; paper Sec. 7.5's drift experiment — ~10 epochs on
// ~200 post-drift queries restores q-error parity).
//
// The worker owns one background thread that sleeps until Kick()ed — by the
// drift monitor's global listener (Start() registers it) or manually by
// tests/benches. A kicked run:
//   1. pins the registry's current version (never trains in place — the
//      published TreeModel stays read-only for concurrent inference),
//   2. harvests every persisted (sub-plan, true cardinality) pair from the
//      feedback store (deterministic order),
//   3. clones the pinned model (same encoder/config, CopyParamsFrom) and
//      fine-tunes the clone with TrainTreeModel — TrainStats telemetry and
//      the LPCE_TRAIN_LOG JSONL ride along, tagged "finetune",
//   4. publishes the clone through the registry; the refiner snapshot is
//      carried over unchanged.
// In-flight queries keep their pinned version throughout; workers pick the
// new version up between queries (engine/server.cc). No query is ever
// rejected or dropped on account of a fine-tune.
//
// Runs with fewer than `min_records` harvested pairs are skipped (counted);
// seeds are fixed and training is single-threaded by default, so a given
// store state fine-tunes to bit-identical parameters on every lane.
#ifndef LPCE_ENGINE_FINETUNE_H_
#define LPCE_ENGINE_FINETUNE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "feedback/feedback_store.h"
#include "lpce/model_registry.h"
#include "storage/database.h"

namespace lpce::eng {

struct FineTuneOptions {
  /// The drift-recovery recipe validated in EXPERIMENTS.md: a short
  /// low-learning-rate continuation of the stale parameters.
  int epochs = 10;
  float lr = 5e-4f;
  int batch_size = 32;
  /// Skip a run when the store holds fewer live records than this — a
  /// trickle of feedback is not worth a publish.
  size_t min_records = 32;
  /// TrainOptions::num_threads for the fine-tune passes (1 = sequential;
  /// training is bit-identical at any setting, this just caps pool use).
  int num_threads = 1;
  uint64_t seed = 4242;

  /// epochs/lr from LPCE_FINETUNE_EPOCHS / LPCE_FINETUNE_LR,
  /// min_records from LPCE_FINETUNE_MIN_RECORDS.
  static FineTuneOptions FromEnv();
};

/// True when LPCE_FINETUNE is set to a non-empty value other than "0".
bool FineTuneEnabledFromEnv();

class FineTuneWorker {
 public:
  /// `registry` must have a published version before the first run; all
  /// pointers are borrowed and must outlive the worker.
  FineTuneWorker(model::ModelRegistry* registry, fb::FeedbackStore* store,
                 const db::Database* database, FineTuneOptions options);
  /// Stops the background thread (same as Stop()).
  ~FineTuneWorker();

  FineTuneWorker(const FineTuneWorker&) = delete;
  FineTuneWorker& operator=(const FineTuneWorker&) = delete;

  /// Starts the background thread and registers the global drift listener
  /// (drift flags then kick fine-tuning process-wide). Idempotent.
  void Start();

  /// Requests a background run (coalesced: kicks during a run trigger one
  /// follow-up run, not one run each). Safe from any thread; non-blocking.
  void Kick();

  /// Unregisters the drift listener and joins the thread. A run in progress
  /// completes (and publishes) first. Idempotent; called by the destructor.
  void Stop();

  /// Synchronous single run, usable without Start() (tests, benches, or
  /// cron-style offline fine-tuning). Returns the published version, or 0
  /// when the run was skipped (too few records / no published version).
  uint64_t RunOnce();

  struct Counters {
    uint64_t kicks = 0;      // Kick() calls (incl. drift-listener kicks)
    uint64_t runs = 0;       // fine-tune attempts (background + RunOnce)
    uint64_t published = 0;  // runs that published a new version
    uint64_t skipped = 0;    // runs skipped (min_records gate, empty registry)
  };
  Counters counters() const;

 private:
  void Loop();

  model::ModelRegistry* registry_;
  fb::FeedbackStore* store_;
  const db::Database* db_;
  FineTuneOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool kicked_ = false;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  Counters counters_;
};

}  // namespace lpce::eng

#endif  // LPCE_ENGINE_FINETUNE_H_
