// Concurrent query-serving layer: an EngineServer owns one immutable shared
// snapshot (database tables/indexes, trained models, statistics) plus a
// bounded FIFO admission queue and a pool of worker threads that execute up
// to `num_workers` queries concurrently.
//
// Isolation model (see DESIGN.md "Serving layer"):
//   - Shared, read-only: the Database, DatabaseStats, trained TreeModel /
//     LpceR / MSCN weights, the cost model, and the global ThreadPool that
//     parallelizes *inside* a query. None of these are mutated while the
//     server is running.
//   - Per worker: one Session (the estimator pair produced by the session
//     factory) and one Engine. Estimators carry per-query mutable state
//     (PrepareQuery caches, LPCE-R observation roots), so they must never be
//     shared between workers.
//   - Per query: RunStats, QueryTrace, the re-optimization budget, and the
//     calling worker's thread-local nn::InferArena.
//
// Determinism contract: with per-query-deterministic estimators (histogram,
// tree models, LPCE-R — every estimate depends only on the query, not on
// which queries ran before), each query's RunStats/trace is bit-identical
// whether the workload runs serially or through any number of workers.
// Pinned by tests/serving_equivalence_test.cc.
#ifndef LPCE_ENGINE_SERVER_H_
#define LPCE_ENGINE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "card/estimator.h"
#include "common/status.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/finetune.h"
#include "feedback/feedback_store.h"
#include "lpce/model_registry.h"

namespace lpce::eng {

struct ServerOptions {
  /// Worker threads executing admitted queries (0 = the LPCE_SERVE_WORKERS
  /// environment knob, falling back to 1). Each worker owns one session and
  /// one Engine; intra-query parallelism still goes through the global pool.
  int num_workers = 0;
  /// Admission bound: Submit rejects with ResourceExhausted once this many
  /// admitted queries are waiting (queries already running do not count).
  size_t max_queue = 256;
  /// Default per-query engine configuration (Submit can override per query).
  /// Executor knobs ride along unchanged: exec_threads, exec_batch_size, and
  /// exec_late_mat reach every worker's Executor (the -1 defaults resolve the
  /// LPCE_EXEC_BATCH / LPCE_EXEC_LATE_MAT environment knobs per query).
  RunConfig run_config;
  /// Template-keyed plan & estimate cache shared by all workers (see
  /// optimizer/plan_cache.h): maximum resident templates, 0 = disabled.
  size_t plan_cache_capacity = 0;
  /// Model registry for versioned serving (not owned; required by the
  /// versioned-session-factory constructor, ignored by the plain one). A
  /// publish-hook registered by the server invalidates the plan cache on
  /// every version bump, so cached estimate pools never outlive the model
  /// that produced them.
  model::ModelRegistry* model_registry = nullptr;
  /// Execution-feedback knowledge store every worker's engine harvests into
  /// (not owned; nullptr = the LPCE_FEEDBACK env knob decides — when set,
  /// the server owns a store built from FeedbackStoreOptions::FromEnv()).
  fb::FeedbackStore* feedback_store = nullptr;
  /// Run a background FineTuneWorker kicked by drift flags (needs a
  /// registry with a published version and a feedback store).
  bool enable_finetune = false;

  /// num_workers from LPCE_SERVE_WORKERS, the plan cache from
  /// LPCE_PLAN_CACHE (on/off) + LPCE_PLAN_CACHE_CAP (capacity, default 1024
  /// when enabled), enable_finetune from LPCE_FINETUNE. Absent/invalid
  /// values keep the defaults.
  static ServerOptions FromEnv();
};

class EngineServer {
 public:
  /// Per-worker estimator state over the shared model snapshot. `refiner`
  /// may be null (no LPCE-R refinement; re-planning then reuses `initial`
  /// plus exact cardinalities of executed sub-plans).
  struct Session {
    std::unique_ptr<card::CardinalityEstimator> initial;
    std::unique_ptr<card::CardinalityEstimator> refiner;
  };
  /// Builds one worker's session; invoked once per worker, from that
  /// worker's thread, before it serves its first query. `worker_id` is in
  /// [0, num_workers) for deterministic per-worker seeding when wanted.
  using SessionFactory = std::function<Session(int worker_id)>;
  /// Versioned variant: builds a worker's session over one pinned registry
  /// snapshot. Invoked from the worker's thread — once before its first
  /// query, then again whenever the worker observes a newer published
  /// version *between* queries. The estimators it returns must read only
  /// `version`'s models, which stay alive (shared_ptr-pinned) until the
  /// session is replaced; that is the version-pinning invariant — a query
  /// never mixes model versions between inference, refinement, and
  /// re-optimization.
  using VersionedSessionFactory =
      std::function<Session(int worker_id, const model::ModelVersion& version)>;

  EngineServer(const db::Database* database, opt::CostModel cost_model,
               SessionFactory session_factory, ServerOptions options);
  /// Versioned serving: options.model_registry must be non-null and must
  /// already have a published version (workers need a snapshot to build
  /// their first session from). RunStats::model_version reports the version
  /// each query ran under.
  EngineServer(const db::Database* database, opt::CostModel cost_model,
               VersionedSessionFactory session_factory, ServerOptions options);
  /// Drains admitted queries, then joins the workers (same as Shutdown).
  ~EngineServer();

  EngineServer(const EngineServer&) = delete;
  EngineServer& operator=(const EngineServer&) = delete;

  /// Non-blocking admission with the server's default RunConfig. Returns a
  /// future resolving to the query's RunStats, or a clean error Status:
  /// ResourceExhausted when the queue is full, FailedPrecondition after
  /// Shutdown. The query is copied; the caller's object need not outlive the
  /// call.
  Result<std::shared_future<RunStats>> Submit(const qry::Query& query);
  /// As above with a per-query RunConfig override.
  Result<std::shared_future<RunStats>> Submit(const qry::Query& query,
                                              const RunConfig& config);

  /// Blocking convenience: Submit + wait. Propagates admission errors.
  Result<RunStats> RunSync(const qry::Query& query);

  /// Stops admission, runs every already-admitted query to completion, and
  /// joins the workers. Idempotent; called by the destructor.
  void Shutdown();

  int num_workers() const { return num_workers_; }
  /// Admitted-but-unstarted queries right now (monitoring; racy by nature).
  size_t queue_depth() const;

  /// Per-instance admission counters (the process-global lpce.serve.*
  /// metrics aggregate across servers; these are exact for one instance).
  struct Counters {
    uint64_t submitted = 0;  // admitted into the queue
    uint64_t rejected = 0;   // refused: queue full or shut down
    uint64_t completed = 0;  // finished executing (== submitted after drain)
    /// Worker sessions rebuilt after observing a newer published version
    /// (excludes the initial per-worker builds). Always 0 without a registry.
    uint64_t session_rebuilds = 0;
  };
  Counters counters() const;

  /// The shared plan cache (nullptr when plan_cache_capacity was 0). All
  /// workers consult it; thread-safe.
  opt::PlanCache* plan_cache() { return plan_cache_.get(); }

  /// Invalidates the shared plan cache (statistics rebuild / model version
  /// bump): the cache empties and its epoch advances, so no query admitted
  /// after this call — and no in-flight insert staged before it — can
  /// publish or serve a pre-bump skeleton. No-op without a cache.
  void InvalidatePlanCache();

  /// The model registry serving sessions derive from (nullptr for the
  /// unversioned constructor).
  model::ModelRegistry* model_registry() { return options_.model_registry; }

  /// The feedback store worker engines harvest into: the injected one, the
  /// env-owned one, or nullptr when feedback is off.
  fb::FeedbackStore* feedback_store() { return feedback_store_; }

  /// The background fine-tune worker (nullptr unless enable_finetune was set
  /// with a registry and a feedback store present). Tests Kick() it.
  FineTuneWorker* finetune_worker() { return finetune_.get(); }

  /// On-demand Prometheus text exposition: drains the telemetry ring, then
  /// renders every MetricsRegistry instrument plus the per-template
  /// telemetry windows and drift flags (common/telemetry.h). Usable with
  /// telemetry off (instruments only, no per-template sections).
  std::string PrometheusText() const;

 private:
  struct Job {
    qry::Query query;
    RunConfig config;
    std::promise<RunStats> promise;
    WallTimer admitted;  // queue wait + service time, from admission
  };

  void Init();
  void WorkerLoop(int worker_id);

  const db::Database* db_;
  opt::CostModel cost_model_;
  SessionFactory session_factory_;
  VersionedSessionFactory versioned_factory_;
  ServerOptions options_;
  int num_workers_ = 1;
  std::unique_ptr<opt::PlanCache> plan_cache_;  // shared by all workers
  std::unique_ptr<fb::FeedbackStore> owned_feedback_store_;  // env-configured
  fb::FeedbackStore* feedback_store_ = nullptr;  // injected or owned
  std::unique_ptr<FineTuneWorker> finetune_;
  uint64_t publish_hook_id_ = 0;  // plan-cache invalidation hook

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  bool shutdown_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> session_rebuilds_{0};

  std::vector<std::thread> workers_;
};

}  // namespace lpce::eng

#endif  // LPCE_ENGINE_SERVER_H_
