#include "engine/server.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/metrics.h"
#include "common/profiler.h"
#include "common/telemetry.h"
#include "engine/drift_monitor.h"

namespace lpce::eng {

namespace {

// Mirrors the thread pool's guard against typo'd env values: a worker count
// far beyond any real core count would die in std::thread.
constexpr int kMaxWorkers = 256;

int EnvWorkers() {
  const char* value = std::getenv("LPCE_SERVE_WORKERS");
  if (value == nullptr) return 0;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 0;
}

// LPCE_PLAN_CACHE turns the shared plan cache on ("1"/non-empty) and
// LPCE_PLAN_CACHE_CAP overrides its capacity (default 1024 entries).
size_t EnvPlanCacheCapacity() {
  const char* enabled = std::getenv("LPCE_PLAN_CACHE");
  if (enabled == nullptr || enabled[0] == '\0' ||
      std::string(enabled) == "0") {
    return 0;
  }
  const char* cap = std::getenv("LPCE_PLAN_CACHE_CAP");
  if (cap != nullptr) {
    const long parsed = std::atol(cap);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 1024;
}

struct ServeMetrics {
  common::Counter* submitted;
  common::Counter* rejected;
  common::Counter* completed;
  common::Gauge* queue_depth;
  common::Gauge* workers;
  common::Histogram* wait_seconds;
  common::Histogram* e2e_seconds;
};

// Instruments resolved once (name lookup takes the registry mutex).
const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    auto& registry = common::MetricsRegistry::Global();
    ServeMetrics m;
    m.submitted = registry.counter("lpce.serve.submitted_total");
    m.rejected = registry.counter("lpce.serve.rejected_total");
    m.completed = registry.counter("lpce.serve.completed_total");
    m.queue_depth = registry.gauge("lpce.serve.queue_depth");
    m.workers = registry.gauge("lpce.serve.workers");
    m.wait_seconds = registry.histogram("lpce.serve.wait_seconds");
    m.e2e_seconds = registry.histogram("lpce.serve.e2e_seconds");
    return m;
  }();
  return metrics;
}

// Back-pressure is part of the serving signal: rejected admissions publish a
// minimal record (fss 0 — the query was never fingerprinted) so the windows
// count them without observing latencies.
void PublishRejection() {
  if (!common::TelemetryEnabled()) return;
  common::TelemetryRecord record;
  record.outcome = common::QueryOutcome::kRejected;
  common::TelemetryHub::Global().Publish(record);
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.num_workers = EnvWorkers();
  options.plan_cache_capacity = EnvPlanCacheCapacity();
  options.enable_finetune = FineTuneEnabledFromEnv();
  return options;
}

EngineServer::EngineServer(const db::Database* database,
                           opt::CostModel cost_model,
                           SessionFactory session_factory,
                           ServerOptions options)
    : db_(database),
      cost_model_(cost_model),
      session_factory_(std::move(session_factory)),
      options_(options) {
  LPCE_CHECK_MSG(session_factory_ != nullptr,
                 "EngineServer needs a session factory");
  Init();
}

EngineServer::EngineServer(const db::Database* database,
                           opt::CostModel cost_model,
                           VersionedSessionFactory session_factory,
                           ServerOptions options)
    : db_(database),
      cost_model_(cost_model),
      versioned_factory_(std::move(session_factory)),
      options_(options) {
  LPCE_CHECK_MSG(versioned_factory_ != nullptr,
                 "EngineServer needs a session factory");
  LPCE_CHECK_MSG(options_.model_registry != nullptr,
                 "versioned serving needs a model registry");
  LPCE_CHECK_MSG(options_.model_registry->CurrentVersionNumber() > 0,
                 "publish a version before starting the server");
  Init();
}

void EngineServer::Init() {
  int workers = options_.num_workers > 0 ? options_.num_workers : EnvWorkers();
  if (workers <= 0) workers = 1;
  num_workers_ = std::min(workers, kMaxWorkers);
  options_.max_queue = std::max<size_t>(options_.max_queue, 1);
  if (options_.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<opt::PlanCache>(options_.plan_cache_capacity);
  }
  feedback_store_ = options_.feedback_store;
  if (feedback_store_ == nullptr && fb::FeedbackEnabledFromEnv()) {
    owned_feedback_store_ =
        std::make_unique<fb::FeedbackStore>(fb::FeedbackStoreOptions::FromEnv());
    feedback_store_ = owned_feedback_store_.get();
  }
  if (options_.model_registry != nullptr) {
    // Satellite of the cache's bit-identity contract: a cached skeleton
    // embeds one model version's estimate pool, so every publish empties the
    // cache and bumps its epoch — in-flight inserts staged against the old
    // version are dropped by the epoch guard.
    publish_hook_id_ = options_.model_registry->AddPublishHook(
        [this](const model::ModelVersion&) { InvalidatePlanCache(); });
    if (options_.enable_finetune && feedback_store_ != nullptr) {
      finetune_ = std::make_unique<FineTuneWorker>(
          options_.model_registry, feedback_store_, db_,
          FineTuneOptions::FromEnv());
      finetune_->Start();
    }
  }
  Metrics().workers->Set(static_cast<double>(num_workers_));
  if (common::TelemetryEnabled()) {
    // The serving layer is what makes telemetry continuous: a background
    // aggregator drains worker records into the per-template windows and the
    // drift monitor evaluates them after each drain.
    InstallGlobalDriftMonitor();
    common::TelemetryHub::Global().StartAggregator();
  }
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

EngineServer::~EngineServer() { Shutdown(); }

Result<std::shared_future<RunStats>> EngineServer::Submit(
    const qry::Query& query) {
  return Submit(query, options_.run_config);
}

Result<std::shared_future<RunStats>> EngineServer::Submit(
    const qry::Query& query, const RunConfig& config) {
  Job job;
  job.query = query;
  job.config = config;
  std::shared_future<RunStats> future = job.promise.get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Metrics().rejected->Increment();
      PublishRejection();
      return Status::FailedPrecondition("EngineServer is shut down");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Metrics().rejected->Increment();
      PublishRejection();
      return Status::ResourceExhausted(
          "serving queue full (" + std::to_string(options_.max_queue) + ")");
    }
    job.admitted.Restart();
    queue_.push_back(std::move(job));
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    // Counted before the job becomes visible to a worker, so a waiter never
    // observes completed > submitted (the stress suite asserts exact counts).
    submitted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().submitted->Increment();
  }
  work_cv_.notify_one();
  return future;
}

Result<RunStats> EngineServer::RunSync(const qry::Query& query) {
  Result<std::shared_future<RunStats>> admitted = Submit(query);
  if (!admitted.ok()) return admitted.status();
  return admitted.value().get();
}

void EngineServer::WorkerLoop(int worker_id) {
  // The session (and the engine) live for the worker's lifetime: estimator
  // scratch state never crosses threads, and the models behind it are only
  // read. Constructed here so any per-session warmup happens on this thread.
  //
  // Versioned serving pins one registry snapshot per session: the pinned
  // shared_ptr keeps that version's models alive across publishes (RCU grace
  // period), and the version check happens only *between* queries — a query
  // never mixes model versions between inference, refinement, and
  // re-optimization.
  model::ModelRegistry* registry =
      versioned_factory_ != nullptr ? options_.model_registry : nullptr;
  std::shared_ptr<const model::ModelVersion> pinned;
  Session session;
  if (registry != nullptr) {
    pinned = registry->Current();
    session = versioned_factory_(worker_id, *pinned);
  } else {
    session = session_factory_(worker_id);
  }
  LPCE_CHECK_MSG(session.initial != nullptr,
                 "session factory must provide an initial estimator");
  static common::Counter* rebuilds_metric =
      common::MetricsRegistry::Global().counter(
          "lpce.registry.session_rebuilds_total");
  Engine engine(db_, cost_model_);
  engine.set_plan_cache(plan_cache_.get());
  engine.set_feedback_store(feedback_store_);
  const ServeMetrics& metrics = Metrics();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    if (registry != nullptr &&
        registry->CurrentVersionNumber() != pinned->version) {
      // Hot-swap point: drop the old pin (freeing the old version once the
      // last worker lets go) and rebuild this worker's estimators over the
      // new snapshot. The queue keeps draining — no query is rejected or
      // replayed on account of a publish.
      pinned = registry->Current();
      session = versioned_factory_(worker_id, *pinned);
      LPCE_CHECK_MSG(session.initial != nullptr,
                     "session factory must provide an initial estimator");
      session_rebuilds_.fetch_add(1, std::memory_order_relaxed);
      rebuilds_metric->Increment();
    }
    metrics.wait_seconds->Observe(job.admitted.ElapsedSeconds());
    RunStats stats;
    {
      LPCE_PROFILE_SCOPE("serve.query");
      stats = engine.RunQuery(job.query, session.initial.get(),
                              session.refiner.get(), job.config);
    }
    stats.model_version = pinned != nullptr ? pinned->version : 0;
    metrics.e2e_seconds->Observe(job.admitted.ElapsedSeconds());
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.completed->Increment();
    // Resolve last: by the time a waiter wakes, every counter above is final
    // for this query (the stress suite asserts exact counts).
    job.promise.set_value(std::move(stats));
  }
}

void EngineServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  // Stop the fine-tune worker first: a publish landing while workers drain
  // is fine (that is the hot-swap path), but the worker must not outlive the
  // registry hooks it publishes through.
  if (finetune_ != nullptr) finetune_->Stop();
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  if (publish_hook_id_ != 0 && options_.model_registry != nullptr) {
    options_.model_registry->RemovePublishHook(publish_hook_id_);
    publish_hook_id_ = 0;
  }
}

size_t EngineServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void EngineServer::InvalidatePlanCache() {
  if (plan_cache_ != nullptr) plan_cache_->Invalidate();
}

std::string EngineServer::PrometheusText() const {
  auto& hub = common::TelemetryHub::Global();
  hub.DrainNow();  // the dump reflects every record published so far
  return hub.PrometheusText();
}

EngineServer::Counters EngineServer::counters() const {
  Counters counters;
  counters.submitted = submitted_.load(std::memory_order_relaxed);
  counters.rejected = rejected_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.session_rebuilds = session_rebuilds_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace lpce::eng
