// Per-query execution trace: one span per executed plan operator and one
// event per checkpoint evaluation / refinement observation / re-optimization
// decision. The trace is the durable artifact of the paper's control loop —
// it reconstructs *why* a re-plan fired (which node, what q-error, against
// which threshold) and what it bought (before/after plan costs,
// continue-vs-restart choice).
//
// Serialization contract (golden-tested):
//   - ToJson(kDeterministic) emits only fields that are bit-identical across
//     runs, machines, and thread-pool sizes: ids, rounds, operators, relation
//     sets, cardinalities, q-errors, costs, decisions. Keys are emitted in a
//     fixed order; doubles are rounded to 6 significant digits.
//   - ToJson(kFull) additionally emits wall-clock fields (span/operator
//     seconds, re-planning seconds) — useful for profiling, excluded from
//     golden comparisons.
#ifndef LPCE_ENGINE_TRACE_H_
#define LPCE_ENGINE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace lpce::eng {

/// One executed plan operator. Spans are appended in execution (post-order)
/// completion order; `id` is the index in that order, globally across rounds.
struct TraceSpan {
  int id = -1;
  int round = 0;         // 0 = initial plan, +1 per re-optimization
  int seq = -1;          // global order across spans AND events
  std::string op;        // PhysOpName: SeqScan/IndexScan/HashJoin/...
  qry::RelSet rels = 0;  // covered positions in Query::tables
  double est_card = 0.0;
  uint64_t actual_card = 0;  // == output rows (materializing operators)
  double qerror = 1.0;       // QError(est_card, actual_card)
  // Join inputs; -1/0 for scans. Child ids point at earlier spans whose
  // output feeds this operator.
  int outer_span = -1;
  int inner_span = -1;
  uint64_t outer_rows = 0;
  uint64_t inner_rows = 0;
  // Non-deterministic (kFull only).
  double wall_seconds = 0.0;
};

enum class TraceEventKind {
  kPlan = 0,        // a planning pass produced a plan (initial or re-plan)
  kCheckpoint,      // a checkpoint evaluated a finished operator
  kRefinement,      // an actual cardinality was fed to the refiner (LPCE-R)
  kReoptimization,  // the controller adopted a new plan mid-query
  kTelemetry,       // end-of-query telemetry summary + drift status (kFull
                    // JSON only; appended last so deterministic output is
                    // byte-identical with telemetry on or off)
};

const char* TraceEventKindName(TraceEventKind kind);

/// One control-loop event. Unused fields stay at their defaults and are
/// omitted from the JSON (kind-dependent schema, see DESIGN.md).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCheckpoint;
  int round = 0;
  int seq = -1;

  qry::RelSet rels = 0;  // checkpoint/refinement: the finished subset

  // kCheckpoint.
  double est_card = -1.0;
  double actual_card = -1.0;
  double qerror = -1.0;
  double threshold = -1.0;
  bool policy_allows = false;  // trigger-policy gate (min rows/underestimate)
  bool tripped = false;

  // kPlan / kReoptimization.
  double plan_cost = -1.0;    // cost of the adopted plan
  double before_cost = -1.0;  // kReoptimization: cost of the abandoned plan
  uint64_t num_estimates = 0;
  std::string decision;  // kPlan: "initial"; kReoptimization: "continue"/"restart"

  // kPlan, only when a plan cache is active: "hit"/"miss" plus the template
  // group hash. Empty/0 when caching is off, and then omitted from the JSON
  // so cache-off traces (including all goldens) are byte-identical to
  // pre-cache ones. kTelemetry reuses fss_hash (and cache_decision when a
  // cache was active) for the template key.
  std::string cache_decision;
  uint64_t fss_hash = 0;

  // kTelemetry: the template's drift status at publish time, as last pushed
  // into the telemetry hub by engine/drift_monitor.h. qerror carries the
  // query's max checkpoint q-error, num_estimates the checkpoint count.
  bool drifted = false;
  double drift_ratio = 0.0;

  // Non-deterministic (kFull only): planning/refinement wall time.
  double wall_seconds = 0.0;
};

enum class TraceJsonMode {
  kDeterministic = 0,  // stable fields only (golden/diff-able)
  kFull,               // + wall-clock fields
};

/// The trace of one Engine::RunQuery call.
class QueryTrace {
 public:
  /// Records the query's shape (sizes only — deterministic and cheap).
  void SetQuery(const qry::Query& query);
  void SetThreshold(double qerror_threshold) { threshold_ = qerror_threshold; }
  void SetResultRows(uint64_t rows) { result_rows_ = rows; }

  /// Appends a span, assigning id/seq; returns the span id.
  int AddSpan(TraceSpan span);
  /// Appends an event, assigning seq.
  void AddEvent(TraceEvent event);

  void BeginRound() { ++round_; }
  int round() const { return round_; }
  /// Id of the most recently added span (-1 when none) — how the executor
  /// links a join to its children's spans.
  int last_span_id() const { return static_cast<int>(spans_.size()) - 1; }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  int num_reopts() const;
  uint64_t result_rows() const { return result_rows_; }
  double threshold() const { return threshold_; }

  std::string ToJson(TraceJsonMode mode) const;

 private:
  int num_tables_ = 0;
  int num_joins_ = 0;
  int num_predicates_ = 0;
  double threshold_ = 0.0;
  uint64_t result_rows_ = 0;
  int round_ = 0;
  int next_seq_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<TraceEvent> events_;
};

/// Validates one trace JSON document (either mode) against the schema:
/// required keys present with the right types, span ids dense and child
/// references backward, event kinds known, rounds non-decreasing per array.
/// Returns the first violation.
Status ValidateTraceJson(const std::string& json);

/// Line-oriented diff of two deterministic trace JSONs (pretty-printed one
/// key per line) — the readable mismatch report for golden tests.
std::string DiffTraceJson(const std::string& expected, const std::string& actual);

/// When the LPCE_TRACE env knob is set to a non-empty, non-"0" value, every
/// Engine::RunQuery appends its full trace JSON as one line to
/// $LPCE_TRACE_DIR/traces.jsonl (default dir: lpce_traces). Thread-safe.
bool TraceDumpEnabled();
void MaybeDumpTrace(const QueryTrace& trace);

}  // namespace lpce::eng

#endif  // LPCE_ENGINE_TRACE_H_
