// Dense row-major float matrix — the numeric workhorse under the autograd
// tensors in nn/tensor.h. Cache-friendly loops; the three matrix products go
// row-blocked parallel (common/thread_pool.h) above a flop cutoff, with a
// per-output-element accumulation order identical to the sequential loops, so
// results are bit-identical at every thread count. Sized for the small models
// the paper uses (hidden dims 64-1024).
#ifndef LPCE_NN_MATRIX_H_
#define LPCE_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace lpce::nn {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    LPCE_CHECK(data_.size() == rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    LPCE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    LPCE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// this += other (element-wise; shapes must match).
  void AddInPlace(const Matrix& other);
  /// this += scale * other.
  void AddScaledInPlace(const Matrix& other, float scale);

  /// Returns this * other (matrix product).
  Matrix MatMul(const Matrix& other) const;
  /// Returns this^T * other without materializing the transpose.
  Matrix TransposeMatMul(const Matrix& other) const;
  /// Returns this * other^T without materializing the transpose.
  Matrix MatMulTranspose(const Matrix& other) const;

  Matrix Transpose() const;

  /// Frobenius-norm helpers used by tests and gradient clipping.
  float SumAbs() const;
  float SumSquares() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// In-place element-wise activations (inference fast path).
void SigmoidInPlace(Matrix* m);
void TanhInPlace(Matrix* m);
void ReluInPlace(Matrix* m);

/// Caps the number of threads the matrix products may use (0 = the global
/// pool's full size, 1 = sequential). Training configs set this from their
/// num_threads knob; any cap yields bit-identical results.
void SetMatMulThreads(int num_threads);
int MatMulThreads();

}  // namespace lpce::nn

#endif  // LPCE_NN_MATRIX_H_
