// Per-thread bump arena backing the tape-free inference path.
//
// TreeModel::Infer and the batched estimator preparation allocate every
// intermediate ([N x d] activations, gather buffers, index scratch) from this
// arena instead of constructing Matrix temporaries. A query does:
//
//   InferArena& arena = InferArena::ThreadLocal();
//   arena.Reset();                 // reclaims everything from the last query
//   float* buf = arena.Alloc(n);   // bump pointer, 64-byte aligned
//
// Blocks are never reused within a pass, so every pointer handed out stays
// valid until the next Reset. When a pass outgrows the current capacity the
// arena appends a block (a real heap allocation, counted); the next Reset
// coalesces all blocks into one sized for the high-water mark. At steady
// state a query therefore performs zero heap allocations — pinned by
// tests/infer_fastpath_test.cc via heap_allocations().
#ifndef LPCE_NN_ARENA_H_
#define LPCE_NN_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace lpce::nn {

class InferArena {
 public:
  InferArena() = default;
  InferArena(const InferArena&) = delete;
  InferArena& operator=(const InferArena&) = delete;

  /// Returns a 64-byte-aligned buffer of n floats, valid until Reset().
  /// Never invalidates previously returned pointers.
  float* Alloc(size_t n);

  /// Zero-filled variant of Alloc.
  float* AllocZeroed(size_t n);

  /// Reclaims all allocations. If the previous pass spilled into extra
  /// blocks, coalesces into a single block covering the high-water mark so
  /// the next pass runs allocation-free.
  void Reset();

  /// Number of heap block allocations ever performed (monotone). Flat across
  /// queries after warmup == the zero-allocation contract holds.
  size_t heap_allocations() const { return heap_allocations_; }

  /// Total floats of capacity across blocks.
  size_t capacity() const;

  /// Floats handed out since the last Reset.
  size_t used() const;

  /// The calling thread's arena (one per thread, lazily created).
  static InferArena& ThreadLocal();

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    float* base = nullptr;  // data.get() rounded up to 64-byte alignment
    size_t size = 0;        // usable floats starting at base
    size_t used = 0;        // floats
  };

  Block MakeBlock(size_t min_floats);

  std::vector<Block> blocks_;
  size_t active_ = 0;  // index of the block currently bump-allocating
  size_t heap_allocations_ = 0;
};

}  // namespace lpce::nn

#endif  // LPCE_NN_ARENA_H_
