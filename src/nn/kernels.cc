#include "nn/kernels.h"

#include <cmath>
#include <cstring>

namespace lpce::nn::kernels {

namespace {

// Vectorized libm (libmvec) and scalar libm may return different bits for the
// same input, and -ffast-math lowers a vectorized division differently from a
// scalar one. A plain loop over n elements therefore computes an element's
// bits as a function of its *position* (vector body vs scalar tail, alignment
// peeling), which would make a row inside a level-batched [N x d] product
// differ from the same row evaluated alone. Routing every element through
// these fixed-width noinline helpers — including the tail, via a padded stack
// buffer — makes the transcendental kernels value-deterministic: bits depend
// only on the input value, never on buffer length, pointer alignment, or
// batch row.
constexpr size_t kLanes = 8;

__attribute__((noinline)) void SigmoidLanes(float* x) {
  for (size_t i = 0; i < kLanes; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

__attribute__((noinline)) void TanhLanes(float* x) {
  for (size_t i = 0; i < kLanes; ++i) x[i] = std::tanh(x[i]);
}

template <void (*Lanes)(float*)>
void ApplyLanewise(float* x, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) Lanes(x + i);
  if (i < n) {
    float tail[kLanes] = {0.0f};
    std::memcpy(tail, x + i, (n - i) * sizeof(float));
    Lanes(tail);
    std::memcpy(x + i, tail, (n - i) * sizeof(float));
  }
}

}  // namespace

namespace {

// Output j-tile held in registers across the whole k reduction. kJTile floats
// = 4 vector registers at AVX2 width; the fixed-size accumulator array lets
// the compiler keep the tile register-resident, so each output element is
// read and written exactly once instead of once per k-group. Each element
// still accumulates its k terms in strictly increasing order with one
// fma per term — bit-identical to a rolled k loop.
constexpr size_t kJTile = 32;

// The tile width is a template parameter on the hot (full-tile) path: with a
// compile-time trip count the accumulator array is fully unrolled into vector
// registers, where a runtime `width` bound forces the compiler to keep it on
// the stack and re-load/store every element each k iteration (~3x slower).
// The runtime-width instantiation handles the n % kJTile remainder columns.
// Both compute the identical ascending-k fma chain per element.
template <size_t W>
void GemmRowTileFixed(const float* a_row, size_t k, const float* b, size_t n,
                      size_t j0, float* out_row) {
  float acc[W] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float av = a_row[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < W; ++j) acc[j] += av * b_row[j];
  }
  std::memcpy(out_row + j0, acc, W * sizeof(float));
}

void GemmRowTile(const float* a_row, size_t k, const float* b, size_t n,
                 size_t j0, size_t width, float* out_row) {
  float acc[kJTile] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float av = a_row[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < width; ++j) acc[j] += av * b_row[j];
  }
  std::memcpy(out_row + j0, acc, width * sizeof(float));
}

// Two rows per pass, sharing each streamed b row. The per-row accumulation is
// the same fma chain as GemmRowTile, so pairing is invisible in the bits —
// it only halves b traffic for multi-row (batched / training) products.
template <size_t W>
void GemmRowPairTileFixed(const float* a_row0, const float* a_row1, size_t k,
                          const float* b, size_t n, size_t j0, float* out_row0,
                          float* out_row1) {
  float acc0[W] = {0.0f};
  float acc1[W] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float a0 = a_row0[kk];
    const float a1 = a_row1[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < W; ++j) {
      acc0[j] += a0 * b_row[j];
      acc1[j] += a1 * b_row[j];
    }
  }
  std::memcpy(out_row0 + j0, acc0, W * sizeof(float));
  std::memcpy(out_row1 + j0, acc1, W * sizeof(float));
}

void GemmRowPairTile(const float* a_row0, const float* a_row1, size_t k,
                     const float* b, size_t n, size_t j0, size_t width,
                     float* out_row0, float* out_row1) {
  float acc0[kJTile] = {0.0f};
  float acc1[kJTile] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float a0 = a_row0[kk];
    const float a1 = a_row1[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < width; ++j) {
      acc0[j] += a0 * b_row[j];
      acc1[j] += a1 * b_row[j];
    }
  }
  std::memcpy(out_row0 + j0, acc0, width * sizeof(float));
  std::memcpy(out_row1 + j0, acc1, width * sizeof(float));
}

#if defined(__AVX2__)
// Four rows per streamed b tile. The multi-row Gemm is bandwidth-bound on the
// b stream (each weight matrix exceeds L1), so sharing each b row across four
// output rows halves b traffic vs the pair kernel. Four rows force a narrower
// j tile (4 rows x 16 floats = 8 vector registers at AVX2 width; a 32-wide
// tile would need all 16 and spill), so this kernel is compiled only where
// AVX2 guarantees 16 wide registers. Row grouping and tile width leave every
// element's ascending-k fma chain untouched — bit-identical to the pair/
// single-row kernels (pinned by GemmTest.RowBlocksAreBitIdenticalToFullProduct).
constexpr size_t kJTileQuad = 16;

template <size_t W>
void GemmRowQuadTileFixed(const float* a0, const float* a1, const float* a2,
                          const float* a3, size_t k, const float* b, size_t n,
                          size_t j0, float* o0, float* o1, float* o2,
                          float* o3) {
  float acc0[W] = {0.0f};
  float acc1[W] = {0.0f};
  float acc2[W] = {0.0f};
  float acc3[W] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < W; ++j) {
      acc0[j] += v0 * b_row[j];
      acc1[j] += v1 * b_row[j];
      acc2[j] += v2 * b_row[j];
      acc3[j] += v3 * b_row[j];
    }
  }
  std::memcpy(o0 + j0, acc0, W * sizeof(float));
  std::memcpy(o1 + j0, acc1, W * sizeof(float));
  std::memcpy(o2 + j0, acc2, W * sizeof(float));
  std::memcpy(o3 + j0, acc3, W * sizeof(float));
}

void GemmRowQuadTile(const float* a0, const float* a1, const float* a2,
                     const float* a3, size_t k, const float* b, size_t n,
                     size_t j0, size_t width, float* o0, float* o1, float* o2,
                     float* o3) {
  float acc0[kJTileQuad] = {0.0f};
  float acc1[kJTileQuad] = {0.0f};
  float acc2[kJTileQuad] = {0.0f};
  float acc3[kJTileQuad] = {0.0f};
  for (size_t kk = 0; kk < k; ++kk) {
    const float v0 = a0[kk];
    const float v1 = a1[kk];
    const float v2 = a2[kk];
    const float v3 = a3[kk];
    const float* b_row = b + kk * n + j0;
    for (size_t j = 0; j < width; ++j) {
      acc0[j] += v0 * b_row[j];
      acc1[j] += v1 * b_row[j];
      acc2[j] += v2 * b_row[j];
      acc3[j] += v3 * b_row[j];
    }
  }
  std::memcpy(o0 + j0, acc0, width * sizeof(float));
  std::memcpy(o1 + j0, acc1, width * sizeof(float));
  std::memcpy(o2 + j0, acc2, width * sizeof(float));
  std::memcpy(o3 + j0, acc3, width * sizeof(float));
}
#endif  // __AVX2__

}  // namespace

void Gemm(const float* a, size_t m, size_t k, const float* b, size_t n,
          float* out) {
  size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* o0 = out + i * n;
    float* o1 = o0 + n;
    float* o2 = o1 + n;
    float* o3 = o2 + n;
    size_t j0 = 0;
    for (; j0 + kJTileQuad <= n; j0 += kJTileQuad) {
      GemmRowQuadTileFixed<kJTileQuad>(a0, a1, a2, a3, k, b, n, j0, o0, o1,
                                       o2, o3);
    }
    if (j0 < n) {
      GemmRowQuadTile(a0, a1, a2, a3, k, b, n, j0, n - j0, o0, o1, o2, o3);
    }
  }
#endif
  for (; i + 2 <= m; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    float* o0 = out + i * n;
    float* o1 = o0 + n;
    size_t j0 = 0;
    for (; j0 + kJTile <= n; j0 += kJTile) {
      GemmRowPairTileFixed<kJTile>(a0, a1, k, b, n, j0, o0, o1);
    }
    if (j0 < n) GemmRowPairTile(a0, a1, k, b, n, j0, n - j0, o0, o1);
  }
  if (i < m) {
    const float* a_row = a + i * k;
    float* out_row = out + i * n;
    size_t j0 = 0;
    for (; j0 + kJTile <= n; j0 += kJTile) {
      GemmRowTileFixed<kJTile>(a_row, k, b, n, j0, out_row);
    }
    if (j0 < n) GemmRowTile(a_row, k, b, n, j0, n - j0, out_row);
  }
}

void GemmZeroSkip(const float* a, size_t m, size_t k, const float* b, size_t n,
                  float* out) {
  std::memset(out, 0, m * n * sizeof(float));
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* out_row = out + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b + kk * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void AddBiasRows(float* x, size_t rows, size_t cols, const float* bias) {
  for (size_t i = 0; i < rows; ++i) {
    float* row = x + i * cols;
    for (size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void Add(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void AddInPlace(float* dst, const float* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void AddScaledInPlace(float* dst, const float* src, float scale, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void Mul(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void MulInPlace(float* dst, const float* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] *= src[i];
}

void ScaleInPlace(float* x, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= s;
}

void AddScalarInPlace(float* x, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] += s;
}

void OneMinus(const float* a, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = 1.0f - a[i];
}

void Sigmoid(float* x, size_t n) { ApplyLanewise<SigmoidLanes>(x, n); }

void TanhInPlace(float* x, size_t n) { ApplyLanewise<TanhLanes>(x, n); }

void Tanh(const float* a, float* out, size_t n) {
  std::memcpy(out, a, n * sizeof(float));
  ApplyLanewise<TanhLanes>(out, n);
}

void Relu(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

void Copy(const float* src, float* dst, size_t n) {
  std::memcpy(dst, src, n * sizeof(float));
}

void Zero(float* x, size_t n) { std::memset(x, 0, n * sizeof(float)); }

}  // namespace lpce::nn::kernels
