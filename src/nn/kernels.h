// Raw-float kernels shared by every numeric path in the repo.
//
// The taped training forward (nn/tensor.cc), the Matrix convenience methods
// (nn/matrix.cc), and the tape-free batched inference path (lpce/tree_model.cc)
// all funnel through these single out-of-line definitions. That is a
// correctness contract, not a style choice: the build uses -ffast-math, so two
// textually identical loops compiled in different translation units (or
// inlined into different callers) may vectorize or contract into FMAs
// differently and produce different bits. One definition per operation means
// the autograd forward and the arena fast path perform the exact same rounded
// operations, which is what lets tests assert Infer == Forward bit-exactly.
//
// Determinism contract: Gemm accumulates each output element in strictly
// increasing k order, independent of blocking, unrolling, and the row range a
// caller parallelizes over — results are bit-identical at every thread count.
#ifndef LPCE_NN_KERNELS_H_
#define LPCE_NN_KERNELS_H_

#include <cstddef>

namespace lpce::nn::kernels {

/// out (m x n) = a (m x k) * b (k x n), row-major, overwriting out.
/// Dense branch-free i-k-j kernel: cache-blocked over k, 4-way unrolled over
/// k with a single accumulator chain per element (FMA-friendly without
/// changing the accumulation order), inner j loop vectorizable.
void Gemm(const float* a, size_t m, size_t k, const float* b, size_t n,
          float* out);

/// Reference variant of the pre-PR4 dense kernel: skips a == 0.0f rows of the
/// inner product. The branch defeats autovectorization on dense inputs
/// (bench_nn_primitives quantifies it), so no model path uses this; it exists
/// for the kernel equivalence tests and as the sparse baseline in the bench.
void GemmZeroSkip(const float* a, size_t m, size_t k, const float* b, size_t n,
                  float* out);

/// x[i][j] += bias[j] for every row of x (m x n).
void AddBiasRows(float* x, size_t rows, size_t cols, const float* bias);

// Element-wise kernels over n contiguous floats. Each performs exactly one
// rounded floating-point operation per element (or none, for Copy/Zero), so
// composing them reproduces the autograd ops' rounding sequence verbatim.
void Add(const float* a, const float* b, float* out, size_t n);
void AddInPlace(float* dst, const float* src, size_t n);
void AddScaledInPlace(float* dst, const float* src, float scale, size_t n);
void Mul(const float* a, const float* b, float* out, size_t n);
void MulInPlace(float* dst, const float* src, size_t n);
void ScaleInPlace(float* x, float s, size_t n);
void AddScalarInPlace(float* x, float s, size_t n);
/// out[i] = 1.0f - a[i]. Bit-identical to AddScalar(Scale(a, -1), 1): both
/// are a single rounding of the exact real 1 - a[i].
void OneMinus(const float* a, float* out, size_t n);
void Sigmoid(float* x, size_t n);
void TanhInPlace(float* x, size_t n);
void Tanh(const float* a, float* out, size_t n);
void Relu(float* x, size_t n);
void Copy(const float* src, float* dst, size_t n);
void Zero(float* x, size_t n);

}  // namespace lpce::nn::kernels

#endif  // LPCE_NN_KERNELS_H_
