// Tree-structured recurrent cells.
//
// TreeSruCell implements the simple recurrent unit of paper Eq. (1), extended
// to binary trees: the children encodings are summed (c_l + c_r). It needs
// 3 input-side matrix multiplications versus the tree-LSTM's 8, which is the
// source of LPCE-I's inference-speed advantage over TLSTM (Sec. 4.2).
//
// TreeLstmCell is a child-sum binary tree LSTM (Tai et al. style) used by the
// TLSTM baseline and the LPCE-T ablation.
#ifndef LPCE_NN_CELLS_H_
#define LPCE_NN_CELLS_H_

#include <string>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace lpce::nn {

/// Result of one recurrent step: the node encoding c (passed to the parent)
/// and the node representation h (fed to the output module).
struct CellOutput {
  Tensor c;
  Tensor h;
};

/// Inference fast-path equivalent of CellOutput (plain matrices).
struct CellMatrixOutput {
  Matrix c;
  Matrix h;
};

/// Tree SRU (paper Eq. 1):
///   x~ = W_x x
///   f  = sigmoid(W_f x + b_f)
///   r  = sigmoid(W_r x + b_r)
///   c  = f (.) (c_l + c_r) + (1 - f) (.) x~
///   h  = r (.) tanh(c) + (1 - r) (.) x
/// x, c and h all have the same dimensionality `dim`.
class TreeSruCell {
 public:
  TreeSruCell() = default;
  TreeSruCell(ParamStore* store, const std::string& prefix, size_t dim, Rng* rng);

  /// One step. Either child tensor may be null (leaf / unary node); missing
  /// children contribute a zero encoding.
  CellOutput Step(const Tensor& x, const Tensor& c_left,
                  const Tensor& c_right) const;

  /// Inference fast path; null child pointers contribute zero encodings.
  CellMatrixOutput Apply(const Matrix& x, const Matrix* c_left,
                         const Matrix* c_right) const;

  size_t dim() const { return dim_; }

  /// Gate layers, exposed for the level-batched tape-free inference path.
  const Linear& wx() const { return wx_; }
  const Linear& wf() const { return wf_; }
  const Linear& wr() const { return wr_; }

 private:
  Linear wx_;  // no bias in the paper's x~ = W_x x; we keep the bias at zero init
  Linear wf_;
  Linear wr_;
  size_t dim_ = 0;
};

/// Binary child-sum tree LSTM:
///   i = sigmoid(W_i x + U_i (h_l + h_r) + b_i)
///   f_k = sigmoid(W_f x + U_f h_k + b_f)     for each child k
///   o = sigmoid(W_o x + U_o (h_l + h_r) + b_o)
///   g = tanh(W_g x + U_g (h_l + h_r) + b_g)
///   c = i (.) g + f_l (.) c_l + f_r (.) c_r
///   h = o (.) tanh(c)
class TreeLstmCell {
 public:
  TreeLstmCell() = default;
  TreeLstmCell(ParamStore* store, const std::string& prefix, size_t dim, Rng* rng);

  /// One step; children pass both their c and h. Null children are zeros.
  CellOutput Step(const Tensor& x, const Tensor& c_left, const Tensor& h_left,
                  const Tensor& c_right, const Tensor& h_right) const;

  /// Inference fast path; null child pointers contribute zero states.
  CellMatrixOutput Apply(const Matrix& x, const Matrix* c_left,
                         const Matrix* h_left, const Matrix* c_right,
                         const Matrix* h_right) const;

  size_t dim() const { return dim_; }

  /// Gate layers, exposed for the level-batched tape-free inference path.
  const Linear& wi() const { return wi_; }
  const Linear& ui() const { return ui_; }
  const Linear& wf() const { return wf_; }
  const Linear& uf() const { return uf_; }
  const Linear& wo() const { return wo_; }
  const Linear& uo() const { return uo_; }
  const Linear& wg() const { return wg_; }
  const Linear& ug() const { return ug_; }

 private:
  Linear wi_, ui_;
  Linear wf_, uf_;
  Linear wo_, uo_;
  Linear wg_, ug_;
  size_t dim_ = 0;
};

}  // namespace lpce::nn

#endif  // LPCE_NN_CELLS_H_
