#include "nn/cells.h"

#include <cmath>

namespace lpce::nn {

namespace {

Tensor ZeroVec(size_t dim) { return MakeTensor(Matrix(1, dim, 0.0f)); }

Tensor SumChildren(const Tensor& left, const Tensor& right, size_t dim) {
  if (left != nullptr && right != nullptr) return Add(left, right);
  if (left != nullptr) return left;
  if (right != nullptr) return right;
  return ZeroVec(dim);
}

/// 1 - t, element-wise.
Tensor OneMinus(const Tensor& t) { return AddScalar(Scale(t, -1.0f), 1.0f); }

}  // namespace

TreeSruCell::TreeSruCell(ParamStore* store, const std::string& prefix, size_t dim,
                         Rng* rng)
    : wx_(store, prefix + ".wx", dim, dim, rng),
      wf_(store, prefix + ".wf", dim, dim, rng),
      wr_(store, prefix + ".wr", dim, dim, rng),
      dim_(dim) {}

CellOutput TreeSruCell::Step(const Tensor& x, const Tensor& c_left,
                             const Tensor& c_right) const {
  LPCE_CHECK(x->value().cols() == dim_);
  Tensor x_tilde = wx_.Forward(x);
  Tensor f = Sigmoid(wf_.Forward(x));
  Tensor r = Sigmoid(wr_.Forward(x));
  Tensor child_sum = SumChildren(c_left, c_right, dim_);
  Tensor c = Add(Mul(f, child_sum), Mul(OneMinus(f), x_tilde));
  Tensor h = Add(Mul(r, Tanh(c)), Mul(OneMinus(r), x));
  return {c, h};
}

CellMatrixOutput TreeSruCell::Apply(const Matrix& x, const Matrix* c_left,
                                    const Matrix* c_right) const {
  LPCE_DCHECK(x.cols() == dim_);
  Matrix x_tilde = wx_.Apply(x);
  Matrix f = wf_.Apply(x);
  SigmoidInPlace(&f);
  Matrix r = wr_.Apply(x);
  SigmoidInPlace(&r);
  CellMatrixOutput out;
  out.c = Matrix(1, dim_);
  out.h = Matrix(1, dim_);
  for (size_t j = 0; j < dim_; ++j) {
    float child = 0.0f;
    if (c_left != nullptr) child += c_left->at(0, j);
    if (c_right != nullptr) child += c_right->at(0, j);
    const float fj = f.at(0, j);
    const float cj = fj * child + (1.0f - fj) * x_tilde.at(0, j);
    out.c.at(0, j) = cj;
    const float rj = r.at(0, j);
    out.h.at(0, j) = rj * std::tanh(cj) + (1.0f - rj) * x.at(0, j);
  }
  return out;
}

TreeLstmCell::TreeLstmCell(ParamStore* store, const std::string& prefix, size_t dim,
                           Rng* rng)
    : wi_(store, prefix + ".wi", dim, dim, rng),
      ui_(store, prefix + ".ui", dim, dim, rng),
      wf_(store, prefix + ".wf", dim, dim, rng),
      uf_(store, prefix + ".uf", dim, dim, rng),
      wo_(store, prefix + ".wo", dim, dim, rng),
      uo_(store, prefix + ".uo", dim, dim, rng),
      wg_(store, prefix + ".wg", dim, dim, rng),
      ug_(store, prefix + ".ug", dim, dim, rng),
      dim_(dim) {}

CellOutput TreeLstmCell::Step(const Tensor& x, const Tensor& c_left,
                              const Tensor& h_left, const Tensor& c_right,
                              const Tensor& h_right) const {
  LPCE_CHECK(x->value().cols() == dim_);
  Tensor h_sum = SumChildren(h_left, h_right, dim_);
  Tensor i = Sigmoid(Add(wi_.Forward(x), ui_.Forward(h_sum)));
  Tensor o = Sigmoid(Add(wo_.Forward(x), uo_.Forward(h_sum)));
  Tensor g = Tanh(Add(wg_.Forward(x), ug_.Forward(h_sum)));
  Tensor c = Mul(i, g);
  if (c_left != nullptr) {
    Tensor hl = h_left != nullptr ? h_left : ZeroVec(dim_);
    Tensor fl = Sigmoid(Add(wf_.Forward(x), uf_.Forward(hl)));
    c = Add(c, Mul(fl, c_left));
  }
  if (c_right != nullptr) {
    Tensor hr = h_right != nullptr ? h_right : ZeroVec(dim_);
    Tensor fr = Sigmoid(Add(wf_.Forward(x), uf_.Forward(hr)));
    c = Add(c, Mul(fr, c_right));
  }
  Tensor h = Mul(o, Tanh(c));
  return {c, h};
}

CellMatrixOutput TreeLstmCell::Apply(const Matrix& x, const Matrix* c_left,
                                     const Matrix* h_left, const Matrix* c_right,
                                     const Matrix* h_right) const {
  LPCE_DCHECK(x.cols() == dim_);
  Matrix h_sum(1, dim_, 0.0f);
  if (h_left != nullptr) h_sum.AddInPlace(*h_left);
  if (h_right != nullptr) h_sum.AddInPlace(*h_right);

  Matrix i = wi_.Apply(x);
  i.AddInPlace(ui_.Apply(h_sum));
  SigmoidInPlace(&i);
  Matrix o = wo_.Apply(x);
  o.AddInPlace(uo_.Apply(h_sum));
  SigmoidInPlace(&o);
  Matrix g = wg_.Apply(x);
  g.AddInPlace(ug_.Apply(h_sum));
  TanhInPlace(&g);

  CellMatrixOutput out;
  out.c = Matrix(1, dim_);
  for (size_t j = 0; j < dim_; ++j) out.c.at(0, j) = i.at(0, j) * g.at(0, j);

  const Matrix wf_x = wf_.Apply(x);
  auto add_child = [&](const Matrix* child_c, const Matrix* child_h) {
    if (child_c == nullptr) return;
    Matrix hk(1, dim_, 0.0f);
    if (child_h != nullptr) hk = *child_h;
    Matrix fk = wf_x;
    fk.AddInPlace(uf_.Apply(hk));
    SigmoidInPlace(&fk);
    for (size_t j = 0; j < dim_; ++j) {
      out.c.at(0, j) += fk.at(0, j) * child_c->at(0, j);
    }
  };
  add_child(c_left, h_left);
  add_child(c_right, h_right);

  out.h = Matrix(1, dim_);
  for (size_t j = 0; j < dim_; ++j) {
    out.h.at(0, j) = o.at(0, j) * std::tanh(out.c.at(0, j));
  }
  return out;
}

}  // namespace lpce::nn
