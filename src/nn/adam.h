// Adam optimizer (Kingma & Ba) over a ParamStore — the paper trains all
// models with Adam (Sec. 7.1).
#ifndef LPCE_NN_ADAM_H_
#define LPCE_NN_ADAM_H_

#include <string>
#include <unordered_map>

#include "nn/layers.h"

namespace lpce::nn {

class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  explicit Adam(ParamStore* store) : store_(store), options_() {}
  Adam(ParamStore* store, Options options) : store_(store), options_(options) {}

  /// Applies one update using the gradients currently in the store, then
  /// zeroes them.
  void Step();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t steps() const { return t_; }

 private:
  struct State {
    Matrix m;
    Matrix v;
  };

  ParamStore* store_;
  Options options_;
  int64_t t_ = 0;
  std::unordered_map<std::string, State> state_;
};

}  // namespace lpce::nn

#endif  // LPCE_NN_ADAM_H_
