// Trainable parameter storage and the basic layers used by the LPCE models.
#ifndef LPCE_NN_LAYERS_H_
#define LPCE_NN_LAYERS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/tensor.h"

namespace lpce::nn {

/// Owns all trainable tensors of a model, keyed by unique names. The
/// optimizer iterates its parameters; Save/Load (de)serialize them.
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  /// Creates (or returns the existing) parameter with the given shape,
  /// initialized from U(-limit, limit).
  Tensor GetOrCreate(const std::string& name, size_t rows, size_t cols,
                     float limit, Rng* rng);

  Tensor Get(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return params_.find(name) != params_.end();
  }

  const std::vector<std::string>& names() const { return names_; }
  size_t NumParams() const;

  void ZeroGrads();
  /// Scales every gradient by 1/n (to average over a minibatch).
  void ScaleGrads(float scale);
  /// Global L2 norm over every parameter's gradient.
  float GradNorm() const;
  /// Global L2-norm gradient clipping.
  void ClipGradNorm(float max_norm);

  /// Binary serialization of every parameter (name, shape, data).
  Status SaveToFile(const std::string& path) const;
  /// Loads values into parameters; shapes must already match (create the
  /// model first, then load).
  Status LoadFromFile(const std::string& path);

 private:
  std::unordered_map<std::string, Tensor> params_;
  std::vector<std::string> names_;  // insertion order, for stable serialization
};

/// Fully connected layer y = x W + b with W of shape (in, out).
class Linear {
 public:
  Linear() = default;
  /// Registers (or re-attaches to) parameters "<prefix>.W" / "<prefix>.b".
  Linear(ParamStore* store, const std::string& prefix, size_t in, size_t out,
         Rng* rng);

  Tensor Forward(const Tensor& x) const;

  /// Inference fast path: x W + b on plain matrices, no autograd graph.
  Matrix Apply(const Matrix& x) const;

  size_t in_dim() const { return in_; }
  size_t out_dim() const { return out_; }

  /// Raw parameter views for the tape-free batched inference path, which
  /// runs kernels directly on arena buffers instead of building Matrix
  /// temporaries.
  const Matrix& weight() const { return w_->value(); }
  const Matrix& bias() const { return b_->value(); }

 private:
  Tensor w_;
  Tensor b_;
  size_t in_ = 0;
  size_t out_ = 0;
};

/// Two-layer MLP with a configurable inner activation; the paper's embed and
/// output modules are both of this shape.
class Mlp2 {
 public:
  enum class Activation { kRelu, kSigmoid, kNone };

  Mlp2() = default;
  Mlp2(ParamStore* store, const std::string& prefix, size_t in, size_t hidden,
       size_t out, Rng* rng);

  /// hidden = act1(x W1 + b1); y = act2(hidden W2 + b2).
  Tensor Forward(const Tensor& x, Activation inner = Activation::kRelu,
                 Activation outer = Activation::kNone) const;

  /// Pre-activation output of the second layer (the "logit" used by the
  /// knowledge-distillation prediction loss, paper Eq. 5).
  Tensor ForwardLogit(const Tensor& x, Activation inner = Activation::kRelu) const;

  /// Inference fast paths (no autograd graph).
  Matrix Apply(const Matrix& x, Activation inner = Activation::kRelu,
               Activation outer = Activation::kNone) const;
  Matrix ApplyLogit(const Matrix& x, Activation inner = Activation::kRelu) const;

  /// Layer views for the tape-free batched inference path.
  const Linear& l1() const { return l1_; }
  const Linear& l2() const { return l2_; }

 private:
  Linear l1_;
  Linear l2_;
};

}  // namespace lpce::nn

#endif  // LPCE_NN_LAYERS_H_
