#include "nn/adam.h"

#include <cmath>

#include "common/profiler.h"

namespace lpce::nn {

void Adam::Step() {
  LPCE_PROFILE_SCOPE("nn.adam_step");
  ++t_;
  // Bias corrections in double: float pow drifts visibly from the reference
  // value at large t with beta2 = 0.999 (1 - beta2^t is a difference of
  // nearly-equal numbers until t is in the thousands).
  const float bc1 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(options_.beta1), static_cast<double>(t_)));
  const float bc2 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(options_.beta2), static_cast<double>(t_)));
  for (const auto& name : store_->names()) {
    Tensor param = store_->Get(name);
    Matrix& value = param->mutable_value();
    Matrix& grad = param->grad();
    State& s = state_[name];
    if (s.m.size() != value.size()) {
      s.m = Matrix(value.rows(), value.cols(), 0.0f);
      s.v = Matrix(value.rows(), value.cols(), 0.0f);
    }
    for (size_t i = 0; i < value.size(); ++i) {
      float g = grad.data()[i];
      if (options_.weight_decay > 0.0f) g += options_.weight_decay * value.data()[i];
      s.m.data()[i] = options_.beta1 * s.m.data()[i] + (1.0f - options_.beta1) * g;
      s.v.data()[i] = options_.beta2 * s.v.data()[i] + (1.0f - options_.beta2) * g * g;
      const float m_hat = s.m.data()[i] / bc1;
      const float v_hat = s.v.data()[i] / bc2;
      value.data()[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
  store_->ZeroGrads();
}

}  // namespace lpce::nn
