#include "nn/tensor.h"

#include <cmath>
#include <unordered_set>

#include "common/profiler.h"
#include "nn/kernels.h"

namespace lpce::nn {

namespace {

bool AnyRequiresGrad(const std::vector<Tensor>& inputs) {
  for (const auto& t : inputs) {
    if (t->requires_grad()) return true;
  }
  return false;
}

Tensor MakeOp(Matrix value, std::vector<Tensor> inputs,
              std::function<void(TensorNode*)> backward) {
  bool req = AnyRequiresGrad(inputs);
  auto node = std::make_shared<TensorNode>(std::move(value), req);
  if (req) {
    node->inputs() = std::move(inputs);
    node->set_backward(std::move(backward));
  }
  return node;
}

}  // namespace

Tensor MakeTensor(Matrix value, bool requires_grad) {
  return std::make_shared<TensorNode>(std::move(value), requires_grad);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix out = a->value().MatMul(b->value());
  return MakeOp(std::move(out), {a, b}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    Tensor a_in = self->inputs()[0];
    Tensor b_in = self->inputs()[1];
    if (a_in->requires_grad()) {
      // dL/dA = G * B^T
      a_in->grad().AddInPlace(g.MatMulTranspose(b_in->value()));
    }
    if (b_in->requires_grad()) {
      // dL/dB = A^T * G
      b_in->grad().AddInPlace(a_in->value().TransposeMatMul(g));
    }
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  LPCE_CHECK(a->value().SameShape(b->value()));
  Matrix out = a->value();
  out.AddInPlace(b->value());
  return MakeOp(std::move(out), {a, b}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    for (auto& in : self->inputs()) {
      if (in->requires_grad()) in->grad().AddInPlace(g);
    }
  });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  const Matrix& av = a->value();
  const Matrix& bv = bias->value();
  LPCE_CHECK(bv.rows() == 1 && bv.cols() == av.cols());
  Matrix out = av;
  kernels::AddBiasRows(out.data(), out.rows(), out.cols(), bv.data());
  return MakeOp(std::move(out), {a, bias}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    Tensor a_in = self->inputs()[0];
    Tensor b_in = self->inputs()[1];
    if (a_in->requires_grad()) a_in->grad().AddInPlace(g);
    if (b_in->requires_grad()) {
      Matrix& bg = b_in->grad();
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < g.cols(); ++j) bg.at(0, j) += g.at(i, j);
      }
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  LPCE_CHECK(a->value().SameShape(b->value()));
  Matrix out = a->value();
  out.AddScaledInPlace(b->value(), -1.0f);
  return MakeOp(std::move(out), {a, b}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    Tensor a_in = self->inputs()[0];
    Tensor b_in = self->inputs()[1];
    if (a_in->requires_grad()) a_in->grad().AddInPlace(g);
    if (b_in->requires_grad()) b_in->grad().AddScaledInPlace(g, -1.0f);
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  LPCE_CHECK(a->value().SameShape(b->value()));
  Matrix out = a->value();
  kernels::MulInPlace(out.data(), b->value().data(), out.size());
  return MakeOp(std::move(out), {a, b}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    Tensor a_in = self->inputs()[0];
    Tensor b_in = self->inputs()[1];
    if (a_in->requires_grad()) {
      Matrix& ag = a_in->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        ag.data()[i] += g.data()[i] * b_in->value().data()[i];
      }
    }
    if (b_in->requires_grad()) {
      Matrix& bg = b_in->grad();
      for (size_t i = 0; i < g.size(); ++i) {
        bg.data()[i] += g.data()[i] * a_in->value().data()[i];
      }
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  Matrix out = a->value();
  kernels::ScaleInPlace(out.data(), s, out.size());
  return MakeOp(std::move(out), {a}, [s](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (a_in->requires_grad()) a_in->grad().AddScaledInPlace(self->grad(), s);
  });
}

Tensor AddScalar(const Tensor& a, float s) {
  Matrix out = a->value();
  kernels::AddScalarInPlace(out.data(), s, out.size());
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (a_in->requires_grad()) a_in->grad().AddInPlace(self->grad());
  });
}

Tensor Sigmoid(const Tensor& a) {
  Matrix out = a->value();
  kernels::Sigmoid(out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (!a_in->requires_grad()) return;
    const Matrix& g = self->grad();
    const Matrix& y = self->value();
    Matrix& ag = a_in->grad();
    for (size_t i = 0; i < g.size(); ++i) {
      const float yi = y.data()[i];
      ag.data()[i] += g.data()[i] * yi * (1.0f - yi);
    }
  });
}

Tensor Tanh(const Tensor& a) {
  Matrix out = a->value();
  kernels::TanhInPlace(out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (!a_in->requires_grad()) return;
    const Matrix& g = self->grad();
    const Matrix& y = self->value();
    Matrix& ag = a_in->grad();
    for (size_t i = 0; i < g.size(); ++i) {
      const float yi = y.data()[i];
      ag.data()[i] += g.data()[i] * (1.0f - yi * yi);
    }
  });
}

Tensor Relu(const Tensor& a) {
  Matrix out = a->value();
  kernels::Relu(out.data(), out.size());
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (!a_in->requires_grad()) return;
    const Matrix& g = self->grad();
    const Matrix& x = a_in->value();
    Matrix& ag = a_in->grad();
    for (size_t i = 0; i < g.size(); ++i) {
      if (x.data()[i] > 0.0f) ag.data()[i] += g.data()[i];
    }
  });
}

Tensor Abs(const Tensor& a) {
  Matrix out = a->value();
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] = std::fabs(out.data()[i]);
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (!a_in->requires_grad()) return;
    const Matrix& g = self->grad();
    const Matrix& x = a_in->value();
    Matrix& ag = a_in->grad();
    for (size_t i = 0; i < g.size(); ++i) {
      const float xi = x.data()[i];
      if (xi > 0.0f) {
        ag.data()[i] += g.data()[i];
      } else if (xi < 0.0f) {
        ag.data()[i] -= g.data()[i];
      }
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  const Matrix& av = a->value();
  const Matrix& bv = b->value();
  LPCE_CHECK(av.rows() == bv.rows());
  Matrix out(av.rows(), av.cols() + bv.cols());
  for (size_t i = 0; i < av.rows(); ++i) {
    for (size_t j = 0; j < av.cols(); ++j) out.at(i, j) = av.at(i, j);
    for (size_t j = 0; j < bv.cols(); ++j) out.at(i, av.cols() + j) = bv.at(i, j);
  }
  return MakeOp(std::move(out), {a, b}, [](TensorNode* self) {
    const Matrix& g = self->grad();
    Tensor a_in = self->inputs()[0];
    Tensor b_in = self->inputs()[1];
    const size_t a_cols = a_in->value().cols();
    if (a_in->requires_grad()) {
      Matrix& ag = a_in->grad();
      for (size_t i = 0; i < ag.rows(); ++i) {
        for (size_t j = 0; j < a_cols; ++j) ag.at(i, j) += g.at(i, j);
      }
    }
    if (b_in->requires_grad()) {
      Matrix& bg = b_in->grad();
      for (size_t i = 0; i < bg.rows(); ++i) {
        for (size_t j = 0; j < bg.cols(); ++j) bg.at(i, j) += g.at(i, a_cols + j);
      }
    }
  });
}

Tensor Sum(const Tensor& a) {
  float acc = 0.0f;
  for (size_t i = 0; i < a->value().size(); ++i) acc += a->value().data()[i];
  Matrix out(1, 1);
  out.at(0, 0) = acc;
  return MakeOp(std::move(out), {a}, [](TensorNode* self) {
    Tensor a_in = self->inputs()[0];
    if (!a_in->requires_grad()) return;
    const float g = self->grad().at(0, 0);
    Matrix& ag = a_in->grad();
    for (size_t i = 0; i < ag.size(); ++i) ag.data()[i] += g;
  });
}

void Backward(const Tensor& root) {
  LPCE_PROFILE_SCOPE("nn.backward");
  LPCE_CHECK_MSG(root->value().rows() == 1 && root->value().cols() == 1,
                 "Backward root must be a 1x1 scalar");
  // Iterative post-order DFS to get a reverse-topological order.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> visited;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->inputs().size()) {
      TensorNode* child = node->inputs()[idx].get();
      ++idx;
      if (child->requires_grad() && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Zero interior gradients so repeated Backward calls on fresh graphs that
  // share parameter leaves accumulate only into the leaves.
  for (TensorNode* node : order) {
    if (node->has_backward()) node->ZeroGrad();
  }
  root->grad().at(0, 0) = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

}  // namespace lpce::nn
