#include "nn/matrix.h"

#include <atomic>
#include <cmath>

#include "common/profiler.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"

namespace lpce::nn {

namespace {

std::atomic<int> g_matmul_threads{0};

// Parallelize a product only when it is worth a dispatch: below this flop
// count the pool hand-off costs more than the arithmetic it saves. The
// per-node 1xD training/inference products stay sequential; batched training
// products and the bench workloads go wide.
constexpr size_t kParallelFlopCutoff = size_t{1} << 18;

// Runs fn(row_begin, row_end) over [0, rows), split across the global pool
// when the product is large enough. Each chunk owns a disjoint block of
// output rows and accumulates each output element in the same order as the
// sequential loop, so results are bit-identical at every thread count.
void ParallelRows(size_t rows, size_t flops,
                  const std::function<void(size_t, size_t)>& fn) {
  const int cap = g_matmul_threads.load(std::memory_order_relaxed);
  if (flops < kParallelFlopCutoff || rows < 2 || cap == 1) {
    fn(0, rows);
    return;
  }
  common::GlobalPool().ParallelFor(0, rows, /*grain=*/1, fn, cap);
}

}  // namespace

void SetMatMulThreads(int num_threads) {
  g_matmul_threads.store(num_threads < 0 ? 0 : num_threads,
                         std::memory_order_relaxed);
}

int MatMulThreads() { return g_matmul_threads.load(std::memory_order_relaxed); }

void Matrix::AddInPlace(const Matrix& other) {
  LPCE_CHECK(SameShape(other));
  kernels::AddInPlace(data(), other.data(), data_.size());
}

void Matrix::AddScaledInPlace(const Matrix& other, float scale) {
  LPCE_CHECK(SameShape(other));
  kernels::AddScaledInPlace(data(), other.data(), scale, data_.size());
}

Matrix Matrix::MatMul(const Matrix& other) const {
  LPCE_PROFILE_SCOPE("nn.matmul");
  LPCE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0f);
  // Each row block is an independent Gemm call over [r0, r1); the kernel
  // accumulates every output element in increasing k order, so the split is
  // invisible in the bits (see nn/kernels.h for the determinism contract).
  ParallelRows(rows_, rows_ * cols_ * other.cols_, [&](size_t r0, size_t r1) {
    kernels::Gemm(data() + r0 * cols_, r1 - r0, cols_, other.data(),
                  other.cols_, out.data() + r0 * other.cols_);
  });
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  // Computes this^T (cols_ x rows_) * other (rows_ x other.cols_). Each chunk
  // owns output rows [i0, i1) — a column block of `this` — and walks the full
  // k range in order, preserving the sequential accumulation order.
  LPCE_PROFILE_SCOPE("nn.tmatmul");
  LPCE_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_, 0.0f);
  ParallelRows(cols_, rows_ * cols_ * other.cols_, [&](size_t i0, size_t i1) {
    for (size_t k = 0; k < rows_; ++k) {
      const float* a_row = data() + k * cols_;
      const float* b_row = other.data() + k * other.cols_;
      for (size_t i = i0; i < i1; ++i) {
        const float a = a_row[i];
        float* out_row = out.data() + i * other.cols_;
        for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
      }
    }
  });
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  // Computes this (rows_ x cols_) * other^T (cols_ x other.rows_).
  LPCE_PROFILE_SCOPE("nn.matmul_t");
  LPCE_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_, 0.0f);
  ParallelRows(rows_, rows_ * cols_ * other.rows_, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* a_row = data() + i * cols_;
      float* out_row = out.data() + i * other.rows_;
      for (size_t j = 0; j < other.rows_; ++j) {
        const float* b_row = other.data() + j * cols_;
        float acc = 0.0f;
        for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
        out_row[j] = acc;
      }
    }
  });
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

float Matrix::SumAbs() const {
  float acc = 0.0f;
  for (float v : data_) acc += std::fabs(v);
  return acc;
}

float Matrix::SumSquares() const {
  float acc = 0.0f;
  for (float v : data_) acc += v * v;
  return acc;
}

void SigmoidInPlace(Matrix* m) { kernels::Sigmoid(m->data(), m->size()); }

void TanhInPlace(Matrix* m) { kernels::TanhInPlace(m->data(), m->size()); }

void ReluInPlace(Matrix* m) { kernels::Relu(m->data(), m->size()); }

}  // namespace lpce::nn
