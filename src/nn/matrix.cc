#include "nn/matrix.h"

#include <cmath>

namespace lpce::nn {

void Matrix::AddInPlace(const Matrix& other) {
  LPCE_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += src[i];
}

void Matrix::AddScaledInPlace(const Matrix& other, float scale) {
  LPCE_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += scale * src[i];
}

Matrix Matrix::MatMul(const Matrix& other) const {
  LPCE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0f);
  // i-k-j loop order: streams over contiguous rows of `other` and `out`.
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = data() + i * cols_;
    float* out_row = out.data() + i * other.cols_;
    for (size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = other.data() + k * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMatMul(const Matrix& other) const {
  // Computes this^T (cols_ x rows_) * other (rows_ x other.cols_).
  LPCE_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_, 0.0f);
  for (size_t k = 0; k < rows_; ++k) {
    const float* a_row = data() + k * cols_;
    const float* b_row = other.data() + k * other.cols_;
    for (size_t i = 0; i < cols_; ++i) {
      const float a = a_row[i];
      if (a == 0.0f) continue;
      float* out_row = out.data() + i * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTranspose(const Matrix& other) const {
  // Computes this (rows_ x cols_) * other^T (cols_ x other.rows_).
  LPCE_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_, 0.0f);
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = data() + i * cols_;
    float* out_row = out.data() + i * other.rows_;
    for (size_t j = 0; j < other.rows_; ++j) {
      const float* b_row = other.data() + j * cols_;
      float acc = 0.0f;
      for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

float Matrix::SumAbs() const {
  float acc = 0.0f;
  for (float v : data_) acc += std::fabs(v);
  return acc;
}

float Matrix::SumSquares() const {
  float acc = 0.0f;
  for (float v : data_) acc += v * v;
  return acc;
}

void SigmoidInPlace(Matrix* m) {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = 1.0f / (1.0f + std::exp(-d[i]));
}

void TanhInPlace(Matrix* m) {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = std::tanh(d[i]);
}

void ReluInPlace(Matrix* m) {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) {
    if (d[i] < 0.0f) d[i] = 0.0f;
  }
}

}  // namespace lpce::nn
