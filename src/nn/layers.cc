#include "nn/layers.h"

#include <cmath>
#include <cstdio>

#include "nn/kernels.h"

namespace lpce::nn {

Tensor ParamStore::GetOrCreate(const std::string& name, size_t rows, size_t cols,
                               float limit, Rng* rng) {
  auto it = params_.find(name);
  if (it != params_.end()) {
    LPCE_CHECK_MSG(it->second->value().rows() == rows &&
                       it->second->value().cols() == cols,
                   "parameter re-created with a different shape");
    return it->second;
  }
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-limit, limit));
  }
  Tensor t = MakeTensor(std::move(m), /*requires_grad=*/true);
  params_.emplace(name, t);
  names_.push_back(name);
  return t;
}

Tensor ParamStore::Get(const std::string& name) const {
  auto it = params_.find(name);
  LPCE_CHECK_MSG(it != params_.end(), "unknown parameter");
  return it->second;
}

size_t ParamStore::NumParams() const {
  size_t n = 0;
  for (const auto& [name, t] : params_) n += t->value().size();
  return n;
}

void ParamStore::ZeroGrads() {
  for (auto& [name, t] : params_) t->ZeroGrad();
}

void ParamStore::ScaleGrads(float scale) {
  for (auto& [name, t] : params_) {
    Matrix& g = t->grad();
    for (size_t i = 0; i < g.size(); ++i) g.data()[i] *= scale;
  }
}

float ParamStore::GradNorm() const {
  float sq = 0.0f;
  for (const auto& [name, t] : params_) sq += t->grad().SumSquares();
  return std::sqrt(sq);
}

void ParamStore::ClipGradNorm(float max_norm) {
  const float norm = GradNorm();
  if (norm <= max_norm || norm == 0.0f) return;
  ScaleGrads(max_norm / norm);
}

Status ParamStore::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = names_.size();
  std::fwrite(&count, sizeof(count), 1, f);
  for (const auto& name : names_) {
    const Tensor& t = params_.at(name);
    const uint64_t len = name.size();
    const uint64_t rows = t->value().rows();
    const uint64_t cols = t->value().cols();
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite(name.data(), 1, len, f);
    std::fwrite(&rows, sizeof(rows), 1, f);
    std::fwrite(&cols, sizeof(cols), 1, f);
    std::fwrite(t->value().data(), sizeof(float), t->value().size(), f);
  }
  std::fclose(f);
  return Status::Ok();
}

Status ParamStore::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("truncated parameter file: " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0, rows = 0, cols = 0;
    if (std::fread(&len, sizeof(len), 1, f) != 1 || len > 4096) {
      std::fclose(f);
      return Status::IoError("corrupt parameter file: " + path);
    }
    std::string name(len, '\0');
    if (std::fread(name.data(), 1, len, f) != len ||
        std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1) {
      std::fclose(f);
      return Status::IoError("corrupt parameter file: " + path);
    }
    auto it = params_.find(name);
    if (it == params_.end()) {
      std::fclose(f);
      return Status::InvalidArgument("parameter not in model: " + name);
    }
    Matrix& m = it->second->mutable_value();
    if (m.rows() != rows || m.cols() != cols) {
      std::fclose(f);
      return Status::InvalidArgument("shape mismatch for parameter: " + name);
    }
    if (std::fread(m.data(), sizeof(float), m.size(), f) != m.size()) {
      std::fclose(f);
      return Status::IoError("truncated parameter data: " + path);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

Linear::Linear(ParamStore* store, const std::string& prefix, size_t in, size_t out,
               Rng* rng)
    : in_(in), out_(out) {
  // Xavier/Glorot uniform initialization.
  const float limit = std::sqrt(6.0f / static_cast<float>(in + out));
  w_ = store->GetOrCreate(prefix + ".W", in, out, limit, rng);
  b_ = store->GetOrCreate(prefix + ".b", 1, out, 0.0f, rng);
}

Tensor Linear::Forward(const Tensor& x) const {
  LPCE_CHECK_MSG(w_ != nullptr, "Linear used before construction");
  return AddRowBroadcast(MatMul(x, w_), b_);
}

Matrix Linear::Apply(const Matrix& x) const {
  LPCE_DCHECK(w_ != nullptr);
  Matrix out = x.MatMul(w_->value());
  kernels::AddBiasRows(out.data(), out.rows(), out.cols(), b_->value().data());
  return out;
}

Mlp2::Mlp2(ParamStore* store, const std::string& prefix, size_t in, size_t hidden,
           size_t out, Rng* rng)
    : l1_(store, prefix + ".l1", in, hidden, rng),
      l2_(store, prefix + ".l2", hidden, out, rng) {}

namespace {
Tensor Activate(const Tensor& x, Mlp2::Activation act) {
  switch (act) {
    case Mlp2::Activation::kRelu:
      return Relu(x);
    case Mlp2::Activation::kSigmoid:
      return Sigmoid(x);
    case Mlp2::Activation::kNone:
      return x;
  }
  return x;
}
}  // namespace

Tensor Mlp2::Forward(const Tensor& x, Activation inner, Activation outer) const {
  return Activate(l2_.Forward(Activate(l1_.Forward(x), inner)), outer);
}

Tensor Mlp2::ForwardLogit(const Tensor& x, Activation inner) const {
  return l2_.Forward(Activate(l1_.Forward(x), inner));
}

namespace {
void ActivateInPlace(Matrix* m, Mlp2::Activation act) {
  switch (act) {
    case Mlp2::Activation::kRelu:
      ReluInPlace(m);
      break;
    case Mlp2::Activation::kSigmoid:
      SigmoidInPlace(m);
      break;
    case Mlp2::Activation::kNone:
      break;
  }
}
}  // namespace

Matrix Mlp2::Apply(const Matrix& x, Activation inner, Activation outer) const {
  Matrix out = ApplyLogit(x, inner);
  ActivateInPlace(&out, outer);
  return out;
}

Matrix Mlp2::ApplyLogit(const Matrix& x, Activation inner) const {
  Matrix hidden = l1_.Apply(x);
  ActivateInPlace(&hidden, inner);
  return l2_.Apply(hidden);
}

}  // namespace lpce::nn
