#include "nn/arena.h"

#include <cstdint>
#include <cstring>

namespace lpce::nn {

namespace {

// 16 floats = 64 bytes: one cache line, and wide enough for any vector ISA
// the -march=native lane may pick.
constexpr size_t kAlignFloats = 16;
constexpr size_t kMinBlockFloats = size_t{1} << 16;  // 256 KiB first block

size_t AlignUp(size_t n) {
  return (n + kAlignFloats - 1) & ~(kAlignFloats - 1);
}

}  // namespace

InferArena::Block InferArena::MakeBlock(size_t min_floats) {
  size_t size = kMinBlockFloats;
  if (!blocks_.empty()) size = blocks_.back().size * 2;
  if (size < min_floats) size = AlignUp(min_floats);
  Block b;
  // new[] default-initializes floats (uninitialized) — callers either
  // overwrite (Gemm, Copy) or ask for AllocZeroed. new float[] only
  // guarantees 16-byte alignment, so over-allocate one alignment unit and
  // round the base up to the documented 64-byte contract.
  b.data = std::unique_ptr<float[]>(new float[size + kAlignFloats]);
  const uintptr_t raw = reinterpret_cast<uintptr_t>(b.data.get());
  const uintptr_t aligned =
      (raw + kAlignFloats * sizeof(float) - 1) &
      ~(uintptr_t{kAlignFloats * sizeof(float) - 1});
  b.base = reinterpret_cast<float*>(aligned);
  b.size = size;
  ++heap_allocations_;
  return b;
}

float* InferArena::Alloc(size_t n) {
  n = AlignUp(n == 0 ? 1 : n);
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.used + n <= b.size) {
      float* p = b.base + b.used;
      b.used += n;
      return p;
    }
    ++active_;
  }
  blocks_.push_back(MakeBlock(n));
  active_ = blocks_.size() - 1;
  Block& b = blocks_.back();
  b.used = n;
  return b.base;
}

float* InferArena::AllocZeroed(size_t n) {
  float* p = Alloc(n);
  std::memset(p, 0, n * sizeof(float));
  return p;
}

void InferArena::Reset() {
  if (blocks_.size() > 1) {
    // A pass spilled past the first block: replace the chain with one block
    // big enough for the whole high-water mark (plus slack from alignment),
    // so the next pass of the same shape never allocates.
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    blocks_.push_back(MakeBlock(total));
  }
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
}

size_t InferArena::capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

size_t InferArena::used() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.used;
  return total;
}

InferArena& InferArena::ThreadLocal() {
  thread_local InferArena arena;
  return arena;
}

}  // namespace lpce::nn
