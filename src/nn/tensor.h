// Reverse-mode automatic differentiation over Matrix values.
//
// A dynamic compute graph is built per training sample (the tree-structured
// SRU/LSTM models have sample-dependent topology); Backward(root) then
// accumulates gradients into every reachable node with requires_grad set.
// Parameters are long-lived tensors owned by a ParamStore (nn/layers.h);
// their gradients accumulate across samples until the optimizer steps.
#ifndef LPCE_NN_TENSOR_H_
#define LPCE_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace lpce::nn {

class TensorNode;
using Tensor = std::shared_ptr<TensorNode>;

/// One vertex of the autograd graph: a value, an optional gradient, and the
/// backward function that scatters this node's gradient into its inputs.
class TensorNode {
 public:
  explicit TensorNode(Matrix value, bool requires_grad = false)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }

  /// Gradient of the scalar loss w.r.t. this node. Allocated lazily.
  Matrix& grad() {
    if (grad_.rows() != value_.rows() || grad_.cols() != value_.cols()) {
      grad_ = Matrix(value_.rows(), value_.cols(), 0.0f);
    }
    return grad_;
  }

  void ZeroGrad() { grad_ = Matrix(value_.rows(), value_.cols(), 0.0f); }

  // Graph wiring (used by the op constructors below).
  std::vector<Tensor>& inputs() { return inputs_; }
  void set_backward(std::function<void(TensorNode*)> fn) { backward_ = std::move(fn); }
  bool has_backward() const { return static_cast<bool>(backward_); }
  void RunBackward() {
    if (backward_) backward_(this);
  }

 private:
  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  std::vector<Tensor> inputs_;
  std::function<void(TensorNode*)> backward_;
};

/// Creates a leaf tensor. requires_grad marks trainable parameters.
Tensor MakeTensor(Matrix value, bool requires_grad = false);

/// Matrix product a(m,k) * b(k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Element-wise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
/// Adds a 1xN bias row to every row of a (MxN).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
/// Element-wise difference a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Element-wise (Hadamard) product.
Tensor Mul(const Tensor& a, const Tensor& b);
/// a * scalar.
Tensor Scale(const Tensor& a, float s);
/// a + scalar (element-wise).
Tensor AddScalar(const Tensor& a, float s);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Element-wise |a| (subgradient 0 at 0).
Tensor Abs(const Tensor& a);
/// Horizontal concatenation [a | b] (same row count).
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Sum of all elements, as a 1x1 tensor.
Tensor Sum(const Tensor& a);

/// Runs reverse-mode accumulation from a 1x1 root (seeds d(root)/d(root) = 1).
void Backward(const Tensor& root);

}  // namespace lpce::nn

#endif  // LPCE_NN_TENSOR_H_
