// The cardinality-estimator interface consumed by the optimizer, plus the
// observation hooks that progressive refinement (LPCE-R) implements.
#ifndef LPCE_CARD_ESTIMATOR_H_
#define LPCE_CARD_ESTIMATOR_H_

#include <string>
#include <unordered_map>

#include "query/query.h"

namespace lpce::card {

/// Estimates the COUNT(*) cardinality of connected table subsets of a query.
///
/// The planner calls PrepareQuery once per query, then EstimateSubset for
/// each connected subset it enumerates (memoized by the planner's estimation
/// pool, paper Sec. 6.1). During execution the re-optimization controller
/// feeds actual cardinalities of finished sub-plans through ObserveActual;
/// refinable estimators (LPCE-R) use them to improve later estimates.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;

  /// Called once before planning each query; may batch-precompute.
  virtual void PrepareQuery(const qry::Query& query) { (void)query; }

  /// Cardinality estimate (>= 0) for the connected subset `rels`.
  virtual double EstimateSubset(const qry::Query& query, qry::RelSet rels) = 0;

  /// Reports that the sub-plan covering `rels` finished with `actual` rows.
  virtual void ObserveActual(const qry::Query& query, qry::RelSet rels,
                             double actual) {
    (void)query;
    (void)rels;
    (void)actual;
  }

  /// Clears per-query observation state.
  virtual void ResetObservations() {}

  /// True when ObserveActual actually refines subsequent estimates.
  virtual bool SupportsRefinement() const { return false; }
};

/// Decorator that pins observed subsets to their exact cardinalities and
/// delegates everything else. Used by the re-optimization controller so that
/// *every* estimator benefits from the known cardinalities of materialized
/// intermediates (the refinement models additionally adjust the unseen
/// supersets).
class ObservedOverlay : public CardinalityEstimator {
 public:
  explicit ObservedOverlay(CardinalityEstimator* base) : base_(base) {}

  std::string name() const override { return base_->name(); }
  void PrepareQuery(const qry::Query& query) override { base_->PrepareQuery(query); }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    auto it = observed_.find(rels);
    if (it != observed_.end()) return it->second;
    return base_->EstimateSubset(query, rels);
  }

  void ObserveActual(const qry::Query& query, qry::RelSet rels,
                     double actual) override {
    observed_[rels] = actual;
    base_->ObserveActual(query, rels, actual);
  }

  void ResetObservations() override {
    observed_.clear();
    base_->ResetObservations();
  }

  bool SupportsRefinement() const override { return base_->SupportsRefinement(); }

 private:
  CardinalityEstimator* base_;
  std::unordered_map<qry::RelSet, double> observed_;
};

/// Oracle that returns true cardinalities from a precomputed map (testing
/// and upper-bound experiments). Missing subsets fall back to 1.
class OracleEstimator : public CardinalityEstimator {
 public:
  explicit OracleEstimator(std::unordered_map<qry::RelSet, double> truth)
      : truth_(std::move(truth)) {}

  std::string name() const override { return "Oracle"; }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    (void)query;
    auto it = truth_.find(rels);
    return it == truth_.end() ? 1.0 : it->second;
  }

 private:
  std::unordered_map<qry::RelSet, double> truth_;
};

}  // namespace lpce::card

#endif  // LPCE_CARD_ESTIMATOR_H_
