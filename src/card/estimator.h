// The cardinality-estimator interface consumed by the optimizer, plus the
// observation hooks that progressive refinement (LPCE-R) implements.
#ifndef LPCE_CARD_ESTIMATOR_H_
#define LPCE_CARD_ESTIMATOR_H_

#include <string>
#include <unordered_map>

#include "query/fingerprint.h"
#include "query/query.h"

namespace lpce::card {

/// Estimates the COUNT(*) cardinality of connected table subsets of a query.
///
/// The planner calls PrepareQuery once per query, then EstimateSubset for
/// each connected subset it enumerates (memoized by the planner's estimation
/// pool, paper Sec. 6.1). During execution the re-optimization controller
/// feeds actual cardinalities of finished sub-plans through ObserveActual;
/// refinable estimators (LPCE-R) use them to improve later estimates.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;

  /// Called once before planning each query; may batch-precompute.
  virtual void PrepareQuery(const qry::Query& query) { (void)query; }

  /// Cardinality estimate (>= 0) for the connected subset `rels`.
  virtual double EstimateSubset(const qry::Query& query, qry::RelSet rels) = 0;

  /// Reports that the sub-plan covering `rels` finished with `actual` rows.
  virtual void ObserveActual(const qry::Query& query, qry::RelSet rels,
                             double actual) {
    (void)query;
    (void)rels;
    (void)actual;
  }

  /// Clears per-query observation state.
  virtual void ResetObservations() {}

  /// True when ObserveActual actually refines subsequent estimates.
  virtual bool SupportsRefinement() const { return false; }

  /// Template-cache support (optimizer/plan_cache.h): what `pred`'s literal
  /// contributes to this estimator's estimates, beyond the (column, op)
  /// shape that the fingerprint already covers structurally. Contract: two
  /// predicates with the same (column, op) and equal `exact` components must
  /// yield bitwise-identical estimates from this estimator for every subset
  /// — that equality is what lets the cache serve a stored plan skeleton as
  /// if it had been planned fresh. The default is the literal value itself
  /// (conservative: only exact literal repeats hit); estimators that only
  /// see a literal through its selectivity override this so all equal-
  /// selectivity variants of a template collide (HistogramEstimator).
  /// Must not require PrepareQuery and must be const-safe across threads.
  virtual qry::PredicateSignature FingerprintPredicate(
      const qry::Query& query, const qry::Predicate& pred) const {
    (void)query;
    qry::PredicateSignature sig;
    sig.exact = qry::Mix64(static_cast<uint64_t>(pred.value));
    sig.bucket = 0;
    return sig;
  }
};

/// Decorator that pins observed subsets to their exact cardinalities and
/// delegates everything else. Used by the re-optimization controller so that
/// *every* estimator benefits from the known cardinalities of materialized
/// intermediates (the refinement models additionally adjust the unseen
/// supersets).
class ObservedOverlay : public CardinalityEstimator {
 public:
  explicit ObservedOverlay(CardinalityEstimator* base) : base_(base) {}

  std::string name() const override { return base_->name(); }
  void PrepareQuery(const qry::Query& query) override { base_->PrepareQuery(query); }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    auto it = observed_.find(rels);
    if (it != observed_.end()) return it->second;
    return base_->EstimateSubset(query, rels);
  }

  void ObserveActual(const qry::Query& query, qry::RelSet rels,
                     double actual) override {
    observed_[rels] = actual;
    base_->ObserveActual(query, rels, actual);
  }

  void ResetObservations() override {
    observed_.clear();
    base_->ResetObservations();
  }

  bool SupportsRefinement() const override { return base_->SupportsRefinement(); }

  qry::PredicateSignature FingerprintPredicate(
      const qry::Query& query, const qry::Predicate& pred) const override {
    return base_->FingerprintPredicate(query, pred);
  }

 private:
  CardinalityEstimator* base_;
  std::unordered_map<qry::RelSet, double> observed_;
};

/// Oracle that returns true cardinalities from a precomputed map (testing
/// and upper-bound experiments). Missing subsets fall back to 1.
class OracleEstimator : public CardinalityEstimator {
 public:
  explicit OracleEstimator(std::unordered_map<qry::RelSet, double> truth)
      : truth_(std::move(truth)) {}

  std::string name() const override { return "Oracle"; }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    (void)query;
    auto it = truth_.find(rels);
    return it == truth_.end() ? 1.0 : it->second;
  }

 private:
  std::unordered_map<qry::RelSet, double> truth_;
};

}  // namespace lpce::card

#endif  // LPCE_CARD_ESTIMATOR_H_
