#include "card/histogram_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace lpce::card {

double HistogramEstimator::EstimateScan(const qry::Query& query,
                                        int table_pos) const {
  const int32_t table_id = query.tables[table_pos];
  double card = static_cast<double>(stats_->table_rows(table_id));
  for (const auto& pred : query.PredicatesOf(table_pos)) {
    card *= stats_->column(pred.col).Selectivity(pred.op, pred.value);
  }
  return std::max(card, 0.0);
}

double HistogramEstimator::EstimateSubset(const qry::Query& query,
                                          qry::RelSet rels) {
  double card = 1.0;
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (qry::Contains(rels, pos)) card *= std::max(EstimateScan(query, pos), 1e-6);
  }
  for (int join_idx : query.JoinsWithin(rels)) {
    const qry::Join& join = query.joins[join_idx];
    const double nd_left = stats_->column(join.left).n_distinct;
    const double nd_right = stats_->column(join.right).n_distinct;
    card /= std::max(1.0, std::max(nd_left, nd_right));
  }
  return std::max(card, 0.0);
}

qry::PredicateSignature HistogramEstimator::FingerprintPredicate(
    const qry::Query& query, const qry::Predicate& pred) const {
  (void)query;
  const double sel = stats_->column(pred.col).Selectivity(pred.op, pred.value);
  qry::PredicateSignature sig;
  static_assert(sizeof(sig.exact) == sizeof(sel));
  std::memcpy(&sig.exact, &sel, sizeof(sel));  // bitwise, not value, equality
  sig.bucket = qry::SelectivityBucket(sel);
  return sig;
}

}  // namespace lpce::card
