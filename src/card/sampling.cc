#include "card/sampling.h"

#include <algorithm>

namespace lpce::card {

namespace {

/// Per-hop wiring of a walk: attach `table_pos` by matching `new_side` (a
/// column of table_pos) against `old_side` (a column of an earlier table).
struct Hop {
  int table_pos;
  db::ColRef new_side;
  db::ColRef old_side;
};

/// Greedy connected ordering of the subset (mirrors BuildCanonicalTree).
std::vector<Hop> BuildHops(const qry::Query& query, qry::RelSet rels,
                           int* first_pos) {
  *first_pos = __builtin_ctz(rels);
  qry::RelSet covered = qry::Bit(*first_pos);
  std::vector<Hop> hops;
  while (covered != rels) {
    bool attached = false;
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      if (!qry::Contains(rels, pos) || qry::Contains(covered, pos)) continue;
      const auto joins = query.JoinsBetween(covered, qry::Bit(pos));
      if (joins.empty()) continue;
      const qry::Join& join = query.joins[joins[0]];
      Hop hop;
      hop.table_pos = pos;
      if (join.left.table == query.tables[pos]) {
        hop.new_side = join.left;
        hop.old_side = join.right;
      } else {
        hop.new_side = join.right;
        hop.old_side = join.left;
      }
      hops.push_back(hop);
      covered |= qry::Bit(pos);
      attached = true;
      break;
    }
    LPCE_CHECK_MSG(attached, "walk subset must be connected");
  }
  return hops;
}

bool PassesPredicates(const db::Table& table,
                      const std::vector<qry::Predicate>& preds, uint32_t row) {
  for (const auto& pred : preds) {
    if (!qry::EvalCmp(table.at(row, pred.col.column), pred.op, pred.value)) {
      return false;
    }
  }
  return true;
}

}  // namespace

double JoinSampleEstimator::EstimateSubset(const qry::Query& query,
                                           qry::RelSet rels) {
  int first_pos = 0;
  const std::vector<Hop> hops = BuildHops(query, rels, &first_pos);

  // Cache per-table predicate lists for the walk loop.
  std::vector<std::vector<qry::Predicate>> preds(query.num_tables());
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (qry::Contains(rels, pos)) preds[pos] = query.PredicatesOf(pos);
  }

  const db::Table& first_table = db_->table(query.tables[first_pos]);
  if (first_table.num_rows() == 0) return 0.0;

  std::vector<uint32_t> assignment(query.num_tables(), 0);
  double total = 0.0;
  for (int w = 0; w < walks_; ++w) {
    const uint32_t row0 =
        static_cast<uint32_t>(rng_.Uniform(first_table.num_rows()));
    if (!PassesPredicates(first_table, preds[first_pos], row0)) continue;
    double weight = static_cast<double>(first_table.num_rows());
    assignment[first_pos] = row0;
    bool dead = false;
    for (const Hop& hop : hops) {
      const db::Table& old_table = db_->table(hop.old_side.table);
      const int old_pos = query.PositionOf(hop.old_side.table);
      const int64_t value = old_table.at(assignment[old_pos],
                                         hop.old_side.column);
      const auto& matches = db_->hash_index(hop.new_side).Lookup(value);
      const db::Table& new_table = db_->table(query.tables[hop.table_pos]);
      // Reservoir-pick a uniform passing match while counting them.
      size_t passing = 0;
      uint32_t chosen = 0;
      for (uint32_t row : matches) {
        if (!PassesPredicates(new_table, preds[hop.table_pos], row)) continue;
        ++passing;
        if (rng_.Uniform(passing) == 0) chosen = row;
      }
      if (passing == 0) {
        dead = true;
        break;
      }
      weight *= static_cast<double>(passing);
      assignment[hop.table_pos] = chosen;
    }
    if (!dead) total += weight;
  }
  return total / static_cast<double>(walks_);
}

double HybridSampleEstimator::EstimateSubset(const qry::Query& query,
                                             qry::RelSet rels) {
  const double sample_est = sampler_->EstimateSubset(query, rels);
  const std::vector<float> extra = {
      static_cast<float>(correction_->CardToY(sample_est))};
  return correction_->PredictCard(query, rels, extra);
}

}  // namespace lpce::card
