// Sampling-based data-driven estimators.
//
// JoinSampleEstimator performs Wander-Join-style random walks over the
// database's hash indexes: unbiased, near-exact with enough walks, but each
// estimate costs milliseconds of data access — the accuracy/latency profile
// of the paper's data-driven baselines (DeepDB, NeuroCard, FLAT). The walk
// budget is the accuracy/latency knob; the benches register one instance per
// baseline (see DESIGN.md, substitution 4).
//
// HybridSampleEstimator (the UAE stand-in, substitution 5) combines a small
// walk budget with a learned MSCN-style correction network that takes the
// sample estimate as an extra input — learning from both data and queries.
#ifndef LPCE_CARD_SAMPLING_H_
#define LPCE_CARD_SAMPLING_H_

#include <memory>
#include <string>

#include "card/estimator.h"
#include "card/mscn.h"
#include "common/rng.h"
#include "storage/database.h"

namespace lpce::card {

class JoinSampleEstimator : public CardinalityEstimator {
 public:
  JoinSampleEstimator(std::string name, const db::Database* database, int walks,
                      uint64_t seed)
      : name_(std::move(name)), db_(database), walks_(walks), seed_(seed),
        rng_(seed) {}

  std::string name() const override { return name_; }

  /// Reseeds the walk RNG from the base seed, making every query's estimates
  /// a pure function of (seed, walks, query) — independent of which queries
  /// ran before. Required by the serving layer's serial-vs-concurrent
  /// equivalence contract; before this the stream carried across queries, so
  /// estimates depended on submission order. Within one query the stream is
  /// still shared across subsets (the planner's enumeration order is
  /// deterministic).
  void PrepareQuery(const qry::Query& query) override {
    (void)query;
    rng_ = Rng(seed_);
  }

  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override;

  int walks() const { return walks_; }

 private:
  std::string name_;
  const db::Database* db_;
  int walks_;
  uint64_t seed_;
  // Mutable per-query state: instances must not be shared across concurrent
  // queries (one per serving session; see engine/server.h).
  Rng rng_;
};

class HybridSampleEstimator : public CardinalityEstimator {
 public:
  /// `sampler` supplies the data signal (small walk budget); `correction`
  /// must have extra_inputs == 1 and be trained with the sampler's estimate
  /// as the extra feature.
  HybridSampleEstimator(std::string name, JoinSampleEstimator* sampler,
                        const MscnModel* correction)
      : name_(std::move(name)), sampler_(sampler), correction_(correction) {}

  std::string name() const override { return name_; }
  /// Forwards to the sampler so its per-query reseeding contract holds.
  void PrepareQuery(const qry::Query& query) override {
    sampler_->PrepareQuery(query);
  }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override;

 private:
  std::string name_;
  JoinSampleEstimator* sampler_;
  const MscnModel* correction_;
};

}  // namespace lpce::card

#endif  // LPCE_CARD_SAMPLING_H_
