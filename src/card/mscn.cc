#include "card/mscn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace lpce::card {

MscnModel::MscnModel(const db::Catalog* catalog,
                     const model::FeatureEncoder* encoder, MscnConfig config)
    : catalog_(catalog), encoder_(encoder), config_(config) {
  Rng rng(config_.seed);
  const size_t h = static_cast<size_t>(config_.hidden);
  const size_t n_cols = static_cast<size_t>(catalog_->TotalColumns());
  const size_t n_tables = static_cast<size_t>(catalog_->num_tables());
  const size_t pred_dim = n_cols + qry::kNumCmpOps + 1;
  table_mlp_ = nn::Mlp2(&params_, "tables", n_tables, h, h, &rng);
  join_mlp_ = nn::Mlp2(&params_, "joins", n_cols, h, h, &rng);
  pred_mlp_ = nn::Mlp2(&params_, "preds", pred_dim, h, h, &rng);
  out_mlp_ = nn::Mlp2(&params_, "out",
                      3 * h + static_cast<size_t>(config_.extra_inputs), h, 1, &rng);
}

double MscnModel::CardToY(double card) const {
  return std::clamp(std::log1p(std::max(0.0, card)) / config_.log_max_card, 0.0,
                    1.0);
}

double MscnModel::YToCard(double y) const {
  return std::expm1(std::clamp(y, 0.0, 1.0) * config_.log_max_card);
}

namespace {

/// Mean-pools a set of element tensors (all 1 x h); `fallback_dim` gives the
/// width when the set is empty.
nn::Tensor MeanPool(const std::vector<nn::Tensor>& elements, size_t fallback_dim) {
  if (elements.empty()) return nn::MakeTensor(nn::Matrix(1, fallback_dim, 0.0f));
  nn::Tensor acc = elements[0];
  for (size_t i = 1; i < elements.size(); ++i) acc = nn::Add(acc, elements[i]);
  return nn::Scale(acc, 1.0f / static_cast<float>(elements.size()));
}

}  // namespace

nn::Tensor MscnModel::Forward(const qry::Query& query, qry::RelSet rels,
                              const std::vector<float>& extra) const {
  LPCE_CHECK(static_cast<int>(extra.size()) == config_.extra_inputs);
  const size_t h = static_cast<size_t>(config_.hidden);
  const size_t n_cols = static_cast<size_t>(catalog_->TotalColumns());
  const size_t n_tables = static_cast<size_t>(catalog_->num_tables());

  std::vector<nn::Tensor> table_embs, join_embs, pred_embs;
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (!qry::Contains(rels, pos)) continue;
    nn::Matrix one_hot(1, n_tables, 0.0f);
    one_hot.at(0, static_cast<size_t>(query.tables[pos])) = 1.0f;
    table_embs.push_back(table_mlp_.Forward(nn::MakeTensor(std::move(one_hot)),
                                            nn::Mlp2::Activation::kRelu,
                                            nn::Mlp2::Activation::kRelu));
    for (const auto& pred : query.PredicatesOf(pos)) {
      nn::Matrix feat(1, n_cols + qry::kNumCmpOps + 1, 0.0f);
      feat.at(0, static_cast<size_t>(catalog_->GlobalColumnId(pred.col))) = 1.0f;
      feat.at(0, n_cols + static_cast<size_t>(pred.op)) = 1.0f;
      feat.at(0, n_cols + qry::kNumCmpOps) =
          encoder_->NormalizeOperand(pred.col, pred.value);
      pred_embs.push_back(pred_mlp_.Forward(nn::MakeTensor(std::move(feat)),
                                            nn::Mlp2::Activation::kRelu,
                                            nn::Mlp2::Activation::kRelu));
    }
  }
  for (int join_idx : query.JoinsWithin(rels)) {
    const qry::Join& join = query.joins[join_idx];
    nn::Matrix two_hot(1, n_cols, 0.0f);
    two_hot.at(0, static_cast<size_t>(catalog_->GlobalColumnId(join.left))) = 1.0f;
    two_hot.at(0, static_cast<size_t>(catalog_->GlobalColumnId(join.right))) = 1.0f;
    join_embs.push_back(join_mlp_.Forward(nn::MakeTensor(std::move(two_hot)),
                                          nn::Mlp2::Activation::kRelu,
                                          nn::Mlp2::Activation::kRelu));
  }

  nn::Tensor pooled = nn::ConcatCols(
      nn::ConcatCols(MeanPool(table_embs, h), MeanPool(join_embs, h)),
      MeanPool(pred_embs, h));
  if (config_.extra_inputs > 0) {
    nn::Matrix extra_mat(1, extra.size());
    for (size_t i = 0; i < extra.size(); ++i) extra_mat.at(0, i) = extra[i];
    pooled = nn::ConcatCols(pooled, nn::MakeTensor(std::move(extra_mat)));
  }
  return nn::Sigmoid(out_mlp_.ForwardLogit(pooled));
}

double MscnModel::PredictCard(const qry::Query& query, qry::RelSet rels,
                              const std::vector<float>& extra) const {
  LPCE_CHECK(static_cast<int>(extra.size()) == config_.extra_inputs);
  const size_t h = static_cast<size_t>(config_.hidden);
  const size_t n_cols = static_cast<size_t>(catalog_->TotalColumns());
  const size_t n_tables = static_cast<size_t>(catalog_->num_tables());

  nn::Matrix table_pool(1, h, 0.0f), join_pool(1, h, 0.0f), pred_pool(1, h, 0.0f);
  size_t n_table = 0, n_join = 0, n_pred = 0;
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (!qry::Contains(rels, pos)) continue;
    nn::Matrix one_hot(1, n_tables, 0.0f);
    one_hot.at(0, static_cast<size_t>(query.tables[pos])) = 1.0f;
    table_pool.AddInPlace(table_mlp_.Apply(one_hot, nn::Mlp2::Activation::kRelu,
                                           nn::Mlp2::Activation::kRelu));
    ++n_table;
    for (const auto& pred : query.PredicatesOf(pos)) {
      nn::Matrix feat(1, n_cols + qry::kNumCmpOps + 1, 0.0f);
      feat.at(0, static_cast<size_t>(catalog_->GlobalColumnId(pred.col))) = 1.0f;
      feat.at(0, n_cols + static_cast<size_t>(pred.op)) = 1.0f;
      feat.at(0, n_cols + qry::kNumCmpOps) =
          encoder_->NormalizeOperand(pred.col, pred.value);
      pred_pool.AddInPlace(pred_mlp_.Apply(feat, nn::Mlp2::Activation::kRelu,
                                           nn::Mlp2::Activation::kRelu));
      ++n_pred;
    }
  }
  for (int join_idx : query.JoinsWithin(rels)) {
    const qry::Join& join = query.joins[join_idx];
    nn::Matrix two_hot(1, n_cols, 0.0f);
    two_hot.at(0, static_cast<size_t>(catalog_->GlobalColumnId(join.left))) = 1.0f;
    two_hot.at(0, static_cast<size_t>(catalog_->GlobalColumnId(join.right))) = 1.0f;
    join_pool.AddInPlace(join_mlp_.Apply(two_hot, nn::Mlp2::Activation::kRelu,
                                         nn::Mlp2::Activation::kRelu));
    ++n_join;
  }

  nn::Matrix pooled(1, 3 * h + static_cast<size_t>(config_.extra_inputs), 0.0f);
  for (size_t j = 0; j < h; ++j) {
    if (n_table > 0) pooled.at(0, j) = table_pool.at(0, j) / n_table;
    if (n_join > 0) pooled.at(0, h + j) = join_pool.at(0, j) / n_join;
    if (n_pred > 0) pooled.at(0, 2 * h + j) = pred_pool.at(0, j) / n_pred;
  }
  for (size_t i = 0; i < extra.size(); ++i) pooled.at(0, 3 * h + i) = extra[i];
  nn::Matrix y = out_mlp_.Apply(pooled, nn::Mlp2::Activation::kRelu,
                                nn::Mlp2::Activation::kSigmoid);
  return YToCard(static_cast<double>(y.at(0, 0)));
}

double TrainMscn(MscnModel* model, const std::vector<wk::LabeledQuery>& train,
                 const MscnTrainOptions& options) {
  struct Sample {
    const qry::Query* query;
    qry::RelSet rels;
    double card;
    std::vector<float> extra;
  };
  std::vector<Sample> samples;
  for (const auto& labeled : train) {
    for (const auto& [rels, card] : labeled.true_cards) {
      Sample s;
      s.query = &labeled.query;
      s.rels = rels;
      s.card = static_cast<double>(card);
      if (options.extra_fn) s.extra = options.extra_fn(labeled.query, rels);
      samples.push_back(std::move(s));
    }
  }

  // Flow-Loss weighting: normalize weights to mean 1 so the lr transfers.
  std::vector<float> weights(samples.size(), 1.0f);
  if (options.cost_weighted) {
    double total = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
      weights[i] = static_cast<float>(1.0 + std::log1p(samples[i].card));
      total += weights[i];
    }
    const float norm = static_cast<float>(samples.size() / std::max(total, 1e-9));
    for (auto& w : weights) w *= norm;
  }

  nn::Adam adam(&model->params(), {.lr = options.lr});
  Rng rng(options.seed);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batch_count = 0;
    for (size_t idx : order) {
      const Sample& s = samples[idx];
      nn::Tensor y = model->Forward(*s.query, s.rels, s.extra);
      nn::Matrix target(1, 1);
      target.at(0, 0) = static_cast<float>(model->CardToY(s.card));
      nn::Tensor loss =
          nn::Scale(nn::Abs(nn::Sub(y, nn::MakeTensor(target))), weights[idx]);
      nn::Backward(loss);
      epoch_loss += loss->value().at(0, 0);
      if (++batch_count >= options.batch_size) {
        model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
        model->params().ClipGradNorm(options.grad_clip);
        adam.Step();
        batch_count = 0;
      }
    }
    if (batch_count > 0) {
      model->params().ScaleGrads(1.0f / static_cast<float>(batch_count));
      adam.Step();
    }
    last_loss = samples.empty() ? 0.0 : epoch_loss / samples.size();
    LPCE_LOG(Debug) << "mscn epoch " << epoch << " loss " << last_loss;
  }
  return last_loss;
}

}  // namespace lpce::card
