// The PostgreSQL-style baseline estimator: per-column histograms + MCVs with
// attribute-independence and join-uniformity assumptions. This plays the
// role of vanilla PostgreSQL in every end-to-end comparison (paper Eq. 9's
// T_postgres side).
#ifndef LPCE_CARD_HISTOGRAM_ESTIMATOR_H_
#define LPCE_CARD_HISTOGRAM_ESTIMATOR_H_

#include <string>

#include "card/estimator.h"
#include "stats/column_stats.h"

namespace lpce::card {

class HistogramEstimator : public CardinalityEstimator {
 public:
  explicit HistogramEstimator(const stats::DatabaseStats* stats) : stats_(stats) {}

  std::string name() const override { return "PostgreSQL"; }

  /// Selection: |T| * prod(pred selectivities).  Join: the textbook
  /// |A><B| = |A|*|B| / max(nd(a), nd(b)) applied per join edge inside the
  /// subset — exactly the independence/uniformity assumptions whose failure
  /// on correlated data motivates learned estimators.
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override;

  /// Estimated output rows of a filtered base-table scan.
  double EstimateScan(const qry::Query& query, int table_pos) const;

  /// A literal only ever reaches this estimator through
  /// ColumnStats::Selectivity, so its exact signature is the bitwise
  /// selectivity: any two literals with equal selectivity produce bitwise-
  /// identical estimates here, and the plan cache may serve them from the
  /// same entry (the `user_id = ?` template case).
  qry::PredicateSignature FingerprintPredicate(
      const qry::Query& query, const qry::Predicate& pred) const override;

 private:
  const stats::DatabaseStats* stats_;
};

}  // namespace lpce::card

#endif  // LPCE_CARD_HISTOGRAM_ESTIMATOR_H_
