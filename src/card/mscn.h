// MSCN baseline (Kipf et al., CIDR'19): a multi-set convolutional network.
//
// A (sub-)query is three sets — tables, joins, predicates. Each element is
// embedded by a per-set MLP, sets are mean-pooled, the pooled vectors are
// concatenated and mapped to a normalized log-cardinality. No tree
// structure is used, which is MSCN's accuracy weakness on deep plans
// (paper Sec. 4.1).
//
// The same class implements the Flow-Loss baseline (Marcus et al., VLDB'21)
// via a cost-weighted training loss: estimation errors on sub-plans with
// larger (true) intermediate results — the ones that dominate plan cost —
// are weighted more heavily. See DESIGN.md, substitution 6.
//
// The optional `extra_input` channel feeds side information into the final
// MLP; the UAE-style hybrid estimator passes a sampling-based estimate
// through it (DESIGN.md, substitution 5).
#ifndef LPCE_CARD_MSCN_H_
#define LPCE_CARD_MSCN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "card/estimator.h"
#include "lpce/feature.h"
#include "nn/adam.h"
#include "nn/cells.h"
#include "workload/workload.h"

namespace lpce::card {

struct MscnConfig {
  int hidden = 64;
  double log_max_card = 20.0;
  uint64_t seed = 9;
  int extra_inputs = 0;  // appended to the pooled representation
};

class MscnModel {
 public:
  MscnModel(const db::Catalog* catalog, const model::FeatureEncoder* encoder,
            MscnConfig config);

  MscnModel(const MscnModel&) = delete;
  MscnModel& operator=(const MscnModel&) = delete;

  /// Forward pass for the sub-query over `rels`; `extra` (may be empty)
  /// must have config.extra_inputs entries.
  nn::Tensor Forward(const qry::Query& query, qry::RelSet rels,
                     const std::vector<float>& extra = {}) const;

  /// Inference fast path (no autograd graph).
  double PredictCard(const qry::Query& query, qry::RelSet rels,
                     const std::vector<float>& extra = {}) const;

  double CardToY(double card) const;
  double YToCard(double y) const;

  /// Mutable access is for training/serialization only. Once trained, the
  /// parameters are read-only: every inference path (Forward/PredictCard)
  /// only reads them, so a trained model is safe to share across threads.
  nn::ParamStore& params() { return params_; }
  const nn::ParamStore& params() const { return params_; }
  const MscnConfig& config() const { return config_; }

 private:
  const db::Catalog* catalog_;
  const model::FeatureEncoder* encoder_;
  MscnConfig config_;
  nn::ParamStore params_;
  nn::Mlp2 table_mlp_;
  nn::Mlp2 join_mlp_;
  nn::Mlp2 pred_mlp_;
  nn::Mlp2 out_mlp_;
};

struct MscnTrainOptions {
  int epochs = 10;
  float lr = 1e-3f;
  int batch_size = 64;
  float grad_clip = 5.0f;
  uint64_t seed = 99;
  /// Flow-Loss style weighting: per-sample weight grows with the sub-plan's
  /// true cardinality (its impact on plan cost).
  bool cost_weighted = false;
  /// Supplies the extra input for each (query, rels) training sample when
  /// the model has extra_inputs > 0 (the hybrid estimator's sampler).
  std::function<std::vector<float>(const qry::Query&, qry::RelSet)> extra_fn;
};

/// Trains on every labeled subset of every training query.
double TrainMscn(MscnModel* model, const std::vector<wk::LabeledQuery>& train,
                 const MscnTrainOptions& options);

class MscnEstimator : public CardinalityEstimator {
 public:
  MscnEstimator(std::string name, const MscnModel* model)
      : name_(std::move(name)), model_(model) {}

  std::string name() const override { return name_; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    return model_->PredictCard(query, rels);
  }

 private:
  std::string name_;
  const MscnModel* model_;
};

}  // namespace lpce::card

#endif  // LPCE_CARD_MSCN_H_
