// Estimator playground: compare every estimator family on the same queries —
// per-estimate accuracy AND latency side by side (a miniature of the paper's
// Table 1, runnable in seconds).
//
//   ./build/examples/estimator_playground
#include <cmath>
#include <cstdio>
#include <vector>

#include "card/histogram_estimator.h"
#include "card/mscn.h"
#include "card/sampling.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "lpce/estimators.h"
#include "workload/workload.h"

using namespace lpce;

int main() {
  db::SynthImdbOptions db_opts;
  db_opts.scale = 0.25;
  auto database = db::BuildSynthImdb(db_opts);
  stats::DatabaseStats stats(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  wk::GeneratorOptions gen_opts;
  gen_opts.seed = 3;
  wk::QueryGenerator generator(database.get(), gen_opts);
  auto train = generator.GenerateLabeled(150, 4, 7);
  auto test = generator.GenerateLabeled(25, 6, 6);
  const double log_max =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));

  // Query-driven: LPCE-I style tree model.
  model::TreeModelConfig tree_cfg;
  tree_cfg.feature_dim = encoder.dim();
  tree_cfg.dim = 32;
  tree_cfg.embed_hidden = 32;
  tree_cfg.out_hidden = 64;
  tree_cfg.log_max_card = log_max;
  model::TreeModel lpce_i(&encoder, tree_cfg);
  model::TrainOptions topt;
  topt.epochs = 10;
  model::TrainTreeModel(&lpce_i, *database, train, topt);

  // Query-driven: MSCN.
  card::MscnConfig mscn_cfg;
  mscn_cfg.hidden = 32;
  mscn_cfg.log_max_card = log_max;
  card::MscnModel mscn(&database->catalog(), &encoder, mscn_cfg);
  card::MscnTrainOptions mopt;
  mopt.epochs = 6;
  card::TrainMscn(&mscn, train, mopt);

  // The lineup.
  card::HistogramEstimator histogram(&stats);
  card::JoinSampleEstimator sampling("JoinSample", database.get(), 2000, 5);
  card::MscnEstimator mscn_est("MSCN", &mscn);
  model::TreeModelEstimator lpce_est("LPCE-I", &lpce_i, database.get());
  std::vector<card::CardinalityEstimator*> lineup = {&histogram, &sampling,
                                                     &mscn_est, &lpce_est};

  std::printf("\n%-12s %12s %12s %16s\n", "estimator", "median q", "mean q",
              "latency (us)");
  for (auto* estimator : lineup) {
    std::vector<double> qerrors;
    double seconds = 0.0;
    for (const auto& labeled : test) {
      WallTimer timer;
      const double est =
          estimator->EstimateSubset(labeled.query, labeled.query.AllRels());
      seconds += timer.ElapsedSeconds();
      qerrors.push_back(
          exec::QError(est, static_cast<double>(labeled.FinalCard())));
    }
    std::sort(qerrors.begin(), qerrors.end());
    double mean = 0.0;
    for (double q : qerrors) mean += q;
    std::printf("%-12s %12.2f %12.2f %16.1f\n", estimator->name().c_str(),
                qerrors[qerrors.size() / 2], mean / qerrors.size(),
                seconds / test.size() * 1e6);
  }
  std::printf("\nNote the tension the paper is built around: sampling is the"
              " most accurate\nbut pays data-access latency per estimate;"
              " learned query-driven models answer in\nmicroseconds from the"
              " query text alone.\n");
  return 0;
}
