// Interactive shell over the LPCE engine: type SQL COUNT(*) queries against
// the synthetic IMDB-style database, switch estimators, EXPLAIN plans, and
// watch re-optimization repair them.
//
//   ./build/examples/lpce_shell [scale]
//
// Commands:
//   \help                      this text
//   \tables                    list tables and row counts
//   \estimator NAME            postgres | lpce | sample  (default: lpce)
//   \reopt on|off              toggle mid-query re-optimization
//   \explain SQL               plan + estimates without executing
//   SQL                        execute and print count + time decomposition
//   \quit
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "card/histogram_estimator.h"
#include "card/sampling.h"
#include "engine/engine.h"
#include "lpce/estimators.h"
#include "query/parser.h"
#include "workload/workload.h"

using namespace lpce;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  \\help                 this text\n"
      "  \\tables               list tables and row counts\n"
      "  \\estimator NAME       postgres | lpce | sample\n"
      "  \\reopt on|off         toggle mid-query re-optimization\n"
      "  \\explain SQL          show the chosen plan without executing\n"
      "  \\analyze SQL          execute and show per-operator actuals/times\n"
      "  SQL                    SELECT COUNT(*) FROM ... WHERE ...\n"
      "  \\quit                 exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  std::printf("building synthetic IMDB-style database (scale %.2f)...\n", scale);
  db::SynthImdbOptions db_opts;
  db_opts.scale = scale;
  auto database = db::BuildSynthImdb(db_opts);
  stats::DatabaseStats stats(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  std::printf("training LPCE-I + LPCE-R on 150 sample queries...\n");
  wk::GeneratorOptions gen_opts;
  gen_opts.seed = 7;
  gen_opts.require_nonempty = true;
  wk::QueryGenerator generator(database.get(), gen_opts);
  auto train = generator.GenerateLabeled(150, 4, 7);
  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 32;
  config.embed_hidden = 32;
  config.out_hidden = 64;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel lpce_i(&encoder, config);
  model::TrainOptions train_opts;
  train_opts.epochs = 20;
  model::TrainTreeModel(&lpce_i, *database, train, train_opts);
  model::LpceR lpce_r(&encoder, config);
  model::LpceRTrainOptions ropt;
  ropt.pretrain.epochs = 10;
  ropt.refine_epochs = 4;
  ropt.pretrained_content = &lpce_i;
  model::TrainLpceR(&lpce_r, *database, train, ropt);

  card::HistogramEstimator postgres(&stats);
  card::JoinSampleEstimator sample("sample", database.get(), 2000, 99);
  model::TreeModelEstimator lpce("LPCE-I", &lpce_i, database.get());
  model::LpceREstimator refiner(&lpce_r, database.get());

  card::CardinalityEstimator* active = &lpce;
  eng::Engine engine(database.get(), opt::CostModel{});
  eng::RunConfig run_config;
  run_config.enable_reopt = true;

  PrintHelp();
  std::string line;
  std::printf("\nlpce> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    // Trim.
    while (!line.empty() && std::isspace((unsigned char)line.back())) line.pop_back();
    size_t start = 0;
    while (start < line.size() && std::isspace((unsigned char)line[start])) ++start;
    line = line.substr(start);
    if (line.empty()) {
      std::printf("lpce> ");
      std::fflush(stdout);
      continue;
    }

    if (line[0] == '\\') {
      std::istringstream iss(line.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "tables") {
        const db::Catalog& cat = database->catalog();
        for (int32_t t = 0; t < cat.num_tables(); ++t) {
          std::printf("  %-18s %8zu rows  (", cat.table(t).name.c_str(),
                      database->table(t).num_rows());
          for (size_t c = 0; c < cat.table(t).columns.size(); ++c) {
            std::printf("%s%s", c > 0 ? ", " : "",
                        cat.table(t).columns[c].name.c_str());
          }
          std::printf(")\n");
        }
      } else if (cmd == "estimator") {
        std::string name;
        iss >> name;
        if (name == "postgres") {
          active = &postgres;
        } else if (name == "lpce") {
          active = &lpce;
        } else if (name == "sample") {
          active = &sample;
        } else {
          std::printf("unknown estimator '%s' (postgres|lpce|sample)\n",
                      name.c_str());
        }
        std::printf("active estimator: %s\n", active->name().c_str());
      } else if (cmd == "reopt") {
        std::string flag;
        iss >> flag;
        run_config.enable_reopt = (flag != "off");
        std::printf("re-optimization %s\n",
                    run_config.enable_reopt ? "on" : "off");
      } else if (cmd == "analyze") {
        std::string sql;
        std::getline(iss, sql);
        qry::Query query;
        Status status = qry::ParseQuery(database->catalog(), sql, &query);
        if (!status.ok()) {
          std::printf("parse error: %s\n", status.ToString().c_str());
        } else {
          opt::Planner planner(database.get(), opt::CostModel{});
          active->ResetObservations();
          active->PrepareQuery(query);
          opt::PlanResult planned = planner.Plan(query, active);
          exec::Executor executor(database.get(), &query);
          exec::RowSetPtr result = executor.Execute(planned.plan.get());
          std::printf("%s", planned.plan
                                ->ToString(database->catalog(), query)
                                .c_str());
          std::printf("COUNT(*) = %llu\n",
                      static_cast<unsigned long long>(result->num_rows()));
        }
      } else if (cmd == "explain") {
        std::string sql;
        std::getline(iss, sql);
        qry::Query query;
        Status status = qry::ParseQuery(database->catalog(), sql, &query);
        if (!status.ok()) {
          std::printf("parse error: %s\n", status.ToString().c_str());
        } else {
          opt::Planner planner(database.get(), opt::CostModel{});
          active->ResetObservations();
          active->PrepareQuery(query);
          opt::PlanResult planned = planner.Plan(query, active);
          std::printf("%s", planned.plan
                                ->ToString(database->catalog(), query)
                                .c_str());
          std::printf("(%zu cardinality estimates, %.2f ms inference, "
                      "%.2f ms search)\n",
                      planned.num_estimates, planned.inference_seconds * 1e3,
                      planned.search_seconds * 1e3);
        }
      } else {
        std::printf("unknown command \\%s\n", cmd.c_str());
      }
    } else {
      qry::Query query;
      Status status = qry::ParseQuery(database->catalog(), line, &query);
      if (!status.ok()) {
        std::printf("parse error: %s\n", status.ToString().c_str());
      } else {
        card::CardinalityEstimator* ref =
            (active == &lpce && run_config.enable_reopt) ? &refiner : nullptr;
        eng::RunStats run = engine.RunQuery(query, active, ref, run_config);
        std::printf("COUNT(*) = %llu\n",
                    static_cast<unsigned long long>(run.result_count));
        std::printf("%.2f ms total  (plan %.2f, inference %.2f, reopt %.2f, "
                    "execution %.2f); %d re-optimization(s)\n",
                    run.TotalSeconds() * 1e3, run.plan_seconds * 1e3,
                    run.inference_seconds * 1e3, run.reopt_seconds * 1e3,
                    run.exec_seconds * 1e3, run.num_reopts);
      }
    }
    std::printf("lpce> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
