// Re-optimization walkthrough (the paper's Fig. 2 / Fig. 17 scenario):
// an estimator that badly underestimates join sizes causes the optimizer to
// pick nested-loop joins; checkpoints catch the error mid-query, the plan is
// repaired, and the query finishes faster than it would have otherwise.
//
//   ./build/examples/reoptimization_demo
#include <cstdio>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "workload/workload.h"

using namespace lpce;

namespace {

// Deliberately underestimates every join result by 10000x — a caricature of
// the error-amplification the paper shows for complex queries (Fig. 1).
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "UnderEstimator"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double est = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, est / 1e4) : est;
  }

 private:
  card::CardinalityEstimator* base_;
};

}  // namespace

int main() {
  db::SynthImdbOptions db_opts;
  db_opts.scale = 0.5;
  auto database = db::BuildSynthImdb(db_opts);
  stats::DatabaseStats stats(*database);
  card::HistogramEstimator histogram(&stats);
  UnderEstimator under(&histogram);

  wk::GeneratorOptions gen_opts;
  gen_opts.seed = 1234;
  gen_opts.require_nonempty = true;
  wk::QueryGenerator generator(database.get(), gen_opts);

  eng::Engine engine(database.get(), opt::CostModel{});
  eng::RunConfig no_reopt;        // checkpoints off
  eng::RunConfig with_reopt;      // paper's trigger + the refined gating
  with_reopt.enable_reopt = true;
  with_reopt.qerror_threshold = 50.0;
  with_reopt.max_reopts = 3;
  with_reopt.underestimates_only = true;  // re-plan only consequential errors
  with_reopt.min_trip_rows = 1000;
  with_reopt.consider_restart = false;

  double without_total = 0.0, with_total = 0.0;
  int reopts = 0;
  for (int i = 0; i < 10; ++i) {
    qry::Query query = generator.Generate(7);
    eng::RunStats plain = engine.RunQuery(query, &under, nullptr, no_reopt);
    eng::RunStats repaired = engine.RunQuery(query, &under, nullptr, with_reopt);
    LPCE_CHECK(plain.result_count == repaired.result_count);
    without_total += plain.TotalSeconds();
    with_total += repaired.TotalSeconds();
    reopts += repaired.num_reopts;
    std::printf("query %d: COUNT=%llu  no-reopt %7.1f ms | reopt %7.1f ms"
                " (%d re-optimization%s)\n",
                i, static_cast<unsigned long long>(plain.result_count),
                plain.TotalSeconds() * 1e3, repaired.TotalSeconds() * 1e3,
                repaired.num_reopts, repaired.num_reopts == 1 ? "" : "s");
    if (i == 0 && repaired.num_reopts > 0) {
      std::printf("\n--- initial (broken) plan ---\n%s", repaired.initial_plan.c_str());
      std::printf("--- repaired plan ---\n%s\n", repaired.final_plan.c_str());
    }
  }
  std::printf("\ntotals: no-reopt %.1f ms, with reopt %.1f ms (%.2fx; %d"
              " re-optimizations across 10 queries)\n",
              without_total * 1e3, with_total * 1e3, without_total / with_total,
              reopts);
  return 0;
}
