// Runs a small templated serving workload with telemetry enabled and renders
// the per-template report the hub accumulates: throughput, per-phase latency
// quantiles, checkpoint q-error quantiles, window bookkeeping, and the drift
// monitor's verdict. Finishes by printing where the Prometheus exposition
// went (or writes one on demand).
//
//   telemetry_report [--workers=N] [--templates=N] [--reps=N] [--window=N]
//                    [--prom=PATH]
//
// Defaults run 4 distinct query templates x 48 repetitions over 2 workers
// with 16-record windows, so every template finishes a baseline window plus
// two more — enough for the drift monitor to evaluate (it will report "ok":
// a static estimator's q-errors do not drift).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "card/histogram_estimator.h"
#include "common/telemetry.h"
#include "engine/drift_monitor.h"
#include "engine/server.h"
#include "feedback/feedback_store.h"
#include "lpce/model_registry.h"
#include "lpce/tree_model.h"
#include "workload/workload.h"

namespace {

using lpce::common::TelemetryHub;
using lpce::common::WindowStats;

struct Flags {
  int workers = 2;
  int templates = 4;
  int reps = 48;
  uint64_t window = 16;
  std::string prom;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

double PhaseMs(const WindowStats& w, int phase, double q) {
  // Phase histograms hold raw nanoseconds (Observe, not ObserveDouble).
  return static_cast<double>(w.phases[phase].ValueAtQuantile(q)) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--workers", &v)) {
      flags.workers = std::atoi(v);
    } else if (ParseFlag(argv[i], "--templates", &v)) {
      flags.templates = std::atoi(v);
    } else if (ParseFlag(argv[i], "--reps", &v)) {
      flags.reps = std::atoi(v);
    } else if (ParseFlag(argv[i], "--window", &v)) {
      flags.window = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--prom", &v)) {
      flags.prom = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers=N] [--templates=N] [--reps=N]"
                   " [--window=N] [--prom=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  lpce::common::SetTelemetryEnabled(true);
  lpce::common::TelemetryOptions telemetry;
  telemetry.window_size = flags.window;
  telemetry.mode = lpce::common::TelemetryMode::kFull;
  TelemetryHub::Global().Configure(telemetry);

  lpce::db::SynthImdbOptions db_opts;
  db_opts.scale = 0.05;
  auto database = lpce::db::BuildSynthImdb(db_opts);
  lpce::stats::DatabaseStats stats(*database);

  // One distinct query per template; repeating it keeps the fss stable.
  lpce::wk::GeneratorOptions gen_opts;
  gen_opts.seed = 4242;
  gen_opts.require_nonempty = true;
  lpce::wk::QueryGenerator generator(database.get(), gen_opts);
  std::vector<lpce::qry::Query> templates;
  for (int i = 0; i < flags.templates; ++i) {
    templates.push_back(generator.Generate(2 + i % 4));
  }

  // The feedback-loop surfaces ride along so the exposition carries the
  // lpce_registry_* / lpce_feedback_* families CI validates: a registry
  // (publish mid-run = one hot swap) and a memory-only knowledge store the
  // workers harvest executed cardinalities into. Sessions stay
  // histogram-based — the registry payload is serving-plumbing here, not
  // the estimator under report.
  lpce::model::FeatureEncoder encoder(&database->catalog(), &stats);
  lpce::model::TreeModelConfig model_config;
  model_config.feature_dim = encoder.dim();
  model_config.dim = 8;
  model_config.embed_hidden = 8;
  model_config.out_hidden = 8;
  auto payload =
      std::make_shared<lpce::model::TreeModel>(&encoder, model_config);
  lpce::model::ModelRegistry registry;
  registry.Publish(payload, nullptr, "initial");
  lpce::fb::FeedbackStore feedback(lpce::fb::FeedbackStoreOptions{});

  lpce::eng::ServerOptions server_opts;
  server_opts.num_workers = flags.workers;
  server_opts.max_queue = static_cast<size_t>(flags.templates) * flags.reps;
  server_opts.run_config.enable_reopt = true;
  server_opts.run_config.qerror_threshold = 10.0;
  server_opts.model_registry = &registry;
  server_opts.feedback_store = &feedback;
  lpce::eng::EngineServer server(
      database.get(), lpce::opt::CostModel{},
      [&stats](int) {
        lpce::eng::EngineServer::Session session;
        session.initial =
            std::make_unique<lpce::card::HistogramEstimator>(&stats);
        return session;
      },
      server_opts);

  std::vector<std::shared_future<lpce::eng::RunStats>> futures;
  for (int rep = 0; rep < flags.reps; ++rep) {
    if (rep == flags.reps / 2) {
      // One mid-workload hot swap: the publish hook fires and the registry
      // version gauge moves while queries are in flight.
      registry.Publish(payload, nullptr, "report-swap");
    }
    for (const lpce::qry::Query& query : templates) {
      auto admitted = server.Submit(query);
      if (!admitted.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     admitted.status().ToString().c_str());
        return 1;
      }
      futures.push_back(admitted.value());
    }
  }
  for (auto& future : futures) future.wait();
  server.Shutdown();

  auto& hub = TelemetryHub::Global();
  hub.DrainNow();  // also runs the installed drift hook
  const lpce::common::TelemetrySnapshot snapshot = hub.Snapshot();

  std::printf("pipeline: published=%llu dropped=%llu drained=%llu "
              "window_size=%llu\n",
              static_cast<unsigned long long>(snapshot.published),
              static_cast<unsigned long long>(snapshot.dropped),
              static_cast<unsigned long long>(snapshot.drained),
              static_cast<unsigned long long>(snapshot.window_size));
  std::printf("feedback loop: model_version=%llu publishes=%llu "
              "harvested=%llu records (%llu templates)\n\n",
              static_cast<unsigned long long>(registry.CurrentVersionNumber()),
              static_cast<unsigned long long>(registry.counters().published),
              static_cast<unsigned long long>(feedback.counters().appended),
              static_cast<unsigned long long>(feedback.counters().templates));
  std::printf("%-18s %7s %7s %6s %6s %9s %9s %9s %9s %8s %8s %5s %s\n", "fss",
              "queries", "qps", "reopt", "cache", "plan50ms", "inf50ms",
              "reopt50ms", "exec50ms", "qerr50", "qerr95", "wins", "drift");
  for (const auto& t : snapshot.templates) {
    const double span = t.lifetime.SpanSeconds();
    char qps[16];
    if (span > 0.0) {
      std::snprintf(qps, sizeof(qps), "%.1f",
                    static_cast<double>(t.lifetime.queries) / span);
    } else {
      std::snprintf(qps, sizeof(qps), "-");
    }
    char drift[32];
    if (t.drifted) {
      std::snprintf(drift, sizeof(drift), "DRIFT x%.2f", t.drift_ratio);
    } else if (t.windows_completed >= 2) {
      std::snprintf(drift, sizeof(drift), "ok x%.2f", t.drift_ratio);
    } else {
      std::snprintf(drift, sizeof(drift), "warming");
    }
    std::printf(
        "%016llx %7llu %7s %6llu %6llu %9.3f %9.3f %9.3f %9.3f %8.2f %8.2f"
        " %5llu %s\n",
        static_cast<unsigned long long>(t.fss),
        static_cast<unsigned long long>(t.lifetime.queries), qps,
        static_cast<unsigned long long>(t.lifetime.reopts),
        static_cast<unsigned long long>(t.lifetime.cache_hits),
        PhaseMs(t.lifetime, WindowStats::kPlan, 0.5),
        PhaseMs(t.lifetime, WindowStats::kInfer, 0.5),
        PhaseMs(t.lifetime, WindowStats::kReopt, 0.5),
        PhaseMs(t.lifetime, WindowStats::kExec, 0.5),
        t.lifetime.qerror.DoubleAtQuantile(0.5),
        t.lifetime.qerror.DoubleAtQuantile(0.95),
        static_cast<unsigned long long>(t.windows_completed), drift);
  }

  if (!flags.prom.empty()) {
    std::ofstream out(flags.prom);
    if (!out.good()) {
      std::fprintf(stderr, "%s: cannot write\n", flags.prom.c_str());
      return 1;
    }
    out << server.PrometheusText();
    std::printf("\nwrote Prometheus exposition to %s\n", flags.prom.c_str());
  }
  return 0;
}
