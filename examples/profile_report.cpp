// Renders a profiler dump (common/profiler.h ToJson output) as two views:
//
//   1. A flat table of scopes sorted by self time — where the wall clock
//      actually went, regardless of nesting.
//   2. The paper's end-to-end decomposition T_end = T_P + T_I + T_R + T_E
//      (Eq. 7/8): every nanosecond of self time under engine.run_query is
//      attributed to the innermost enclosing "T_X."-prefixed scope, and the
//      four phase totals are reported as a share of Engine::RunQuery wall
//      time (residual engine bookkeeping shows up as "other").
//
//   profile_report [profile.json]       (default: $LPCE_PROFILE_DIR/profile.json)
//
// Produce an input with e.g.:
//   LPCE_PROFILE=1 LPCE_PROFILE_DIR=/tmp/prof ./build/tests/engine_test
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/profiler.h"

namespace {

using lpce::common::JsonParser;
using lpce::common::JsonValue;

struct Row {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
};

/// Phase label for a scope name: "T_P"/"T_I"/"T_R"/"T_E" or "" (inherit).
std::string PhaseOf(const std::string& name) {
  if (name.size() >= 4 && name[0] == 'T' && name[1] == '_' && name[3] == '.' &&
      (name[2] == 'P' || name[2] == 'I' || name[2] == 'R' || name[2] == 'E')) {
    return name.substr(0, 3);
  }
  return "";
}

uint64_t NodeU64(const JsonValue& node, const char* key) {
  const JsonValue* v = node.Find(key);
  return v != nullptr ? static_cast<uint64_t>(v->num) : 0;
}

/// Walks one profile node: accumulates the flat per-name table, and (when
/// inside an engine.run_query subtree) adds self time to the innermost
/// enclosing phase.
void Walk(const JsonValue& node, bool in_engine, const std::string& phase,
          std::map<std::string, Row>* flat,
          std::map<std::string, uint64_t>* phase_ns, uint64_t* engine_ns) {
  const JsonValue* name_v = node.Find("name");
  if (name_v == nullptr) return;
  const std::string& name = name_v->str;
  const uint64_t self = NodeU64(node, "self_ns");

  Row& row = (*flat)[name];
  row.count += NodeU64(node, "count");
  row.total_ns += NodeU64(node, "total_ns");
  row.self_ns += self;

  bool engine_here = in_engine;
  std::string child_phase = phase;
  if (name == "engine.run_query") {
    engine_here = true;
    child_phase = "other";
    *engine_ns += NodeU64(node, "total_ns");
  }
  const std::string own_phase = PhaseOf(name);
  if (!own_phase.empty()) child_phase = own_phase;
  if (engine_here) (*phase_ns)[child_phase] += self;

  const JsonValue* children = node.Find("children");
  if (children != nullptr) {
    for (const JsonValue& child : children->arr) {
      Walk(child, engine_here, child_phase, flat, phase_ns, engine_ns);
    }
  }
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    const char* dir = std::getenv("LPCE_PROFILE_DIR");
    path = std::string(dir != nullptr ? dir : "lpce_profile") + "/profile.json";
  }
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open (run something with LPCE_PROFILE=1"
                 " first)\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  const lpce::Status valid = lpce::common::ValidateProfileJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s: invalid profile: %s\n", path.c_str(),
                 valid.message().c_str());
    return 1;
  }

  JsonValue root;
  std::string error;
  JsonParser parser(json);
  if (!parser.Parse(&root, &error)) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  std::map<std::string, Row> flat;
  std::map<std::string, uint64_t> phase_ns;
  uint64_t engine_ns = 0;
  for (const JsonValue& top : root.Find("roots")->arr) {
    Walk(top, /*in_engine=*/false, /*phase=*/"", &flat, &phase_ns, &engine_ns);
  }

  std::vector<std::pair<std::string, Row>> rows(flat.begin(), flat.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) {
      return a.second.self_ns > b.second.self_ns;
    }
    return a.first < b.first;
  });
  uint64_t grand_self = 0;
  for (const auto& [name, row] : rows) grand_self += row.self_ns;

  std::printf("=== scopes by self time (%s) ===\n", path.c_str());
  std::printf("%-28s %10s %12s %12s %7s\n", "scope", "calls", "total(ms)",
              "self(ms)", "self%");
  for (const auto& [name, row] : rows) {
    std::printf("%-28s %10llu %12.3f %12.3f %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(row.count), Ms(row.total_ns),
                Ms(row.self_ns),
                grand_self > 0 ? 100.0 * row.self_ns / grand_self : 0.0);
  }

  std::printf("\n=== end-to-end decomposition (paper Eq. 7/8) ===\n");
  if (engine_ns == 0) {
    std::printf("(no engine.run_query scope in this profile)\n");
    return 0;
  }
  uint64_t covered = 0;
  for (const char* phase : {"T_P", "T_I", "T_R", "T_E", "other"}) {
    const auto it = phase_ns.find(phase);
    const uint64_t ns = it != phase_ns.end() ? it->second : 0;
    if (std::string(phase) != "other") covered += ns;
    std::printf("%-8s %12.3f ms %6.1f%%\n", phase, Ms(ns),
                100.0 * ns / engine_ns);
  }
  std::printf("%-8s %12.3f ms\n", "T_end", Ms(engine_ns));
  std::printf("phase coverage of engine.run_query: %.1f%%\n",
              100.0 * covered / engine_ns);
  return 0;
}
