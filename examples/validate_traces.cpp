// Validates a JSONL file of query traces (one engine/trace.h JSON document
// per line) against the trace schema. CI runs this over the traces the
// LPCE_TRACE=1 test jobs emit; exits non-zero on the first invalid line.
//
//   validate_traces traces.jsonl [more.jsonl ...]
#include <cstdio>
#include <fstream>
#include <string>

#include "engine/trace.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s TRACES.jsonl [...]\n", argv[0]);
    return 2;
  }
  size_t total = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in.good()) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 1;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const lpce::Status status = lpce::eng::ValidateTraceJson(line);
      if (!status.ok()) {
        std::fprintf(stderr, "%s:%zu: invalid trace: %s\n", argv[i], lineno,
                     status.message().c_str());
        return 1;
      }
      ++total;
    }
  }
  std::printf("validate_traces: %zu trace(s) OK\n", total);
  return 0;
}
