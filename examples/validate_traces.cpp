// Validates a JSONL file of query traces (one engine/trace.h JSON document
// per line) against the trace schema. CI runs this over the traces the
// LPCE_TRACE=1 test jobs emit; exits non-zero on the first invalid line.
//
//   validate_traces [--require-kind=NAME ...] traces.jsonl [more.jsonl ...]
//
// Besides schema validation the tool tallies events per kind and prints the
// tally, so CI logs show what the trace corpus actually exercised. Each
// `--require-kind=NAME` demands at least one event of that kind across all
// inputs — the telemetry CI job passes `--require-kind=telemetry` so a
// regression that silently stops emitting telemetry events fails the build
// instead of validating an emptier schema.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "engine/trace.h"

namespace {

/// Counts `events[*].kind` occurrences in one already-validated trace line.
void TallyKinds(const std::string& line,
                std::map<std::string, size_t>* kind_counts) {
  lpce::common::JsonValue doc;
  std::string error;
  lpce::common::JsonParser parser(line);
  if (!parser.Parse(&doc, &error)) return;  // ValidateTraceJson already passed
  const lpce::common::JsonValue* events = doc.Find("events");
  if (events == nullptr ||
      events->type != lpce::common::JsonValue::Type::kArray) {
    return;
  }
  for (const lpce::common::JsonValue& event : events->arr) {
    const lpce::common::JsonValue* kind = event.Find("kind");
    if (kind != nullptr &&
        kind->type == lpce::common::JsonValue::Type::kString) {
      ++(*kind_counts)[kind->str];
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required_kinds;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kRequire[] = "--require-kind=";
    if (std::strncmp(argv[i], kRequire, sizeof(kRequire) - 1) == 0) {
      required_kinds.emplace_back(argv[i] + sizeof(kRequire) - 1);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--require-kind=NAME ...] TRACES.jsonl [...]\n",
                 argv[0]);
    return 2;
  }
  size_t total = 0;
  std::map<std::string, size_t> kind_counts;
  for (const char* file : files) {
    std::ifstream in(file);
    if (!in.good()) {
      std::fprintf(stderr, "%s: cannot open\n", file);
      return 1;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const lpce::Status status = lpce::eng::ValidateTraceJson(line);
      if (!status.ok()) {
        std::fprintf(stderr, "%s:%zu: invalid trace: %s\n", file, lineno,
                     status.message().c_str());
        return 1;
      }
      TallyKinds(line, &kind_counts);
      ++total;
    }
  }
  std::printf("validate_traces: %zu trace(s) OK\n", total);
  for (const auto& [kind, count] : kind_counts) {
    std::printf("  %-16s %zu\n", kind.c_str(), count);
  }
  bool missing = false;
  for (const std::string& kind : required_kinds) {
    if (kind_counts[kind] == 0) {
      std::fprintf(stderr,
                   "validate_traces: required event kind '%s' never seen\n",
                   kind.c_str());
      missing = true;
    }
  }
  return missing ? 1 : 0;
}
