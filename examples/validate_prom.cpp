// Validates a Prometheus text-exposition file (the output of
// EngineServer::PrometheusText() / LPCE_TELEMETRY_PROM periodic export)
// against the subset of the format this repo emits. CI runs it over the
// exposition the telemetry jobs produce; exits non-zero on the first
// violation.
//
//   validate_prom [--require=FAMILY ...] METRICS.prom [more.prom ...]
//
// Checks, per file:
//   - every line is a `# HELP`/`# TYPE` comment or a `name{labels} value`
//     sample with a parseable finite value;
//   - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*;
//   - every sample's family was declared by a preceding `# TYPE` line, and
//     the declared type is counter, gauge, histogram, or summary;
//   - histogram `_bucket` series carry an `le` label, are cumulative
//     (non-decreasing within one label set), end at `le="+Inf"`, and agree
//     with the family's `_count`;
//   - counters and histogram/summary counts are non-negative.
// Each `--require=FAMILY` additionally demands at least one sample of that
// family, so CI fails if a family silently disappears from the exposition.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Context {
  const char* file = nullptr;
  size_t lineno = 0;
};

bool Fail(const Context& ctx, const std::string& what) {
  std::fprintf(stderr, "%s:%zu: %s\n", ctx.file, ctx.lineno, what.c_str());
  return false;
}

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

/// One parsed sample line: name, raw label text (sorted key=value pairs),
/// the `le` label if present, and the value.
struct Sample {
  std::string name;
  std::string labels;  // canonical "k=v,k=v" with le stripped, for grouping
  std::string le;
  double value = 0.0;
};

bool ParseSample(const Context& ctx, const std::string& line, Sample* out) {
  size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  out->name = line.substr(0, pos);
  if (!ValidName(out->name)) {
    return Fail(ctx, "bad metric name '" + out->name + "'");
  }
  if (pos < line.size() && line[pos] == '{') {
    const size_t close = line.find('}', pos);
    if (close == std::string::npos) return Fail(ctx, "unterminated label set");
    std::string body = line.substr(pos + 1, close - pos - 1);
    // Split on commas; our emitter never quotes a comma inside a value.
    size_t start = 0;
    std::vector<std::string> pairs;
    while (start <= body.size()) {
      size_t comma = body.find(',', start);
      if (comma == std::string::npos) comma = body.size();
      if (comma > start) pairs.push_back(body.substr(start, comma - start));
      start = comma + 1;
    }
    for (const std::string& pair : pairs) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) return Fail(ctx, "label missing '='");
      const std::string key = pair.substr(0, eq);
      std::string value = pair.substr(eq + 1);
      if (!ValidName(key)) return Fail(ctx, "bad label name '" + key + "'");
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        return Fail(ctx, "label value not quoted: " + pair);
      }
      value = value.substr(1, value.size() - 2);
      if (key == "le") {
        out->le = value;
      } else {
        if (!out->labels.empty()) out->labels += ',';
        out->labels += key + "=" + value;
      }
    }
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return Fail(ctx, "expected ' ' before value");
  }
  const std::string value_text = line.substr(pos + 1);
  if (value_text == "+Inf") {
    out->value = HUGE_VAL;
    return true;
  }
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    return Fail(ctx, "unparseable value '" + value_text + "'");
  }
  if (std::isnan(out->value)) return Fail(ctx, "NaN sample value");
  return true;
}

/// Strips a histogram/summary suffix to recover the declared family name.
std::string FamilyOf(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      return name.substr(0, name.size() - len);
    }
  }
  return name;
}

struct BucketSeries {
  double last_cumulative = -1.0;
  bool saw_inf = false;
  double inf_count = 0.0;
};

bool ValidateFile(const char* path,
                  std::map<std::string, size_t>* family_samples) {
  std::ifstream in(path);
  Context ctx;
  ctx.file = path;
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::map<std::string, std::string> declared_type;  // family -> type
  // (family, labels) -> bucket cumulative state / counts for cross-checks.
  std::map<std::string, BucketSeries> buckets;
  std::map<std::string, double> counts;
  std::string line;
  while (std::getline(in, line)) {
    ++ctx.lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>" or "# HELP <name> <text>".
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space == std::string::npos) {
          return Fail(ctx, "malformed TYPE line");
        }
        const std::string family = rest.substr(0, space);
        const std::string type = rest.substr(space + 1);
        if (!ValidName(family)) return Fail(ctx, "bad TYPE family name");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary") {
          return Fail(ctx, "unknown metric type '" + type + "'");
        }
        declared_type[family] = type;
      } else if (line.rfind("# HELP ", 0) != 0) {
        return Fail(ctx, "unknown comment directive");
      }
      continue;
    }
    Sample sample;
    if (!ParseSample(ctx, line, &sample)) return false;
    const std::string family = FamilyOf(sample.name);
    const auto type_it = declared_type.find(family);
    if (type_it == declared_type.end()) {
      return Fail(ctx, "sample '" + sample.name +
                           "' has no preceding # TYPE for '" + family + "'");
    }
    ++(*family_samples)[family];
    const std::string& type = type_it->second;
    const std::string series_key = family + "{" + sample.labels + "}";
    if (type == "counter" && sample.value < 0.0) {
      return Fail(ctx, "negative counter " + sample.name);
    }
    if (sample.name == family + "_bucket") {
      if (type != "histogram") {
        return Fail(ctx, "_bucket sample on non-histogram family " + family);
      }
      if (sample.le.empty()) return Fail(ctx, "_bucket without le label");
      BucketSeries& series = buckets[series_key];
      if (series.saw_inf) {
        return Fail(ctx, "bucket after le=\"+Inf\" in " + series_key);
      }
      if (sample.value < series.last_cumulative) {
        return Fail(ctx, "non-cumulative histogram buckets in " + series_key);
      }
      series.last_cumulative = sample.value;
      if (sample.le == "+Inf") {
        series.saw_inf = true;
        series.inf_count = sample.value;
      }
    } else if (sample.name == family + "_count" &&
               (type == "histogram" || type == "summary")) {
      if (sample.value < 0.0) return Fail(ctx, "negative _count");
      counts[series_key] = sample.value;
    }
  }
  // Every histogram series must terminate at +Inf and agree with _count.
  for (const auto& [key, series] : buckets) {
    ctx.lineno = 0;
    if (!series.saw_inf) {
      return Fail(ctx, "histogram series missing le=\"+Inf\": " + key);
    }
    const auto count_it = counts.find(key);
    if (count_it == counts.end()) {
      return Fail(ctx, "histogram series missing _count: " + key);
    }
    if (count_it->second != series.inf_count) {
      return Fail(ctx, "histogram _count != +Inf bucket in " + key);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kRequire[] = "--require=";
    if (std::strncmp(argv[i], kRequire, sizeof(kRequire) - 1) == 0) {
      required.emplace_back(argv[i] + sizeof(kRequire) - 1);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [--require=FAMILY ...] METRICS.prom [...]\n",
                 argv[0]);
    return 2;
  }
  std::map<std::string, size_t> family_samples;
  for (const char* file : files) {
    if (!ValidateFile(file, &family_samples)) return 1;
  }
  size_t total = 0;
  for (const auto& [family, count] : family_samples) total += count;
  std::printf("validate_prom: %zu sample(s) across %zu families OK\n", total,
              family_samples.size());
  bool missing = false;
  for (const std::string& family : required) {
    if (family_samples[family] == 0) {
      std::fprintf(stderr, "validate_prom: required family '%s' never seen\n",
                   family.c_str());
      missing = true;
    }
  }
  return missing ? 1 : 0;
}
