// Validates profiler and training-telemetry artifacts. CI runs this over the
// dumps the LPCE_PROFILE=1 / LPCE_TRAIN_LOG=1 jobs emit; exits non-zero on
// the first invalid document.
//
//   validate_profile [--profile profile.json ...] [--train-log log.jsonl ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/profiler.h"
#include "lpce/train_stats.h"

namespace {

int ValidateProfileFile(const char* path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const lpce::Status status = lpce::common::ValidateProfileJson(buf.str());
  if (!status.ok()) {
    std::fprintf(stderr, "%s: invalid profile: %s\n", path,
                 status.message().c_str());
    return 1;
  }
  std::printf("validate_profile: %s OK\n", path);
  return 0;
}

int ValidateTrainLog(const char* path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 1;
  }
  std::string line;
  size_t lineno = 0, valid = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const lpce::Status status = lpce::model::ValidateTrainLogLine(line);
    if (!status.ok()) {
      std::fprintf(stderr, "%s:%zu: invalid train-log line: %s\n", path, lineno,
                   status.message().c_str());
      return 1;
    }
    ++valid;
  }
  if (valid == 0) {
    std::fprintf(stderr, "%s: empty train log\n", path);
    return 1;
  }
  std::printf("validate_profile: %s OK (%zu line(s))\n", path, valid);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s [--profile FILE.json ...] [--train-log FILE.jsonl "
                 "...]\n",
                 argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing file operand\n", flag.c_str());
      return 2;
    }
    int rc;
    if (flag == "--profile") {
      rc = ValidateProfileFile(argv[++i]);
    } else if (flag == "--train-log") {
      rc = ValidateTrainLog(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
    if (rc != 0) return rc;
  }
  return 0;
}
