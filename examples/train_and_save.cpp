// Model lifecycle: train LPCE-I and LPCE-R, save them to disk, reload into
// fresh models, and verify predictions survive the round trip. This is the
// deployment story: train offline, ship the parameter files, load in the
// serving database process.
//
//   ./build/examples/train_and_save [output_dir]
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "lpce/estimators.h"
#include "lpce/lpce_r.h"
#include "workload/workload.h"

using namespace lpce;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp/lpce_models";
  std::filesystem::create_directories(out_dir);

  db::SynthImdbOptions db_opts;
  db_opts.scale = 0.15;
  auto database = db::BuildSynthImdb(db_opts);
  stats::DatabaseStats stats(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  wk::GeneratorOptions gen_opts;
  wk::QueryGenerator generator(database.get(), gen_opts);
  auto train = generator.GenerateLabeled(100, 3, 6);
  const double log_max =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 24;
  config.embed_hidden = 24;
  config.out_hidden = 48;
  config.log_max_card = log_max;

  // Train.
  model::TreeModel lpce_i(&encoder, config);
  model::TrainOptions topt;
  topt.epochs = 8;
  model::TrainTreeModel(&lpce_i, *database, train, topt);
  model::LpceR lpce_r(&encoder, config);
  model::LpceRTrainOptions ropt;
  ropt.pretrain.epochs = 6;
  ropt.refine_epochs = 3;
  ropt.pretrained_content = &lpce_i;
  model::TrainLpceR(&lpce_r, *database, train, ropt);

  // Save.
  LPCE_CHECK(lpce_i.params().SaveToFile(out_dir + "/lpce_i.bin").ok());
  LPCE_CHECK(lpce_r.Save(out_dir + "/lpce_r").ok());
  std::printf("saved models under %s\n", out_dir.c_str());

  // Reload into freshly-initialized models and compare predictions.
  model::TreeModelConfig fresh = config;
  fresh.seed = 777;
  model::TreeModel loaded_i(&encoder, fresh);
  LPCE_CHECK(loaded_i.params().LoadFromFile(out_dir + "/lpce_i.bin").ok());
  model::LpceR loaded_r(&encoder, fresh);
  LPCE_CHECK(loaded_r.Load(out_dir + "/lpce_r").ok());

  int checked = 0;
  double max_diff = 0.0;
  for (const auto& labeled : train) {
    if (++checked > 10) break;
    auto logical =
        qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    auto tree =
        model::MakeEstTree(labeled.query, logical.get(), *database, nullptr);
    const double a = lpce_i.PredictCardFast(labeled.query, tree.get());
    const double b = loaded_i.PredictCardFast(labeled.query, tree.get());
    max_diff = std::max(max_diff, std::fabs(a - b) / std::max(1.0, a));
  }
  std::printf("round-trip check over %d queries: max relative difference"
              " %.2e %s\n",
              checked - 1, max_diff, max_diff < 1e-4 ? "(OK)" : "(MISMATCH!)");
  return max_diff < 1e-4 ? 0 : 1;
}
