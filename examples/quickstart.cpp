// Quickstart: build the synthetic database, train a small LPCE-I, and run a
// query end to end — first with the PostgreSQL-style histogram estimator,
// then with LPCE-I.
//
//   ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "lpce/estimators.h"
#include "workload/workload.h"

using namespace lpce;

int main() {
  // 1. A small IMDB-style database with skew and cross-table correlations.
  db::SynthImdbOptions db_opts;
  db_opts.scale = 0.2;
  auto database = db::BuildSynthImdb(db_opts);
  std::printf("database: %d tables, %d join edges\n",
              database->catalog().num_tables(),
              static_cast<int>(database->catalog().join_edges().size()));

  // 2. Statistics (for the baseline estimator and feature normalization).
  stats::DatabaseStats stats(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  // 3. A labeled training workload: random 4-6 join queries, executed once
  //    to record the true cardinality of every plan node.
  wk::GeneratorOptions gen_opts;
  gen_opts.seed = 7;
  wk::QueryGenerator generator(database.get(), gen_opts);
  auto train = generator.GenerateLabeled(/*count=*/120, /*min_joins=*/4,
                                         /*max_joins=*/6);
  std::printf("training workload: %zu labeled queries\n", train.size());

  // 4. Train LPCE-I (a small tree-SRU model with the node-wise loss).
  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 32;
  config.embed_hidden = 32;
  config.out_hidden = 64;
  config.log_max_card = std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel lpce_i(&encoder, config);
  model::TrainOptions train_opts;
  train_opts.epochs = 10;
  model::TrainTreeModel(&lpce_i, *database, train, train_opts);
  std::printf("trained LPCE-I (%zu parameters)\n", lpce_i.params().NumParams());

  // 5. Run one fresh query with both estimators and compare.
  wk::GeneratorOptions test_opts;
  test_opts.seed = 99;
  test_opts.require_nonempty = true;
  wk::QueryGenerator test_gen(database.get(), test_opts);
  wk::LabeledQuery test;
  test.query = test_gen.Generate(6);
  wk::LabelQuery(*database, &test);
  std::printf("\nquery: %s\n", test.query.ToString(database->catalog()).c_str());
  std::printf("true cardinality: %llu\n",
              static_cast<unsigned long long>(test.FinalCard()));

  eng::Engine engine(database.get(), opt::CostModel{});
  card::HistogramEstimator histogram(&stats);
  model::TreeModelEstimator learned("LPCE-I", &lpce_i, database.get());
  for (card::CardinalityEstimator* estimator :
       {static_cast<card::CardinalityEstimator*>(&histogram),
        static_cast<card::CardinalityEstimator*>(&learned)}) {
    eng::RunStats stats_out = engine.RunQuery(test.query, estimator, nullptr, {});
    std::printf("\n[%s] COUNT(*) = %llu in %.2f ms "
                "(plan %.2f ms, inference %.2f ms, execution %.2f ms)\n",
                estimator->name().c_str(),
                static_cast<unsigned long long>(stats_out.result_count),
                stats_out.TotalSeconds() * 1e3, stats_out.plan_seconds * 1e3,
                stats_out.inference_seconds * 1e3, stats_out.exec_seconds * 1e3);
    std::printf("%s", stats_out.final_plan.c_str());
  }
  return 0;
}
