// Equivalence suite for the tape-free level-batched inference path (PR 4):
// TreeModel::Infer / InferTrees must reproduce the autograd Forward
// bit-for-bit — per node, for SRU and LSTM cells, odd hidden widths,
// child-cardinality inputs, injected executed-sub-plan leaves, feature
// caches, and at every matmul thread count. Also pins the arena's
// zero-heap-allocation steady state and the batched estimator preparation.
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lpce/estimators.h"
#include "nn/arena.h"
#include "nn/matrix.h"
#include "workload/workload.h"

namespace lpce::model {
namespace {

class InferFastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    encoder_ = std::make_unique<FeatureEncoder>(&database_->catalog(), &stats_);
    wk::GeneratorOptions gen;
    gen.seed = 5;
    gen.require_nonempty = true;
    wk::QueryGenerator generator(database_.get(), gen);
    queries_ = generator.GenerateLabeled(8, 2, 7);
  }

  TreeModelConfig Config(bool lstm, bool with_cards, int dim = 16,
                         int embed_hidden = 16, int out_hidden = 32) const {
    TreeModelConfig config;
    config.feature_dim = encoder_->dim();
    config.dim = dim;
    config.embed_hidden = embed_hidden;
    config.out_hidden = out_hidden;
    config.use_lstm = lstm;
    config.with_child_cards = with_cards;
    config.seed = 1 + (lstm ? 1 : 0) + (with_cards ? 2 : 0) +
                  static_cast<uint64_t>(dim);
    return config;
  }

  std::unique_ptr<EstNode> Tree(const wk::LabeledQuery& labeled,
                                bool with_labels = true) const {
    auto logical =
        qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
    return MakeEstTree(labeled.query, logical.get(), *database_,
                       with_labels ? &labeled.true_cards : nullptr);
  }

  /// Per-node bitwise comparison of the taped Forward against the batched
  /// tape-free Infer (via InferTrees, which shares InferManyImpl with Infer).
  void ExpectInferMatchesForward(const TreeModel& model,
                                 const qry::Query& query, const EstNode* root,
                                 bool dynamic, const char* what) {
    auto fwd = model.Forward(query, root, dynamic);
    std::vector<std::vector<TreeModel::InferNodeOutput>> outs;
    model.InferTrees({{&query, root}}, &outs, dynamic);
    ASSERT_EQ(outs.size(), 1u) << what;
    ASSERT_EQ(outs[0].size(), fwd.size()) << what;
    for (size_t i = 0; i < fwd.size(); ++i) {
      EXPECT_EQ(outs[0][i].node, fwd[i].node) << what << " node " << i;
      const float taped_y = fwd[i].y->value().at(0, 0);
      EXPECT_EQ(outs[0][i].y, taped_y) << what << " node " << i
                                       << ": batched y must be bit-identical";
      EXPECT_EQ(outs[0][i].card,
                model.YToCard(static_cast<double>(taped_y)))
          << what << " node " << i;
    }
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::vector<wk::LabeledQuery> queries_;
};

TEST_F(InferFastPathTest, MatchesForwardBitExactlyAcrossCellsAndModes) {
  for (bool lstm : {false, true}) {
    for (bool with_cards : {false, true}) {
      TreeModel model(encoder_.get(), Config(lstm, with_cards));
      for (const auto& labeled : queries_) {
        auto labeled_tree = Tree(labeled);
        ExpectInferMatchesForward(model, labeled.query, labeled_tree.get(),
                                  /*dynamic=*/false, "static");
        if (with_cards) {
          // Unlabeled trees force the dynamic mode to consume the model's
          // own running child estimates.
          auto bare_tree = Tree(labeled, /*with_labels=*/false);
          ExpectInferMatchesForward(model, labeled.query, bare_tree.get(),
                                    /*dynamic=*/true, "dynamic");
        }
      }
    }
  }
}

TEST_F(InferFastPathTest, OddHiddenDimensionsStayBitExact) {
  // Widths that are not multiples of any vector width or unroll factor.
  for (bool lstm : {false, true}) {
    TreeModel model(encoder_.get(),
                    Config(lstm, /*with_cards=*/false, /*dim=*/13,
                           /*embed_hidden=*/7, /*out_hidden=*/9));
    for (size_t i = 0; i < 3; ++i) {
      auto tree = Tree(queries_[i]);
      ExpectInferMatchesForward(model, queries_[i].query, tree.get(),
                                /*dynamic=*/false, "odd-dims");
    }
  }
}

TEST_F(InferFastPathTest, MultiTreeBatchEqualsPerTreeInference) {
  // Nodes of different trees share level matmuls; row independence of the
  // Gemm kernel makes the composition bit-invisible.
  TreeModel model(encoder_.get(), Config(/*lstm=*/false, /*with_cards=*/false));
  std::vector<std::unique_ptr<EstNode>> trees;
  std::vector<std::pair<const qry::Query*, const EstNode*>> batch;
  for (const auto& labeled : queries_) {
    trees.push_back(Tree(labeled));
    batch.emplace_back(&labeled.query, trees.back().get());
  }
  std::vector<std::vector<TreeModel::InferNodeOutput>> batched;
  model.InferTrees(batch, &batched);
  ASSERT_EQ(batched.size(), queries_.size());
  for (size_t t = 0; t < queries_.size(); ++t) {
    auto fwd = model.Forward(queries_[t].query, trees[t].get());
    ASSERT_EQ(batched[t].size(), fwd.size());
    for (size_t i = 0; i < fwd.size(); ++i) {
      EXPECT_EQ(batched[t][i].y, fwd[i].y->value().at(0, 0))
          << "tree " << t << " node " << i;
    }
  }
}

TEST_F(InferFastPathTest, BitExactAtEveryMatMulThreadCount) {
  TreeModel model(encoder_.get(), Config(/*lstm=*/true, /*with_cards=*/false));
  auto tree = Tree(queries_.front());
  const double batched =
      model.PredictCardFast(queries_.front().query, tree.get());
  const int prev = nn::MatMulThreads();
  for (int threads : {1, 2, 4}) {
    nn::SetMatMulThreads(threads);
    auto fwd = model.Forward(queries_.front().query, tree.get());
    EXPECT_EQ(model.YToCard(static_cast<double>(fwd.back().y->value().at(0, 0))),
              batched)
        << "threads=" << threads;
  }
  nn::SetMatMulThreads(prev);
}

namespace {
/// Clone with the subtree covering `inject_rels` replaced by an injected
/// leaf, as LPCE-R refinement builds them.
std::unique_ptr<EstNode> CloneInjecting(const EstNode* node,
                                        qry::RelSet inject_rels,
                                        const nn::Tensor& injected_c,
                                        double injected_card) {
  auto copy = std::make_unique<EstNode>();
  copy->rels = node->rels;
  if (node->rels == inject_rels) {
    copy->injected_c = injected_c;
    copy->true_card = injected_card;
    return copy;
  }
  copy->table_pos = node->table_pos;
  copy->join_idx = node->join_idx;
  copy->child_card_left = node->child_card_left;
  copy->child_card_right = node->child_card_right;
  copy->true_card = node->true_card;
  if (node->left != nullptr) {
    copy->left =
        CloneInjecting(node->left.get(), inject_rels, injected_c, injected_card);
  }
  if (node->right != nullptr) {
    copy->right = CloneInjecting(node->right.get(), inject_rels, injected_c,
                                 injected_card);
  }
  return copy;
}
}  // namespace

TEST_F(InferFastPathTest, InjectedExecutedLeavesStayBitExact) {
  Rng rng(99);
  for (bool lstm : {false, true}) {
    TreeModel model(encoder_.get(), Config(lstm, /*with_cards=*/false));
    for (size_t qi = 0; qi < 3; ++qi) {
      auto tree = Tree(queries_[qi]);
      if (tree->left == nullptr) continue;
      nn::Matrix enc(1, static_cast<size_t>(model.config().dim));
      for (size_t j = 0; j < enc.cols(); ++j) {
        enc.at(0, j) = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
      }
      auto injected = CloneInjecting(tree.get(), tree->left->rels,
                                     nn::MakeTensor(std::move(enc)), 1234.0);
      ExpectInferMatchesForward(model, queries_[qi].query, injected.get(),
                                /*dynamic=*/false, lstm ? "lstm" : "sru");
    }
  }
}

TEST_F(InferFastPathTest, FeatureCacheIsBitInvisible) {
  for (bool with_cards : {false, true}) {
    TreeModel model(encoder_.get(), Config(/*lstm=*/false, with_cards));
    const auto& labeled = queries_.front();
    auto tree = Tree(labeled);
    const nn::Matrix cache = model.BuildFeatureCache(labeled.query, tree.get());
    auto plain = model.Forward(labeled.query, tree.get());
    auto cached = model.Forward(labeled.query, tree.get(),
                                /*dynamic_child_cards=*/false, &cache);
    ASSERT_EQ(plain.size(), cached.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(cached[i].y->value().at(0, 0), plain[i].y->value().at(0, 0));
    }
    TreeModel::InferResult res =
        model.Infer(labeled.query, tree.get(), /*dynamic_child_cards=*/false,
                    /*sink=*/nullptr, &cache);
    EXPECT_EQ(res.root_card,
              model.YToCard(
                  static_cast<double>(plain.back().y->value().at(0, 0))));
  }
}

TEST_F(InferFastPathTest, EncodeRootFastMatchesForwardEncoding) {
  TreeModel model(encoder_.get(), Config(/*lstm=*/false, /*with_cards=*/false));
  const auto& labeled = queries_.front();
  auto tree = Tree(labeled);
  auto fwd = model.Forward(labeled.query, tree.get());
  nn::Matrix fast = model.EncodeRootFast(labeled.query, tree.get());
  const nn::Matrix& taped = fwd.back().c->value();
  ASSERT_EQ(fast.cols(), taped.cols());
  for (size_t j = 0; j < fast.cols(); ++j) {
    EXPECT_EQ(fast.at(0, j), taped.at(0, j)) << "c[" << j << "]";
  }
}

TEST_F(InferFastPathTest, ZeroHeapAllocationsPerQueryAfterWarmup) {
  if (!TreeModel::BatchedInferEnabled()) GTEST_SKIP();
  TreeModel model(encoder_.get(), Config(/*lstm=*/false, /*with_cards=*/false));
  std::vector<std::unique_ptr<EstNode>> trees;
  for (const auto& labeled : queries_) trees.push_back(Tree(labeled));
  // Warmup: the arena learns the high-water mark of the largest query and
  // the per-thread workspace vectors reach steady capacity.
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      model.PredictCardFast(queries_[i].query, trees[i].get());
    }
  }
  const size_t warm = nn::InferArena::ThreadLocal().heap_allocations();
  for (int pass = 0; pass < 5; ++pass) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      model.PredictCardFast(queries_[i].query, trees[i].get());
    }
  }
  EXPECT_EQ(nn::InferArena::ThreadLocal().heap_allocations(), warm)
      << "steady-state inference must not touch the heap (arena contract)";
}

TEST_F(InferFastPathTest, BatchedPrepareQueryMatchesTreeInference) {
  if (!TreeModel::BatchedInferEnabled()) GTEST_SKIP();
  TreeModel model(encoder_.get(), Config(/*lstm=*/false, /*with_cards=*/false));
  TreeModelEstimator estimator("lpce", &model, database_.get());
  for (size_t qi = 0; qi < 3; ++qi) {
    const qry::Query& query = queries_[qi].query;
    estimator.PrepareQuery(query);
    const qry::RelSet all = query.AllRels();
    for (qry::RelSet rels = 1; rels <= all; ++rels) {
      if ((rels & all) != rels || !query.IsConnected(rels)) continue;
      auto logical = qry::BuildCanonicalTree(query, rels);
      auto tree = MakeEstTree(query, logical.get(), *database_, nullptr);
      const double direct = model.PredictCardFast(query, tree.get());
      // The incremental chain shares every per-node kernel sequence with
      // full-tree inference, so prepared estimates match bit-for-bit.
      EXPECT_DOUBLE_EQ(estimator.EstimateSubset(query, rels), direct)
          << "query " << qi << " rels " << rels;
    }
  }
}

}  // namespace
}  // namespace lpce::model
