// ThreadPool unit tests: static-partition invariants, ParallelFor
// correctness across sizes/grains/caps, nested calls, and a write-heavy
// stress loop meant to run under ThreadSanitizer (the CI tsan job).
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace lpce::common {
namespace {

TEST(ThreadPoolPartition, CoversRangeContiguously) {
  for (size_t n : {0ul, 1ul, 7ul, 100ul, 4096ul, 99999ul}) {
    for (size_t grain : {1ul, 16ul, 1000ul}) {
      for (int chunks : {1, 3, 8}) {
        const auto parts = ThreadPool::Partition(10, 10 + n, grain, chunks);
        if (n == 0) {
          EXPECT_TRUE(parts.empty());
          continue;
        }
        ASSERT_FALSE(parts.empty());
        EXPECT_LE(parts.size(), static_cast<size_t>(chunks));
        EXPECT_EQ(parts.front().first, 10u);
        EXPECT_EQ(parts.back().second, 10 + n);
        for (size_t i = 0; i < parts.size(); ++i) {
          EXPECT_LT(parts[i].first, parts[i].second);
          if (i > 0) {
            EXPECT_EQ(parts[i].first, parts[i - 1].second);
          }
          // Every chunk but possibly the only one honors the grain.
          if (parts.size() > 1) {
            EXPECT_GE(parts[i].second - parts[i].first, grain);
          }
        }
      }
    }
  }
}

TEST(ThreadPoolPartition, IsDeterministic) {
  const auto a = ThreadPool::Partition(0, 12345, 64, 7);
  const auto b = ThreadPool::Partition(0, 12345, 64, 7);
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  for (size_t n : {1ul, 5ul, 1000ul, 40000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(0, n, 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n;
    }
  }
}

TEST(ThreadPoolTest, SizeOneRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 10000, 1, [&](size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, MaxChunksCapsFanOut) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100000, 1, [&](size_t, size_t) { calls.fetch_add(1); },
                   /*max_chunks=*/3);
  EXPECT_LE(calls.load(), 3);
  EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.ParallelFor(0, 64, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      pool.ParallelFor(0, 64, 1, [&](size_t b2, size_t e2) {
        for (size_t j = b2; j < e2; ++j) hits[i * 64 + j].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  const size_t n = 100000;
  std::vector<int64_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  // Per-chunk partials combined in chunk order — the deterministic-reduction
  // pattern the executor and matrix kernels rely on.
  const auto chunks = ThreadPool::Partition(0, n, 1024, pool.size());
  std::vector<int64_t> partial(chunks.size(), 0);
  pool.ParallelFor(0, chunks.size(), 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
        partial[c] += values[i];
      }
    }
  });
  const int64_t total = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(total, static_cast<int64_t>(n) * (n + 1) / 2);
}

// Repeated dispatch with disjoint writes: the loop TSan watches for races in
// the queue/latch handshake.
TEST(ThreadPoolTest, RepeatedDispatchStress) {
  ThreadPool pool(4);
  std::vector<int> data(10000, 0);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, data.size(), 64, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) ++data[i];
    });
  }
  for (int v : data) ASSERT_EQ(v, 200);
}

TEST(ThreadPoolTest, GlobalPoolResize) {
  SetGlobalPoolSize(3);
  EXPECT_EQ(GlobalPool().size(), 3);
  SetGlobalPoolSize(1);
  EXPECT_EQ(GlobalPool().size(), 1);
  SetGlobalPoolSize(0);  // hardware default
  EXPECT_GE(GlobalPool().size(), 1);
}

TEST(ThreadPoolTest, AbsurdSizeIsClampedNotFatal) {
  // A typo'd LPCE_NUM_THREADS=1000000 must not abort in std::thread
  // ("Resource temporarily unavailable"); the pool clamps to a sane cap.
  ThreadPool pool(1000000);
  EXPECT_LE(pool.size(), 256);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 1000, 1, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace lpce::common
