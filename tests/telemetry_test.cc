// Unit suite for the serving telemetry pipeline (common/telemetry.h): the
// log-bucket histogram's integer bucketing and quantiles, the lock-free ring
// (overflow drops counted exactly, FIFO order, multi-producer exact counts —
// the latter is the TSan target), off-mode no-ops, window rotation/baseline
// freezing, and byte-deterministic Prometheus exposition for identical
// record sequences.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"

namespace lpce::common {
namespace {

// ---- LogHistogram ----------------------------------------------------------

TEST(LogHistogramTest, BucketBoundsContainTheirValues) {
  // Every value must land in a bucket whose inclusive upper bound is >= the
  // value, and the previous bucket's bound must be < the value.
  const std::vector<uint64_t> probes = {
      0,        1,          2,          3,          4,    5,    7,    8,
      15,       16,         17,         100,        1000, 4095, 4096, 4097,
      1000000,  1000000000, 1000000000000ull,       (1ull << 40) - 1,
      1ull << 40, (1ull << 40) + 1, 1ull << 62, ~uint64_t{0} >> 1};
  for (uint64_t v : probes) {
    const int bucket = LogHistogram::BucketOf(v);
    ASSERT_GE(bucket, 0) << v;
    ASSERT_LT(bucket, LogHistogram::kNumBuckets) << v;
    EXPECT_GE(LogHistogram::BucketUpperBound(bucket), v) << v;
    if (bucket > 0) {
      EXPECT_LT(LogHistogram::BucketUpperBound(bucket - 1), v) << v;
    }
  }
}

TEST(LogHistogramTest, BucketUpperBoundsStrictlyAscend) {
  for (int b = 1; b < LogHistogram::kNumBuckets; ++b) {
    EXPECT_GT(LogHistogram::BucketUpperBound(b),
              LogHistogram::BucketUpperBound(b - 1))
        << "bucket " << b;
  }
}

TEST(LogHistogramTest, RelativeBucketWidthUnder15Percent) {
  // 8 sub-buckets per octave: the quantile error bound callers rely on.
  for (int b = 1 << LogHistogram::kSubBits; b < LogHistogram::kNumBuckets - 1;
       ++b) {
    const double lo = static_cast<double>(LogHistogram::BucketUpperBound(b - 1));
    const double hi = static_cast<double>(LogHistogram::BucketUpperBound(b));
    if (lo <= 0) continue;
    EXPECT_LE(hi / lo, 1.15) << "bucket " << b;
  }
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram hist;
  for (uint64_t v : {0, 1, 1, 2, 3}) hist.Observe(v);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 7u);
  EXPECT_EQ(hist.ValueAtQuantile(0.0), 0u);   // rank 1 -> value 0
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 1u);   // rank 3 -> second 1
  EXPECT_EQ(hist.ValueAtQuantile(1.0), 3u);
}

TEST(LogHistogramTest, QuantilesWithinBucketWidth) {
  LogHistogram hist;
  for (uint64_t v = 1; v <= 10000; ++v) hist.Observe(v);
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact = q * 10000.0;
    const double reported = static_cast<double>(hist.ValueAtQuantile(q));
    EXPECT_GE(reported, exact - 1.0) << q;  // never below the true quantile
    EXPECT_LE(reported, exact * 1.15) << q; // at most one bucket above
  }
}

TEST(LogHistogramTest, DoubleScaleRoundTrips) {
  LogHistogram hist;
  hist.ObserveDouble(1.0);
  hist.ObserveDouble(50.0);
  hist.ObserveDouble(-3.0);  // clamps to 0
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_NEAR(hist.DoubleAtQuantile(0.5), 1.0, 1.0 * 0.20);
  EXPECT_NEAR(hist.DoubleAtQuantile(1.0), 50.0, 50.0 * 0.20);
}

TEST(LogHistogramTest, MergeAddsCountsAndSums) {
  LogHistogram a, b;
  for (uint64_t v = 1; v <= 100; ++v) a.Observe(v);
  for (uint64_t v = 101; v <= 200; ++v) b.Observe(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.sum(), 200u * 201u / 2);
  EXPECT_GE(a.ValueAtQuantile(1.0), 200u);
}

// ---- TelemetryRing ---------------------------------------------------------

TEST(TelemetryRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TelemetryRing(1).capacity(), 2u);
  EXPECT_EQ(TelemetryRing(5).capacity(), 8u);
  EXPECT_EQ(TelemetryRing(64).capacity(), 64u);
}

TEST(TelemetryRingTest, OverflowFailsFastAndExactly) {
  TelemetryRing ring(8);
  TelemetryRecord record;
  for (int i = 0; i < 8; ++i) {
    record.fss_hash = static_cast<uint64_t>(i);
    EXPECT_TRUE(ring.TryPush(record)) << i;
  }
  // Full: every further push fails without blocking.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(ring.TryPush(record));
  // Pop one slot; exactly one more push fits.
  TelemetryRecord out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.fss_hash, 0u);  // FIFO
  EXPECT_TRUE(ring.TryPush(record));
  EXPECT_FALSE(ring.TryPush(record));
}

TEST(TelemetryRingTest, FifoOrder) {
  TelemetryRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) {
    TelemetryRecord record;
    record.fss_hash = i;
    ASSERT_TRUE(ring.TryPush(record));
  }
  for (uint64_t i = 0; i < 10; ++i) {
    TelemetryRecord out;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.fss_hash, i);
  }
  TelemetryRecord out;
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(TelemetryRingTest, MultiProducerExactCounts) {
  // The TSan target: producers race on the ring while a consumer drains.
  // Every record is either popped or was reported dropped — no loss, no
  // duplication.
  TelemetryRing ring(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::vector<uint64_t> popped_per_producer(kProducers, 0);

  std::thread consumer([&] {
    TelemetryRecord out;
    for (;;) {
      if (ring.TryPop(&out)) {
        ++popped_per_producer[out.fss_hash];
      } else if (done.load(std::memory_order_acquire)) {
        if (!ring.TryPop(&out)) break;  // drained after the last producer
        ++popped_per_producer[out.fss_hash];
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      TelemetryRecord record;
      record.fss_hash = static_cast<uint64_t>(p);
      for (int i = 0; i < kPerProducer; ++i) {
        if (ring.TryPush(record)) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(pushed.load() + dropped.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  uint64_t total_popped = 0;
  for (uint64_t n : popped_per_producer) total_popped += n;
  EXPECT_EQ(total_popped, pushed.load());
}

// ---- Hub -------------------------------------------------------------------

TelemetryRecord MakeRecord(uint64_t fss, double qerror = 1.0,
                           uint64_t exec_ns = 1000) {
  TelemetryRecord record;
  record.fss_hash = fss;
  record.plan_ns = 100;
  record.infer_ns = 50;
  record.exec_ns = exec_ns;
  record.result_rows = 7;
  record.num_qerrors = 1;
  record.qerrors[0] = static_cast<float>(qerror);
  record.max_qerror = static_cast<float>(qerror);
  return record;
}

class TelemetryHubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.ring_capacity = 64;
    options_.window_size = 4;
    options_.mode = TelemetryMode::kDeterministic;
    TelemetryHub::Global().Configure(options_);
    SetTelemetryEnabled(true);
  }
  void TearDown() override {
    SetTelemetryEnabled(false);
    TelemetryHub::Global().Configure(TelemetryOptions::FromEnv());
  }
  TelemetryOptions options_;
};

TEST_F(TelemetryHubTest, OffModeIsANoOp) {
  SetTelemetryEnabled(false);
  auto& hub = TelemetryHub::Global();
  EXPECT_FALSE(hub.Publish(MakeRecord(1)));
  EXPECT_EQ(hub.published(), 0u);
  EXPECT_EQ(hub.dropped(), 0u);
  EXPECT_EQ(hub.DrainNow(), 0u);
  EXPECT_TRUE(hub.Snapshot().templates.empty());
}

TEST_F(TelemetryHubTest, FullRingCountsDropsExactly) {
  options_.ring_capacity = 8;
  TelemetryHub::Global().Configure(options_);
  auto& hub = TelemetryHub::Global();
  for (int i = 0; i < 20; ++i) hub.Publish(MakeRecord(1));
  EXPECT_EQ(hub.published(), 8u);
  EXPECT_EQ(hub.dropped(), 12u);
  EXPECT_EQ(hub.DrainNow(), 8u);
  // Ring drained: room again, drops stop.
  EXPECT_TRUE(hub.Publish(MakeRecord(1)));
  EXPECT_EQ(hub.dropped(), 12u);
}

TEST_F(TelemetryHubTest, WindowsRotateOnCountAndFreezeBaseline) {
  auto& hub = TelemetryHub::Global();
  // window_size = 4: 6 records = one completed window (the baseline) + 2 in
  // the current one.
  for (int i = 0; i < 6; ++i) hub.Publish(MakeRecord(42, 2.0));
  EXPECT_EQ(hub.DrainNow(), 6u);
  const TelemetrySnapshot snapshot = hub.Snapshot();
  const auto* t = snapshot.Find(42);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->lifetime.queries, 6u);
  EXPECT_EQ(t->current.queries, 2u);
  ASSERT_TRUE(t->has_completed);
  ASSERT_TRUE(t->has_baseline);
  EXPECT_EQ(t->completed.queries, 4u);
  EXPECT_EQ(t->baseline.queries, 4u);
  EXPECT_EQ(t->windows_completed, 1u);

  // Six more records at q=8.0: the 2 leftover q=2.0 records finish window #2
  // (mixed), then window #3 completes as pure q=8.0. Baseline stays frozen at
  // the first window throughout.
  for (int i = 0; i < 6; ++i) hub.Publish(MakeRecord(42, 8.0));
  hub.DrainNow();
  const auto* t2 = hub.Snapshot().Find(42);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t2->windows_completed, 3u);
  EXPECT_NEAR(t2->completed.qerror.DoubleAtQuantile(0.5), 8.0, 8.0 * 0.2);
  EXPECT_NEAR(t2->baseline.qerror.DoubleAtQuantile(0.5), 2.0, 2.0 * 0.2);
}

TEST_F(TelemetryHubTest, RejectedRecordsCountWithoutLatencies) {
  auto& hub = TelemetryHub::Global();
  TelemetryRecord rejected;
  rejected.outcome = QueryOutcome::kRejected;
  hub.Publish(rejected);
  hub.Publish(MakeRecord(7));
  hub.DrainNow();
  const TelemetrySnapshot snapshot = hub.Snapshot();
  const auto* backpressure = snapshot.Find(0);
  ASSERT_NE(backpressure, nullptr);
  EXPECT_EQ(backpressure->lifetime.rejected, 1u);
  EXPECT_EQ(backpressure->lifetime.queries, 0u);
  EXPECT_EQ(backpressure->lifetime.phases[WindowStats::kExec].count(), 0u);
  const auto* served = snapshot.Find(7);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->lifetime.queries, 1u);
}

TEST_F(TelemetryHubTest, QErrorsBeyondCapacityAreCountedNotStored) {
  auto& hub = TelemetryHub::Global();
  TelemetryRecord record = MakeRecord(9);
  record.num_qerrors = TelemetryRecord::kMaxQErrors + 3;
  hub.Publish(record);
  hub.DrainNow();
  const TelemetrySnapshot snapshot = hub.Snapshot();
  EXPECT_EQ(snapshot.qerrors_truncated, 3u);
  const auto* t = snapshot.Find(9);
  ASSERT_NE(t, nullptr);
  // Stored values observed, the rest only counted.
  EXPECT_EQ(t->lifetime.qerror.count(),
            static_cast<uint64_t>(TelemetryRecord::kMaxQErrors));
  EXPECT_EQ(t->lifetime.checkpoints, TelemetryRecord::kMaxQErrors + 3u);
}

TEST_F(TelemetryHubTest, MultiProducerPublishThenDrainIsExact) {
  options_.ring_capacity = 1 << 14;  // no drops: counts must match exactly
  TelemetryHub::Global().Configure(options_);
  auto& hub = TelemetryHub::Global();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&hub, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        hub.Publish(MakeRecord(static_cast<uint64_t>(p + 1)));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(hub.published(), static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(hub.dropped(), 0u);
  EXPECT_EQ(hub.DrainNow(), hub.published());
  const TelemetrySnapshot snapshot = hub.Snapshot();
  ASSERT_EQ(snapshot.templates.size(), static_cast<size_t>(kProducers));
  for (const auto& t : snapshot.templates) {
    EXPECT_EQ(t.lifetime.queries, static_cast<uint64_t>(kPerProducer));
  }
}

TEST_F(TelemetryHubTest, ConcurrentPublishWithBackgroundAggregator) {
  options_.ring_capacity = 64;  // small: drops race with the drainer
  TelemetryHub::Global().Configure(options_);
  auto& hub = TelemetryHub::Global();
  hub.StartAggregator();
  EXPECT_TRUE(hub.aggregator_running());
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&hub, p] {
      for (int i = 0; i < 2000; ++i) {
        hub.Publish(MakeRecord(static_cast<uint64_t>(p + 1)));
      }
    });
  }
  for (auto& t : producers) t.join();
  hub.StopAggregator();
  EXPECT_FALSE(hub.aggregator_running());
  // Conservation: everything published was drained, everything else dropped.
  EXPECT_EQ(hub.drained(), hub.published());
  EXPECT_EQ(hub.published() + hub.dropped(), 4u * 2000u);
  uint64_t applied = 0;
  for (const auto& t : hub.Snapshot().templates) applied += t.lifetime.queries;
  EXPECT_EQ(applied, hub.published());
}

TEST_F(TelemetryHubTest, DeterministicExpositionBytes) {
  auto publish_sequence = [] {
    auto& hub = TelemetryHub::Global();
    for (int i = 0; i < 9; ++i) {
      hub.Publish(MakeRecord(3, 2.0 + i, 500 + 100 * i));
      hub.Publish(MakeRecord(11, 4.0, 900));
    }
    hub.DrainNow();
    std::string out;
    AppendTelemetryPrometheus(hub.Snapshot(), /*include_wallclock=*/false,
                              &out);
    return out;
  };
  const std::string first = publish_sequence();
  TelemetryHub::Global().Configure(options_);  // clean slate, same sequence
  const std::string second = publish_sequence();
  EXPECT_EQ(first, second);
  // Structure sanity: per-template families present, sorted fss labels.
  EXPECT_NE(first.find("lpce_telemetry_queries_total{fss=\"0000000000000003\"}"),
            std::string::npos);
  EXPECT_NE(first.find("lpce_telemetry_phase_seconds_bucket"), std::string::npos);
  EXPECT_NE(first.find("lpce_telemetry_qerror"), std::string::npos);
  EXPECT_NE(first.find("lpce_drift_flagged"), std::string::npos);
  EXPECT_LT(first.find("fss=\"0000000000000003\""),
            first.find("fss=\"000000000000000b\""));
}

TEST_F(TelemetryHubTest, DriftHookRunsAfterDrainAndFlagsStick) {
  auto& hub = TelemetryHub::Global();
  int hook_runs = 0;
  hub.SetDriftHook([&hook_runs](TelemetryHub& h) {
    ++hook_runs;
    h.SetDriftFlag(5, true, 3.5);
  });
  // A partial window drains without firing the hook: drift verdicts only
  // change when a window completes.
  hub.Publish(MakeRecord(5));
  hub.DrainNow();
  EXPECT_EQ(hook_runs, 0);
  // Completing the 4-record window fires it exactly once.
  for (int i = 0; i < 3; ++i) hub.Publish(MakeRecord(5));
  hub.DrainNow();
  EXPECT_EQ(hook_runs, 1);
  EXPECT_TRUE(hub.drift_flag(5).drifted);
  EXPECT_DOUBLE_EQ(hub.drift_flag(5).ratio, 3.5);
  const auto* t = hub.Snapshot().Find(5);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->drifted);
  // Another rotation-free drain stays silent; the next rotation fires again.
  hub.Publish(MakeRecord(5));
  hub.DrainNow();
  EXPECT_EQ(hook_runs, 1);
  for (int i = 0; i < 3; ++i) hub.Publish(MakeRecord(5));
  hub.DrainNow();
  EXPECT_EQ(hook_runs, 2);
  hub.SetDriftHook(nullptr);
}

}  // namespace
}  // namespace lpce::common
