// Deterministic fuzz tests: malformed inputs must produce clean errors,
// never crashes or hangs.
//  - SQL parser: random garbage, token soup, and mutated valid queries;
//  - workload deserializer: truncations and bit flips of a valid file;
//  - parameter loader: truncations of a valid parameter file;
//  - concurrent serving: randomized queries through a 4-worker EngineServer,
//    every result cross-checked against the exact-cardinality oracle;
//  - batch execution: randomized queries (plus hand-built multigraph /
//    residual-key shapes) through the vectorized executor at randomized
//    batch sizes, cross-checked against the same oracle.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "nn/layers.h"
#include "query/parser.h"
#include "storage/database.h"
#include "testing/exact_card.h"
#include "workload/workload.h"

namespace lpce {
namespace {

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
  }

  std::unique_ptr<db::Database> database_;
};

TEST_F(FuzzTest, ParserSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(120);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(1, 126)));
    }
    qry::Query query;
    // Must return (almost surely an error) without crashing.
    (void)qry::ParseQuery(database_->catalog(), input, &query);
  }
}

TEST_F(FuzzTest, ParserSurvivesTokenSoup) {
  Rng rng(2);
  const std::vector<std::string> tokens = {
      "select", "count", "(", ")", "*", "from", "where", "and", "title",
      "movie_companies", "cast_info", ".", ",", "id", "movie_id", "kind_id",
      "<", "<=", "=", ">=", ">", "<>", "42", "-7", "bogus"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(30);
    for (size_t i = 0; i < len; ++i) {
      input += tokens[rng.Uniform(tokens.size())];
      input += " ";
    }
    qry::Query query;
    (void)qry::ParseQuery(database_->catalog(), input, &query);
  }
}

TEST_F(FuzzTest, ParserSurvivesMutationsOfValidQuery) {
  const std::string valid =
      "SELECT COUNT(*) FROM title, movie_companies WHERE "
      "movie_companies.movie_id = title.id AND title.kind_id < 4";
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    const int edits = static_cast<int>(rng.Uniform(4)) + 1;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
      }
      if (mutated.empty()) break;
    }
    qry::Query query;
    Status status = qry::ParseQuery(database_->catalog(), mutated, &query);
    if (status.ok()) {
      // If it still parses, the result must satisfy the planner contract.
      EXPECT_TRUE(query.IsConnected(query.AllRels()));
      EXPECT_EQ(query.num_joins(), query.num_tables() - 1);
    }
  }
}

TEST_F(FuzzTest, WorkloadLoaderSurvivesTruncation) {
  wk::GeneratorOptions gen;
  gen.seed = 4;
  wk::QueryGenerator generator(database_.get(), gen);
  auto workload = generator.GenerateLabeled(3, 2, 4);
  const std::string path = ::testing::TempDir() + "/fuzz_workload.bin";
  ASSERT_TRUE(wk::SaveWorkload(workload, path).ok());

  // Read the full bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  const std::string trunc_path = ::testing::TempDir() + "/fuzz_trunc.bin";
  // Truncate at a spread of prefixes (every ~7 bytes to keep runtime sane).
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::FILE* out = std::fopen(trunc_path.c_str(), "wb");
    std::fwrite(bytes.data(), 1, cut, out);
    std::fclose(out);
    std::vector<wk::LabeledQuery> loaded;
    EXPECT_FALSE(wk::LoadWorkload(trunc_path, &loaded).ok()) << "cut=" << cut;
  }
  // The untruncated file still loads.
  std::vector<wk::LabeledQuery> loaded;
  EXPECT_TRUE(wk::LoadWorkload(path, &loaded).ok());
}

TEST_F(FuzzTest, WorkloadLoaderSurvivesBitFlips) {
  wk::GeneratorOptions gen;
  gen.seed = 5;
  wk::QueryGenerator generator(database_.get(), gen);
  auto workload = generator.GenerateLabeled(2, 2, 3);
  const std::string path = ::testing::TempDir() + "/fuzz_flip_base.bin";
  ASSERT_TRUE(wk::SaveWorkload(workload, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  Rng rng(6);
  const std::string flip_path = ::testing::TempDir() + "/fuzz_flip.bin";
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = bytes;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    std::FILE* out = std::fopen(flip_path.c_str(), "wb");
    std::fwrite(mutated.data(), 1, mutated.size(), out);
    std::fclose(out);
    std::vector<wk::LabeledQuery> loaded;
    // Either a clean error or a (possibly corrupted) successful parse —
    // never a crash. Loaded data is not used further.
    (void)wk::LoadWorkload(flip_path, &loaded);
  }
}

TEST_F(FuzzTest, ConcurrentServerMatchesExactOracle) {
  // Randomized queries through a 4-worker EngineServer, each cross-checked
  // against the brute-force oracle (tests/testing/exact_card.h) — a third
  // implementation, independent of both the executor and the labeler. Random
  // per-query run configs mix plain and re-optimizing executions across the
  // workers. Oracle cost is exponential, so this uses a smaller database and
  // 1-3 joins.
  db::SynthImdbOptions opts;
  opts.scale = 0.01;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  common::SetGlobalPoolSize(2);

  eng::ServerOptions options;
  options.num_workers = 4;
  options.max_queue = 256;
  eng::EngineServer server(
      database.get(), opt::CostModel{},
      [&stats](int worker_id) {
        (void)worker_id;
        eng::EngineServer::Session session;
        session.initial = std::make_unique<card::HistogramEstimator>(&stats);
        return session;
      },
      options);

  Rng rng(9);
  std::vector<uint64_t> expected;
  std::vector<std::shared_future<eng::RunStats>> futures;
  for (int round = 0; round < 4; ++round) {
    wk::GeneratorOptions gen;
    gen.seed = 1000 + static_cast<uint64_t>(round);
    wk::QueryGenerator generator(database.get(), gen);
    for (int i = 0; i < 15; ++i) {
      const qry::Query query =
          generator.Generate(1 + static_cast<int>(rng.Uniform(3)));
      expected.push_back(
          testing::ExactCardinality(*database, query, query.AllRels()));
      eng::RunConfig config;
      if (rng.Uniform(2) == 0) {
        config.enable_reopt = true;
        config.qerror_threshold = 2.0 + rng.UniformDouble(0.0, 20.0);
      }
      Result<std::shared_future<eng::RunStats>> admitted =
          server.Submit(query, config);
      ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
      futures.push_back(admitted.value());
    }
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    EXPECT_EQ(futures[q].get().result_count, expected[q]) << "query " << q;
  }
  server.Shutdown();
  const eng::EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, futures.size());
  EXPECT_EQ(counters.completed, futures.size());
  EXPECT_EQ(counters.rejected, 0u);
  common::SetGlobalPoolSize(0);
}

TEST_F(FuzzTest, BatchExecutorMatchesExactOracle) {
  // Batch-mode lane of the oracle fuzz: randomized queries through the
  // engine with the vectorized executor at randomized batch sizes, each
  // result cross-checked against the brute-force exact-cardinality oracle.
  // Mixes plain and re-optimizing configs so checkpoint-interrupted batch
  // runs are covered too.
  db::SynthImdbOptions opts;
  opts.scale = 0.01;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  common::SetGlobalPoolSize(2);

  eng::Engine engine(database.get(), opt::CostModel{});
  card::HistogramEstimator estimator(&stats);
  const int batch_sizes[] = {1, 3, 7, 1024};
  Rng rng(21);
  wk::GeneratorOptions gen;
  gen.seed = 2100;
  wk::QueryGenerator generator(database.get(), gen);
  for (int i = 0; i < 40; ++i) {
    const qry::Query query =
        generator.Generate(1 + static_cast<int>(rng.Uniform(3)));
    const uint64_t expected =
        testing::ExactCardinality(*database, query, query.AllRels());
    eng::RunConfig config;
    config.exec_batch_size = batch_sizes[rng.Uniform(4)];
    if (rng.Uniform(2) == 0) {
      config.enable_reopt = true;
      config.qerror_threshold = 2.0 + rng.UniformDouble(0.0, 20.0);
    }
    const eng::RunStats stats_out = engine.RunQuery(query, &estimator,
                                                    nullptr, config);
    EXPECT_EQ(stats_out.result_count, expected)
        << "query " << i << " batch=" << config.exec_batch_size
        << " reopt=" << config.enable_reopt;
  }

  // Multigraph / residual-key shapes (PR 6): hand-built queries whose join
  // cuts carry residual equi-join edges, run in batch mode at several batch
  // sizes against the oracle.
  const int32_t mi = database->catalog().FindTable("movie_info");
  const int32_t midx = database->catalog().FindTable("movie_info_idx");
  const int32_t title = database->catalog().FindTable("title");
  ASSERT_GE(mi, 0);
  ASSERT_GE(midx, 0);
  ASSERT_GE(title, 0);
  qry::Query pair;
  pair.tables = {mi, midx};
  pair.joins.push_back({{mi, 1}, {midx, 1}});   // movie_id
  pair.joins.push_back({{mi, 2}, {midx, 2}});   // info_type_id
  qry::Query triangle;
  triangle.tables = {title, mi, midx};
  triangle.joins.push_back({{mi, 1}, {title, 0}});
  triangle.joins.push_back({{midx, 1}, {title, 0}});
  triangle.joins.push_back({{mi, 2}, {midx, 2}});
  for (const qry::Query& query : {pair, triangle}) {
    const uint64_t expected =
        testing::ExactCardinality(*database, query, query.AllRels());
    for (int batch : {1, 3, 1024}) {
      eng::RunConfig config;
      config.exec_batch_size = batch;
      const eng::RunStats stats_out = engine.RunQuery(query, &estimator,
                                                      nullptr, config);
      EXPECT_EQ(stats_out.result_count, expected)
          << "multigraph batch=" << batch;
    }
  }
  common::SetGlobalPoolSize(0);
}

TEST_F(FuzzTest, LateMatBatchExecutorMatchesExactOracle) {
  // Late-materialization lane of the oracle fuzz: randomized queries plus
  // the hand-built multigraph / residual-key shapes, run with row-id
  // intermediates (exec_late_mat=1) at pool sizes {1, 2, 4}, each result
  // differentially checked against BOTH the brute-force exact-cardinality
  // oracle and the plain batch path at the same batch size. Batch sizes 1
  // and 3 force single-row-tail / many-empty-batch probe shapes.
  db::SynthImdbOptions opts;
  opts.scale = 0.01;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);

  eng::Engine engine(database.get(), opt::CostModel{});
  card::HistogramEstimator estimator(&stats);
  const int batch_sizes[] = {1, 3, 7, 1024};
  Rng rng(33);
  wk::GeneratorOptions gen;
  gen.seed = 3300;
  wk::QueryGenerator generator(database.get(), gen);
  std::vector<qry::Query> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(
        generator.Generate(1 + static_cast<int>(rng.Uniform(3))));
  }
  // Multigraph shapes: the late probe must refine residual equi-join edges
  // through the row-id indirection.
  const int32_t mi = database->catalog().FindTable("movie_info");
  const int32_t midx = database->catalog().FindTable("movie_info_idx");
  const int32_t title = database->catalog().FindTable("title");
  ASSERT_GE(mi, 0);
  ASSERT_GE(midx, 0);
  ASSERT_GE(title, 0);
  qry::Query pair;
  pair.tables = {mi, midx};
  pair.joins.push_back({{mi, 1}, {midx, 1}});   // movie_id
  pair.joins.push_back({{mi, 2}, {midx, 2}});   // info_type_id
  qry::Query triangle;
  triangle.tables = {title, mi, midx};
  triangle.joins.push_back({{mi, 1}, {title, 0}});
  triangle.joins.push_back({{midx, 1}, {title, 0}});
  triangle.joins.push_back({{mi, 2}, {midx, 2}});
  queries.push_back(pair);
  queries.push_back(triangle);

  for (size_t q = 0; q < queries.size(); ++q) {
    const qry::Query& query = queries[q];
    const uint64_t expected =
        testing::ExactCardinality(*database, query, query.AllRels());
    const int batch = batch_sizes[q % 4];
    for (int pool : {1, 2, 4}) {
      common::SetGlobalPoolSize(pool);
      eng::RunConfig late_config;
      late_config.exec_batch_size = batch;
      late_config.exec_late_mat = 1;
      const eng::RunStats late_out =
          engine.RunQuery(query, &estimator, nullptr, late_config);
      eng::RunConfig batch_config;
      batch_config.exec_batch_size = batch;
      batch_config.exec_late_mat = 0;
      const eng::RunStats batch_out =
          engine.RunQuery(query, &estimator, nullptr, batch_config);
      EXPECT_EQ(late_out.result_count, expected)
          << "query " << q << " batch=" << batch << " pool=" << pool;
      EXPECT_EQ(late_out.result_count, batch_out.result_count)
          << "query " << q << " batch=" << batch << " pool=" << pool;
      // Row-id intermediates are never wider than the materialized payloads
      // they replace (uint32 handles vs int64 values, one handle column per
      // table instead of one column per required ref).
      EXPECT_LE(late_out.peak_intermediate_bytes,
                batch_out.peak_intermediate_bytes)
          << "query " << q << " batch=" << batch << " pool=" << pool;
    }
  }
  common::SetGlobalPoolSize(0);
}

TEST_F(FuzzTest, ParamLoaderSurvivesTruncation) {
  Rng rng(7);
  nn::ParamStore store;
  store.GetOrCreate("w1", 4, 4, 1.0f, &rng);
  store.GetOrCreate("w2", 2, 8, 1.0f, &rng);
  const std::string path = ::testing::TempDir() + "/fuzz_params.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  const std::string trunc_path = ::testing::TempDir() + "/fuzz_params_trunc.bin";
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 5) {
    std::FILE* out = std::fopen(trunc_path.c_str(), "wb");
    std::fwrite(bytes.data(), 1, cut, out);
    std::fclose(out);
    nn::ParamStore fresh;
    Rng rng2(8);
    fresh.GetOrCreate("w1", 4, 4, 1.0f, &rng2);
    fresh.GetOrCreate("w2", 2, 8, 1.0f, &rng2);
    EXPECT_FALSE(fresh.LoadFromFile(trunc_path).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace lpce
