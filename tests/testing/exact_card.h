// Exact-cardinality oracle for tests: computes true COUNT(*) cardinalities
// by brute force (backtracking over the cross product of filtered tables,
// pruned by the join constraints). Deliberately independent of the executor
// and the workload labeler, so differential tests can pit all three against
// each other. Exponential in the worst case — use on small tables only.
#ifndef LPCE_TESTS_TESTING_EXACT_CARD_H_
#define LPCE_TESTS_TESTING_EXACT_CARD_H_

#include <unordered_map>

#include "query/query.h"
#include "storage/database.h"

namespace lpce::testing {

/// True cardinality of the connected subset `rels` of `query`: the number of
/// row combinations of the subset's (filtered) tables satisfying every join
/// edge inside the subset.
uint64_t ExactCardinality(const db::Database& database, const qry::Query& query,
                          qry::RelSet rels);

/// ExactCardinality for every connected subset of the query.
std::unordered_map<qry::RelSet, uint64_t> ExactAllConnectedSubsets(
    const db::Database& database, const qry::Query& query);

}  // namespace lpce::testing

#endif  // LPCE_TESTS_TESTING_EXACT_CARD_H_
