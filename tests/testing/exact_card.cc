#include "testing/exact_card.h"

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace lpce::testing {

namespace {

/// Rows of the table at `pos` surviving the query's predicates on it.
std::vector<uint32_t> FilteredRows(const db::Database& database,
                                   const qry::Query& query, int pos) {
  const db::Table& table = database.table(query.tables[pos]);
  const auto preds = query.PredicatesOf(pos);
  std::vector<uint32_t> rows;
  rows.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool pass = true;
    for (const auto& p : preds) {
      if (!qry::EvalCmp(table.at(r, p.col.column), p.op, p.value)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

}  // namespace

uint64_t ExactCardinality(const db::Database& database, const qry::Query& query,
                          qry::RelSet rels) {
  LPCE_CHECK_MSG(rels != 0 && query.IsConnected(rels),
                 "exact oracle needs a connected, non-empty subset");

  // Visit positions in a connect order: every added table is linked to the
  // already-covered prefix by at least one join edge (the query's join graph
  // is a spanning tree, so normally exactly one).
  std::vector<int> order;
  qry::RelSet acc = qry::Bit(__builtin_ctz(rels));
  order.push_back(__builtin_ctz(rels));
  while (acc != rels) {
    for (int pos = 0; pos < query.num_tables(); ++pos) {
      if (!qry::Contains(rels, pos) || qry::Contains(acc, pos)) continue;
      if (query.JoinsBetween(acc, qry::Bit(pos)).empty()) continue;
      order.push_back(pos);
      acc |= qry::Bit(pos);
      break;
    }
  }

  // Per step: the join constraints against earlier steps. The first listed
  // edge drives a value -> rows grouping of this step's filtered rows; any
  // further edges are checked per candidate.
  struct Constraint {
    int own_col;    // column on this step's table
    int prev_step;  // earlier step index the edge connects to
    int prev_col;   // column on that step's table
  };
  const size_t n = order.size();
  std::vector<std::vector<uint32_t>> rows(n);
  std::vector<std::vector<Constraint>> constraints(n);
  std::vector<std::unordered_map<int64_t, std::vector<uint32_t>>> grouped(n);
  for (size_t step = 0; step < n; ++step) {
    const int pos = order[step];
    rows[step] = FilteredRows(database, query, pos);
    if (step == 0) continue;
    qry::RelSet prefix = 0;
    for (size_t s = 0; s < step; ++s) prefix |= qry::Bit(order[s]);
    for (int j : query.JoinsBetween(prefix, qry::Bit(pos))) {
      const qry::Join& join = query.joins[j];
      const bool own_left = query.PositionOf(join.left.table) == pos;
      const qry::ColRef own = own_left ? join.left : join.right;
      const qry::ColRef other = own_left ? join.right : join.left;
      const int other_pos = query.PositionOf(other.table);
      int prev_step = -1;
      for (size_t s = 0; s < step; ++s) {
        if (order[s] == other_pos) prev_step = static_cast<int>(s);
      }
      LPCE_CHECK(prev_step >= 0);
      constraints[step].push_back({static_cast<int>(own.column), prev_step,
                                   static_cast<int>(other.column)});
    }
    LPCE_CHECK(!constraints[step].empty());
    const db::Table& table = database.table(query.tables[pos]);
    auto& groups = grouped[step];
    for (uint32_t r : rows[step]) {
      groups[table.at(r, constraints[step][0].own_col)].push_back(r);
    }
  }

  std::vector<uint32_t> assigned(n, 0);
  std::function<uint64_t(size_t)> count_from = [&](size_t step) -> uint64_t {
    if (step == n) return 1;
    const db::Table& table = database.table(query.tables[order[step]]);
    uint64_t total = 0;
    auto matches = [&](uint32_t r) {
      for (size_t c = 1; c < constraints[step].size(); ++c) {
        const Constraint& k = constraints[step][c];
        const db::Table& prev =
            database.table(query.tables[order[k.prev_step]]);
        if (table.at(r, k.own_col) != prev.at(assigned[k.prev_step], k.prev_col)) {
          return false;
        }
      }
      return true;
    };
    if (step == 0) {
      for (uint32_t r : rows[0]) {
        assigned[0] = r;
        total += count_from(1);
      }
      return total;
    }
    const Constraint& k = constraints[step][0];
    const db::Table& prev = database.table(query.tables[order[k.prev_step]]);
    const int64_t want = prev.at(assigned[k.prev_step], k.prev_col);
    auto it = grouped[step].find(want);
    if (it == grouped[step].end()) return 0;
    for (uint32_t r : it->second) {
      if (!matches(r)) continue;
      assigned[step] = r;
      total += count_from(step + 1);
    }
    return total;
  };
  return count_from(0);
}

std::unordered_map<qry::RelSet, uint64_t> ExactAllConnectedSubsets(
    const db::Database& database, const qry::Query& query) {
  std::unordered_map<qry::RelSet, uint64_t> out;
  for (qry::RelSet s = 1; s <= query.AllRels(); ++s) {
    if (!query.IsConnected(s)) continue;
    out[s] = ExactCardinality(database, query, s);
  }
  return out;
}

}  // namespace lpce::testing
