// Unit tests for the autograd engine: op forward values and numerical
// gradient checks for every differentiable op and both recurrent cells.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/cells.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace lpce::nn {
namespace {

// Numerically checks d(loss)/d(param[i]) against autograd for every element
// of `param`, where `loss_fn` rebuilds the graph from scratch each call.
void CheckGradients(const Tensor& param, const std::function<Tensor()>& loss_fn,
                    float tol = 2e-2f) {
  Tensor loss = loss_fn();
  Backward(loss);
  Matrix analytic = param->grad();

  const float eps = 1e-2f;
  for (size_t i = 0; i < param->value().size(); ++i) {
    const float orig = param->mutable_value().data()[i];
    param->mutable_value().data()[i] = orig + eps;
    const float up = loss_fn()->value().at(0, 0);
    param->mutable_value().data()[i] = orig - eps;
    const float down = loss_fn()->value().at(0, 0);
    param->mutable_value().data()[i] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tol * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
  param->ZeroGrad();
}

Tensor RandomInput(Rng* rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-1.0, 1.0));
  }
  return MakeTensor(std::move(m));
}

TEST(MatrixTest, MatMulMatchesManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.MatMul(b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatrixTest, TransposeVariantsAgree) {
  Rng rng(7);
  Matrix a(4, 3), b(4, 5);
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = (float)rng.UniformDouble();
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = (float)rng.UniformDouble();
  Matrix expect = a.Transpose().MatMul(b);
  Matrix got = a.TransposeMatMul(b);
  ASSERT_TRUE(expect.SameShape(got));
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(expect.data()[i], got.data()[i], 1e-5f);
  }
  Matrix expect2 = a.MatMul(b.MatMul(Matrix(5, 3, 0.1f)).Transpose());
  Matrix got2 = a.MatMulTranspose(b.MatMul(Matrix(5, 3, 0.1f)));
  for (size_t i = 0; i < expect2.size(); ++i) {
    EXPECT_NEAR(expect2.data()[i], got2.data()[i], 1e-4f);
  }
}

TEST(TensorTest, MatMulGradient) {
  Rng rng(1);
  Tensor w = MakeTensor(Matrix(3, 2, {0.1f, -0.2f, 0.3f, 0.4f, -0.5f, 0.6f}),
                        /*requires_grad=*/true);
  Tensor x = RandomInput(&rng, 2, 3);
  CheckGradients(w, [&] { return Sum(MatMul(x, w)); });
}

TEST(TensorTest, ElementwiseOpGradients) {
  Rng rng(2);
  Tensor w = MakeTensor(Matrix(1, 4, {0.5f, -0.4f, 0.3f, 0.9f}), true);
  Tensor x = RandomInput(&rng, 1, 4);
  CheckGradients(w, [&] { return Sum(Mul(w, x)); });
  CheckGradients(w, [&] { return Sum(Add(w, x)); });
  CheckGradients(w, [&] { return Sum(Sub(x, w)); });
  CheckGradients(w, [&] { return Sum(Sigmoid(w)); });
  CheckGradients(w, [&] { return Sum(Tanh(w)); });
  CheckGradients(w, [&] { return Sum(Relu(w)); });
  CheckGradients(w, [&] { return Sum(Abs(w)); });
  CheckGradients(w, [&] { return Sum(Scale(AddScalar(w, 1.5f), -2.0f)); });
  CheckGradients(w, [&] { return Sum(ConcatCols(Mul(w, w), x)); });
}

TEST(TensorTest, BroadcastBiasGradient) {
  Rng rng(3);
  Tensor bias = MakeTensor(Matrix(1, 3, {0.1f, 0.2f, -0.3f}), true);
  Tensor x = RandomInput(&rng, 4, 3);
  CheckGradients(bias, [&] { return Sum(Sigmoid(AddRowBroadcast(x, bias))); });
}

TEST(TensorTest, SharedSubexpressionGradient) {
  // y = w used twice: gradient must accumulate from both paths.
  Tensor w = MakeTensor(Matrix(1, 2, {0.7f, -0.3f}), true);
  CheckGradients(w, [&] { return Sum(Add(Mul(w, w), w)); });
}

TEST(TensorTest, RepeatedBackwardAccumulatesOnLeavesOnly) {
  Tensor w = MakeTensor(Matrix(1, 1, {2.0f}), true);
  Tensor x = MakeTensor(Matrix(1, 1, {3.0f}));
  for (int i = 0; i < 2; ++i) {
    Tensor loss = Sum(Mul(w, x));
    Backward(loss);
  }
  // Two backward passes over fresh graphs: leaf gradient accumulates 3 + 3.
  EXPECT_FLOAT_EQ(w->grad().at(0, 0), 6.0f);
}

TEST(LayersTest, LinearForwardShape) {
  Rng rng(4);
  ParamStore store;
  Linear lin(&store, "lin", 5, 3, &rng);
  Tensor x = RandomInput(&rng, 2, 5);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y->value().rows(), 2u);
  EXPECT_EQ(y->value().cols(), 3u);
  EXPECT_EQ(store.names().size(), 2u);
}

TEST(LayersTest, LinearGradients) {
  Rng rng(5);
  ParamStore store;
  Linear lin(&store, "lin", 3, 2, &rng);
  Tensor x = RandomInput(&rng, 1, 3);
  CheckGradients(store.Get("lin.W"), [&] { return Sum(Tanh(lin.Forward(x))); });
  store.ZeroGrads();
  CheckGradients(store.Get("lin.b"), [&] { return Sum(Tanh(lin.Forward(x))); });
}

TEST(CellsTest, SruStepMatchesEquation) {
  Rng rng(6);
  ParamStore store;
  TreeSruCell cell(&store, "sru", 4, &rng);
  Tensor x = RandomInput(&rng, 1, 4);
  Tensor cl = RandomInput(&rng, 1, 4);
  Tensor cr = RandomInput(&rng, 1, 4);
  CellOutput out = cell.Step(x, cl, cr);
  ASSERT_EQ(out.c->value().cols(), 4u);
  ASSERT_EQ(out.h->value().cols(), 4u);

  // Recompute by hand from the parameters.
  auto mat_vec = [&](const char* name, const char* bias) {
    Matrix w = store.Get(name)->value();
    Matrix b = store.Get(bias)->value();
    Matrix r = x->value().MatMul(w);
    for (size_t j = 0; j < r.cols(); ++j) r.at(0, j) += b.at(0, j);
    return r;
  };
  Matrix x_tilde = mat_vec("sru.wx.W", "sru.wx.b");
  Matrix f = mat_vec("sru.wf.W", "sru.wf.b");
  Matrix r = mat_vec("sru.wr.W", "sru.wr.b");
  for (size_t j = 0; j < 4; ++j) {
    const float fj = 1.0f / (1.0f + std::exp(-f.at(0, j)));
    const float rj = 1.0f / (1.0f + std::exp(-r.at(0, j)));
    const float cj = fj * (cl->value().at(0, j) + cr->value().at(0, j)) +
                     (1.0f - fj) * x_tilde.at(0, j);
    const float hj =
        rj * std::tanh(cj) + (1.0f - rj) * x->value().at(0, j);
    EXPECT_NEAR(out.c->value().at(0, j), cj, 1e-5f);
    EXPECT_NEAR(out.h->value().at(0, j), hj, 1e-5f);
  }
}

TEST(CellsTest, SruGradientsThroughTree) {
  Rng rng(8);
  ParamStore store;
  TreeSruCell cell(&store, "sru", 3, &rng);
  Tensor x1 = RandomInput(&rng, 1, 3);
  Tensor x2 = RandomInput(&rng, 1, 3);
  Tensor x3 = RandomInput(&rng, 1, 3);
  auto loss_fn = [&] {
    CellOutput leaf1 = cell.Step(x1, nullptr, nullptr);
    CellOutput leaf2 = cell.Step(x2, nullptr, nullptr);
    CellOutput root = cell.Step(x3, leaf1.c, leaf2.c);
    return Sum(Add(root.h, root.c));
  };
  CheckGradients(store.Get("sru.wf.W"), loss_fn);
  store.ZeroGrads();
  CheckGradients(store.Get("sru.wx.W"), loss_fn);
}

TEST(CellsTest, LstmGradientsThroughTree) {
  Rng rng(9);
  ParamStore store;
  TreeLstmCell cell(&store, "lstm", 3, &rng);
  Tensor x1 = RandomInput(&rng, 1, 3);
  Tensor x2 = RandomInput(&rng, 1, 3);
  auto loss_fn = [&] {
    CellOutput leaf = cell.Step(x1, nullptr, nullptr, nullptr, nullptr);
    CellOutput root = cell.Step(x2, leaf.c, leaf.h, nullptr, nullptr);
    return Sum(root.h);
  };
  CheckGradients(store.Get("lstm.ui.W"), loss_fn);
  store.ZeroGrads();
  CheckGradients(store.Get("lstm.uf.W"), loss_fn);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize sum((w - target)^2) — Adam should reach the target.
  Rng rng(10);
  ParamStore store;
  Tensor w = store.GetOrCreate("w", 1, 3, 1.0f, &rng);
  Matrix target(1, 3, {0.3f, -1.2f, 2.5f});
  Adam adam(&store, {.lr = 5e-2f});
  for (int step = 0; step < 500; ++step) {
    Tensor diff = Sub(w, MakeTensor(target));
    Tensor loss = Sum(Mul(diff, diff));
    Backward(loss);
    adam.Step();
  }
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(w->value().at(0, j), target.at(0, j), 1e-2f);
  }
}

TEST(ParamStoreTest, SaveLoadRoundTrip) {
  Rng rng(11);
  ParamStore store;
  Tensor a = store.GetOrCreate("a", 2, 3, 1.0f, &rng);
  Tensor b = store.GetOrCreate("b", 1, 4, 1.0f, &rng);
  const std::string path = ::testing::TempDir() + "/params.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());

  Rng rng2(99);
  ParamStore store2;
  Tensor a2 = store2.GetOrCreate("a", 2, 3, 1.0f, &rng2);
  Tensor b2 = store2.GetOrCreate("b", 1, 4, 1.0f, &rng2);
  ASSERT_TRUE(store2.LoadFromFile(path).ok());
  for (size_t i = 0; i < a->value().size(); ++i) {
    EXPECT_FLOAT_EQ(a2->value().data()[i], a->value().data()[i]);
  }
  for (size_t i = 0; i < b->value().size(); ++i) {
    EXPECT_FLOAT_EQ(b2->value().data()[i], b->value().data()[i]);
  }
}

TEST(ParamStoreTest, LoadRejectsShapeMismatch) {
  Rng rng(12);
  ParamStore store;
  store.GetOrCreate("a", 2, 3, 1.0f, &rng);
  const std::string path = ::testing::TempDir() + "/params2.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());

  ParamStore other;
  other.GetOrCreate("a", 3, 3, 1.0f, &rng);
  EXPECT_FALSE(other.LoadFromFile(path).ok());
}

}  // namespace
}  // namespace lpce::nn
