// Tests for the estimator interface machinery: the observed-cardinality
// overlay, the oracle, and the sampling estimators' edge cases.
#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "card/sampling.h"
#include "workload/workload.h"

namespace lpce::card {
namespace {

double exec_qerror(double a, double b) {
  a = std::max(a, 1.0);
  b = std::max(b, 1.0);
  return a > b ? a / b : b / a;
}

class CardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.04;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 21;
    wk::QueryGenerator generator(database_.get(), gen);
    labeled_ = generator.GenerateLabeled(1, 4, 4).front();
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  wk::LabeledQuery labeled_;
};

TEST_F(CardTest, ObservedOverlayPinsExactValues) {
  HistogramEstimator histogram(&stats_);
  ObservedOverlay overlay(&histogram);
  const qry::RelSet rels = 0b11;
  const double base = overlay.EstimateSubset(labeled_.query, rels);
  overlay.ObserveActual(labeled_.query, rels, 7777.0);
  EXPECT_DOUBLE_EQ(overlay.EstimateSubset(labeled_.query, rels), 7777.0);
  // Other subsets still delegate.
  EXPECT_DOUBLE_EQ(overlay.EstimateSubset(labeled_.query, 0b01),
                   histogram.EstimateSubset(labeled_.query, 0b01));
  overlay.ResetObservations();
  EXPECT_DOUBLE_EQ(overlay.EstimateSubset(labeled_.query, rels), base);
}

TEST_F(CardTest, ObservedOverlayDelegatesName) {
  HistogramEstimator histogram(&stats_);
  ObservedOverlay overlay(&histogram);
  EXPECT_EQ(overlay.name(), histogram.name());
  EXPECT_FALSE(overlay.SupportsRefinement());
}

TEST_F(CardTest, OracleReturnsTruthAndFallsBackToOne) {
  std::unordered_map<qry::RelSet, double> truth = {{0b11, 123.0}};
  OracleEstimator oracle(truth);
  EXPECT_DOUBLE_EQ(oracle.EstimateSubset(labeled_.query, 0b11), 123.0);
  EXPECT_DOUBLE_EQ(oracle.EstimateSubset(labeled_.query, 0b101), 1.0);
}

TEST_F(CardTest, JoinSampleSingleTableMatchesScanCount) {
  // On a single filtered table the walk estimate is a plain scaled count;
  // with many walks it should be close to exact.
  JoinSampleEstimator sampler("s", database_.get(), 4000, 3);
  for (int pos = 0; pos < labeled_.query.num_tables(); ++pos) {
    const double est =
        sampler.EstimateSubset(labeled_.query, qry::Bit(pos));
    const double truth =
        static_cast<double>(labeled_.true_cards.at(qry::Bit(pos)));
    if (truth < 5.0) continue;  // tiny counts are noisy by nature
    EXPECT_LT(exec_qerror(est, truth), 1.6) << "pos " << pos;
  }
}

TEST_F(CardTest, JoinSampleFullQueryTracksTruth) {
  JoinSampleEstimator sampler("s", database_.get(), 4000, 7);
  const double est =
      sampler.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  const double truth = static_cast<double>(labeled_.FinalCard());
  if (truth >= 10.0) {
    EXPECT_LT(exec_qerror(est, truth), 4.0);
  } else {
    EXPECT_LT(est, truth * 10 + 50);
  }
}

TEST_F(CardTest, JoinSampleDeterministicGivenSeedState) {
  JoinSampleEstimator a("a", database_.get(), 500, 99);
  JoinSampleEstimator b("b", database_.get(), 500, 99);
  EXPECT_DOUBLE_EQ(a.EstimateSubset(labeled_.query, labeled_.query.AllRels()),
                   b.EstimateSubset(labeled_.query, labeled_.query.AllRels()));
}

TEST_F(CardTest, JoinSampleEstimatesIndependentOfQueryOrder) {
  // PrepareQuery reseeds the walk RNG, making each query's estimates a pure
  // function of (seed, walks, query) — the serving layer's equivalence
  // contract needs this regardless of which queries a worker served before.
  // Regression: the stream used to carry across queries, so running another
  // query first changed the estimates.
  wk::GeneratorOptions gen;
  gen.seed = 33;
  wk::QueryGenerator generator(database_.get(), gen);
  const qry::Query other = generator.Generate(3);

  auto estimate_fresh = [&](const qry::Query& query) {
    JoinSampleEstimator sampler("s", database_.get(), 300, 17);
    sampler.PrepareQuery(query);
    return sampler.EstimateSubset(query, query.AllRels());
  };
  const double fresh = estimate_fresh(labeled_.query);

  JoinSampleEstimator sampler("s", database_.get(), 300, 17);
  sampler.PrepareQuery(other);
  (void)sampler.EstimateSubset(other, other.AllRels());
  sampler.PrepareQuery(labeled_.query);
  EXPECT_DOUBLE_EQ(
      sampler.EstimateSubset(labeled_.query, labeled_.query.AllRels()), fresh);

  // The hybrid wrapper forwards PrepareQuery, so the same contract holds
  // through it (its correction input is the sampler's estimate).
  JoinSampleEstimator inner("s", database_.get(), 300, 17);
  HybridSampleEstimator hybrid("h", &inner, nullptr);
  hybrid.PrepareQuery(other);
  (void)inner.EstimateSubset(other, other.AllRels());
  hybrid.PrepareQuery(labeled_.query);
  EXPECT_DOUBLE_EQ(
      inner.EstimateSubset(labeled_.query, labeled_.query.AllRels()), fresh);
}

TEST_F(CardTest, HistogramJoinEstimateIsPositiveOnNonEmptyTables) {
  HistogramEstimator histogram(&stats_);
  for (qry::RelSet rels = 1; rels <= labeled_.query.AllRels(); ++rels) {
    if (!labeled_.query.IsConnected(rels)) continue;
    EXPECT_GE(histogram.EstimateSubset(labeled_.query, rels), 0.0);
  }
}

}  // namespace
}  // namespace lpce::card
