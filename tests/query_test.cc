// Tests for the query representation and canonical logical trees.
#include <gtest/gtest.h>

#include "query/query.h"
#include "storage/database.h"

namespace lpce::qry {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
    const db::Catalog& cat = database_->catalog();
    const int32_t t = cat.FindTable("title");
    const int32_t mc = cat.FindTable("movie_companies");
    const int32_t ci = cat.FindTable("cast_info");
    const int32_t cn = cat.FindTable("company_name");
    query_.tables = {t, mc, ci, cn};
    query_.joins = {{{mc, 1}, {t, 0}}, {{ci, 1}, {t, 0}}, {{mc, 2}, {cn, 0}}};
    query_.predicates = {{{t, 2}, CmpOp::kGt, 2000}};
  }

  std::unique_ptr<db::Database> database_;
  Query query_;
};

TEST_F(QueryTest, EvalCmpCoversAllOperators) {
  EXPECT_TRUE(EvalCmp(1, CmpOp::kLt, 2));
  EXPECT_FALSE(EvalCmp(2, CmpOp::kLt, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kLe, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kEq, 2));
  EXPECT_TRUE(EvalCmp(2, CmpOp::kGe, 2));
  EXPECT_TRUE(EvalCmp(3, CmpOp::kGt, 2));
  EXPECT_TRUE(EvalCmp(3, CmpOp::kNe, 2));
  EXPECT_FALSE(EvalCmp(2, CmpOp::kNe, 2));
}

TEST_F(QueryTest, ConnectivityRespectsJoinTree) {
  EXPECT_TRUE(query_.IsConnected(0b1111));
  EXPECT_TRUE(query_.IsConnected(0b0011));   // title + mc
  EXPECT_TRUE(query_.IsConnected(0b0101));   // title + ci
  EXPECT_FALSE(query_.IsConnected(0b0100 | 0b1000));  // ci + cn: not joined
  EXPECT_FALSE(query_.IsConnected(0b1001));  // title + cn: two hops apart
  EXPECT_TRUE(query_.IsConnected(0b1010));   // mc + cn
  EXPECT_TRUE(query_.IsConnected(0b0001));
}

TEST_F(QueryTest, JoinsBetweenFindsTheCutEdge) {
  auto joins = query_.JoinsBetween(0b0011, 0b0100);
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0], 1);  // ci.movie_id = t.id
  EXPECT_TRUE(query_.JoinsBetween(0b0001, 0b1000).empty());
}

TEST_F(QueryTest, JoinsWithinCountsInternalEdges) {
  EXPECT_EQ(query_.JoinsWithin(query_.AllRels()).size(), 3u);
  EXPECT_EQ(query_.JoinsWithin(0b0011).size(), 1u);
  EXPECT_EQ(query_.JoinsWithin(0b0001).size(), 0u);
}

TEST_F(QueryTest, CanonicalTreeCoversSubsetExactly) {
  auto tree = BuildCanonicalTree(query_, query_.AllRels());
  EXPECT_EQ(tree->rels, query_.AllRels());
  std::vector<const LogicalNode*> nodes;
  PostOrder(tree.get(), &nodes);
  EXPECT_EQ(nodes.size(), 7u);  // 4 leaves + 3 joins
  int leaves = 0;
  for (const auto* n : nodes) {
    if (n->is_leaf()) ++leaves;
  }
  EXPECT_EQ(leaves, 4);
  // Root is last in post-order.
  EXPECT_EQ(nodes.back(), tree.get());
}

TEST_F(QueryTest, CanonicalTreeIsDeterministic) {
  auto a = BuildCanonicalTree(query_, 0b0111);
  auto b = BuildCanonicalTree(query_, 0b0111);
  std::vector<const LogicalNode*> na, nb;
  PostOrder(a.get(), &na);
  PostOrder(b.get(), &nb);
  ASSERT_EQ(na.size(), nb.size());
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_EQ(na[i]->rels, nb[i]->rels);
    EXPECT_EQ(na[i]->table_pos, nb[i]->table_pos);
    EXPECT_EQ(na[i]->join_idx, nb[i]->join_idx);
  }
}

TEST_F(QueryTest, ToStringMentionsEverything) {
  const std::string s = query_.ToString(database_->catalog());
  EXPECT_NE(s.find("SELECT COUNT(*)"), std::string::npos);
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("production_year > 2000"), std::string::npos);
  EXPECT_NE(s.find("movie_companies.movie_id = title.id"), std::string::npos);
}

TEST_F(QueryTest, PositionOfAndPredicatesOf) {
  EXPECT_EQ(query_.PositionOf(query_.tables[2]), 2);
  EXPECT_EQ(query_.PositionOf(9999), -1);
  EXPECT_EQ(query_.PredicatesOf(0).size(), 1u);
  EXPECT_EQ(query_.PredicatesOf(1).size(), 0u);
}

}  // namespace
}  // namespace lpce::qry
