// Regression suite for the joins[0]-only bug: a join cut crossed by more
// than one query edge (a multigraph query — several equi-join predicates
// between the same table pair, or a cyclic join graph) used to silently
// drop every edge after the first, joining on one key and ignoring the
// rest. Now the first edge drives the join and the remainder ride along as
// residual filters (exec::PlanNode::residual_keys), validated, costed, and
// applied in every join path. Ground truth comes from the brute-force
// exact-cardinality oracle, which always honored every edge.
//
// Generated/parsed workloads are spanning trees (the parser enforces
// num_joins == num_tables - 1 and connectivity), where every cut crosses
// exactly one edge — so this suite builds its multigraph queries by hand.
#include <memory>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "stats/column_stats.h"
#include "storage/database.h"
#include "testing/exact_card.h"

namespace lpce {
namespace {

class ResidualJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    mi_ = database_->catalog().FindTable("movie_info");
    midx_ = database_->catalog().FindTable("movie_info_idx");
    title_ = database_->catalog().FindTable("title");
    ASSERT_GE(mi_, 0);
    ASSERT_GE(midx_, 0);
    ASSERT_GE(title_, 0);
  }

  /// Two tables linked by TWO edges: movie_id = movie_id AND
  /// info_type_id = info_type_id. Every 2-way partition of this query cuts
  /// both edges at once.
  qry::Query MultigraphPair() const {
    qry::Query query;
    query.tables = {mi_, midx_};
    query.joins.push_back({{mi_, 1}, {midx_, 1}});  // movie_id
    query.joins.push_back({{mi_, 2}, {midx_, 2}});  // info_type_id
    return query;
  }

  /// Cyclic triangle: title joins both satellites on movie_id, and the
  /// satellites also join each other on info_type_id. The cut
  /// {title, movie_info} vs {movie_info_idx} crosses two edges.
  qry::Query CyclicTriangle() const {
    qry::Query query;
    query.tables = {title_, mi_, midx_};
    query.joins.push_back({{mi_, 1}, {title_, 0}});
    query.joins.push_back({{midx_, 1}, {title_, 0}});
    query.joins.push_back({{mi_, 2}, {midx_, 2}});
    return query;
  }

  uint64_t RunPlanned(const qry::Query& query) {
    card::HistogramEstimator estimator(&stats_);
    opt::Planner planner(database_.get(), opt::CostModel{});
    opt::PlanResult planned = planner.Plan(query, &estimator);
    EXPECT_TRUE(exec::ValidatePlan(*planned.plan, query).ok())
        << exec::ValidatePlan(*planned.plan, query).ToString();
    exec::Executor executor(database_.get(), &query);
    exec::RowSetPtr result = executor.Execute(planned.plan.get());
    EXPECT_NE(result, nullptr);
    return result->num_rows();
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  int32_t mi_ = -1;
  int32_t midx_ = -1;
  int32_t title_ = -1;
};

TEST_F(ResidualJoinTest, MultigraphPairMatchesExactOracle) {
  const qry::Query query = MultigraphPair();
  const uint64_t expected =
      testing::ExactCardinality(*database_, query, query.AllRels());
  EXPECT_EQ(RunPlanned(query), expected);
  // The single-edge version must differ from the two-edge one somewhere in
  // this data — otherwise the regression test would pass vacuously.
  qry::Query single = query;
  single.joins.pop_back();
  const uint64_t single_edge =
      testing::ExactCardinality(*database_, single, single.AllRels());
  ASSERT_GT(single_edge, expected)
      << "second edge must actually filter rows for this test to bite";
}

TEST_F(ResidualJoinTest, CyclicTriangleMatchesExactOracle) {
  const qry::Query query = CyclicTriangle();
  const uint64_t expected =
      testing::ExactCardinality(*database_, query, query.AllRels());
  EXPECT_EQ(RunPlanned(query), expected);
}

TEST_F(ResidualJoinTest, CanonicalHashPlanCarriesResidualEdges) {
  // The workload labeler's canonical plan must honor every edge too.
  const qry::Query query = CyclicTriangle();
  std::unique_ptr<exec::PlanNode> plan = exec::BuildCanonicalHashPlan(query);
  ASSERT_TRUE(exec::ValidatePlan(*plan, query).ok())
      << exec::ValidatePlan(*plan, query).ToString();
  exec::Executor executor(database_.get(), &query);
  exec::RowSetPtr result = executor.Execute(plan.get());
  EXPECT_EQ(result->num_rows(),
            testing::ExactCardinality(*database_, query, query.AllRels()));
}

TEST_F(ResidualJoinTest, ParallelAndSequentialResidualJoinsAgree) {
  // The parallel hash-join path evaluates residual filters per candidate
  // match and must count only actually-emitted rows. Same query, pool sizes
  // 1 and 4, bit-identical counts.
  const qry::Query query = MultigraphPair();
  common::SetGlobalPoolSize(1);
  const uint64_t serial = RunPlanned(query);
  common::SetGlobalPoolSize(4);
  const uint64_t parallel = RunPlanned(query);
  common::SetGlobalPoolSize(0);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, testing::ExactCardinality(*database_, query, query.AllRels()));
}

TEST_F(ResidualJoinTest, ValidatorRejectsDroppedResidualEdges) {
  // A plan that joins a multi-edge cut on one key without carrying the
  // remaining edges as residuals is exactly the old bug — the validator
  // must reject it.
  const qry::Query query = MultigraphPair();
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanResult planned = planner.Plan(query, &estimator);
  ASSERT_EQ(planned.plan->residual_keys.size(), 1u);
  planned.plan->residual_keys.clear();
  EXPECT_FALSE(exec::ValidatePlan(*planned.plan, query).ok());
}

TEST_F(ResidualJoinTest, SpanningTreeQueriesHaveNoResiduals) {
  // For tree-shaped queries (everything the generator/parser produces) no
  // DP-feasible cut can cross two edges, so plans carry no residual keys.
  qry::Query query;
  query.tables = {title_, mi_};
  query.joins.push_back({{mi_, 1}, {title_, 0}});
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanResult planned = planner.Plan(query, &estimator);
  std::vector<const exec::PlanNode*> nodes;
  exec::PostOrderPlan(planned.plan.get(), &nodes);
  for (const exec::PlanNode* node : nodes) {
    EXPECT_TRUE(node->residual_keys.empty());
  }
}

}  // namespace
}  // namespace lpce
