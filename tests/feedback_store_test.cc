// Feedback knowledge store (feedback/feedback_store.h): harvested pairs are
// exact (checked against the brute-force oracle), the on-disk log round-trips
// byte-perfectly, a torn tail recovers to the good prefix, and the
// per-template LRU cap evicts deterministically.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "feedback/feedback_store.h"
#include "optimizer/plan_cache.h"
#include "storage/database.h"
#include "testing/exact_card.h"
#include "workload/workload.h"

namespace lpce::fb {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "lpce_fb_" + name;
  std::remove((dir + "/feedback.log").c_str());
  return dir;
}

/// Labeled examples compare equal: same serialized query, same
/// (subset, card) set. SerializeFeedbackPayload is the store's own canonical
/// byte form, so equality here is exactly on-disk equality.
void ExpectSameExamples(const std::vector<wk::LabeledQuery>& expected,
                        const std::vector<wk::LabeledQuery>& actual,
                        const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  auto payload = [](const wk::LabeledQuery& example) {
    FeedbackQuery record;
    record.query = example.query;
    record.actuals.assign(example.true_cards.begin(),
                          example.true_cards.end());
    std::sort(record.actuals.begin(), record.actuals.end());
    return SerializeFeedbackPayload(record);
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(payload(actual[i]), payload(expected[i]))
        << context << ", example " << i;
    EXPECT_EQ(actual[i].true_cards.size(), expected[i].true_cards.size())
        << context << ", example " << i;
    for (const auto& [rels, card] : expected[i].true_cards) {
      auto it = actual[i].true_cards.find(rels);
      ASSERT_NE(it, actual[i].true_cards.end())
          << context << ", example " << i << ", missing subset " << rels;
      EXPECT_EQ(it->second, card) << context << ", example " << i;
    }
  }
}

class FeedbackStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    common::SetGlobalPoolSize(2);
    db::SynthImdbOptions opts;
    opts.scale = 0.01;
    database_ = db::BuildSynthImdb(opts).release();
    stats_ = new stats::DatabaseStats();
    stats_->Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 2026;
    wk::QueryGenerator generator(database_, gen);
    workload_ = new std::vector<wk::LabeledQuery>(
        generator.GenerateLabeled(24, 2, 4));
  }

  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete stats_;
    stats_ = nullptr;
    delete database_;
    database_ = nullptr;
    common::SetGlobalPoolSize(0);
  }

  /// Runs `count` workload queries through an engine harvesting into `store`.
  static void RunHarvesting(FeedbackStore* store, size_t count) {
    card::HistogramEstimator estimator(stats_);
    eng::Engine engine(database_, opt::CostModel{});
    engine.set_feedback_store(store);
    eng::RunConfig config;
    config.enable_reopt = true;
    config.qerror_threshold = 10.0;
    for (size_t q = 0; q < count && q < workload_->size(); ++q) {
      engine.RunQuery((*workload_)[q].query, &estimator, nullptr, config);
    }
  }

  static db::Database* database_;
  static stats::DatabaseStats* stats_;
  static std::vector<wk::LabeledQuery>* workload_;
};

db::Database* FeedbackStoreTest::database_ = nullptr;
stats::DatabaseStats* FeedbackStoreTest::stats_ = nullptr;
std::vector<wk::LabeledQuery>* FeedbackStoreTest::workload_ = nullptr;

TEST_F(FeedbackStoreTest, HarvestedCardinalitiesMatchExactOracle) {
  // Every (subset, cardinality) pair the engine harvests must be the true
  // cardinality — feedback that lies would fine-tune the model toward the
  // very misestimates it is meant to correct.
  FeedbackStoreOptions options;  // memory-only
  FeedbackStore store(options);
  RunHarvesting(&store, 12);

  const std::vector<wk::LabeledQuery> harvested = store.HarvestAll();
  EXPECT_EQ(harvested.size(), 12u);
  size_t pairs = 0;
  for (const auto& example : harvested) {
    ASSERT_FALSE(example.true_cards.empty());
    for (const auto& [rels, card] : example.true_cards) {
      EXPECT_EQ(card, testing::ExactCardinality(*database_, example.query, rels))
          << example.query.ToString(database_->catalog()) << ", subset "
          << rels;
      ++pairs;
    }
    // The full-query result is always among the harvested subsets.
    EXPECT_TRUE(example.true_cards.count(example.query.AllRels()));
  }
  // Multi-way joins harvest more than just the final result.
  EXPECT_GT(pairs, harvested.size());
  EXPECT_EQ(store.counters().appended, 12u);
  EXPECT_EQ(store.counters().live, 12u);
}

TEST_F(FeedbackStoreTest, DiskRoundTripAndReloadEquality) {
  FeedbackStoreOptions options;
  options.dir = FreshDir("roundtrip");
  std::vector<wk::LabeledQuery> before;
  {
    FeedbackStore store(options);
    RunHarvesting(&store, 10);
    before = store.HarvestAll();
    ASSERT_EQ(before.size(), 10u);
    EXPECT_TRUE(store.disk_status().ok()) << store.disk_status().ToString();
  }
  FeedbackStore reloaded(options);
  EXPECT_EQ(reloaded.counters().loaded, 10u);
  EXPECT_EQ(reloaded.counters().truncated_tails, 0u);
  ExpectSameExamples(before, reloaded.HarvestAll(), "reload");

  // Per-template harvest agrees with the full harvest, template by template.
  size_t total = 0;
  for (uint64_t fss : reloaded.Templates()) {
    total += reloaded.HarvestTemplate(fss).size();
  }
  EXPECT_EQ(total, before.size());
}

TEST_F(FeedbackStoreTest, TruncatedTailRecoversGoodPrefix) {
  FeedbackStoreOptions options;
  options.dir = FreshDir("torn");
  std::vector<wk::LabeledQuery> good;
  {
    FeedbackStore store(options);
    RunHarvesting(&store, 8);
    good = store.HarvestAll();
  }
  // Simulate a crash mid-append: a frame header with a payload that never
  // made it to disk.
  const std::string log = options.dir + "/feedback.log";
  {
    std::FILE* f = std::fopen(log.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint64_t magic = 0x4C50434546524543ull;  // record magic, torn after
    std::fwrite(&magic, sizeof(magic), 1, f);
    const uint64_t bogus_size = 512;
    std::fwrite(&bogus_size, sizeof(bogus_size), 1, f);
    std::fclose(f);
  }
  {
    FeedbackStore recovered(options);
    EXPECT_EQ(recovered.counters().truncated_tails, 1u);
    EXPECT_EQ(recovered.counters().loaded, 8u);
    ExpectSameExamples(good, recovered.HarvestAll(), "after torn tail");
    // The store stays writable after recovery...
    RunHarvesting(&recovered, 2);
    EXPECT_EQ(recovered.counters().live, 10u);
    EXPECT_TRUE(recovered.disk_status().ok());
  }
  // ...and the repaired log reloads cleanly, torn frame gone.
  FeedbackStore final_load(options);
  EXPECT_EQ(final_load.counters().loaded, 10u);
  EXPECT_EQ(final_load.counters().truncated_tails, 0u);
}

TEST_F(FeedbackStoreTest, CorruptedChecksumDropsTail) {
  FeedbackStoreOptions options;
  options.dir = FreshDir("checksum");
  {
    FeedbackStore store(options);
    RunHarvesting(&store, 4);
  }
  // Flip one byte in the last frame's payload: checksum mismatch ends the
  // replay at the last good record.
  const std::string log = options.dir + "/feedback.log";
  {
    std::FILE* f = std::fopen(log.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int last = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(last ^ 0xFF, f);
    std::fclose(f);
  }
  FeedbackStore recovered(options);
  EXPECT_EQ(recovered.counters().truncated_tails, 1u);
  EXPECT_EQ(recovered.counters().loaded, 3u);
  EXPECT_EQ(recovered.counters().live, 3u);
}

TEST_F(FeedbackStoreTest, PerTemplateCapEvictsOldestDeterministically) {
  FeedbackStoreOptions options;
  options.dir = FreshDir("evict");
  options.per_template_cap = 4;

  // 10 distinct records of one template: same fss, different final cards.
  auto make_record = [](uint64_t card) {
    FeedbackQuery record;
    record.fss_hash = 42;
    record.query = (*workload_)[0].query;
    record.actuals.emplace_back(record.query.AllRels(), card);
    return record;
  };
  {
    FeedbackStore store(options);
    for (uint64_t i = 0; i < 10; ++i) store.Append(make_record(1000 + i));
    EXPECT_EQ(store.counters().appended, 10u);
    EXPECT_EQ(store.counters().evicted, 6u);
    EXPECT_EQ(store.counters().live, 4u);
    EXPECT_EQ(store.counters().templates, 1u);
    // The newest four survive.
    std::vector<uint64_t> cards;
    for (const auto& example : store.HarvestTemplate(42)) {
      cards.push_back(example.true_cards.begin()->second);
    }
    std::sort(cards.begin(), cards.end());
    EXPECT_EQ(cards, (std::vector<uint64_t>{1006, 1007, 1008, 1009}));
  }
  // Reload replays the same append sequence to the same live set.
  FeedbackStore reloaded(options);
  EXPECT_EQ(reloaded.counters().live, 4u);
  std::vector<uint64_t> cards;
  for (const auto& example : reloaded.HarvestTemplate(42)) {
    cards.push_back(example.true_cards.begin()->second);
  }
  std::sort(cards.begin(), cards.end());
  EXPECT_EQ(cards, (std::vector<uint64_t>{1006, 1007, 1008, 1009}));
}

TEST_F(FeedbackStoreTest, CompactShrinksLogAndPreservesContent) {
  FeedbackStoreOptions options;
  options.dir = FreshDir("compact");
  options.per_template_cap = 2;
  auto make_record = [](uint64_t fss, uint64_t card) {
    FeedbackQuery record;
    record.fss_hash = fss;
    record.query = (*workload_)[0].query;
    record.actuals.emplace_back(record.query.AllRels(), card);
    return record;
  };
  std::vector<wk::LabeledQuery> live;
  {
    FeedbackStore store(options);
    for (uint64_t i = 0; i < 12; ++i) store.Append(make_record(i % 3, 100 + i));
    EXPECT_EQ(store.counters().live, 6u);  // 3 templates x cap 2
    ASSERT_TRUE(store.Compact().ok());
    EXPECT_GE(store.counters().compactions, 1u);
    live = store.HarvestAll();
  }
  FeedbackStore reloaded(options);
  // The compacted log holds exactly the live set: no evicted ghosts replay.
  EXPECT_EQ(reloaded.counters().loaded, 6u);
  ExpectSameExamples(live, reloaded.HarvestAll(), "after compact");
}

TEST_F(FeedbackStoreTest, ServedQueriesHarvestThroughServerStore) {
  // The serving integration: a server wired to a store harvests every
  // completed query, and the harvested labels are exact.
  FeedbackStoreOptions options;  // memory-only
  FeedbackStore store(options);
  eng::ServerOptions server_options;
  server_options.num_workers = 2;
  server_options.max_queue = 16;
  server_options.run_config.enable_reopt = true;
  server_options.run_config.qerror_threshold = 10.0;
  server_options.feedback_store = &store;
  eng::EngineServer server(
      database_, opt::CostModel{},
      [](int) {
        eng::EngineServer::Session session;
        session.initial = std::make_unique<card::HistogramEstimator>(stats_);
        return session;
      },
      server_options);
  for (size_t q = 0; q < 8; ++q) {
    auto run = server.RunSync((*workload_)[q].query);
    ASSERT_TRUE(run.ok());
  }
  server.Shutdown();
  EXPECT_EQ(store.counters().appended, 8u);
  for (const auto& example : store.HarvestAll()) {
    for (const auto& [rels, card] : example.true_cards) {
      EXPECT_EQ(card,
                testing::ExactCardinality(*database_, example.query, rels));
    }
  }
}

}  // namespace
}  // namespace lpce::fb
