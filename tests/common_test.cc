// Tests for the common substrate: Status/Result, Rng determinism and
// statistics, timers, logging levels.
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace lpce {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(err.ToString().find("bad thing"), std::string::npos);

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::Ok();
}

Status Outer(bool fail) {
  LPCE_RETURN_IF_ERROR(Inner(fail));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer t1(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double first = sink;
  EXPECT_GT(first, 0.0);
  {
    ScopedTimer t2(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, first);
}

TEST(LoggingTest, LevelFiltering) {
  // Messages below the global level must not reach stderr.
  LogLevel saved = GlobalLogLevel();
  GlobalLogLevel() = LogLevel::kOff;
  testing::internal::CaptureStderr();
  LPCE_LOG(Info) << "should be suppressed";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  GlobalLogLevel() = LogLevel::kDebug;
  testing::internal::CaptureStderr();
  LPCE_LOG(Warn) << "visible";
  EXPECT_NE(testing::internal::GetCapturedStderr().find("visible"),
            std::string::npos);
  GlobalLogLevel() = saved;
}

}  // namespace
}  // namespace lpce
