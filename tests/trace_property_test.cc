// Structural invariants of QueryTrace over adversarial re-optimizing runs:
//   - the re-optimization count never exceeds the configured budget and
//     matches RunStats::num_reopts,
//   - checkpoint events fire only at materializing, non-pseudo, non-root
//     operators (each directly follows its operator's span),
//   - every re-optimization event is preceded by a checkpoint whose q-error
//     met the threshold (tripped == true),
//   - a join span's recorded input rows equal its child spans' output rows,
//   - both JSON modes pass schema validation.
#include <string>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "under"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::CardinalityEstimator* base_;
};

class TracePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.04;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 31;
    wk::QueryGenerator generator(database_.get(), gen);
    workload_ = generator.GenerateLabeled(8, 3, 6);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> workload_;
};

void CheckTraceInvariants(const qry::Query& query, const QueryTrace& trace,
                          const RunConfig& config) {
  const auto& spans = trace.spans();
  const auto& events = trace.events();
  ASSERT_FALSE(spans.empty());

  // The final round completes: its last span is the root, whose output is
  // the query result.
  EXPECT_EQ(spans.back().rels, query.AllRels());
  EXPECT_EQ(spans.back().actual_card, trace.result_rows());

  // Join spans reference earlier spans whose output rows they consumed; the
  // producer's output cardinality must equal the consumer's input rows.
  for (const auto& span : spans) {
    EXPECT_GE(span.qerror, 1.0);
    ASSERT_EQ(span.outer_span >= 0, span.inner_span >= 0) << span.id;
    if (span.outer_span < 0) continue;
    ASSERT_LT(span.outer_span, span.id);
    ASSERT_LT(span.inner_span, span.id);
    const TraceSpan& outer = spans[span.outer_span];
    const TraceSpan& inner = spans[span.inner_span];
    EXPECT_EQ(outer.actual_card, span.outer_rows) << "span " << span.id;
    EXPECT_EQ(inner.actual_card, span.inner_rows) << "span " << span.id;
    EXPECT_EQ(outer.rels | inner.rels, span.rels) << "span " << span.id;
    EXPECT_EQ(outer.round, span.round);
    EXPECT_EQ(inner.round, span.round);
  }

  // Checkpoints only at materializing, non-pseudo, non-root operators: each
  // checkpoint event immediately follows the span it evaluated.
  const TraceEvent* last_checkpoint = nullptr;
  int reopt_events = 0;
  for (const auto& event : events) {
    if (event.kind == TraceEventKind::kCheckpoint) {
      last_checkpoint = &event;
      EXPECT_NE(event.rels, query.AllRels());
      bool found_span = false;
      for (const auto& span : spans) {
        if (span.seq + 1 != event.seq) continue;
        found_span = true;
        EXPECT_EQ(span.rels, event.rels);
        EXPECT_EQ(span.round, event.round);
        EXPECT_NE(span.op, "PseudoScan");
      }
      EXPECT_TRUE(found_span) << "checkpoint at seq " << event.seq
                              << " does not follow its operator span";
      if (event.tripped) {
        EXPECT_TRUE(event.policy_allows);
        EXPECT_GE(event.qerror, event.threshold);
      }
    } else if (event.kind == TraceEventKind::kReoptimization) {
      ++reopt_events;
      ASSERT_NE(last_checkpoint, nullptr);
      EXPECT_TRUE(last_checkpoint->tripped);
      EXPECT_GE(last_checkpoint->qerror, config.qerror_threshold);
      EXPECT_EQ(last_checkpoint->rels, event.rels);
      EXPECT_TRUE(event.decision == "continue" || event.decision == "restart");
    }
  }
  EXPECT_EQ(trace.num_reopts(), reopt_events);
  EXPECT_LE(trace.num_reopts(), config.max_reopts);

  for (auto mode : {TraceJsonMode::kDeterministic, TraceJsonMode::kFull}) {
    const Status status = ValidateTraceJson(trace.ToJson(mode));
    EXPECT_TRUE(status.ok()) << status.message();
  }
}

TEST_F(TracePropertyTest, AdversarialReoptRunsKeepInvariants) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  int total_reopts = 0;
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    ASSERT_NE(stats.trace, nullptr);
    EXPECT_EQ(stats.trace->num_reopts(), stats.num_reopts);
    EXPECT_EQ(stats.trace->result_rows(), stats.result_count);
    total_reopts += stats.num_reopts;
    CheckTraceInvariants(labeled.query, *stats.trace, config);
  }
  EXPECT_GT(total_reopts, 0) << "adversary never tripped a checkpoint";
}

TEST_F(TracePropertyTest, TightBudgetIsNeverExceeded) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 1.5;  // trips almost everywhere
  config.max_reopts = 3;
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    ASSERT_NE(stats.trace, nullptr);
    CheckTraceInvariants(labeled.query, *stats.trace, config);
  }
}

TEST_F(TracePropertyTest, ReoptDisabledYieldsNoCheckpointEvents) {
  card::HistogramEstimator estimator(&stats_);
  Engine engine(database_.get(), opt::CostModel{});
  RunStats stats =
      engine.RunQuery(workload_[0].query, &estimator, nullptr, RunConfig{});
  ASSERT_NE(stats.trace, nullptr);
  int plan_events = 0;
  for (const auto& event : stats.trace->events()) {
    EXPECT_NE(event.kind, TraceEventKind::kCheckpoint);
    EXPECT_NE(event.kind, TraceEventKind::kReoptimization);
    if (event.kind == TraceEventKind::kPlan) ++plan_events;
  }
  EXPECT_EQ(plan_events, 1);
  EXPECT_EQ(stats.trace->num_reopts(), 0);
}

}  // namespace
}  // namespace lpce::eng
