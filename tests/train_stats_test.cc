// TrainStats telemetry tests: schema of real training runs (contiguous
// epochs, populated timing/throughput fields), the early-stopping /
// best-epoch contract, and the JSONL round-trip through
// ValidateTrainLogLine.
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lpce/tree_model.h"
#include "lpce/train_stats.h"
#include "workload/workload.h"

namespace lpce::model {
namespace {

class TrainStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    encoder_ = std::make_unique<FeatureEncoder>(&database_->catalog(), &stats_);
    wk::GeneratorOptions gen;
    gen.seed = 5;
    gen.require_nonempty = true;
    wk::QueryGenerator generator(database_.get(), gen);
    train_ = generator.GenerateLabeled(80, 3, 6);
  }

  TreeModelConfig SmallConfig() const {
    TreeModelConfig config;
    config.feature_dim = encoder_->dim();
    config.dim = 16;
    config.embed_hidden = 16;
    config.out_hidden = 32;
    return config;
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::vector<wk::LabeledQuery> train_;
};

/// Every line of a report's JSONL serialization must pass the validator.
void ExpectJsonlValid(const TrainStats& stats) {
  std::istringstream lines(stats.ToJsonl());
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const Status status = ValidateTrainLogLine(line);
    EXPECT_TRUE(status.ok()) << status.message() << "\nline: " << line;
  }
  EXPECT_EQ(count, stats.epochs.size() + 1);  // epochs + summary
}

TEST_F(TrainStatsTest, TrainingProducesContiguousEpochTelemetry) {
  TreeModel model(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 4;
  options.tag = "unit_train";
  const TrainStats stats = TrainTreeModel(&model, *database_, train_, options);

  EXPECT_EQ(stats.model_tag, "unit_train");
  ASSERT_EQ(stats.epochs.size(), 4u);
  EXPECT_FALSE(stats.early_stopped);
  EXPECT_EQ(stats.best_epoch, -1);  // no validation split
  EXPECT_GT(stats.total_seconds, 0.0);
  double wall_sum = 0.0;
  for (size_t i = 0; i < stats.epochs.size(); ++i) {
    const EpochStats& e = stats.epochs[i];
    EXPECT_EQ(e.epoch, static_cast<int>(i));  // strictly increasing from 0
    EXPECT_EQ(e.stage, "train");
    EXPECT_TRUE(std::isfinite(e.train_loss));
    EXPECT_GT(e.samples, 0);
    EXPECT_GT(e.wall_seconds, 0.0);
    EXPECT_GT(e.examples_per_sec, 0.0);
    EXPECT_GT(e.grad_norm, 0.0);
    EXPECT_EQ(e.validation_loss, -1.0);
    EXPECT_FALSE(e.is_best);
    wall_sum += e.wall_seconds;
  }
  EXPECT_LE(wall_sum, stats.total_seconds * 1.01);
  ExpectJsonlValid(stats);
}

TEST_F(TrainStatsTest, ValidationRunPopulatesQErrorAndBestEpoch) {
  TreeModel model(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 6;
  options.validation_fraction = 0.25;
  const TrainStats stats = TrainTreeModel(&model, *database_, train_, options);

  ASSERT_FALSE(stats.epochs.empty());
  ASSERT_GE(stats.best_epoch, 0);
  ASSERT_LT(stats.best_epoch, static_cast<int>(stats.epochs.size()));
  EXPECT_TRUE(stats.epochs[stats.best_epoch].is_best);
  // final_train_loss reports the restored (best) epoch, not the last one.
  EXPECT_EQ(stats.final_train_loss(),
            stats.epochs[stats.best_epoch].train_loss);
  double best_val = std::numeric_limits<double>::infinity();
  for (const EpochStats& e : stats.epochs) {
    EXPECT_GE(e.validation_loss, 0.0);
    EXPECT_GE(e.val_qerror_mean, 1.0);    // q-error is >= 1 by definition
    EXPECT_GE(e.val_qerror_median, 1.0);
    EXPECT_GE(e.val_qerror_p95, e.val_qerror_median);
    if (e.is_best) EXPECT_LT(e.validation_loss, best_val);
    best_val = std::min(best_val, e.validation_loss);
  }
  ExpectJsonlValid(stats);
}

TEST_F(TrainStatsTest, EarlyStoppingRespectsPatience) {
  TreeModel model(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 40;
  options.validation_fraction = 0.25;
  options.patience = 2;
  const TrainStats stats = TrainTreeModel(&model, *database_, train_, options);

  ASSERT_FALSE(stats.epochs.empty());
  EXPECT_LE(stats.epochs.size(), 40u);
  if (stats.early_stopped) {
    // Stop fires exactly `patience` epochs after the best one.
    EXPECT_EQ(static_cast<int>(stats.epochs.size()),
              stats.best_epoch + 1 + options.patience);
  }
  ExpectJsonlValid(stats);
}

TEST_F(TrainStatsTest, DistillationReportsBothStages) {
  TreeModelConfig teacher_cfg = SmallConfig();
  teacher_cfg.dim = 32;
  teacher_cfg.embed_hidden = 32;
  teacher_cfg.out_hidden = 64;
  TreeModel teacher(encoder_.get(), teacher_cfg);
  TrainOptions topt;
  topt.epochs = 2;
  TrainTreeModel(&teacher, *database_, train_, topt);

  TreeModel student(encoder_.get(), SmallConfig());
  DistillOptions distill;
  distill.hint_epochs = 2;
  distill.predict_epochs = 3;
  const TrainStats stats =
      DistillTreeModel(&student, teacher, *database_, train_, distill);

  ASSERT_EQ(stats.epochs.size(), 5u);
  EXPECT_EQ(stats.best_epoch, -1);
  for (size_t i = 0; i < stats.epochs.size(); ++i) {
    EXPECT_EQ(stats.epochs[i].epoch, static_cast<int>(i));
    EXPECT_EQ(stats.epochs[i].stage, i < 2 ? "hint" : "predict");
    EXPECT_GT(stats.epochs[i].wall_seconds, 0.0);
  }
  ExpectJsonlValid(stats);
}

TEST_F(TrainStatsTest, ValidatorRejectsMalformedLines) {
  EXPECT_FALSE(ValidateTrainLogLine("not json").ok());
  EXPECT_FALSE(ValidateTrainLogLine("{}").ok());
  // Wrong schema version.
  EXPECT_FALSE(
      ValidateTrainLogLine(
          R"({"schema_version":2,"model":"m","summary":true,"epochs":1,)"
          R"("best_epoch":-1,"early_stopped":false,"final_train_loss":0.1,)"
          R"("total_seconds":1})")
          .ok());
  // Unknown stage.
  EXPECT_FALSE(
      ValidateTrainLogLine(
          R"({"schema_version":1,"model":"m","stage":"warmup","epoch":0,)"
          R"("train_loss":0.1,"samples":10,"wall_seconds":0.5,)"
          R"("examples_per_sec":20,"grad_norm":1.0,"validation_loss":-1,)"
          R"("val_qerror_mean":-1,"val_qerror_median":-1,"val_qerror_p95":-1,)"
          R"("is_best":false})")
          .ok());
  // best_epoch out of range.
  EXPECT_FALSE(
      ValidateTrainLogLine(
          R"({"schema_version":1,"model":"m","summary":true,"epochs":3,)"
          R"("best_epoch":3,"early_stopped":true,"final_train_loss":0.1,)"
          R"("total_seconds":1})")
          .ok());
  // A well-formed epoch line passes.
  EXPECT_TRUE(
      ValidateTrainLogLine(
          R"({"schema_version":1,"model":"m","stage":"refine","epoch":0,)"
          R"("train_loss":0.1,"samples":10,"wall_seconds":0.5,)"
          R"("examples_per_sec":20,"grad_norm":1.0,"validation_loss":-1,)"
          R"("val_qerror_mean":-1,"val_qerror_median":-1,"val_qerror_p95":-1,)"
          R"("is_best":false})")
          .ok());
}

}  // namespace
}  // namespace lpce::model
