// Model tests: feature encoding, tree-model training, distillation, MSCN,
// sampling estimators, and LPCE-R refinement. Tiny configs — these verify
// learning mechanics, not final accuracy (the benches measure that).
#include <cmath>

#include <gtest/gtest.h>

#include "card/mscn.h"
#include "card/sampling.h"
#include "exec/executor.h"
#include "lpce/estimators.h"
#include "lpce/lpce_r.h"
#include "workload/workload.h"

namespace lpce::model {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    encoder_ = std::make_unique<FeatureEncoder>(&database_->catalog(), &stats_);

    wk::GeneratorOptions gen;
    gen.seed = 5;
    gen.require_nonempty = true;  // align train/test root distributions
    wk::QueryGenerator generator(database_.get(), gen);
    train_ = generator.GenerateLabeled(200, 3, 7);
    test_ = generator.GenerateLabeled(16, 3, 7);
    log_max_card_ = std::log1p(static_cast<double>(wk::MaxCardinality(train_)));
  }

  TreeModelConfig SmallConfig(bool lstm = false) const {
    TreeModelConfig config;
    config.feature_dim = encoder_->dim();
    config.dim = 16;
    config.embed_hidden = 16;
    config.out_hidden = 32;
    config.use_lstm = lstm;
    config.log_max_card = log_max_card_;
    return config;
  }

  // Geometric mean of root q-errors: robust to the handful of heavy-tail
  // queries that dominate an arithmetic mean at toy scale.
  double MeanRootQError(card::CardinalityEstimator* estimator) const {
    double total_log = 0.0;
    for (const auto& labeled : test_) {
      const double est =
          estimator->EstimateSubset(labeled.query, labeled.query.AllRels());
      total_log +=
          std::log(exec::QError(est, static_cast<double>(labeled.FinalCard())));
    }
    return std::exp(total_log / static_cast<double>(test_.size()));
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::vector<wk::LabeledQuery> train_, test_;
  double log_max_card_ = 20.0;
};

TEST_F(ModelTest, FeatureEncoderShapes) {
  const int cols = database_->catalog().TotalColumns();
  EXPECT_EQ(encoder_->dim(), 2 + 2 * cols + qry::kNumCmpOps + 1);
  const auto& labeled = train_.front();
  nn::Matrix scan = encoder_->EncodeScan(labeled.query, 0);
  EXPECT_EQ(scan.cols(), static_cast<size_t>(encoder_->dim()));
  EXPECT_FLOAT_EQ(scan.at(0, 0), 1.0f);  // function = scan
  EXPECT_FLOAT_EQ(scan.at(0, 1), 0.0f);
  if (!labeled.query.joins.empty()) {
    nn::Matrix join = encoder_->EncodeJoin(labeled.query, 0);
    EXPECT_FLOAT_EQ(join.at(0, 1), 1.0f);  // function = join
    float join_cols = 0.0f;
    for (int c = 0; c < cols; ++c) join_cols += join.at(0, 2 + c);
    EXPECT_FLOAT_EQ(join_cols, 2.0f);  // two-hot join condition
  }
}

TEST_F(ModelTest, OperandNormalizationIsBounded) {
  const int32_t t = database_->catalog().FindTable("title");
  for (int64_t v : {-100000, 0, 1990, 100000}) {
    const float norm = encoder_->NormalizeOperand({t, 2}, v);
    EXPECT_GE(norm, 0.0f);
    EXPECT_LE(norm, 1.0f);
  }
}

TEST_F(ModelTest, TrainingReducesLoss) {
  TreeModel model(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 1;
  const double first =
      TrainTreeModel(&model, *database_, train_, options).final_train_loss();
  options.epochs = 8;
  const double later =
      TrainTreeModel(&model, *database_, train_, options).final_train_loss();
  EXPECT_LT(later, first);
}

TEST_F(ModelTest, TrainedModelBeatsUntrainedOnQError) {
  TreeModel trained(encoder_.get(), SmallConfig());
  TreeModelConfig untrained_cfg = SmallConfig();
  untrained_cfg.seed = 99;
  TreeModel untrained(encoder_.get(), untrained_cfg);
  TrainOptions options;
  options.epochs = 30;
  TrainTreeModel(&trained, *database_, train_, options);
  TreeModelEstimator trained_est("t", &trained, database_.get());
  TreeModelEstimator untrained_est("u", &untrained, database_.get());
  EXPECT_LT(MeanRootQError(&trained_est), MeanRootQError(&untrained_est));
}

TEST_F(ModelTest, NodeWiseBeatsQueryWiseOnInternalNodes) {
  TreeModel node_wise(encoder_.get(), SmallConfig());
  TreeModel query_wise(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 30;
  TrainTreeModel(&node_wise, *database_, train_, options);
  options.node_wise = false;
  TrainTreeModel(&query_wise, *database_, train_, options);
  // Compare mean q-error across ALL plan nodes of the test queries.
  auto node_qerror = [&](const TreeModel& model) {
    double total = 0.0;
    int count = 0;
    for (const auto& labeled : test_) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      auto tree = MakeEstTree(labeled.query, logical.get(), *database_,
                              &labeled.true_cards);
      auto outputs = model.Forward(labeled.query, tree.get());
      for (const auto& out : outputs) {
        if (out.node->true_card < 0) continue;
        const double est =
            model.YToCard(static_cast<double>(out.y->value().at(0, 0)));
        total += exec::QError(est, out.node->true_card);
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(node_qerror(node_wise), node_qerror(query_wise));
}

TEST_F(ModelTest, LstmVariantTrainsToo) {
  TreeModel model(encoder_.get(), SmallConfig(/*lstm=*/true));
  TrainOptions options;
  options.epochs = 5;
  const double loss =
      TrainTreeModel(&model, *database_, train_, options).final_train_loss();
  EXPECT_LT(loss, 0.5);  // normalized-log space: far below random init
}

TEST_F(ModelTest, DistillationMatchesTeacherBehavior) {
  TreeModelConfig teacher_cfg = SmallConfig();
  teacher_cfg.dim = 32;
  teacher_cfg.embed_hidden = 32;
  teacher_cfg.out_hidden = 64;
  TreeModel teacher(encoder_.get(), teacher_cfg);
  TrainOptions options;
  options.epochs = 30;
  TrainTreeModel(&teacher, *database_, train_, options);

  TreeModel student(encoder_.get(), SmallConfig());
  DistillOptions distill;
  distill.hint_epochs = 6;
  distill.predict_epochs = 72;
  DistillTreeModel(&student, teacher, *database_, train_, distill);

  // The unit-level property of distillation is the mechanism itself: the
  // student's predictions must track the teacher's far more closely than an
  // independently-initialized model does. (Accuracy-vs-size is a full-scale
  // property measured by the Figure 20 bench.)
  TreeModelConfig fresh_cfg = SmallConfig();
  fresh_cfg.seed = 31415;
  TreeModel fresh(encoder_.get(), fresh_cfg);
  auto agreement = [&](const TreeModel& a, const TreeModel& b) {
    double total_log = 0.0;
    for (const auto& labeled : test_) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      auto tree =
          MakeEstTree(labeled.query, logical.get(), *database_, nullptr);
      total_log += std::log(
          exec::QError(a.PredictCardFast(labeled.query, tree.get()),
                       b.PredictCardFast(labeled.query, tree.get())));
    }
    return std::exp(total_log / static_cast<double>(test_.size()));
  };
  const double student_teacher = agreement(student, teacher);
  const double fresh_teacher = agreement(fresh, teacher);
  EXPECT_LT(student_teacher, 2.5)
      << "distilled student must track the teacher (fresh model baseline: "
      << fresh_teacher << ")";
}

TEST_F(ModelTest, MscnTrainsAndEstimates) {
  card::MscnConfig config;
  config.hidden = 16;
  config.log_max_card = log_max_card_;
  card::MscnModel model(&database_->catalog(), encoder_.get(), config);
  card::MscnTrainOptions options;
  options.epochs = 1;
  const double first = TrainMscn(&model, train_, options);
  options.epochs = 6;
  const double later = TrainMscn(&model, train_, options);
  EXPECT_LT(later, first);
  card::MscnEstimator estimator("MSCN", &model);
  const double q = MeanRootQError(&estimator);
  EXPECT_GT(q, 0.99);
  EXPECT_LT(q, 1e6);
}

TEST_F(ModelTest, FlowLossWeightingRuns) {
  card::MscnConfig config;
  config.hidden = 16;
  config.log_max_card = log_max_card_;
  card::MscnModel model(&database_->catalog(), encoder_.get(), config);
  card::MscnTrainOptions options;
  options.epochs = 4;
  options.cost_weighted = true;
  EXPECT_GT(TrainMscn(&model, train_, options), 0.0);
}

TEST_F(ModelTest, JoinSamplingIsNearExactWithManyWalks) {
  card::JoinSampleEstimator sampler("sample", database_.get(), 3000, 17);
  double total_q = 0.0;
  int count = 0;
  for (const auto& labeled : test_) {
    const double est =
        sampler.EstimateSubset(labeled.query, labeled.query.AllRels());
    total_q += exec::QError(est, static_cast<double>(labeled.FinalCard()));
    ++count;
  }
  EXPECT_LT(total_q / count, 3.0);
}

TEST_F(ModelTest, HybridEstimatorUsesCorrection) {
  card::JoinSampleEstimator sampler("s", database_.get(), 200, 23);
  card::MscnConfig config;
  config.hidden = 16;
  config.log_max_card = log_max_card_;
  config.extra_inputs = 1;
  card::MscnModel correction(&database_->catalog(), encoder_.get(), config);
  card::MscnTrainOptions options;
  options.epochs = 4;
  card::JoinSampleEstimator train_sampler("ts", database_.get(), 200, 23);
  options.extra_fn = [&](const qry::Query& q, qry::RelSet rels) {
    return std::vector<float>{
        static_cast<float>(correction.CardToY(train_sampler.EstimateSubset(q, rels)))};
  };
  TrainMscn(&correction, train_, options);
  card::HybridSampleEstimator hybrid("UAE*", &sampler, &correction);
  const double q = MeanRootQError(&hybrid);
  EXPECT_LT(q, 1e6);
}

TEST_F(ModelTest, LpceRRefinementUsesExecutedInformation) {
  LpceRTrainOptions options;
  options.pretrain.epochs = 8;
  options.refine_epochs = 4;
  options.prefixes_per_query = 2;
  LpceR model(encoder_.get(), SmallConfig());
  TrainLpceR(&model, *database_, train_, options);

  // Feed executed information for a test query and check refinement output
  // is a valid cardinality and the estimator machinery works end-to-end.
  const auto& labeled = test_.front();
  LpceREstimator estimator(&model, database_.get());
  // Initial estimate without observations.
  const double before =
      estimator.EstimateSubset(labeled.query, labeled.query.AllRels());
  EXPECT_GE(before, 0.0);
  // Observe the two smallest canonical nodes (a leaf then its join).
  auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
  std::vector<const qry::LogicalNode*> nodes;
  qry::PostOrder(logical.get(), &nodes);
  for (const auto* node : nodes) {
    if (qry::PopCount(node->rels) > 2) continue;
    auto it = labeled.true_cards.find(node->rels);
    if (it == labeled.true_cards.end()) continue;
    estimator.ObserveActual(labeled.query, node->rels,
                            static_cast<double>(it->second));
  }
  const double after =
      estimator.EstimateSubset(labeled.query, labeled.query.AllRels());
  EXPECT_GE(after, 0.0);
  estimator.ResetObservations();
  const double reset =
      estimator.EstimateSubset(labeled.query, labeled.query.AllRels());
  EXPECT_NEAR(reset, before, std::abs(before) * 1e-3 + 1e-3);
}

TEST_F(ModelTest, LpceRAblationModesWork)
{
  for (RefinerMode mode : {RefinerMode::kSingle, RefinerMode::kTwo}) {
    LpceR model(encoder_.get(), SmallConfig(), mode);
    LpceRTrainOptions options;
    options.pretrain.epochs = 3;
    options.refine_epochs = 2;
    options.prefixes_per_query = 1;
    TrainLpceR(&model, *database_, train_, options);
    LpceREstimator estimator(&model, database_.get());
    const auto& labeled = test_.front();
    // Observe one leaf.
    estimator.ObserveActual(labeled.query, 1,
                            static_cast<double>(labeled.true_cards.at(1)));
    const double est =
        estimator.EstimateSubset(labeled.query, labeled.query.AllRels());
    EXPECT_GE(est, 0.0);
  }
}

TEST_F(ModelTest, FastInferenceMatchesGraphForward) {
  // The no-autograd fast path must agree with the graph forward for SRU,
  // LSTM, and child-cards variants.
  for (bool lstm : {false, true}) {
    for (bool with_cards : {false, true}) {
      TreeModelConfig config = SmallConfig(lstm);
      config.with_child_cards = with_cards;
      config.seed = 100 + (lstm ? 1 : 0) + (with_cards ? 2 : 0);
      TreeModel tree_model(encoder_.get(), config);
      TrainOptions options;
      options.epochs = 2;
      TrainTreeModel(&tree_model, *database_, train_, options);
      for (size_t i = 0; i < 3; ++i) {
        const auto& labeled = test_[i];
        auto logical =
            qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
        auto tree = MakeEstTree(labeled.query, logical.get(), *database_,
                                &labeled.true_cards);
        const double slow = tree_model.PredictCard(labeled.query, tree.get());
        const double fast = tree_model.PredictCardFast(labeled.query, tree.get());
        EXPECT_NEAR(fast, slow, std::max(1.0, slow) * 1e-3)
            << "lstm=" << lstm << " cards=" << with_cards;
      }
    }
  }
}

TEST_F(ModelTest, MscnFastPredictMatchesGraphForward) {
  card::MscnConfig config;
  config.hidden = 16;
  config.log_max_card = log_max_card_;
  card::MscnModel mscn(&database_->catalog(), encoder_.get(), config);
  card::MscnTrainOptions options;
  options.epochs = 2;
  card::TrainMscn(&mscn, train_, options);
  for (size_t i = 0; i < 3; ++i) {
    const auto& labeled = test_[i];
    nn::Tensor y = mscn.Forward(labeled.query, labeled.query.AllRels());
    const double slow = mscn.YToCard(static_cast<double>(y->value().at(0, 0)));
    const double fast =
        mscn.PredictCard(labeled.query, labeled.query.AllRels());
    EXPECT_NEAR(fast, slow, std::max(1.0, slow) * 1e-3);
  }
}

TEST_F(ModelTest, LpceRFastEncodingMatchesGraph) {
  LpceR lpce_r(encoder_.get(), SmallConfig());
  LpceRTrainOptions options;
  options.pretrain.epochs = 2;
  options.refine_epochs = 1;
  TrainLpceR(&lpce_r, *database_, train_, options);
  const auto& labeled = test_.front();
  auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
  auto tree = MakeEstTree(labeled.query, logical.get(), *database_,
                          &labeled.true_cards);
  // Encode the leftmost join subtree both ways.
  const EstNode* executed = tree->left.get();
  ASSERT_NE(executed, nullptr);
  nn::Tensor slow = lpce_r.EncodeExecuted(labeled.query, executed);
  nn::Matrix fast = lpce_r.EncodeExecutedFast(labeled.query, executed);
  ASSERT_EQ(slow->value().cols(), fast.cols());
  for (size_t j = 0; j < fast.cols(); ++j) {
    EXPECT_NEAR(fast.at(0, j), slow->value().at(0, j), 1e-4);
  }
}

TEST_F(ModelTest, ModelSaveLoadPreservesPredictions) {
  TreeModel model(encoder_.get(), SmallConfig());
  TrainOptions options;
  options.epochs = 3;
  TrainTreeModel(&model, *database_, train_, options);
  const std::string path = ::testing::TempDir() + "/tree_model.bin";
  ASSERT_TRUE(model.params().SaveToFile(path).ok());

  TreeModelConfig cfg = SmallConfig();
  cfg.seed = 12345;  // different init; load must overwrite
  TreeModel loaded(encoder_.get(), cfg);
  ASSERT_TRUE(loaded.params().LoadFromFile(path).ok());

  const auto& labeled = test_.front();
  auto logical = qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
  auto tree = MakeEstTree(labeled.query, logical.get(), *database_, nullptr);
  EXPECT_NEAR(model.PredictCard(labeled.query, tree.get()),
              loaded.PredictCard(labeled.query, tree.get()), 1e-3);
}

}  // namespace
}  // namespace lpce::model
