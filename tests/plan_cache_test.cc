// Unit tests for the template fingerprint (query/fingerprint.h) and the
// plan & estimate cache (optimizer/plan_cache.h): literal-insensitive
// template collision, exact-key separation of distinct templates, LRU
// eviction, the epoch guard that drops inserts staged before an
// invalidation, rebinding, and the engine-level hit path's stats coherence
// (hits report ~0 seconds and 0 estimates — satellite of Fig. 12's time
// decomposition staying truthful).
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/check.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "lpce/model_registry.h"
#include "lpce/tree_model.h"
#include "optimizer/plan_cache.h"
#include "optimizer/planner.h"
#include "stats/column_stats.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce {
namespace {

/// Drops the wall-clock " time=..." tokens from a pretty-printed plan so
/// plans can be compared across runs.
std::string StripPlanTimes(const std::string& plan) {
  std::string out;
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t t = plan.find(" time=", pos);
    if (t == std::string::npos) {
      out.append(plan, pos, plan.size() - pos);
      break;
    }
    out.append(plan, pos, t - pos);
    size_t end = t + 1;
    while (end < plan.size() && plan[end] != ' ' && plan[end] != '\n') ++end;
    pos = end;
  }
  return out;
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    title_ = database_->catalog().FindTable("title");
    mi_ = database_->catalog().FindTable("movie_info");
    ASSERT_GE(title_, 0);
    ASSERT_GE(mi_, 0);
  }

  /// The classic parameterized template: title joins movie_info, equality
  /// on title.id (unique, so every literal is equally selective).
  qry::Query Template(int64_t literal) const {
    qry::Query query;
    query.tables = {title_, mi_};
    query.joins.push_back({{mi_, 1}, {title_, 0}});
    query.predicates.push_back({{title_, 0}, qry::CmpOp::kEq, literal});
    return query;
  }

  /// Two equality literals on title.id that are both non-MCV, so the
  /// histogram estimator assigns them bitwise-identical selectivity — the
  /// precondition for a cross-literal template hit.
  std::pair<int64_t, int64_t> NonMcvLiteralPair() const {
    const stats::ColumnStats& id_stats = stats_.column({title_, 0});
    auto is_mcv = [&](int64_t v) {
      return std::any_of(id_stats.mcvs.begin(), id_stats.mcvs.end(),
                         [&](const auto& mcv) { return mcv.first == v; });
    };
    std::vector<int64_t> picks;
    for (int64_t v = 0; picks.size() < 2 && v < 1000; ++v) {
      if (!is_mcv(v)) picks.push_back(v);
    }
    LPCE_CHECK(picks.size() == 2);
    return {picks[0], picks[1]};
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  int32_t title_ = -1;
  int32_t mi_ = -1;
};

TEST_F(PlanCacheTest, FingerprintCollidesAcrossEquallySelectiveLiterals) {
  card::HistogramEstimator estimator(&stats_);
  const auto [a, b] = NonMcvLiteralPair();
  const auto fp_a = opt::PlanCache::Fingerprint(Template(a), estimator);
  const auto fp_b = opt::PlanCache::Fingerprint(Template(b), estimator);
  EXPECT_EQ(fp_a.canonical, fp_b.canonical)
      << "equally-selective literals must share a cache key";
  EXPECT_EQ(fp_a.fss_hash, fp_b.fss_hash);
  EXPECT_TRUE(fp_a.valid());
}

TEST_F(PlanCacheTest, FingerprintSeparatesDistinctTemplates) {
  card::HistogramEstimator estimator(&stats_);
  const auto base = opt::PlanCache::Fingerprint(Template(100), estimator);

  // Different comparison op: different template.
  qry::Query other_op = Template(100);
  other_op.predicates[0].op = qry::CmpOp::kGe;
  EXPECT_NE(opt::PlanCache::Fingerprint(other_op, estimator).canonical,
            base.canonical);

  // Different predicate column: different template.
  qry::Query other_col = Template(100);
  other_col.predicates[0].col = {title_, 2};
  EXPECT_NE(opt::PlanCache::Fingerprint(other_col, estimator).canonical,
            base.canonical);

  // No predicate at all: different template.
  qry::Query no_pred = Template(100);
  no_pred.predicates.clear();
  EXPECT_NE(opt::PlanCache::Fingerprint(no_pred, estimator).canonical,
            base.canonical);

  // Another estimator name: never cross-served.
  class Renamed : public card::HistogramEstimator {
   public:
    using HistogramEstimator::HistogramEstimator;
    std::string name() const override { return "renamed"; }
  };
  Renamed renamed(&stats_);
  EXPECT_NE(opt::PlanCache::Fingerprint(Template(100), renamed).canonical,
            base.canonical);
}

TEST_F(PlanCacheTest, HitServesBitIdenticalPlanWithReboundLiterals) {
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanCache cache(8);
  const auto [a, b] = NonMcvLiteralPair();

  const qry::Query query_a = Template(a);
  const auto fp_a = opt::PlanCache::Fingerprint(query_a, estimator);
  auto miss = cache.Lookup(fp_a, query_a);
  EXPECT_FALSE(miss.hit());
  opt::PlanResult planned = planner.Plan(query_a, &estimator);
  cache.Insert(fp_a, miss.epoch, *planned.plan, planned.pool);

  // The other literal hits and comes back rebound: bitwise the plan fresh
  // planning would build for query_b, literals included.
  const qry::Query query_b = Template(b);
  const auto fp_b = opt::PlanCache::Fingerprint(query_b, estimator);
  auto hit = cache.Lookup(fp_b, query_b);
  ASSERT_TRUE(hit.hit());
  opt::PlanResult fresh = planner.Plan(query_b, &estimator);
  EXPECT_EQ(hit.plan->ToString(database_->catalog(), query_b),
            fresh.plan->ToString(database_->catalog(), query_b));
  EXPECT_EQ(hit.plan->est_cost, fresh.plan->est_cost);
  EXPECT_EQ(hit.pool, fresh.pool);

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.inserts, 1u);
  EXPECT_EQ(counters.size, 1u);
}

TEST_F(PlanCacheTest, LruEvictsLeastRecentlyUsedAtCapacity) {
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanCache cache(2);

  // Three distinct templates (different ops on the same column).
  std::vector<qry::Query> queries;
  for (qry::CmpOp op : {qry::CmpOp::kEq, qry::CmpOp::kGe, qry::CmpOp::kLe}) {
    qry::Query query = Template(50);
    query.predicates[0].op = op;
    queries.push_back(query);
  }
  std::vector<qry::TemplateFingerprint> fps;
  for (const auto& query : queries) {
    const auto fp = opt::PlanCache::Fingerprint(query, estimator);
    auto outcome = cache.Lookup(fp, query);
    opt::PlanResult planned = planner.Plan(query, &estimator);
    cache.Insert(fp, outcome.epoch, *planned.plan, planned.pool);
    fps.push_back(fp);
  }
  // Inserting the third evicted template 0 (LRU); 1 and 2 remain.
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.counters().size, 2u);
  EXPECT_FALSE(cache.Lookup(fps[0], queries[0]).hit());
  EXPECT_TRUE(cache.Lookup(fps[1], queries[1]).hit());
  // Touching 1 made 2 the LRU: re-inserting 0 now evicts 2.
  auto outcome = cache.Lookup(fps[0], queries[0]);
  opt::PlanResult planned = planner.Plan(queries[0], &estimator);
  cache.Insert(fps[0], outcome.epoch, *planned.plan, planned.pool);
  EXPECT_TRUE(cache.Lookup(fps[1], queries[1]).hit());
  EXPECT_FALSE(cache.Lookup(fps[2], queries[2]).hit());
}

TEST_F(PlanCacheTest, InvalidationDropsEntriesAndStaleInserts) {
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanCache cache(8);
  const qry::Query query = Template(42);
  const auto fp = opt::PlanCache::Fingerprint(query, estimator);

  auto before = cache.Lookup(fp, query);  // miss at epoch e
  opt::PlanResult planned = planner.Plan(query, &estimator);
  cache.Insert(fp, before.epoch, *planned.plan, planned.pool);
  ASSERT_TRUE(cache.Lookup(fp, query).hit());

  cache.Invalidate();
  EXPECT_EQ(cache.counters().size, 0u);
  EXPECT_EQ(cache.counters().invalidations, 1u);
  // The entry is gone...
  auto after = cache.Lookup(fp, query);
  EXPECT_FALSE(after.hit());
  // ...and an insert staged against the pre-bump epoch is dropped: a worker
  // that planned against old statistics can never publish a stale skeleton.
  cache.Insert(fp, before.epoch, *planned.plan, planned.pool);
  EXPECT_FALSE(cache.Lookup(fp, query).hit());
  // A fresh lookup/insert cycle at the new epoch works again.
  cache.Insert(fp, after.epoch, *planned.plan, planned.pool);
  EXPECT_TRUE(cache.Lookup(fp, query).hit());
}

TEST_F(PlanCacheTest, EngineHitReportsCoherentStatsAndTrace) {
  card::HistogramEstimator estimator(&stats_);
  eng::Engine engine(database_.get(), opt::CostModel{});
  opt::PlanCache cache(8);
  engine.set_plan_cache(&cache);
  eng::RunConfig config;

  const qry::Query query = Template(7);
  const eng::RunStats cold = engine.RunQuery(query, &estimator, nullptr, config);
  const eng::RunStats warm = engine.RunQuery(query, &estimator, nullptr, config);

  // Results and plans are bit-identical; the hit reports 0 estimates and no
  // inference time (stale/skipped observations would corrupt Fig. 12).
  EXPECT_EQ(warm.result_count, cold.result_count);
  EXPECT_EQ(StripPlanTimes(warm.final_plan), StripPlanTimes(cold.final_plan));
  EXPECT_EQ(StripPlanTimes(warm.initial_plan), StripPlanTimes(cold.initial_plan));
  EXPECT_GT(cold.num_estimates, 0u);
  EXPECT_EQ(warm.num_estimates, 0u);
  EXPECT_EQ(warm.inference_seconds, 0.0);
  EXPECT_GT(warm.plan_seconds, 0.0);  // the lookup itself is timed

  // Trace: both runs carry the cache outcome on the plan event, and the
  // event stream shape is otherwise identical.
  ASSERT_FALSE(cold.trace->events().empty());
  ASSERT_FALSE(warm.trace->events().empty());
  const eng::TraceEvent& cold_plan = cold.trace->events().front();
  const eng::TraceEvent& warm_plan = warm.trace->events().front();
  EXPECT_EQ(cold_plan.cache_decision, "miss");
  EXPECT_EQ(warm_plan.cache_decision, "hit");
  EXPECT_EQ(cold_plan.fss_hash, warm_plan.fss_hash);
  EXPECT_NE(warm_plan.fss_hash, 0u);
  EXPECT_EQ(warm_plan.num_estimates, 0u);
  EXPECT_EQ(warm_plan.plan_cost, cold_plan.plan_cost);

  // Both trace JSONs validate (the optional cache fields are schema-legal).
  EXPECT_TRUE(
      eng::ValidateTraceJson(cold.trace->ToJson(eng::TraceJsonMode::kDeterministic))
          .ok());
  EXPECT_TRUE(
      eng::ValidateTraceJson(warm.trace->ToJson(eng::TraceJsonMode::kDeterministic))
          .ok());

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
}

TEST_F(PlanCacheTest, CacheOffTracesHaveNoCacheFields) {
  // Golden traces must stay byte-identical when no cache is attached.
  card::HistogramEstimator estimator(&stats_);
  eng::Engine engine(database_.get(), opt::CostModel{});
  eng::RunConfig config;
  const eng::RunStats stats =
      engine.RunQuery(Template(7), &estimator, nullptr, config);
  const std::string json =
      stats.trace->ToJson(eng::TraceJsonMode::kDeterministic);
  EXPECT_EQ(json.find("\"cache\""), std::string::npos);
  EXPECT_EQ(json.find("\"fss\""), std::string::npos);
}

TEST_F(PlanCacheTest, ModelVersionPublishInvalidatesServerCache) {
  // Regression (the feedback loop's cache-coherence wire): a cached skeleton
  // embeds the estimate pool of the model version that planned it, so a
  // registry publish must empty the server's cache and bump its epoch —
  // before this hook existed, post-swap queries could serve pre-swap
  // skeletons with stale estimates.
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 8;
  config.embed_hidden = 8;
  config.out_hidden = 8;
  auto payload = std::make_shared<model::TreeModel>(&encoder, config);
  model::ModelRegistry registry;
  registry.Publish(payload, nullptr, "v1");

  eng::ServerOptions options;
  options.num_workers = 1;
  options.plan_cache_capacity = 8;
  options.model_registry = &registry;  // wires publish -> InvalidatePlanCache
  eng::EngineServer server(
      database_.get(), opt::CostModel{},
      [this](int) {
        eng::EngineServer::Session session;
        session.initial = std::make_unique<card::HistogramEstimator>(&stats_);
        return session;
      },
      options);

  const auto [a, b] = NonMcvLiteralPair();
  ASSERT_TRUE(server.RunSync(Template(a)).ok());
  ASSERT_TRUE(server.RunSync(Template(b)).ok());  // cross-literal hit
  const auto warm = server.plan_cache()->counters();
  EXPECT_GE(warm.hits, 1u);
  EXPECT_EQ(warm.invalidations, 0u);
  EXPECT_GE(warm.size, 1u);

  registry.Publish(payload, nullptr, "v2");
  const auto swapped = server.plan_cache()->counters();
  EXPECT_EQ(swapped.invalidations, 1u);
  EXPECT_EQ(swapped.size, 0u);

  // The next query re-plans (miss, not a stale hit) and repopulates the
  // cache under the new epoch.
  ASSERT_TRUE(server.RunSync(Template(a)).ok());
  const auto after = server.plan_cache()->counters();
  EXPECT_EQ(after.misses, warm.misses + 1);
  EXPECT_EQ(after.hits, warm.hits);
  EXPECT_GE(after.size, 1u);
}

}  // namespace
}  // namespace lpce
