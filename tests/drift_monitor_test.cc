// Drift-monitor determinism suite (engine/drift_monitor.h): a synthetic
// workload where one template's q-errors grow past the ratio threshold must
// flag that template and only it; identical record sequences must produce
// identical findings; and the min-sample gate must keep small windows from
// flipping flags.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "engine/drift_monitor.h"

namespace lpce::eng {
namespace {

using common::TelemetryHub;
using common::TelemetryMode;
using common::TelemetryOptions;
using common::TelemetryRecord;
using common::TelemetrySnapshot;

constexpr uint64_t kStable = 0xAAAA;
constexpr uint64_t kDrifting = 0xBBBB;

TelemetryRecord QErrorRecord(uint64_t fss, double qerror) {
  TelemetryRecord record;
  record.fss_hash = fss;
  record.plan_ns = 1000;
  record.exec_ns = 5000;
  record.num_qerrors = 1;
  record.qerrors[0] = static_cast<float>(qerror);
  record.max_qerror = static_cast<float>(qerror);
  return record;
}

class DriftMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryOptions options;
    options.ring_capacity = 1 << 12;
    options.window_size = 8;  // 8 records (= 8 q-errors) per window
    options.mode = TelemetryMode::kDeterministic;
    TelemetryHub::Global().Configure(options);
    common::SetTelemetryEnabled(true);
  }
  void TearDown() override {
    common::SetTelemetryEnabled(false);
    TelemetryHub::Global().SetDriftHook(nullptr);
    TelemetryHub::Global().Configure(TelemetryOptions::FromEnv());
  }

  /// Baseline window for both templates at q-error ~2, then a second window
  /// where only kDrifting degrades to ~`drifted_q`.
  static void PublishSyntheticDrift(double drifted_q) {
    auto& hub = TelemetryHub::Global();
    for (int i = 0; i < 8; ++i) {
      hub.Publish(QErrorRecord(kStable, 2.0));
      hub.Publish(QErrorRecord(kDrifting, 2.0));
    }
    for (int i = 0; i < 8; ++i) {
      hub.Publish(QErrorRecord(kStable, 2.0));
      hub.Publish(QErrorRecord(kDrifting, drifted_q));
    }
    hub.DrainNow();
  }

  static DriftMonitorOptions TestOptions() {
    DriftMonitorOptions options;
    options.ratio_threshold = 2.0;
    options.min_samples = 8;
    options.quantile = 0.95;
    return options;
  }
};

TEST_F(DriftMonitorTest, FlagsExactlyTheDriftedTemplate) {
  PublishSyntheticDrift(/*drifted_q=*/20.0);
  const DriftMonitor monitor(TestOptions());
  const TelemetrySnapshot snapshot = TelemetryHub::Global().Snapshot();
  const std::vector<DriftFinding> findings = monitor.Evaluate(snapshot);
  ASSERT_EQ(findings.size(), 2u);
  for (const DriftFinding& finding : findings) {
    ASSERT_TRUE(finding.evaluated) << finding.fss;
    if (finding.fss == kDrifting) {
      EXPECT_TRUE(finding.drifted);
      EXPECT_GE(finding.ratio, 2.0);
    } else {
      EXPECT_EQ(finding.fss, kStable);
      EXPECT_FALSE(finding.drifted);
      EXPECT_NEAR(finding.ratio, 1.0, 0.01);
    }
  }
}

TEST_F(DriftMonitorTest, StableWorkloadRaisesNoFlags) {
  PublishSyntheticDrift(/*drifted_q=*/2.0);  // nobody actually drifts
  const DriftMonitor monitor(TestOptions());
  for (const DriftFinding& finding :
       monitor.Evaluate(TelemetryHub::Global().Snapshot())) {
    EXPECT_FALSE(finding.drifted) << finding.fss;
  }
}

TEST_F(DriftMonitorTest, EvaluationIsDeterministic) {
  PublishSyntheticDrift(20.0);
  const DriftMonitor monitor(TestOptions());
  const TelemetrySnapshot snapshot = TelemetryHub::Global().Snapshot();
  const auto first = monitor.Evaluate(snapshot);
  const auto second = monitor.Evaluate(snapshot);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fss, second[i].fss);
    EXPECT_EQ(first[i].drifted, second[i].drifted);
    EXPECT_DOUBLE_EQ(first[i].ratio, second[i].ratio);
  }
  // ...and so is a replay of the whole record sequence.
  TelemetryHub::Global().Configure([&] {
    TelemetryOptions options;
    options.ring_capacity = 1 << 12;
    options.window_size = 8;
    options.mode = TelemetryMode::kDeterministic;
    return options;
  }());
  PublishSyntheticDrift(20.0);
  const auto replayed =
      monitor.Evaluate(TelemetryHub::Global().Snapshot());
  ASSERT_EQ(replayed.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(replayed[i].drifted, first[i].drifted);
    EXPECT_DOUBLE_EQ(replayed[i].ratio, first[i].ratio);
  }
}

TEST_F(DriftMonitorTest, MinSampleGateBlocksSmallWindows) {
  PublishSyntheticDrift(20.0);
  DriftMonitorOptions strict = TestOptions();
  strict.min_samples = 100;  // windows carry only 8 q-errors
  const DriftMonitor monitor(strict);
  for (const DriftFinding& finding :
       monitor.Evaluate(TelemetryHub::Global().Snapshot())) {
    EXPECT_FALSE(finding.evaluated) << finding.fss;
    EXPECT_FALSE(finding.drifted) << finding.fss;
  }
}

TEST_F(DriftMonitorTest, NoBaselineMeansNoEvaluation) {
  auto& hub = TelemetryHub::Global();
  for (int i = 0; i < 3; ++i) hub.Publish(QErrorRecord(kStable, 2.0));
  hub.DrainNow();  // window never completes (3 < 8)
  const DriftMonitor monitor(TestOptions());
  const auto findings = monitor.Evaluate(hub.Snapshot());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].evaluated);
}

TEST_F(DriftMonitorTest, RunPushesFlagsIntoHubAndExposition) {
  PublishSyntheticDrift(20.0);
  const DriftMonitor monitor(TestOptions());
  monitor.Run(TelemetryHub::Global());
  auto& hub = TelemetryHub::Global();
  EXPECT_TRUE(hub.drift_flag(kDrifting).drifted);
  EXPECT_FALSE(hub.drift_flag(kStable).drifted);
  EXPECT_GE(hub.drift_flag(kDrifting).ratio, 2.0);
  std::string exposition;
  common::AppendTelemetryPrometheus(hub.Snapshot(), false, &exposition);
  EXPECT_NE(exposition.find("lpce_drift_flagged{fss=\"000000000000bbbb\"} 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("lpce_drift_flagged{fss=\"000000000000aaaa\"} 0"),
            std::string::npos);
}

TEST_F(DriftMonitorTest, HookedIntoDrainFlagsAutomatically) {
  auto& hub = TelemetryHub::Global();
  const DriftMonitor monitor(TestOptions());
  hub.SetDriftHook(
      [&monitor](TelemetryHub& h) { monitor.Run(h); });
  PublishSyntheticDrift(20.0);  // DrainNow inside runs the hook
  EXPECT_TRUE(hub.drift_flag(kDrifting).drifted);
  EXPECT_FALSE(hub.drift_flag(kStable).drifted);
}

}  // namespace
}  // namespace lpce::eng
