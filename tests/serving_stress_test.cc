// Serving-layer stress suite, built to run under ThreadSanitizer (the CI
// `serving` job): concurrent admission, bounded-queue rejection, drain
// semantics, exact counter accounting, and the read-only-after-training
// contracts the server relies on (shared TreeModel inference, the world's
// TrainStatsCache).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "lpce/estimators.h"
#include "lpce/train_stats.h"
#include "lpce/tree_model.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

/// Adversarial underestimator (engine_test.cc's shape, owning) so the
/// stressed server also exercises the re-optimization paths.
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(const stats::DatabaseStats* stats)
      : histogram_(stats) {}
  std::string name() const override { return "under"; }
  void PrepareQuery(const qry::Query& query) override {
    histogram_.PrepareQuery(query);
  }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = histogram_.EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::HistogramEstimator histogram_;
};

/// Blocks every query in PrepareQuery until `gate` resolves — lets the tests
/// fill the admission queue deterministically while all workers are parked.
class GatedEstimator : public card::CardinalityEstimator {
 public:
  GatedEstimator(const stats::DatabaseStats* stats,
                 std::shared_future<void> gate)
      : histogram_(stats), gate_(std::move(gate)) {}
  std::string name() const override { return "gated"; }
  void PrepareQuery(const qry::Query& query) override {
    gate_.wait();
    histogram_.PrepareQuery(query);
  }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    return histogram_.EstimateSubset(query, rels);
  }

 private:
  card::HistogramEstimator histogram_;
  std::shared_future<void> gate_;
};

class ServingStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::SetGlobalPoolSize(2);
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 512;
    wk::QueryGenerator generator(database_.get(), gen);
    workload_ = generator.GenerateLabeled(60, 2, 4);
  }
  void TearDown() override { common::SetGlobalPoolSize(0); }

  EngineServer::SessionFactory UnderFactory() {
    return [this](int worker_id) {
      (void)worker_id;
      EngineServer::Session session;
      session.initial = std::make_unique<UnderEstimator>(&stats_);
      return session;
    };
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> workload_;
};

TEST_F(ServingStressTest, QueueFullRejectsWithCleanStatusAndExactCounts) {
  constexpr int kWorkers = 2;
  constexpr size_t kQueue = 4;
  constexpr int kOverflow = 5;

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ServerOptions options;
  options.num_workers = kWorkers;
  options.max_queue = kQueue;
  const common::MetricsSnapshot before =
      common::MetricsRegistry::Global().Snapshot();
  EngineServer server(
      database_.get(), opt::CostModel{},
      [this, gate](int worker_id) {
        (void)worker_id;
        EngineServer::Session session;
        session.initial = std::make_unique<GatedEstimator>(&stats_, gate);
        return session;
      },
      options);

  // Park every worker on a gated query...
  std::vector<std::shared_future<RunStats>> futures;
  for (int i = 0; i < kWorkers; ++i) {
    Result<std::shared_future<RunStats>> r =
        server.Submit(workload_[static_cast<size_t>(i)].query);
    ASSERT_TRUE(r.ok());
    futures.push_back(r.value());
  }
  while (server.queue_depth() > 0) std::this_thread::yield();
  // ...fill the queue to the brim...
  for (size_t i = 0; i < kQueue; ++i) {
    Result<std::shared_future<RunStats>> r =
        server.Submit(workload_[kWorkers + i].query);
    ASSERT_TRUE(r.ok());
    futures.push_back(r.value());
  }
  ASSERT_EQ(server.queue_depth(), kQueue);
  // ...and every further submission is cleanly refused.
  for (int i = 0; i < kOverflow; ++i) {
    Result<std::shared_future<RunStats>> r = server.Submit(workload_[0].query);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << r.status().ToString();
    EXPECT_FALSE(r.status().message().empty());
  }

  release.set_value();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().result_count, workload_[i].FinalCard());
  }
  server.Shutdown();

  const EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, kWorkers + kQueue);
  EXPECT_EQ(counters.rejected, kOverflow);
  EXPECT_EQ(counters.completed, counters.submitted);
  EXPECT_EQ(server.queue_depth(), 0u);

  // The process-global lpce.serve.* metrics moved by exactly the same
  // amounts (this binary runs one server at a time).
  const common::MetricsSnapshot delta = common::Delta(
      before, common::MetricsRegistry::Global().Snapshot());
  EXPECT_EQ(delta.counters.at("lpce.serve.submitted_total"),
            counters.submitted);
  EXPECT_EQ(delta.counters.at("lpce.serve.rejected_total"), counters.rejected);
  EXPECT_EQ(delta.counters.at("lpce.serve.completed_total"),
            counters.completed);
  EXPECT_EQ(delta.histograms.at("lpce.serve.wait_seconds").count,
            counters.submitted);
  EXPECT_EQ(delta.histograms.at("lpce.serve.e2e_seconds").count,
            counters.completed);
  EXPECT_EQ(delta.gauges.at("lpce.serve.queue_depth"), 0.0);
}

TEST_F(ServingStressTest, WorkerCountResolvesFromEnvKnob) {
  // Explicit option > LPCE_SERVE_WORKERS > default 1.
  ASSERT_EQ(setenv("LPCE_SERVE_WORKERS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ServerOptions::FromEnv().num_workers, 3);
  {
    ServerOptions options;  // num_workers = 0 → env
    EngineServer server(database_.get(), opt::CostModel{}, UnderFactory(),
                        options);
    EXPECT_EQ(server.num_workers(), 3);
    Result<RunStats> run = server.RunSync(workload_[0].query);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().result_count, workload_[0].FinalCard());
  }
  {
    ServerOptions options;
    options.num_workers = 2;  // explicit wins over env
    EngineServer server(database_.get(), opt::CostModel{}, UnderFactory(),
                        options);
    EXPECT_EQ(server.num_workers(), 2);
  }
  ASSERT_EQ(setenv("LPCE_SERVE_WORKERS", "not-a-number", 1), 0);
  EXPECT_EQ(ServerOptions::FromEnv().num_workers, 0);  // invalid → default
  {
    ServerOptions options;
    EngineServer server(database_.get(), opt::CostModel{}, UnderFactory(),
                        options);
    EXPECT_EQ(server.num_workers(), 1);
  }
  ASSERT_EQ(unsetenv("LPCE_SERVE_WORKERS"), 0);
}

TEST_F(ServingStressTest, SubmitAfterShutdownFailsCleanly) {
  ServerOptions options;
  options.num_workers = 1;
  EngineServer server(database_.get(), opt::CostModel{}, UnderFactory(),
                      options);
  Result<RunStats> ok = server.RunSync(workload_[0].query);
  ASSERT_TRUE(ok.ok());
  server.Shutdown();
  Result<std::shared_future<RunStats>> r = server.Submit(workload_[0].query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  const EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.rejected, 1u);
  server.Shutdown();  // idempotent
}

TEST_F(ServingStressTest, ConcurrentSubmittersDrainCorrectly) {
  // TSan target: several submitter threads race Submit against 8 workers
  // running re-optimizing queries, with monitoring reads mixed in. Every
  // admitted query must complete with the labeled row count; admission
  // arithmetic must balance exactly.
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 30;

  ServerOptions options;
  options.num_workers = 8;
  options.max_queue = 16;
  options.run_config.enable_reopt = true;
  options.run_config.qerror_threshold = 10.0;
  // Keep intra-query parallelism sequential: 8 workers already oversubscribe
  // the container; the interleavings TSan cares about are cross-query.
  options.run_config.exec_threads = 1;
  EngineServer server(database_.get(), opt::CostModel{}, UnderFactory(),
                      options);

  std::atomic<uint64_t> attempted{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const size_t pick =
            (static_cast<size_t>(s) * kPerSubmitter + static_cast<size_t>(i)) %
            workload_.size();
        attempted.fetch_add(1);
        Result<std::shared_future<RunStats>> r =
            server.Submit(workload_[pick].query);
        if (!r.ok()) {
          // Back-pressure path: the only acceptable refusal is queue-full.
          if (r.status().code() != StatusCode::kResourceExhausted) {
            mismatches.fetch_add(1);
            continue;
          }
          refused.fetch_add(1);
          std::this_thread::yield();
          continue;
        }
        admitted.fetch_add(1);
        if (r.value().get().result_count != workload_[pick].FinalCard()) {
          mismatches.fetch_add(1);
        }
        (void)server.queue_depth();
        (void)server.counters();
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.Shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(attempted.load(), admitted.load() + refused.load());
  const EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, admitted.load());
  EXPECT_EQ(counters.rejected, refused.load());
  EXPECT_EQ(counters.completed, admitted.load());
}

TEST_F(ServingStressTest, SharedTreeModelInferenceIsBitIdenticalAcrossThreads) {
  // Pins the read-only-after-training contract (lpce/tree_model.h): a single
  // trained TreeModel served from many threads at once must reproduce the
  // serial estimates bit-for-bit. A data race on the weights shows up here
  // under TSan; a logic race shows up as a mismatched double.
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  wk::GeneratorOptions gen;
  gen.seed = 99;
  wk::QueryGenerator generator(database_.get(), gen);
  auto train = generator.GenerateLabeled(20, 2, 4);

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel model(&encoder, config);
  model::TrainOptions topt;
  topt.epochs = 2;
  model::TrainTreeModel(&model, *database_, train, topt);

  // Serial reference: full-query estimates for the whole workload.
  std::vector<double> reference;
  {
    model::TreeModelEstimator estimator("ref", &model, database_.get());
    for (const auto& labeled : workload_) {
      estimator.PrepareQuery(labeled.query);
      reference.push_back(
          estimator.EstimateSubset(labeled.query, labeled.query.AllRels()));
    }
  }

  constexpr int kThreads = 8;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      model::TreeModelEstimator estimator("worker", &model, database_.get());
      for (size_t q = 0; q < workload_.size(); ++q) {
        estimator.PrepareQuery(workload_[q].query);
        const double estimate = estimator.EstimateSubset(
            workload_[q].query, workload_[q].query.AllRels());
        if (estimate != reference[q]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(ServingStressTest, TrainStatsCacheSurvivesConcurrentRecordAndFind) {
  // The world's training-telemetry store must tolerate recorders racing
  // readers (the bare-map predecessor was a latent data race).
  model::TrainStatsCache cache;
  constexpr int kWriters = 4;
  constexpr int kTagsPerWriter = 25;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> corrupt{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        (void)cache.empty();
        (void)cache.size();
        for (const std::string& tag : cache.tags()) {
          model::TrainStats found;
          if (!cache.Find(tag, &found)) continue;
          // Tag "w<i>_t<j>" always carries total_seconds == j.
          const double expected =
              static_cast<double>(std::stoi(tag.substr(tag.find("_t") + 2)));
          if (found.total_seconds != expected) corrupt.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kTagsPerWriter; ++i) {
        model::TrainStats stats;
        stats.model_tag = "w" + std::to_string(w);
        stats.total_seconds = static_cast<double>(i);
        cache.Record("w" + std::to_string(w) + "_t" + std::to_string(i),
                     std::move(stats));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(corrupt.load(), 0u);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kWriters * kTagsPerWriter));
  EXPECT_FALSE(cache.empty());
  const std::vector<std::string> tags = cache.tags();
  EXPECT_TRUE(std::is_sorted(tags.begin(), tags.end()));
}

}  // namespace
}  // namespace lpce::eng
