// Tests for column statistics and the histogram estimator: selectivities
// against brute-force ground truth.
#include <cmath>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/rng.h"
#include "stats/column_stats.h"

namespace lpce::stats {
namespace {

db::Table MakeTable(const std::vector<int64_t>& values) {
  db::Table table(1);
  for (int64_t v : values) table.AppendRow({v});
  return table;
}

// Local q-error helper (avoids pulling the executor header).
double exec_qerror(double a, double b) {
  a = std::max(a, 1.0);
  b = std::max(b, 1.0);
  return a > b ? a / b : b / a;
}

double TrueSelectivity(const std::vector<int64_t>& values, qry::CmpOp op,
                       int64_t x) {
  size_t hits = 0;
  for (int64_t v : values) {
    if (qry::EvalCmp(v, op, x)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

TEST(ColumnStatsTest, BasicShape) {
  db::Table table = MakeTable({1, 1, 1, 2, 3, 4, 5, 5, 9});
  ColumnStats stats = BuildColumnStats(table, 0);
  EXPECT_EQ(stats.row_count, 9u);
  EXPECT_EQ(stats.min_value, 1);
  EXPECT_EQ(stats.max_value, 9);
  EXPECT_DOUBLE_EQ(stats.n_distinct, 6.0);
}

TEST(ColumnStatsTest, McvEqualityIsExact) {
  // With <= 16 distinct values everything is an MCV: equality is exact.
  std::vector<int64_t> values;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.UniformInt(0, 9));
  db::Table table = MakeTable(values);
  ColumnStats stats = BuildColumnStats(table, 0);
  for (int64_t x = 0; x <= 9; ++x) {
    EXPECT_NEAR(stats.Selectivity(qry::CmpOp::kEq, x),
                TrueSelectivity(values, qry::CmpOp::kEq, x), 1e-9);
    EXPECT_NEAR(stats.Selectivity(qry::CmpOp::kNe, x),
                TrueSelectivity(values, qry::CmpOp::kNe, x), 1e-9);
  }
  EXPECT_DOUBLE_EQ(stats.Selectivity(qry::CmpOp::kEq, 12345), 0.0);
}

TEST(ColumnStatsTest, RangeSelectivityCloseToTruthOnSkewedData) {
  std::vector<int64_t> values;
  Rng rng(11);
  ZipfSampler zipf(500, 1.1, &rng);
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<int64_t>(zipf.Sample()));
  }
  db::Table table = MakeTable(values);
  ColumnStats stats = BuildColumnStats(table, 0);
  for (int64_t x : {1, 3, 10, 50, 200, 400}) {
    for (auto op : {qry::CmpOp::kLt, qry::CmpOp::kLe, qry::CmpOp::kGe,
                    qry::CmpOp::kGt}) {
      const double truth = TrueSelectivity(values, op, x);
      const double est = stats.Selectivity(op, x);
      EXPECT_NEAR(est, truth, 0.08) << "op " << qry::CmpOpName(op) << " x " << x;
    }
  }
}

TEST(ColumnStatsTest, SelectivityBoundsAndMonotonicity) {
  std::vector<int64_t> values;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) values.push_back(rng.UniformInt(-100, 100));
  db::Table table = MakeTable(values);
  ColumnStats stats = BuildColumnStats(table, 0);
  double prev = -1.0;
  for (int64_t x = -120; x <= 120; x += 10) {
    const double s = stats.Selectivity(qry::CmpOp::kLt, x);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_GE(s, prev - 1e-9) << "Pr[v < x] must be monotone in x";
    prev = s;
  }
  EXPECT_NEAR(stats.Selectivity(qry::CmpOp::kLt, 1000), 1.0, 1e-9);
  EXPECT_NEAR(stats.Selectivity(qry::CmpOp::kGt, 1000), 0.0, 1e-9);
}

TEST(DatabaseStatsTest, CoversEveryColumn) {
  db::SynthImdbOptions opts;
  opts.scale = 0.02;
  auto database = db::BuildSynthImdb(opts);
  DatabaseStats stats(*database);
  const db::Catalog& cat = database->catalog();
  for (int32_t t = 0; t < cat.num_tables(); ++t) {
    EXPECT_EQ(stats.table_rows(t), database->table(t).num_rows());
    for (size_t c = 0; c < cat.table(t).columns.size(); ++c) {
      const ColumnStats& cs = stats.column({t, static_cast<int32_t>(c)});
      EXPECT_EQ(cs.row_count, database->table(t).num_rows());
    }
  }
}

TEST(HistogramEstimatorTest, SingleTableEstimatesTrackTruth) {
  db::SynthImdbOptions opts;
  opts.scale = 0.05;
  auto database = db::BuildSynthImdb(opts);
  DatabaseStats stats(*database);
  card::HistogramEstimator estimator(&stats);

  const int32_t t = database->catalog().FindTable("title");
  qry::Query query;
  query.tables = {t};
  query.predicates = {{{t, 2}, qry::CmpOp::kGt, 2005}};
  const double est = estimator.EstimateSubset(query, 1);

  size_t truth = 0;
  const db::Table& table = database->table(t);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.at(r, 2) > 2005) ++truth;
  }
  EXPECT_GT(est, 0.0);
  EXPECT_LT(exec_qerror(est, static_cast<double>(truth)), 1.5);
}

TEST(HistogramEstimatorTest, JoinEstimateUsesNdistinct) {
  db::SynthImdbOptions opts;
  opts.scale = 0.05;
  auto database = db::BuildSynthImdb(opts);
  DatabaseStats stats(*database);
  card::HistogramEstimator estimator(&stats);

  const db::Catalog& cat = database->catalog();
  const int32_t t = cat.FindTable("title");
  const int32_t mc = cat.FindTable("movie_companies");
  qry::Query query;
  query.tables = {t, mc};
  query.joins = {{{mc, 1}, {t, 0}}};
  const double est = estimator.EstimateSubset(query, 0b11);
  // FK join through a PK: |mc| x |t| / nd(t.id) = |mc| exactly.
  EXPECT_NEAR(est, static_cast<double>(database->table(mc).num_rows()),
              static_cast<double>(database->table(mc).num_rows()) * 0.05);
}

}  // namespace
}  // namespace lpce::stats
