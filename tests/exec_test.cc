// Executor tests: join algorithms against a brute-force reference, scans,
// projection pruning, checkpoints, and pseudo scans.
#include <memory>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/database.h"

namespace lpce::exec {
namespace {

// Tiny two/three-table fixture: r(id, a), s(r_id, b), u(s_key, c).
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = database_.AddTable({"r", {{"id"}, {"a"}}});
    s_ = database_.AddTable({"s", {{"r_id"}, {"b"}}});
    u_ = database_.AddTable({"u", {{"s_key"}, {"c"}}});
    database_.catalog().AddJoinEdge({s_, 0}, {r_, 0});
    database_.catalog().AddJoinEdge({u_, 0}, {s_, 1});
    // r: ids 0..9, a = id % 4
    for (int64_t i = 0; i < 10; ++i) database_.table(r_).AppendRow({i, i % 4});
    // s: r_id in 0..9 (skewed), b in 0..4
    for (int64_t i = 0; i < 30; ++i) {
      database_.table(s_).AppendRow({(i * i) % 10, i % 5});
    }
    // u: s_key in 0..4, c arbitrary
    for (int64_t i = 0; i < 12; ++i) database_.table(u_).AppendRow({i % 5, i * 7});
    database_.BuildAllIndexes();

    query_.tables = {r_, s_, u_};
    query_.joins = {{{s_, 0}, {r_, 0}}, {{u_, 0}, {s_, 1}}};
  }

  // Brute-force COUNT(*) of r JOIN s JOIN u with optional r.a predicate.
  uint64_t BruteForceCount(bool with_pred, int64_t a_lt) const {
    uint64_t count = 0;
    const db::Table& r = database_.table(r_);
    const db::Table& s = database_.table(s_);
    const db::Table& u = database_.table(u_);
    for (size_t i = 0; i < r.num_rows(); ++i) {
      if (with_pred && !(r.at(i, 1) < a_lt)) continue;
      for (size_t j = 0; j < s.num_rows(); ++j) {
        if (s.at(j, 0) != r.at(i, 0)) continue;
        for (size_t k = 0; k < u.num_rows(); ++k) {
          if (u.at(k, 0) == s.at(j, 1)) ++count;
        }
      }
    }
    return count;
  }

  std::unique_ptr<PlanNode> MakeScan(int pos, std::vector<qry::Predicate> filters,
                                     PhysOp op = PhysOp::kSeqScan,
                                     db::ColRef index_col = {}) {
    auto node = std::make_unique<PlanNode>();
    node->op = op;
    node->rels = qry::Bit(pos);
    node->table_pos = pos;
    node->filters = std::move(filters);
    node->index_col = index_col;
    return node;
  }

  std::unique_ptr<PlanNode> MakeJoin(PhysOp op, std::unique_ptr<PlanNode> outer,
                                     std::unique_ptr<PlanNode> inner,
                                     db::ColRef outer_key, db::ColRef inner_key) {
    auto node = std::make_unique<PlanNode>();
    node->op = op;
    node->rels = outer->rels | inner->rels;
    node->outer = std::move(outer);
    node->inner = std::move(inner);
    node->outer_key = outer_key;
    node->inner_key = inner_key;
    return node;
  }

  db::Database database_;
  qry::Query query_;
  int32_t r_ = -1, s_ = -1, u_ = -1;
};

TEST_F(ExecTest, AllJoinAlgorithmsAgreeWithBruteForce) {
  const uint64_t expect = BruteForceCount(false, 0);
  for (PhysOp op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = MakeJoin(
        op,
        MakeJoin(op, MakeScan(0, {}), MakeScan(1, {}), {r_, 0}, {s_, 0}),
        MakeScan(2, {}), {s_, 1}, {u_, 0});
    Executor executor(&database_, &query_);
    RowSetPtr result = executor.Execute(plan.get());
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->num_rows(), expect) << PhysOpName(op);
    EXPECT_EQ(plan->actual_card, expect);
  }
}

TEST_F(ExecTest, MixedJoinAlgorithmsAgree) {
  const uint64_t expect = BruteForceCount(false, 0);
  auto plan = MakeJoin(
      PhysOp::kNestLoopJoin,
      MakeJoin(PhysOp::kMergeJoin, MakeScan(0, {}), MakeScan(1, {}), {r_, 0},
               {s_, 0}),
      MakeScan(2, {}), {s_, 1}, {u_, 0});
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), expect);
}

TEST_F(ExecTest, FilterPredicateApplied) {
  qry::Predicate pred{{r_, 1}, qry::CmpOp::kLt, 2};
  query_.predicates = {pred};
  const uint64_t expect = BruteForceCount(true, 2);
  auto plan = MakeJoin(
      PhysOp::kHashJoin,
      MakeJoin(PhysOp::kHashJoin, MakeScan(0, {pred}), MakeScan(1, {}), {r_, 0},
               {s_, 0}),
      MakeScan(2, {}), {s_, 1}, {u_, 0});
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), expect);
}

TEST_F(ExecTest, IndexScanMatchesSeqScan) {
  for (auto op : {qry::CmpOp::kLt, qry::CmpOp::kLe, qry::CmpOp::kEq,
                  qry::CmpOp::kGe, qry::CmpOp::kGt}) {
    qry::Predicate pred{{r_, 1}, op, 2};
    auto seq = MakeScan(0, {pred});
    auto index = MakeScan(0, {pred}, PhysOp::kIndexScan, {r_, 1});
    Executor executor(&database_, &query_);
    // Request one column so row counts are observable.
    auto run = [&](PlanNode* node) {
      auto join = MakeJoin(PhysOp::kHashJoin,
                           std::unique_ptr<PlanNode>(node), MakeScan(1, {}),
                           {r_, 0}, {s_, 0});
      uint64_t rows = executor.Execute(join.get())->num_rows();
      join->outer.release();  // node owned by caller's unique_ptr
      return rows;
    };
    EXPECT_EQ(run(seq.get()), run(index.get())) << qry::CmpOpName(op);
  }
}

TEST_F(ExecTest, ProjectionPruningKeepsCountCorrect) {
  auto plan = MakeJoin(PhysOp::kHashJoin, MakeScan(0, {}), MakeScan(1, {}),
                       {r_, 0}, {s_, 0});
  Executor executor(&database_, &query_);
  RowSetPtr result = executor.Execute(plan.get());
  // Root required set is empty: zero columns, but the row count survives.
  EXPECT_EQ(result->num_cols(), 0u);
  EXPECT_EQ(result->num_rows(), 30u);  // every s row matches exactly one r
}

TEST_F(ExecTest, CheckpointTripsOnLargeQError) {
  auto scan_r = MakeScan(0, {});
  scan_r->est_card = 10.0;
  auto scan_s = MakeScan(1, {});
  scan_s->est_card = 30.0;
  auto inner_join = MakeJoin(PhysOp::kHashJoin, std::move(scan_r),
                             std::move(scan_s), {r_, 0}, {s_, 0});
  inner_join->est_card = 1.0;  // actual is 30 -> q-error 30
  auto plan = MakeJoin(PhysOp::kHashJoin, std::move(inner_join), MakeScan(2, {}),
                       {s_, 1}, {u_, 0});
  plan->est_card = 100.0;
  Executor executor(&database_, &query_);
  Executor::Options options;
  options.enable_checkpoints = true;
  options.qerror_threshold = 10.0;
  Executor::RunResult run = executor.Run(plan.get(), options);
  ASSERT_NE(run.tripped, nullptr);
  EXPECT_EQ(run.tripped->actual_card, 30u);
  EXPECT_EQ(run.result, nullptr);
  // The tripped node's materialized result is retained for re-planning.
  EXPECT_TRUE(run.finished.count(run.tripped) > 0);
}

TEST_F(ExecTest, CheckpointDoesNotTripWhenAccurate) {
  auto scan_r = MakeScan(0, {});
  scan_r->est_card = 10.0;
  auto scan_s = MakeScan(1, {});
  scan_s->est_card = 30.0;
  auto inner_join = MakeJoin(PhysOp::kHashJoin, std::move(scan_r),
                             std::move(scan_s), {r_, 0}, {s_, 0});
  inner_join->est_card = 30.0;
  auto scan0 = MakeScan(2, {});
  scan0->est_card = 12.0;
  auto plan = MakeJoin(PhysOp::kHashJoin, std::move(inner_join), std::move(scan0),
                       {s_, 1}, {u_, 0});
  plan->est_card = static_cast<double>(BruteForceCount(false, 0));
  Executor executor(&database_, &query_);
  Executor::Options options;
  options.enable_checkpoints = true;
  options.qerror_threshold = 10.0;
  Executor::RunResult run = executor.Run(plan.get(), options);
  EXPECT_EQ(run.tripped, nullptr);
  ASSERT_NE(run.result, nullptr);
  EXPECT_EQ(run.result->num_rows(), BruteForceCount(false, 0));
}

TEST_F(ExecTest, PseudoScanReplaysMaterializedIntermediate) {
  // Materialize r JOIN s, then join the intermediate with u via pseudo scan.
  auto sub = MakeJoin(PhysOp::kHashJoin, MakeScan(0, {}), MakeScan(1, {}),
                      {r_, 0}, {s_, 0});
  qry::Query sub_query = query_;
  Executor sub_exec(&database_, &sub_query);
  // Run the sub-plan requesting the column needed later (s.b).
  auto wrapper = MakeJoin(PhysOp::kHashJoin, std::move(sub), MakeScan(2, {}),
                          {s_, 1}, {u_, 0});
  Executor::RunResult wr = sub_exec.Run(wrapper.get(), {});
  // Extract the materialized left side from the finished map.
  RowSetPtr materialized = wr.finished.at(wrapper->outer.get());
  ASSERT_NE(materialized, nullptr);
  EXPECT_GE(materialized->num_cols(), 1u);

  auto pseudo = std::make_unique<PlanNode>();
  pseudo->op = PhysOp::kPseudoScan;
  pseudo->rels = qry::Bit(0) | qry::Bit(1);
  pseudo->pseudo = materialized;
  auto plan = MakeJoin(PhysOp::kHashJoin, std::move(pseudo), MakeScan(2, {}),
                       {s_, 1}, {u_, 0});
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), BruteForceCount(false, 0));
}

TEST_F(ExecTest, QErrorIsSymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);  // both clamped to one tuple
  EXPECT_DOUBLE_EQ(QError(0.5, 2), 2.0);
}

TEST_F(ExecTest, CanonicalHashPlanCountsMatchBruteForce) {
  auto plan = BuildCanonicalHashPlan(query_);
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), BruteForceCount(false, 0));
}

}  // namespace
}  // namespace lpce::exec
