// Property-based tests (parameterized sweeps over seeds/configurations):
//  - plan correctness is invariant to the estimator and the join algorithms;
//  - re-optimization never changes query results, for any trigger threshold;
//  - selectivities are proper probabilities and complementary;
//  - q-error is symmetric, >= 1, and scale-invariant;
//  - every estimator returns finite non-negative estimates on any subset.
#include <cmath>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "card/sampling.h"
#include "engine/engine.h"
#include "exec/executor.h"
#include "workload/workload.h"

namespace lpce {
namespace {

// Shared world for property sweeps (built once per test binary).
struct PropertyWorld {
  std::unique_ptr<db::Database> database;
  stats::DatabaseStats stats;

  PropertyWorld() {
    db::SynthImdbOptions opts;
    opts.scale = 0.05;
    database = db::BuildSynthImdb(opts);
    stats.Build(*database);
  }
};

PropertyWorld& World() {
  static PropertyWorld* world = new PropertyWorld();
  return *world;
}

// ---------------------------------------------------------------------------
// Property: for any query (seed-parameterized) and any forced join algorithm,
// the executed count equals the canonical hash-join count.
class JoinAlgorithmProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(JoinAlgorithmProperty, AllAlgorithmsAgree) {
  const auto [seed, joins] = GetParam();
  auto& world = World();
  wk::GeneratorOptions gen;
  gen.seed = seed;
  wk::QueryGenerator generator(world.database.get(), gen);
  wk::LabeledQuery labeled;
  labeled.query = generator.Generate(joins);
  wk::LabelQuery(*world.database, &labeled);

  for (exec::PhysOp op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                          exec::PhysOp::kNestLoopJoin}) {
    auto plan = exec::BuildCanonicalHashPlan(labeled.query);
    std::vector<exec::PlanNode*> nodes;
    exec::PostOrderPlan(plan.get(), &nodes);
    for (auto* node : nodes) {
      if (node->is_join()) node->op = op;
    }
    exec::Executor executor(world.database.get(), &labeled.query);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), labeled.FinalCard())
        << exec::PhysOpName(op) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinAlgorithmProperty,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u,
                                                              5u),
                                            ::testing::Values(2, 4)));

// ---------------------------------------------------------------------------
// Property: whatever the estimator says, the planner's plan computes the
// right answer — estimates affect speed, never correctness.
class EstimatorIndependenceProperty : public ::testing::TestWithParam<uint64_t> {
};

// Estimator returning arbitrary (seeded) garbage.
class GarbageEstimator : public card::CardinalityEstimator {
 public:
  explicit GarbageEstimator(uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "garbage"; }
  double EstimateSubset(const qry::Query&, qry::RelSet) override {
    return std::pow(10.0, rng_.UniformDouble(0.0, 6.0));
  }

 private:
  Rng rng_;
};

TEST_P(EstimatorIndependenceProperty, GarbageEstimatesStillCorrect) {
  const uint64_t seed = GetParam();
  auto& world = World();
  wk::GeneratorOptions gen;
  gen.seed = seed + 100;
  wk::QueryGenerator generator(world.database.get(), gen);
  wk::LabeledQuery labeled;
  labeled.query = generator.Generate(5);
  wk::LabelQuery(*world.database, &labeled);

  GarbageEstimator garbage(seed);
  opt::Planner planner(world.database.get(), opt::CostModel{});
  opt::PlanResult result = planner.Plan(labeled.query, &garbage);
  exec::Executor executor(world.database.get(), &labeled.query);
  EXPECT_EQ(executor.Execute(result.plan.get())->num_rows(), labeled.FinalCard());
}

INSTANTIATE_TEST_SUITE_P(Sweep, EstimatorIndependenceProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

// ---------------------------------------------------------------------------
// Property: re-optimization preserves results for any trigger threshold and
// any re-optimization budget.
class ReoptProperty
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {};

TEST_P(ReoptProperty, ResultInvariant) {
  const auto [threshold, max_reopts, seed] = GetParam();
  auto& world = World();
  wk::GeneratorOptions gen;
  gen.seed = seed + 500;
  wk::QueryGenerator generator(world.database.get(), gen);
  wk::LabeledQuery labeled;
  labeled.query = generator.Generate(6);
  wk::LabelQuery(*world.database, &labeled);

  GarbageEstimator garbage(seed);
  eng::Engine engine(world.database.get(), opt::CostModel{});
  eng::RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = threshold;
  config.max_reopts = max_reopts;
  eng::RunStats stats = engine.RunQuery(labeled.query, &garbage, nullptr, config);
  EXPECT_EQ(stats.result_count, labeled.FinalCard());
  EXPECT_LE(stats.num_reopts, max_reopts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReoptProperty,
    ::testing::Combine(::testing::Values(1.5, 5.0, 50.0),
                       ::testing::Values(1, 3),
                       ::testing::Values(uint64_t{1}, uint64_t{2})));

// ---------------------------------------------------------------------------
// Property: selectivities are probabilities; < and >= are complementary.
class SelectivityProperty
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(SelectivityProperty, ProbabilityAxioms) {
  const auto [column_pick, value] = GetParam();
  auto& world = World();
  const db::Catalog& cat = world.database->catalog();
  // Map the flat pick onto a (table, column).
  int remaining = column_pick;
  for (int32_t t = 0; t < cat.num_tables(); ++t) {
    const int cols = static_cast<int>(cat.table(t).columns.size());
    if (remaining >= cols) {
      remaining -= cols;
      continue;
    }
    const stats::ColumnStats& cs = world.stats.column({t, remaining});
    for (auto op : {qry::CmpOp::kLt, qry::CmpOp::kLe, qry::CmpOp::kEq,
                    qry::CmpOp::kGe, qry::CmpOp::kGt, qry::CmpOp::kNe}) {
      const double sel = cs.Selectivity(op, value);
      EXPECT_GE(sel, 0.0);
      EXPECT_LE(sel, 1.0 + 1e-9);
    }
    EXPECT_NEAR(cs.Selectivity(qry::CmpOp::kLt, value) +
                    cs.Selectivity(qry::CmpOp::kGe, value),
                1.0, 0.02);
    EXPECT_NEAR(cs.Selectivity(qry::CmpOp::kEq, value) +
                    cs.Selectivity(qry::CmpOp::kNe, value),
                1.0, 1e-6);
    return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectivityProperty,
    ::testing::Combine(::testing::Values(0, 3, 7, 12, 20, 30),
                       ::testing::Values(int64_t{-5}, int64_t{0}, int64_t{3},
                                         int64_t{1995}, int64_t{100000})));

// ---------------------------------------------------------------------------
// Property: q-error axioms.
class QErrorProperty : public ::testing::TestWithParam<double> {};

TEST_P(QErrorProperty, Axioms) {
  const double x = GetParam();
  for (double y : {1.0, 10.0, 12345.0}) {
    EXPECT_GE(exec::QError(x, y), 1.0);
    EXPECT_DOUBLE_EQ(exec::QError(x, y), exec::QError(y, x));  // symmetry
    // Scale invariance (both sides above the 1-tuple clamp).
    if (x >= 1.0) {
      EXPECT_NEAR(exec::QError(10 * x, 10 * y), exec::QError(x, y),
                  exec::QError(x, y) * 1e-9);
    }
  }
  EXPECT_DOUBLE_EQ(exec::QError(x, x), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QErrorProperty,
                         ::testing::Values(0.0, 0.5, 1.0, 7.0, 1e3, 1e9));

// ---------------------------------------------------------------------------
// Property: every estimator yields finite, non-negative estimates on every
// connected subset of random queries.
class EstimateRangeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EstimateRangeProperty, FiniteNonNegative) {
  const uint64_t seed = GetParam();
  auto& world = World();
  wk::GeneratorOptions gen;
  gen.seed = seed + 900;
  wk::QueryGenerator generator(world.database.get(), gen);
  qry::Query query = generator.Generate(5);

  card::HistogramEstimator histogram(&world.stats);
  card::JoinSampleEstimator sampler("s", world.database.get(), 100, seed);
  for (card::CardinalityEstimator* estimator :
       {static_cast<card::CardinalityEstimator*>(&histogram),
        static_cast<card::CardinalityEstimator*>(&sampler)}) {
    for (qry::RelSet rels = 1; rels <= query.AllRels(); ++rels) {
      if (!query.IsConnected(rels)) continue;
      const double est = estimator->EstimateSubset(query, rels);
      EXPECT_TRUE(std::isfinite(est)) << estimator->name();
      EXPECT_GE(est, 0.0) << estimator->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EstimateRangeProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

}  // namespace
}  // namespace lpce
