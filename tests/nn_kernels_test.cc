// Kernel unit tests (PR 4): the blocked branch-free Gemm against a naive
// triple loop on irregular shapes, the zero-skip reference variant, the
// row-independence property the batched inference path relies on, and the
// bit-exactness contracts of the elementwise kernels.
#include "nn/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/arena.h"

namespace lpce::nn::kernels {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng, double lo = -2.0,
                             double hi = 2.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->UniformDouble(lo, hi));
  return v;
}

/// Reference product with double accumulation: the float kernels must agree
/// to within float rounding noise on every shape.
std::vector<float> NaiveGemm(const std::vector<float>& a, size_t m, size_t k,
                             const std::vector<float>& b, size_t n) {
  std::vector<float> out(m * n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      }
      out[i * n + j] = static_cast<float>(acc);
    }
  }
  return out;
}

struct Shape {
  size_t m, k, n;
};

// Irregular shapes: unit dims, odd primes, exact multiples of the 4-way
// unroll, one-short/one-past the unroll, and k spanning the 256 cache block.
const Shape kShapes[] = {{1, 1, 1},  {1, 7, 1},   {3, 5, 7},    {4, 16, 12},
                         {5, 3, 1},  {2, 17, 33}, {13, 64, 9},  {1, 255, 4},
                         {6, 256, 3}, {2, 257, 5}, {3, 300, 11}, {31, 31, 31}};

TEST(GemmTest, MatchesNaiveTripleLoopOnIrregularShapes) {
  Rng rng(42);
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, &rng);
    const auto b = RandomVec(s.k * s.n, &rng);
    const auto want = NaiveGemm(a, s.m, s.k, b, s.n);
    std::vector<float> got(s.m * s.n, -1.0f);
    Gemm(a.data(), s.m, s.k, b.data(), s.n, got.data());
    for (size_t i = 0; i < got.size(); ++i) {
      // Double-accumulated reference vs float kernel: allow float rounding
      // noise proportional to the reduction length.
      const float tol =
          1e-5f * static_cast<float>(s.k) * std::max(1.0f, std::fabs(want[i]));
      EXPECT_NEAR(got[i], want[i], tol)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " idx=" << i;
    }
  }
}

TEST(GemmTest, ZeroSkipVariantAgreesOnDenseAndSparseInputs) {
  Rng rng(7);
  for (const Shape& s : kShapes) {
    for (double density : {1.0, 0.1}) {
      auto a = RandomVec(s.m * s.k, &rng);
      for (auto& x : a) {
        if (rng.UniformDouble() > density) x = 0.0f;
      }
      const auto b = RandomVec(s.k * s.n, &rng);
      std::vector<float> dense(s.m * s.n), skip(s.m * s.n);
      Gemm(a.data(), s.m, s.k, b.data(), s.n, dense.data());
      GemmZeroSkip(a.data(), s.m, s.k, b.data(), s.n, skip.data());
      // Bitwise: a skipped zero term contributes fma(0, b, acc) == acc for
      // finite b, and acc can never be -0 mid-reduction, so dropping the
      // zero terms of the ascending-k chain leaves every element's bits
      // unchanged. The batched embed layer relies on this to run one-hot
      // feature rows through the zero-skip variant.
      EXPECT_EQ(std::memcmp(dense.data(), skip.data(),
                            dense.size() * sizeof(float)),
                0)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n
          << " density=" << density;
    }
  }
}

TEST(GemmTest, RowBlocksAreBitIdenticalToFullProduct) {
  // The parallel MatMul and the level-batched inference both partition Gemm
  // by rows; every partition must reproduce the full product bit-for-bit.
  Rng rng(11);
  const size_t m = 9, k = 300, n = 13;
  const auto a = RandomVec(m * k, &rng);
  const auto b = RandomVec(k * n, &rng);
  std::vector<float> full(m * n);
  Gemm(a.data(), m, k, b.data(), n, full.data());
  for (size_t rows_per_call : {size_t{1}, size_t{2}, size_t{4}}) {
    std::vector<float> pieced(m * n, 0.0f);
    for (size_t r0 = 0; r0 < m; r0 += rows_per_call) {
      const size_t rows = std::min(rows_per_call, m - r0);
      Gemm(a.data() + r0 * k, rows, k, b.data(), n, pieced.data() + r0 * n);
    }
    EXPECT_EQ(std::memcmp(full.data(), pieced.data(), m * n * sizeof(float)), 0)
        << "rows_per_call=" << rows_per_call;
  }
}

TEST(ElementwiseTest, OneMinusMatchesScaleThenAddScalarBitExactly) {
  // The taped OneMinus is AddScalar(Scale(f, -1), 1); the fused kernel must
  // produce the same bits (both are one rounding of the exact 1 - f).
  Rng rng(3);
  const auto f = RandomVec(1000, &rng, -10.0, 10.0);
  std::vector<float> fused(f.size());
  OneMinus(f.data(), fused.data(), f.size());
  std::vector<float> composed = f;
  ScaleInPlace(composed.data(), -1.0f, composed.size());
  AddScalarInPlace(composed.data(), 1.0f, composed.size());
  EXPECT_EQ(
      std::memcmp(fused.data(), composed.data(), f.size() * sizeof(float)), 0);
}

TEST(ElementwiseTest, AddVariantsAreBitIdentical) {
  Rng rng(5);
  const auto a = RandomVec(777, &rng);
  const auto b = RandomVec(777, &rng);
  std::vector<float> out(a.size());
  Add(a.data(), b.data(), out.data(), a.size());
  std::vector<float> in_place = a;
  AddInPlace(in_place.data(), b.data(), a.size());
  EXPECT_EQ(std::memcmp(out.data(), in_place.data(), a.size() * sizeof(float)),
            0);
  // AddScaledInPlace(-1) is the Sub kernel: a + (-b) == a - b bitwise.
  std::vector<float> sub = a;
  AddScaledInPlace(sub.data(), b.data(), -1.0f, a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sub[i], a[i] - b[i]);
  }
}

TEST(ElementwiseTest, ActivationsMatchScalarDefinitions) {
  Rng rng(9);
  const auto x = RandomVec(257, &rng, -6.0, 6.0);
  std::vector<float> sig = x, tanh_out(x.size()), relu = x;
  Sigmoid(sig.data(), sig.size());
  Tanh(x.data(), tanh_out.data(), x.size());
  Relu(relu.data(), relu.size());
  std::vector<float> tanh_in_place = x;
  TanhInPlace(tanh_in_place.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(sig[i], 1.0f / (1.0f + std::exp(-x[i])), 1e-6f);
    EXPECT_NEAR(tanh_out[i], std::tanh(x[i]), 1e-6f);
    EXPECT_EQ(tanh_out[i], tanh_in_place[i]);  // same kernel math, same bits
    EXPECT_EQ(relu[i], x[i] > 0.0f ? x[i] : 0.0f);
  }
}

TEST(ElementwiseTest, MulBiasCopyZero) {
  Rng rng(13);
  const auto a = RandomVec(96, &rng);
  const auto b = RandomVec(96, &rng);
  std::vector<float> out(a.size());
  Mul(a.data(), b.data(), out.data(), a.size());
  std::vector<float> in_place = a;
  MulInPlace(in_place.data(), b.data(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(out[i], a[i] * b[i]);
    EXPECT_EQ(in_place[i], out[i]);
  }
  const size_t rows = 8, cols = 12;
  const auto bias = RandomVec(cols, &rng);
  std::vector<float> m = RandomVec(rows * cols, &rng);
  const std::vector<float> before = m;
  AddBiasRows(m.data(), rows, cols, bias.data());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(m[r * cols + c], before[r * cols + c] + bias[c]);
    }
  }
  std::vector<float> dst(64, -1.0f);
  Copy(a.data(), dst.data(), 64);
  EXPECT_EQ(std::memcmp(dst.data(), a.data(), 64 * sizeof(float)), 0);
  Zero(dst.data(), 64);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(dst[i], 0.0f);
}

TEST(InferArenaTest, PointersStayValidAndResetCoalesces) {
  InferArena arena;
  // First pass: force several block spills.
  float* first = arena.Alloc(100);
  for (size_t i = 0; i < 100; ++i) first[i] = static_cast<float>(i);
  std::vector<float*> ptrs;
  for (int i = 0; i < 20; ++i) ptrs.push_back(arena.Alloc(1 << 14));
  // Spilling must not move earlier allocations.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(first[i], static_cast<float>(i));
  }
  const size_t after_first_pass = arena.heap_allocations();
  EXPECT_GT(after_first_pass, 0u);
  const size_t high_water = arena.used();

  // Reset coalesces to the high-water mark: repeat passes of the same size
  // are allocation-free.
  arena.Reset();
  EXPECT_GE(arena.capacity(), high_water);
  const size_t after_reset = arena.heap_allocations();
  for (int pass = 0; pass < 5; ++pass) {
    arena.Alloc(100);
    for (int i = 0; i < 20; ++i) arena.Alloc(1 << 14);
    arena.Reset();
  }
  EXPECT_EQ(arena.heap_allocations(), after_reset);
}

TEST(InferArenaTest, AllocZeroedAndAlignment) {
  InferArena arena;
  for (size_t n : {1, 3, 64, 1000}) {
    float* p = arena.AllocZeroed(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], 0.0f);
  }
}

}  // namespace
}  // namespace lpce::nn::kernels
