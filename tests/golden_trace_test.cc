// Golden-trace tests: the deterministic trace JSON of two fixed-seed queries
// (one that re-optimizes, one that does not) is pinned against checked-in
// goldens under tests/testing/golden/. On mismatch the failure message is a
// readable line diff (DiffTraceJson). Regenerate with:
//   LPCE_UPDATE_GOLDENS=1 ./golden_trace_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "workload/workload.h"

#ifndef LPCE_TEST_GOLDEN_DIR
#error "tests/CMakeLists.txt must define LPCE_TEST_GOLDEN_DIR"
#endif

namespace lpce::eng {
namespace {

bool UpdateGoldens() {
  const char* env = std::getenv("LPCE_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

void CompareGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(LPCE_TEST_GOLDEN_DIR) + "/" + name;
  if (UpdateGoldens()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run with LPCE_UPDATE_GOLDENS=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  if (expected.str() != actual) {
    FAIL() << "trace differs from golden " << path
           << " (LPCE_UPDATE_GOLDENS=1 regenerates):\n"
           << DiffTraceJson(expected.str(), actual);
  }
}

/// Grossly underestimates joins so nested-loop plans get picked and the
/// checkpoints trip (same adversary as engine_test.cc).
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "under"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::CardinalityEstimator* base_;
};

class GoldenTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.04;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 31;
    wk::QueryGenerator generator(database_.get(), gen);
    workload_ = generator.GenerateLabeled(8, 3, 6);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> workload_;
};

TEST_F(GoldenTraceTest, QueryWithoutReoptimization) {
  card::HistogramEstimator estimator(&stats_);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;  // threshold 50: histogram stays under it here
  RunStats stats =
      engine.RunQuery(workload_[0].query, &estimator, nullptr, config);
  ASSERT_NE(stats.trace, nullptr);
  ASSERT_EQ(stats.num_reopts, 0);
  ASSERT_EQ(stats.trace->num_reopts(), 0);
  const std::string json = stats.trace->ToJson(TraceJsonMode::kDeterministic);
  ASSERT_TRUE(ValidateTraceJson(json).ok()) << ValidateTraceJson(json).message();
  CompareGolden("trace_no_reopt.json", json);
}

TEST_F(GoldenTraceTest, QueryWithReoptimization) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  // First fixed-seed query that actually re-optimizes under the adversarial
  // estimator; its index is as stable as the workload seed.
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    ASSERT_NE(stats.trace, nullptr);
    if (stats.num_reopts == 0) continue;
    ASSERT_GE(stats.trace->num_reopts(), 1);
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
    const std::string json = stats.trace->ToJson(TraceJsonMode::kDeterministic);
    ASSERT_TRUE(ValidateTraceJson(json).ok())
        << ValidateTraceJson(json).message();
    CompareGolden("trace_reopt.json", json);
    return;
  }
  FAIL() << "no fixed-seed query re-optimized; the golden needs a new seed";
}

}  // namespace
}  // namespace lpce::eng
