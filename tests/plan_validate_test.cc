// Tests for plan validation, per-node execution timing, and the
// validation-split training option.
#include <cmath>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "lpce/tree_model.h"
#include "optimizer/planner.h"
#include "workload/workload.h"

namespace lpce {
namespace {

class PlanValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 44;
    wk::QueryGenerator generator(database_.get(), gen);
    labeled_ = generator.GenerateLabeled(1, 4, 4).front();
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  wk::LabeledQuery labeled_;
};

TEST_F(PlanValidateTest, PlannerOutputAlwaysValidates) {
  card::HistogramEstimator estimator(&stats_);
  opt::Planner planner(database_.get(), opt::CostModel{});
  opt::PlanResult result = planner.Plan(labeled_.query, &estimator);
  EXPECT_TRUE(exec::ValidatePlan(*result.plan, labeled_.query).ok());
}

TEST_F(PlanValidateTest, CanonicalPlanValidates) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  EXPECT_TRUE(exec::ValidatePlan(*plan, labeled_.query).ok());
}

TEST_F(PlanValidateTest, DetectsWrongRootCoverage) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  // Chop the root: its left child no longer covers the query.
  std::unique_ptr<exec::PlanNode> partial = std::move(plan->outer);
  EXPECT_FALSE(exec::ValidatePlan(*partial, labeled_.query).ok());
}

TEST_F(PlanValidateTest, DetectsSwappedJoinKeys) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  // Point the outer key at a column from the inner side: invalid.
  std::swap(plan->outer_key, plan->inner_key);
  // Swapping both keys together is the "flipped" (valid) orientation, so
  // corrupt one side instead.
  plan->outer_key = plan->inner_key;
  EXPECT_FALSE(exec::ValidatePlan(*plan, labeled_.query).ok());
}

TEST_F(PlanValidateTest, DetectsPseudoScanWithoutResult) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  // Replace the leftmost leaf with an empty pseudo scan.
  exec::PlanNode* node = plan.get();
  while (node->outer != nullptr) node = node->outer.get();
  node->op = exec::PhysOp::kPseudoScan;
  node->table_pos = -1;
  EXPECT_FALSE(exec::ValidatePlan(*plan, labeled_.query).ok());
}

TEST_F(PlanValidateTest, DetectsForeignFilter) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  exec::PlanNode* node = plan.get();
  while (node->outer != nullptr) node = node->outer.get();
  // A filter naming a table that is not this scan's table.
  const int other_pos = (node->table_pos + 1) % labeled_.query.num_tables();
  node->filters.push_back(
      {{labeled_.query.tables[other_pos], 0}, qry::CmpOp::kEq, 1});
  EXPECT_FALSE(exec::ValidatePlan(*plan, labeled_.query).ok());
}

TEST_F(PlanValidateTest, PerNodeTimingSumsBelowTotal) {
  auto plan = exec::BuildCanonicalHashPlan(labeled_.query);
  exec::Executor executor(database_.get(), &labeled_.query);
  WallTimer timer;
  executor.Execute(plan.get());
  const double total = timer.ElapsedSeconds();
  std::vector<const exec::PlanNode*> nodes;
  exec::PostOrderPlan(static_cast<const exec::PlanNode*>(plan.get()), &nodes);
  double node_sum = 0.0;
  for (const auto* node : nodes) {
    EXPECT_TRUE(node->executed);
    EXPECT_GE(node->exec_seconds, 0.0);
    node_sum += node->exec_seconds;
  }
  // Per-node self times exclude children, so the sum is bounded by the
  // whole execution (allow slack for timer granularity).
  EXPECT_LE(node_sum, total * 1.5 + 1e-3);
}

TEST_F(PlanValidateTest, ValidationSplitTrainingRestoresBestSnapshot) {
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  wk::GeneratorOptions gen;
  gen.seed = 52;
  gen.require_nonempty = true;
  wk::QueryGenerator generator(database_.get(), gen);
  auto train = generator.GenerateLabeled(40, 3, 5);

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel model(&encoder, config);
  model::TrainOptions options;
  options.epochs = 8;
  options.validation_fraction = 0.2;
  options.patience = 3;
  const model::TrainStats stats =
      model::TrainTreeModel(&model, *database_, train, options);
  EXPECT_TRUE(std::isfinite(stats.final_train_loss()));
  // The restored-snapshot contract: when early stopping kept an earlier
  // epoch, the reported loss is that epoch's, not the last one trained.
  if (stats.best_epoch >= 0) {
    EXPECT_EQ(stats.final_train_loss(),
              stats.epochs[stats.best_epoch].train_loss);
  }
  // The model must produce sane estimates after the snapshot restore.
  auto logical =
      qry::BuildCanonicalTree(train[0].query, train[0].query.AllRels());
  auto tree = model::MakeEstTree(train[0].query, logical.get(), *database_,
                                 nullptr);
  const double est = model.PredictCardFast(train[0].query, tree.get());
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 0.0);
}

TEST_F(PlanValidateTest, EarlyStoppingTerminatesBeforeEpochBudget) {
  // With patience 1 and many epochs, training must not take unbounded time;
  // we verify it completes and the snapshot machinery does not corrupt
  // parameters (loss stays finite).
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  wk::GeneratorOptions gen;
  gen.seed = 53;
  wk::QueryGenerator generator(database_.get(), gen);
  auto train = generator.GenerateLabeled(20, 3, 4);
  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel model(&encoder, config);
  model::TrainOptions options;
  options.epochs = 200;
  options.validation_fraction = 0.25;
  options.patience = 1;
  WallTimer timer;
  model::TrainTreeModel(&model, *database_, train, options);
  // 200 epochs at this size would take far longer than a few seconds; the
  // early stop keeps it quick.
  EXPECT_LT(timer.ElapsedSeconds(), 20.0);
}

}  // namespace
}  // namespace lpce
