// Parameterized sweeps over the nn substrate: forward/backward consistency
// and gradient correctness across cell types, dimensions, and tree depths —
// the configurations the LPCE models actually instantiate.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/cells.h"

namespace lpce::nn {
namespace {

struct SweepParam {
  bool lstm;
  int dim;
  int depth;  // left-deep chain length
};

class CellSweepTest : public ::testing::TestWithParam<SweepParam> {};

Tensor RandomVec(Rng* rng, size_t dim, bool requires_grad = false) {
  Matrix m(1, dim);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-1.0, 1.0));
  }
  return MakeTensor(std::move(m), requires_grad);
}

// Builds a left-deep chain of `depth` cell steps and returns the scalar sum
// of the root h (graph mode).
Tensor ChainLoss(bool lstm, const TreeSruCell& sru, const TreeLstmCell& lstm_cell,
                 const std::vector<Tensor>& inputs) {
  Tensor c, h;
  for (const Tensor& x : inputs) {
    if (lstm) {
      CellOutput out = lstm_cell.Step(x, c, h, nullptr, nullptr);
      c = out.c;
      h = out.h;
    } else {
      CellOutput out = sru.Step(x, c, nullptr);
      c = out.c;
      h = out.h;
    }
  }
  return Sum(h);
}

TEST_P(CellSweepTest, FastApplyMatchesGraphThroughChains) {
  const SweepParam param = GetParam();
  Rng rng(static_cast<uint64_t>(param.dim * 131 + param.depth));
  ParamStore store;
  TreeSruCell sru;
  TreeLstmCell lstm;
  if (param.lstm) {
    lstm = TreeLstmCell(&store, "cell", param.dim, &rng);
  } else {
    sru = TreeSruCell(&store, "cell", param.dim, &rng);
  }
  std::vector<Tensor> inputs;
  for (int i = 0; i < param.depth; ++i) {
    inputs.push_back(RandomVec(&rng, param.dim));
  }

  // Graph path.
  Tensor gc, gh;
  // Fast path.
  Matrix fc, fh;
  bool first = true;
  for (const Tensor& x : inputs) {
    if (param.lstm) {
      CellOutput out = lstm.Step(x, gc, gh, nullptr, nullptr);
      CellMatrixOutput fast = lstm.Apply(x->value(), first ? nullptr : &fc,
                                         first ? nullptr : &fh, nullptr, nullptr);
      gc = out.c;
      gh = out.h;
      fc = std::move(fast.c);
      fh = std::move(fast.h);
    } else {
      CellOutput out = sru.Step(x, gc, nullptr);
      CellMatrixOutput fast =
          sru.Apply(x->value(), first ? nullptr : &fc, nullptr);
      gc = out.c;
      gh = out.h;
      fc = std::move(fast.c);
      fh = std::move(fast.h);
    }
    first = false;
  }
  for (size_t j = 0; j < static_cast<size_t>(param.dim); ++j) {
    EXPECT_NEAR(fc.at(0, j), gc->value().at(0, j), 5e-4);
    EXPECT_NEAR(fh.at(0, j), gh->value().at(0, j), 5e-4);
  }
}

TEST_P(CellSweepTest, GradientsFlowThroughDeepChains) {
  const SweepParam param = GetParam();
  Rng rng(static_cast<uint64_t>(param.dim * 7 + param.depth));
  ParamStore store;
  TreeSruCell sru;
  TreeLstmCell lstm;
  if (param.lstm) {
    lstm = TreeLstmCell(&store, "cell", param.dim, &rng);
  } else {
    sru = TreeSruCell(&store, "cell", param.dim, &rng);
  }
  std::vector<Tensor> inputs;
  for (int i = 0; i < param.depth; ++i) {
    inputs.push_back(RandomVec(&rng, param.dim));
  }
  Tensor loss = ChainLoss(param.lstm, sru, lstm, inputs);
  Backward(loss);
  // Every parameter must receive a non-zero, finite gradient (no vanishing
  // to exactly zero, no NaN blow-up at these depths).
  for (const auto& name : store.names()) {
    const Matrix& grad = store.Get(name)->grad();
    float sum_abs = grad.SumAbs();
    EXPECT_TRUE(std::isfinite(sum_abs)) << name;
    if (name.find(".b") == std::string::npos) {  // weight matrices
      EXPECT_GT(sum_abs, 0.0f) << name;
    }
  }
}

TEST_P(CellSweepTest, AdamStepReducesChainLoss) {
  const SweepParam param = GetParam();
  if (param.depth > 8) GTEST_SKIP() << "optimization check on short chains only";
  Rng rng(static_cast<uint64_t>(param.dim + param.depth));
  ParamStore store;
  TreeSruCell sru;
  TreeLstmCell lstm;
  if (param.lstm) {
    lstm = TreeLstmCell(&store, "cell", param.dim, &rng);
  } else {
    sru = TreeSruCell(&store, "cell", param.dim, &rng);
  }
  std::vector<Tensor> inputs;
  for (int i = 0; i < param.depth; ++i) {
    inputs.push_back(RandomVec(&rng, param.dim));
  }
  Adam adam(&store, {.lr = 1e-2f});
  // Minimize (sum h)^2 toward zero.
  auto loss_value = [&]() {
    Tensor s = ChainLoss(param.lstm, sru, lstm, inputs);
    Tensor sq = Mul(s, s);
    return sq;
  };
  const float before = loss_value()->value().at(0, 0);
  for (int step = 0; step < 60; ++step) {
    Tensor loss = loss_value();
    Backward(loss);
    adam.Step();
  }
  const float after = loss_value()->value().at(0, 0);
  EXPECT_LT(after, before);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CellSweepTest,
    ::testing::Values(SweepParam{false, 8, 3}, SweepParam{false, 32, 9},
                      SweepParam{false, 96, 17}, SweepParam{true, 8, 3},
                      SweepParam{true, 32, 9}, SweepParam{true, 96, 17}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.lstm ? "Lstm" : "Sru") + "Dim" +
             std::to_string(info.param.dim) + "Depth" +
             std::to_string(info.param.depth);
    });

}  // namespace
}  // namespace lpce::nn
