// Workload generator and labeling tests.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "workload/workload.h"

namespace lpce::wk {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
  }

  std::unique_ptr<db::Database> database_;
};

TEST_F(WorkloadTest, GeneratesRequestedJoinCounts) {
  GeneratorOptions opts;
  QueryGenerator generator(database_.get(), opts);
  for (int joins = 2; joins <= 8; ++joins) {
    qry::Query query = generator.Generate(joins);
    EXPECT_EQ(query.num_joins(), joins);
    EXPECT_EQ(query.num_tables(), joins + 1);
    EXPECT_TRUE(query.IsConnected(query.AllRels()));
    // Tables are distinct.
    std::set<int32_t> distinct(query.tables.begin(), query.tables.end());
    EXPECT_EQ(distinct.size(), query.tables.size());
  }
}

TEST_F(WorkloadTest, LabelsEveryCanonicalNode) {
  GeneratorOptions opts;
  QueryGenerator generator(database_.get(), opts);
  auto workload = generator.GenerateLabeled(5, 3, 5);
  ASSERT_EQ(workload.size(), 5u);
  for (const auto& labeled : workload) {
    // 2k-1 nodes for k tables.
    EXPECT_EQ(labeled.true_cards.size(),
              static_cast<size_t>(2 * labeled.query.num_tables() - 1));
    EXPECT_TRUE(labeled.true_cards.count(labeled.query.AllRels()) > 0);
  }
}

TEST_F(WorkloadTest, LabelsMatchIndependentExecution) {
  GeneratorOptions opts;
  opts.seed = 42;
  QueryGenerator generator(database_.get(), opts);
  auto workload = generator.GenerateLabeled(3, 2, 4);
  for (const auto& labeled : workload) {
    auto plan = exec::BuildCanonicalHashPlan(labeled.query);
    exec::Executor executor(database_.get(), &labeled.query);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), labeled.FinalCard());
  }
}

TEST_F(WorkloadTest, RequireNonemptyProducesNonzeroResults) {
  GeneratorOptions opts;
  opts.require_nonempty = true;
  opts.seed = 9;
  QueryGenerator generator(database_.get(), opts);
  auto workload = generator.GenerateLabeled(5, 2, 6);
  for (const auto& labeled : workload) {
    EXPECT_GT(labeled.FinalCard(), 0u);
  }
}

TEST_F(WorkloadTest, DeterministicAcrossRuns) {
  GeneratorOptions opts;
  opts.seed = 77;
  QueryGenerator g1(database_.get(), opts);
  QueryGenerator g2(database_.get(), opts);
  auto w1 = g1.GenerateLabeled(4, 2, 5);
  auto w2 = g2.GenerateLabeled(4, 2, 5);
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].query.tables, w2[i].query.tables);
    EXPECT_EQ(w1[i].FinalCard(), w2[i].FinalCard());
  }
}

TEST_F(WorkloadTest, SaveLoadRoundTrip) {
  GeneratorOptions opts;
  QueryGenerator generator(database_.get(), opts);
  auto workload = generator.GenerateLabeled(6, 2, 6);
  const std::string path = ::testing::TempDir() + "/workload.bin";
  ASSERT_TRUE(SaveWorkload(workload, path).ok());
  std::vector<LabeledQuery> loaded;
  ASSERT_TRUE(LoadWorkload(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(loaded[i].query.tables, workload[i].query.tables);
    EXPECT_EQ(loaded[i].query.joins.size(), workload[i].query.joins.size());
    EXPECT_EQ(loaded[i].query.predicates.size(),
              workload[i].query.predicates.size());
    EXPECT_EQ(loaded[i].true_cards, workload[i].true_cards);
  }
}

TEST_F(WorkloadTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[] = "not a workload";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  std::vector<LabeledQuery> loaded;
  EXPECT_FALSE(LoadWorkload(path, &loaded).ok());
}

TEST_F(WorkloadTest, MaxCardinalityIsMaxOverAllNodes) {
  GeneratorOptions opts;
  QueryGenerator generator(database_.get(), opts);
  auto workload = generator.GenerateLabeled(4, 2, 5);
  const uint64_t max_card = MaxCardinality(workload);
  uint64_t expect = 1;
  for (const auto& labeled : workload) {
    for (const auto& [rels, card] : labeled.true_cards) {
      expect = std::max(expect, card);
    }
  }
  EXPECT_EQ(max_card, expect);
}

}  // namespace
}  // namespace lpce::wk
